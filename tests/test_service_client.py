"""Client tests: typed errors, deterministic retry/backoff, helpers."""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.observability.metrics import get_registry as get_metrics_registry
from repro.resilience.policies import RetryPolicy
from repro.service import (
    BadRequestError,
    NotFoundError,
    QueueFullError,
    ServiceClient,
    ServiceConfig,
    TuningServer,
)
from repro.service.client import ConnectionFailed
from tests.service_helpers import make_bundle


@pytest.fixture(autouse=True)
def fresh_metrics():
    get_metrics_registry().reset()
    yield
    get_metrics_registry().reset()


@pytest.fixture
def live():
    server = TuningServer(ServiceConfig(port=0, workers=2))
    server.registry.put("prod", make_bundle())
    with server:
        yield server


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Answers from a per-server script of (status, body) tuples."""

    def log_message(self, *args):
        pass

    def _reply(self):
        script = self.server.script  # type: ignore[attr-defined]
        status, body = script.pop(0) if len(script) > 1 else script[0]
        payload = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    do_GET = do_POST = do_PUT = _reply


@pytest.fixture
def scripted():
    """A stub server whose responses are scripted by the test."""
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    httpd.script = [(200, {"status": "ok"})]
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd
    finally:
        httpd.shutdown()
        httpd.server_close()


def url_of(httpd):
    return f"http://127.0.0.1:{httpd.server_address[1]}"


class TestAgainstLiveServer:
    def test_tune_and_decide(self, live):
        client = ServiceClient(live.url)
        rec = client.tune("prod", "broadwell", "compress", policy="eqn3")
        assert rec["freq_ghz"] == 1.75
        verdict = client.decide("skylake", ratio=4.0, error_bound=1e-3,
                                nbytes=10**9, clients=64)
        assert verdict["decision"] == "compress"

    def test_register_is_idempotent(self, live):
        client = ServiceClient(live.url)
        first = client.register_model("edge", make_bundle(a=0.005))
        again = client.register_model("edge", make_bundle(a=0.005))
        assert first == again
        assert client.model_entry("edge")["version"] == first["version"]

    def test_typed_errors_reraised(self, live):
        client = ServiceClient(live.url)
        with pytest.raises(NotFoundError):
            client.tune("ghost", "broadwell", "compress")
        with pytest.raises(BadRequestError):
            client.tune("prod", "broadwell", "sideways")

    def test_metrics_text(self, live):
        client = ServiceClient(live.url)
        client.tune("prod", "broadwell", "compress")
        assert "repro_service_requests_total" in client.metrics_text()


class TestRetry:
    def test_retries_429_then_succeeds(self, scripted):
        scripted.script = [
            (429, {"error": "queue_full", "message": "full"}),
            (429, {"error": "queue_full", "message": "full"}),
            (200, {"status": "ok"}),
        ]
        sleeps = []
        client = ServiceClient(
            url_of(scripted),
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01,
                              backoff_cap_s=0.1),
            sleep=sleeps.append,
        )
        assert client.healthz()
        assert len(sleeps) == 2
        assert sleeps[0] < sleeps[1]  # exponential

    def test_backoff_schedule_is_deterministic(self, scripted):
        scripted.script = [(429, {"message": "full"})]
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.01,
                             backoff_cap_s=0.1)

        def run():
            sleeps = []
            client = ServiceClient(url_of(scripted), retry=policy,
                                   retry_seed=7, sleep=sleeps.append)
            with pytest.raises(QueueFullError):
                client.healthz()
            return sleeps

        assert run() == run()

    def test_gives_up_after_max_attempts(self, scripted):
        scripted.script = [(503, {"error": "draining", "message": "bye"})]
        sleeps = []
        client = ServiceClient(
            url_of(scripted),
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.001,
                              backoff_cap_s=0.01),
            sleep=sleeps.append,
        )
        with pytest.raises(Exception) as err:
            client.healthz()
        assert getattr(err.value, "status", None) == 503
        assert len(sleeps) == 2  # max_attempts - 1 backoffs

    def test_non_retryable_fails_fast(self, scripted):
        scripted.script = [(400, {"error": "bad_request", "message": "no"})]
        sleeps = []
        client = ServiceClient(url_of(scripted), sleep=sleeps.append)
        with pytest.raises(BadRequestError):
            client._request("GET", "/healthz")
        assert sleeps == []

    def test_connection_refused_retries_then_raises(self):
        sleeps = []
        client = ServiceClient(
            "http://127.0.0.1:9",  # discard port: nothing listens
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.001,
                              backoff_cap_s=0.01),
            timeout_s=0.5,
            sleep=sleeps.append,
        )
        with pytest.raises(ConnectionFailed):
            client.healthz()
        assert len(sleeps) == 1

    def test_readyz_false_on_unreachable(self):
        client = ServiceClient("http://127.0.0.1:9", timeout_s=0.5)
        assert client.readyz() is False
