"""Extension bench: cluster-scale dumping through a shared NFS.

Exascale framing of the paper's single-node result: N clients dump
concurrently. Asserts the emergent contention behaviour and that the
tuning rule keeps saving energy fleet-wide.
"""

import numpy as np
from conftest import emit

from repro.compressors import SZCompressor
from repro.data import load_field
from repro.hardware.cpu import SKYLAKE_4114
from repro.iosim.cluster import Cluster
from repro.iosim.nfs import NfsTarget
from repro.workflow.report import render_table


def test_bench_extension_cluster(benchmark, ctx):
    arr = load_field("nyx", "velocity_x", scale=ctx.config.data_scale)
    nfs = NfsTarget()
    cpu = SKYLAKE_4114
    f_c = cpu.snap_frequency(0.875 * cpu.fmax_ghz)
    f_w = cpu.snap_frequency(0.85 * cpu.fmax_ghz)

    def run():
        rows = []
        for n in (1, 4, 16):
            cluster = Cluster(cpu, n_nodes=n, nfs=nfs, seed=7, repeats=3)
            base = cluster.dump_all(SZCompressor(), arr, 1e-2, int(64e9))
            tuned = cluster.dump_all(SZCompressor(), arr, 1e-2, int(64e9),
                                     compress_freq_ghz=f_c, write_freq_ghz=f_w)
            w_base = max(r.write.runtime_s for r in base.per_node)
            w_tuned = max(r.write.runtime_s for r in tuned.per_node)
            rows.append(
                {
                    "nodes": n,
                    "cpu_bound_frac": base.cpu_bound_fraction,
                    "agg_mb_s": base.aggregate_write_bandwidth_bps / 1e6,
                    "saved_pct": (1 - tuned.total_energy_j
                                  / base.total_energy_j) * 100,
                    "write_slowdown_pct": (w_tuned / w_base - 1) * 100,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(rows, title="EXTENSION — cluster dump scaling (Skylake, 64 GB/node)"))

    by_n = {r["nodes"]: r for r in rows}
    # Contention grows; aggregate bandwidth respects the server cap.
    assert by_n[16]["cpu_bound_frac"] < by_n[4]["cpu_bound_frac"] < 1.0 + 1e-9
    assert all(r["agg_mb_s"] <= nfs.shared_capacity_mbps * 1.05 for r in rows)
    # Tuning saves at every scale, and the write-stage slowdown
    # collapses once the network is the bottleneck.
    assert all(r["saved_pct"] > 0 for r in rows)
    assert by_n[16]["write_slowdown_pct"] < by_n[1]["write_slowdown_pct"]
    assert by_n[16]["write_slowdown_pct"] < 2.0
