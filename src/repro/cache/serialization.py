"""Typed JSON round-trips for cacheable result values.

The cache stores every value as canonical JSON *text* (sorted keys,
compact separators) plus a digest of that text. Text is what both
tiers hold — hits decode a fresh object, so no caller can mutate a
cached value in place, and "byte-identical" has a literal meaning: two
results are equal iff their encoded texts are equal (which also makes
``NaN`` compare equal, unlike object equality).

Encoding is typed: tuples, NumPy arrays, enums and the library's
result dataclasses (reports, models, samples) are tagged so decoding
reconstructs the exact Python shape. Unknown types raise
:class:`TypeError` — a cache that silently stringified objects would
return subtly different values on a hit than on a miss.

The dataclass registry is populated lazily on first use: the modules
defining the result types import :mod:`repro.cache` themselves, so
importing them eagerly here would cycle.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Type

import numpy as np

__all__ = ["encode_value", "decode_value", "canonical_dumps"]

_DATACLASSES: Dict[str, Type] = {}
_ENUMS: Dict[str, Type] = {}
_REGISTERED = False


def _ensure_registered() -> None:
    global _REGISTERED
    if _REGISTERED:
        return
    from repro.core.power_model import PowerModel
    from repro.core.runtime_model import RuntimeModel
    from repro.core.tuning import TuningRecommendation
    from repro.governor import GovernorReport, GovernorSpec
    from repro.hardware.cpu import CpuSpec
    from repro.hardware.node import Measurement
    from repro.hardware.perf import PowerSample
    from repro.hardware.workload import Workload, WorkloadKind
    from repro.iosim.cluster import ClusterDumpReport
    from repro.iosim.dumper import DumpReport, StageReport
    from repro.iosim.nfs import NfsTarget
    from repro.powercap.controller import PowercapReport
    from repro.parallel.instrumentation import ParallelStats, TaskStat
    from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
    from repro.resilience.report import AttemptRecord, SnapshotResilience
    from repro.utils.stats import GoodnessOfFit
    from repro.workflow.campaign import (
        CampaignPoint,
        CampaignReport,
        CheckpointCampaign,
    )
    from repro.workflow.sweep import SweepConfig

    for cls in (
        GoodnessOfFit, PowerModel, RuntimeModel, TuningRecommendation,
        CpuSpec, Measurement, PowerSample, Workload, NfsTarget,
        StageReport, DumpReport, ClusterDumpReport, PowercapReport,
        TaskStat, ParallelStats,
        AttemptRecord, SnapshotResilience, FaultSpec, FaultPlan,
        CampaignPoint, CampaignReport, CheckpointCampaign, SweepConfig,
        GovernorReport, GovernorSpec,
    ):
        _DATACLASSES[cls.__name__] = cls
    for cls in (WorkloadKind, FaultKind):
        _ENUMS[cls.__name__] = cls
    _REGISTERED = True


def _encode(obj: Any) -> Any:
    from repro.core.samples import SampleSet

    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, list):
        return [_encode(x) for x in obj]
    if isinstance(obj, tuple):
        return {"__t__": "tuple", "v": [_encode(x) for x in obj]}
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and "__t__" not in obj:
            return {k: _encode(v) for k, v in obj.items()}
        pairs = [[_encode(k), _encode(v)] for k, v in obj.items()]
        pairs.sort(key=lambda kv: canonical_dumps(kv[0]))
        return {"__t__": "dict", "v": pairs}
    if isinstance(obj, (bytes, bytearray)):
        return {"__t__": "bytes", "hex": bytes(obj).hex()}
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return {
            "__t__": "ndarray",
            "dtype": str(data.dtype),
            "shape": list(data.shape),
            "hex": data.tobytes().hex(),
        }
    if isinstance(obj, np.dtype):
        return {"__t__": "dtype", "v": str(obj)}
    if isinstance(obj, SampleSet):
        return {"__t__": "sampleset", "v": [_encode(dict(r)) for r in obj]}
    _ensure_registered()
    cls_name = type(obj).__name__
    if cls_name in _ENUMS and isinstance(obj, _ENUMS[cls_name]):
        return {"__t__": "enum", "cls": cls_name, "v": _encode(obj.value)}
    if cls_name in _DATACLASSES and isinstance(obj, _DATACLASSES[cls_name]):
        fields = {
            f.name: _encode(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__t__": "dc", "cls": cls_name, "f": fields}
    raise TypeError(
        f"cannot cache values of type {type(obj).__name__!r}; "
        "register the dataclass in repro.cache.serialization"
    )


def _decode(doc: Any) -> Any:
    from repro.core.samples import SampleSet

    if isinstance(doc, list):
        return [_decode(x) for x in doc]
    if not isinstance(doc, dict):
        return doc
    tag = doc.get("__t__")
    if tag is None:
        return {k: _decode(v) for k, v in doc.items()}
    if tag == "tuple":
        return tuple(_decode(x) for x in doc["v"])
    if tag == "dict":
        return {_decode(k): _decode(v) for k, v in doc["v"]}
    if tag == "bytes":
        return bytes.fromhex(doc["hex"])
    if tag == "ndarray":
        data = np.frombuffer(
            bytes.fromhex(doc["hex"]), dtype=np.dtype(doc["dtype"])
        )
        return data.reshape(tuple(doc["shape"])).copy()
    if tag == "dtype":
        return np.dtype(doc["v"])
    if tag == "sampleset":
        return SampleSet(_decode(r) for r in doc["v"])
    _ensure_registered()
    if tag == "enum":
        try:
            return _ENUMS[doc["cls"]](_decode(doc["v"]))
        except KeyError as exc:
            raise ValueError(f"unknown cached enum class {exc}") from exc
    if tag == "dc":
        try:
            cls = _DATACLASSES[doc["cls"]]
        except KeyError as exc:
            raise ValueError(f"unknown cached dataclass {exc}") from exc
        return cls(**{k: _decode(v) for k, v in doc["f"].items()})
    raise ValueError(f"unknown cache value tag {tag!r}")


def canonical_dumps(doc: Any) -> str:
    """Canonical JSON text: sorted keys, compact separators, NaN kept."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      allow_nan=True)


def encode_value(obj: Any) -> str:
    """Serialize a result value to canonical JSON text."""
    return canonical_dumps(_encode(obj))


def decode_value(text: str) -> Any:
    """Reconstruct the value from :func:`encode_value` text."""
    return _decode(json.loads(text))
