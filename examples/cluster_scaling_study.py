#!/usr/bin/env python
"""Cluster scaling study: dumping from many nodes through one NFS.

Extends the paper's single-node experiment toward its exascale framing:
N clients compress locally and write concurrently to shared storage.
Shows (a) the server capacity capping aggregate bandwidth, (b) the
write phase's DVFS sensitivity collapsing once the network saturates —
at which point downclocking the write stage is free — and (c) cluster
energy savings from Eqn. 3 at every scale.

    python examples/cluster_scaling_study.py
"""

from repro import SZCompressor, SKYLAKE_4114, load_field
from repro.iosim import Cluster, NfsTarget
from repro.workflow.report import render_table


def main() -> None:
    arr = load_field("nyx", "velocity_x", scale=16)
    nfs = NfsTarget()
    cpu = SKYLAKE_4114
    f_c = cpu.snap_frequency(0.875 * cpu.fmax_ghz)
    f_w = cpu.snap_frequency(0.85 * cpu.fmax_ghz)

    rows = []
    for n in (1, 2, 4, 8, 16, 32):
        cluster = Cluster(cpu, n_nodes=n, nfs=nfs, seed=7, repeats=3)
        base = cluster.dump_all(SZCompressor(), arr, 1e-2, int(64e9))
        tuned = cluster.dump_all(SZCompressor(), arr, 1e-2, int(64e9),
                                 compress_freq_ghz=f_c, write_freq_ghz=f_w)
        w_base = max(r.write.runtime_s for r in base.per_node)
        w_tuned = max(r.write.runtime_s for r in tuned.per_node)
        rows.append(
            {
                "nodes": n,
                "cpu_bound_frac": base.cpu_bound_fraction,
                "agg_write_mb_s": base.aggregate_write_bandwidth_bps / 1e6,
                "base_energy_kj": base.total_energy_j / 1e3,
                "saved_pct": (1 - tuned.total_energy_j / base.total_energy_j) * 100,
                "write_slowdown_pct": (w_tuned / w_base - 1) * 100,
                "makespan_s": base.makespan_s,
            }
        )
    print(render_table(rows, title="Cluster dump scaling (64 GB/node, SZ eb=1e-2, Skylake)"))

    # The qualitative claims:
    fracs = [r["cpu_bound_frac"] for r in rows]
    assert fracs == sorted(fracs, reverse=True), "contention must grow with N"
    assert all(r["saved_pct"] > 0 for r in rows), "tuning must save at every scale"
    # Once network-bound, the tuned write's runtime penalty collapses.
    assert rows[-1]["write_slowdown_pct"] < rows[0]["write_slowdown_pct"]
    cap = nfs.shared_capacity_mbps
    assert all(r["agg_write_mb_s"] <= cap * 1.05 for r in rows)
    print(f"\nAggregate write bandwidth saturates at the server capacity "
          f"({cap:.0f} MB/s); once saturated, the tuned write stage costs "
          f"~zero extra runtime — frequency reduction becomes free.")


if __name__ == "__main__":
    main()
