"""The adaptive governor: explore/exploit DVFS control on live telemetry.

The control loop per phase:

1. **Warmup** — walk a fixed descending frequency ladder once (max
   clock first, so every later estimate has a scaling reference). This
   seeds the live window with enough distinct frequencies for the
   Eqn. 2 fitter's four-point minimum.
2. **Fit** — whenever new samples arrived, re-fit the scaled power
   curve ``P(f)/P(fmax) = a·f^b + c`` with
   :func:`repro.core.regression.fit_power_law` and estimate the
   runtime-vs-frequency sensitivity ``s`` in ``t(f)/t(fmax) =
   1 + s·(fmax/f − 1)`` by closed-form least squares over per-byte
   runtimes.
3. **Choose** — run the fitted curves through the same
   :func:`~repro.governor.policies.choose_frequency` objective the
   oracle uses (slowdown budget, energy hysteresis).
4. **Explore or exploit** — with a decaying, seeded probability, probe
   a grid neighbour of the target instead of the target itself; after
   :attr:`converge_after` consecutive identical targets the phase is
   *converged*, exploration stops, and the target is held (hysteresis
   against fit jitter is already inside the objective).

Everything random flows from one seed through per-phase
``numpy`` generators, so a fixed seed yields byte-identical decision
traces — the determinism contract tested in
``tests/test_governor_controller.py``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.regression import PowerLawFit, fit_power_law
from repro.governor.phases import Phase
from repro.governor.policies import (
    DEFAULT_HYSTERESIS,
    DEFAULT_SLOWDOWN_BUDGETS,
    Governor,
    choose_frequency,
)
from repro.governor.telemetry import TelemetryBus, TelemetrySample
from repro.hardware.cpu import CpuSpec

__all__ = ["AdaptiveGovernor", "DEFAULT_WARMUP_FRACTIONS"]

#: Warmup ladder as fractions of the max clock, walked in order. Spans
#: the region the static rule lives in (0.75-1.0 · fmax) with six
#: distinct grid points on every known CPU — comfortably above the
#: fitter's four-point minimum — while never visiting clocks slow
#: enough to hurt badly.
DEFAULT_WARMUP_FRACTIONS: Tuple[float, ...] = (1.0, 0.95, 0.9, 0.85, 0.8, 0.75)

#: Fixed per-phase seed offsets (never ``hash()``: that is randomized
#: per process and would break trace determinism).
_PHASE_SEED_OFFSET: Dict[Phase, int] = {
    Phase.COMPRESS: 0,
    Phase.WRITE: 1,
    Phase.IDLE: 2,
}


class _PhaseState:
    """Mutable per-phase controller state."""

    __slots__ = (
        "warmup",
        "rng",
        "dirty",
        "power_fit",
        "sensitivity",
        "target",
        "streak",
        "converged",
        "steps",
    )

    def __init__(self, warmup: Tuple[float, ...], rng: np.random.Generator):
        self.warmup = list(warmup)
        self.rng = rng
        self.dirty = False  # new samples since the last fit
        self.power_fit: Optional[PowerLawFit] = None
        self.sensitivity: Optional[float] = None
        self.target: Optional[float] = None
        self.streak = 0
        self.converged = False
        self.steps = 0  # post-warmup decisions (drives explore decay)


class AdaptiveGovernor(Governor):
    """Online per-phase DVFS control from streaming telemetry.

    Parameters
    ----------
    cpu:
        The DVFS grid being governed.
    seed:
        Root of all exploration randomness; fixed seed ⇒ byte-identical
        decision traces.
    window:
        Live-window length per phase: the newest *window* samples feed
        every re-fit. Must allow at least the fitter's four points.
    budgets / hysteresis:
        The objective's knobs; see
        :data:`~repro.governor.policies.DEFAULT_SLOWDOWN_BUDGETS` and
        :data:`~repro.governor.policies.DEFAULT_HYSTERESIS`.
    explore / explore_decay:
        Probe probability after warmup is ``explore·explore_decay^n``
        at the phase's *n*-th post-warmup decision; zero once converged.
    converge_after:
        Consecutive identical targets required to declare convergence.
    """

    name = "adaptive"

    def __init__(
        self,
        cpu: CpuSpec,
        seed: int = 0,
        window: int = 64,
        budgets: Optional[Dict[Phase, float]] = None,
        hysteresis: float = DEFAULT_HYSTERESIS,
        explore: float = 0.2,
        explore_decay: float = 0.8,
        converge_after: int = 3,
        warmup_fractions: Tuple[float, ...] = DEFAULT_WARMUP_FRACTIONS,
        min_fit_points: int = 4,
        telemetry: Optional[TelemetryBus] = None,
    ) -> None:
        super().__init__(cpu, telemetry)
        if window < min_fit_points:
            raise ValueError(
                f"window must be >= {min_fit_points}, got {window}"
            )
        if not 0.0 <= explore <= 1.0:
            raise ValueError(f"explore must be in [0, 1], got {explore}")
        if not 0.0 < explore_decay <= 1.0:
            raise ValueError(
                f"explore_decay must be in (0, 1], got {explore_decay}"
            )
        if converge_after < 1:
            raise ValueError(
                f"converge_after must be >= 1, got {converge_after}"
            )
        self.seed = int(seed)
        self.window = int(window)
        self.budgets = dict(DEFAULT_SLOWDOWN_BUDGETS)
        if budgets:
            self.budgets.update(budgets)
        self.hysteresis = float(hysteresis)
        self.explore = float(explore)
        self.explore_decay = float(explore_decay)
        self.converge_after = int(converge_after)
        self.min_fit_points = int(min_fit_points)

        grid = cpu.available_frequencies()
        self._grid = tuple(float(f) for f in grid)
        # Snap the ladder onto the grid, dropping duplicates in order.
        ladder = []
        for frac in warmup_fractions:
            f = cpu.snap_frequency(
                min(max(frac * cpu.fmax_ghz, cpu.fmin_ghz), cpu.fmax_ghz)
            )
            if f not in ladder:
                ladder.append(f)
        if len(ladder) < self.min_fit_points:
            raise ValueError(
                "warmup_fractions snap to fewer than "
                f"{self.min_fit_points} distinct grid frequencies"
            )
        self._warmup_ladder = tuple(ladder)
        self._states: Dict[Phase, _PhaseState] = {}

    # -- state plumbing ------------------------------------------------

    def _state(self, phase: Phase) -> _PhaseState:
        state = self._states.get(phase)
        if state is None:
            rng = np.random.default_rng(
                [self.seed, _PHASE_SEED_OFFSET[phase]]
            )
            state = _PhaseState(self._warmup_ladder, rng)
            self._states[phase] = state
        return state

    def _observed(self, sample: TelemetrySample) -> None:
        self._state(Phase(sample.phase)).dirty = True

    def is_converged(self, phase) -> bool:
        phase = Phase(phase) if not isinstance(phase, Phase) else phase
        state = self._states.get(phase)
        return bool(state is not None and state.converged)

    def fitted(self, phase) -> Optional[Dict[str, float]]:
        """The learned model for *phase*, or ``None`` before first fit.

        ``a``/``b``/``c`` parameterize scaled power
        ``P(f)/P(fmax) = a·f^b + c``; ``sensitivity`` is ``s`` in
        ``t(f)/t(fmax) = 1 + s·(fmax/f − 1)``.
        """
        phase = Phase(phase) if not isinstance(phase, Phase) else phase
        state = self._states.get(phase)
        if state is None or state.power_fit is None:
            return None
        return {
            "a": state.power_fit.a,
            "b": state.power_fit.b,
            "c": state.power_fit.c,
            "rmse": state.power_fit.gof.rmse,
            "sensitivity": float(state.sensitivity),
        }

    # -- model estimation ----------------------------------------------

    def _refit(self, phase: Phase, state: _PhaseState) -> bool:
        """Re-estimate the phase's curves from its live window."""
        window = self.telemetry.window(phase, self.window)
        fmax = self.cpu.fmax_ghz
        ref = [s for s in window if abs(s.freq_ghz - fmax) < 1e-9]
        if not ref:
            return False  # no scaling reference yet; keep warming up
        freqs = np.array([s.freq_ghz for s in window])
        if len(np.unique(freqs)) < self.min_fit_points:
            return False
        p_ref = float(np.mean([s.power_w for s in ref]))
        powers = np.array([s.power_w for s in window]) / p_ref
        try:
            fit = fit_power_law(freqs, powers)
        except ValueError:
            return False

        # Per-byte runtime ratios against the fmax reference give the
        # sensitivity in closed form: minimize Σ(r−1 − s·u)² over s.
        t_ref = float(
            np.mean([s.runtime_s / max(s.bytes_processed, 1) for s in ref])
        )
        u, r = [], []
        for s in window:
            if abs(s.freq_ghz - fmax) < 1e-9:
                continue
            u.append(fmax / s.freq_ghz - 1.0)
            r.append(s.runtime_s / max(s.bytes_processed, 1) / t_ref)
        if u:
            u_arr = np.array(u)
            r_arr = np.array(r)
            sens = float(
                np.clip(np.dot(u_arr, r_arr - 1.0) / np.dot(u_arr, u_arr), 0.0, 1.0)
            )
        else:
            sens = 0.0

        state.power_fit = fit
        state.sensitivity = sens
        state.dirty = False
        self.refits += 1
        from repro.observability import get_registry

        get_registry().counter(
            "repro_governor_refits_total",
            {"phase": phase.value, "policy": self.name},
            help="online model re-fits performed by adaptive governors",
        ).inc()
        return True

    def _target(self, phase: Phase, state: _PhaseState) -> float:
        """Run the fitted curves through the shared objective."""
        fit = state.power_fit
        sens = state.sensitivity
        fmax = self.cpu.fmax_ghz
        p_ref = float(fit.predict(fmax))
        return choose_frequency(
            self._grid,
            lambda f: float(fit.predict(f)) / p_ref,
            lambda f: sens * (fmax / f - 1.0),
            self.budgets[phase],
            self.hysteresis,
        )

    # -- the decision core ---------------------------------------------

    def _decide(self, phase: Phase) -> Tuple[float, str]:
        state = self._state(phase)

        if state.warmup:
            return state.warmup.pop(0), "warmup"

        if state.dirty or state.power_fit is None:
            if not self._refit(phase, state) and state.power_fit is None:
                # Window lost its reference samples (tiny ring) — walk
                # the ladder again rather than decide blind.
                state.warmup = list(self._warmup_ladder)
                return state.warmup.pop(0), "warmup"

        target = self._target(phase, state)
        if target == state.target:
            state.streak += 1
        else:
            state.streak = 1
            state.converged = False
        state.target = target
        if state.streak >= self.converge_after:
            state.converged = True

        if state.converged:
            state.steps += 1
            return target, "hold"

        eps = self.explore * self.explore_decay**state.steps
        state.steps += 1
        if state.rng.random() < eps:
            idx = self._grid.index(self.cpu.snap_frequency(target))
            lo, hi = max(idx - 2, 0), min(idx + 2, len(self._grid) - 1)
            neighbours = [
                self._grid[i] for i in range(lo, hi + 1) if i != idx
            ]
            if neighbours:
                probe = float(state.rng.choice(neighbours))
                return probe, "explore"
        return target, "exploit"
