"""Tests for the extension datasets (SDRBench beyond Table I)."""

import numpy as np
import pytest

from repro.compressors import SZCompressor, ZFPCompressor
from repro.data import available_datasets, get_dataset, load_field
from repro.data.registry import TABLE1_DATASETS, table1_rows


class TestRegistration:
    def test_extension_datasets_registered(self):
        assert "scale-letkf" in available_datasets()
        assert "qmcpack" in available_datasets()

    def test_table1_unchanged_by_extensions(self):
        # The paper's Table I must stay exactly its three rows.
        assert TABLE1_DATASETS == ("cesm-atm", "hacc", "nyx")
        assert [r["dataset"] for r in table1_rows()] == list(TABLE1_DATASETS)

    def test_geometries(self):
        assert get_dataset("scale-letkf").full_shape == (98, 1200, 1200)
        assert get_dataset("qmcpack").full_shape == (288, 115, 69, 69)


class TestFourDimensionalPath:
    """QMCPACK is the suite's only 4-D dataset: it exercises the d=4
    code paths of both codecs end to end."""

    @pytest.fixture(scope="class")
    def field(self):
        arr = load_field("qmcpack", "einspline", scale=12)
        assert arr.ndim == 4
        return arr

    @pytest.mark.parametrize("codec_cls", [SZCompressor, ZFPCompressor],
                             ids=["sz", "zfp"])
    def test_roundtrip_bound(self, codec_cls, field):
        codec = codec_cls()
        buf, rec = codec.roundtrip(field, 1e-3)
        err = np.max(np.abs(field.astype(float) - rec.astype(float)))
        assert err <= 1e-3
        # ZFP pads every axis to a multiple of 4, which is punishing for
        # short trailing axes — require only that coding beats raw
        # storage despite the padding.
        assert buf.ratio > 1.0

    def test_scaled_shape_divides_all_axes(self):
        shape = get_dataset("qmcpack").scaled_shape(24)
        assert all(4 <= s for s in shape)
        assert all(a <= b for a, b in zip(shape, (288, 115, 69, 69)))


class TestScaleLetkf:
    def test_fields_load(self):
        for name in ("QG", "V"):
            arr = load_field("scale-letkf", name, scale=20)
            assert arr.ndim == 3
            assert np.all(np.isfinite(arr))

    def test_qg_positive_like_precipitation(self):
        arr = load_field("scale-letkf", "QG", scale=20)
        assert np.all(arr > 0)

    def test_compresses_within_bound(self):
        arr = load_field("scale-letkf", "QG", scale=20)
        buf, rec = SZCompressor().roundtrip(arr, 1e-2)
        assert np.max(np.abs(arr.astype(float) - rec.astype(float))) <= 1e-2
