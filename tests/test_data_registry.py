"""Unit tests for the dataset registry (Table I)."""

import numpy as np
import pytest

from repro.data.registry import (
    DATASETS,
    available_datasets,
    get_dataset,
    load_dataset,
    load_field,
    table1_rows,
)


class TestRegistryLookups:
    def test_all_paper_datasets_registered(self):
        for name in ("cesm-atm", "hacc", "nyx", "hurricane-isabel"):
            assert name in available_datasets()

    def test_get_dataset_case_insensitive(self):
        assert get_dataset("NYX").name == "nyx"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_dataset("does-not-exist")


class TestGeometry:
    def test_table1_full_sizes_match_paper(self):
        rows = {r["dataset"]: r for r in table1_rows()}
        # Paper's Table I: 673.9 MB, 536.9 MB (HACC differs slightly —
        # see EXPERIMENTS.md; 280953867 floats are 1123.8 MB).
        assert rows["cesm-atm"]["field_size_mb"] == pytest.approx(673.9)
        assert rows["nyx"]["field_size_mb"] == pytest.approx(536.9)
        assert rows["cesm-atm"]["dimensions"] == "26 x 1800 x 3600"
        assert rows["hacc"]["dimensions"] == "1 x 280953867"
        assert rows["nyx"]["dimensions"] == "512 x 512 x 512"

    def test_scaled_shape_volumetric(self):
        nyx = get_dataset("nyx")
        assert nyx.scaled_shape(8) == (64, 64, 64)

    def test_scaled_shape_1d_uses_cubed_divisor(self):
        hacc = get_dataset("hacc")
        shape = hacc.scaled_shape(16)
        n = shape[1]
        assert shape[0] == 1
        # 280953867 / 16^3 ~ 68592
        assert abs(n - 280953867 / 16**3) < 2

    def test_scaled_shape_clamps_small_axes(self):
        cesm = get_dataset("cesm-atm")
        shape = cesm.scaled_shape(16)
        assert shape[0] >= 4

    def test_scale_one_is_identity(self):
        nyx = get_dataset("nyx")
        assert nyx.scaled_shape(1) == nyx.full_shape

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            get_dataset("nyx").scaled_shape(0)


class TestLoading:
    def test_load_field_shape_and_dtype(self):
        arr = load_field("nyx", "velocity_x", scale=16)
        assert arr.shape == (32, 32, 32)
        assert arr.dtype == np.float32

    def test_load_field_deterministic(self):
        a = load_field("cesm-atm", "T", scale=32, seed=7)
        b = load_field("cesm-atm", "T", scale=32, seed=7)
        assert np.array_equal(a, b)

    def test_seed_changes_data(self):
        a = load_field("cesm-atm", "T", scale=32, seed=1)
        b = load_field("cesm-atm", "T", scale=32, seed=2)
        assert not np.array_equal(a, b)

    def test_fields_decorrelated(self):
        u = load_field("hurricane-isabel", "U", scale=32).astype(float).ravel()
        v = load_field("hurricane-isabel", "V", scale=32).astype(float).ravel()
        corr = np.corrcoef(u, v)[0, 1]
        assert abs(corr) < 0.5

    def test_unknown_field(self):
        with pytest.raises(KeyError, match="no field"):
            load_field("nyx", "nope")

    def test_hacc_is_1d(self):
        arr = load_field("hacc", "x", scale=32)
        assert arr.ndim == 1

    def test_load_dataset_all_fields(self):
        fields = load_dataset("hurricane-isabel", scale=32)
        assert set(fields) == {"PRECIP", "P", "TC", "U", "V", "W"}
        for arr in fields.values():
            assert arr.ndim == 3

    def test_isabel_dimensions_match_paper(self):
        spec = get_dataset("hurricane-isabel")
        assert spec.full_shape == (100, 500, 500)
        # Paper: six 95 MB fields. 100*500*500*4 B = 100 MB (1e6-MB).
        assert spec.full_field_megabytes == pytest.approx(100.0)
