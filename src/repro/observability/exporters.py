"""Exporters: JSON-lines span dumps, Prometheus text, ASCII summaries.

Three consumers, three formats:

* machines replaying a single run read the **JSON-lines span dump** —
  one span per line, children linked to parents by id, so ``jq`` or a
  trace viewer can rebuild the tree;
* scrapers aggregating across runs read the **Prometheus text
  exposition format** (`# TYPE` comments, ``name{labels} value``
  samples, cumulative histogram buckets);
* humans at a terminal read the **ASCII summary** — a per-stage table
  in the same aligned style as :mod:`repro.workflow.report` with a
  ``#``-bar share column echoing :mod:`repro.workflow.asciiplot`.

All output is deterministic given the same spans/registry (insertion
order for spans, sorted order for metrics), which the golden-format
tests pin down.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterator, List, Sequence

from repro.observability.metrics import Histogram, MetricsRegistry
from repro.observability.tracer import Span

__all__ = [
    "span_records",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "telemetry_to_jsonl",
    "write_telemetry_jsonl",
    "prometheus_text",
    "write_metrics_prom",
    "trace_summary",
]


# ----------------------------------------------------------------------
# JSON-lines span dump
# ----------------------------------------------------------------------

def span_records(spans: Sequence[Span]) -> Iterator[Dict[str, object]]:
    """Flatten span trees into per-span dicts with id/parent links.

    Ids number spans in pre-order across all roots (roots have
    ``parent: null``), so the tree is reconstructible and the dump is
    stable for golden tests.
    """
    next_id = 0

    def emit(span: Span, parent: "int | None") -> Iterator[Dict[str, object]]:
        nonlocal next_id
        span_id = next_id
        next_id += 1
        yield {
            "id": span_id,
            "parent": parent,
            "name": span.name,
            "start_s": round(span.start_s, 9),
            "dur_s": round(span.duration_s, 9),
            "status": span.status,
            "attrs": span.attrs,
        }
        for child in span.children:
            yield from emit(child, span_id)

    for root in spans:
        yield from emit(root, None)


def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """One compact JSON object per line; empty string for no spans."""
    return "".join(
        json.dumps(rec, sort_keys=True, default=str) + "\n"
        for rec in span_records(spans)
    )


def write_spans_jsonl(path: str, spans: Sequence[Span]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(spans_to_jsonl(spans))


# ----------------------------------------------------------------------
# JSON-lines telemetry dump
# ----------------------------------------------------------------------

def telemetry_to_jsonl(records: Sequence[Dict[str, object]]) -> str:
    """One compact JSON object per telemetry sample, publish order.

    Records are the plain dicts a
    :class:`repro.governor.telemetry.TelemetryBus` emits
    (``to_records()`` / drained captures); the format matches the span
    dump so the same tooling consumes both.
    """
    return "".join(
        json.dumps(rec, sort_keys=True, default=str) + "\n" for rec in records
    )


def write_telemetry_jsonl(path: str, records: Sequence[Dict[str, object]]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(telemetry_to_jsonl(records))


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------

def _format_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every metric in the Prometheus text exposition format."""
    lines: List[str] = []
    seen_headers = set()
    for metric in registry.metrics():
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for bound, cumulative in metric.cumulative_counts():
                label_items = metric.labels + (("le", _format_number(bound)),)
                inner = ",".join(f'{k}="{v}"' for k, v in label_items)
                lines.append(f"{metric.name}_bucket{{{inner}}} {cumulative}")
            lines.append(
                f"{metric.name}_sum{metric.label_suffix} "
                f"{_format_number(metric.sum)}"
            )
            lines.append(
                f"{metric.name}_count{metric.label_suffix} {metric.count}"
            )
        else:
            lines.append(
                f"{metric.name}{metric.label_suffix} "
                f"{_format_number(metric.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_prom(path: str, registry: MetricsRegistry) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry))


# ----------------------------------------------------------------------
# ASCII summary table
# ----------------------------------------------------------------------

def _aggregate(spans: Sequence[Span]):
    """Per-name totals over all spans: calls, seconds, bytes, errors."""
    order: List[str] = []
    totals: Dict[str, Dict[str, float]] = {}
    for root in spans:
        for span, _depth in root.walk():
            agg = totals.get(span.name)
            if agg is None:
                order.append(span.name)
                agg = totals[span.name] = {
                    "calls": 0, "seconds": 0.0, "bytes_in": 0.0, "errors": 0,
                }
            agg["calls"] += 1
            agg["seconds"] += span.duration_s
            agg["bytes_in"] += float(span.attrs.get("bytes_in", 0) or 0)
            if span.status != "ok":
                agg["errors"] += 1
    return order, totals


def trace_summary(spans: Sequence[Span], width: int = 24) -> str:
    """Aggregate spans by name into an aligned table with share bars.

    The share column compares each stage against the total time of the
    *root* spans (the run's wall time), so nested stages read as a
    flame-graph profile: bars of children sum to at most their parent's.
    """
    if not spans:
        return "(no spans recorded)"
    order, totals = _aggregate(spans)
    root_seconds = sum(s.duration_s for s in spans) or 1e-12

    rows = []
    for name in sorted(order, key=lambda n: -totals[n]["seconds"]):
        agg = totals[name]
        share = min(agg["seconds"] / root_seconds, 1.0)
        bar = "#" * max(int(round(share * width)), 1 if agg["seconds"] else 0)
        rows.append(
            (
                name,
                str(int(agg["calls"])),
                f"{agg['seconds']:.4f}",
                f"{agg['bytes_in'] / 1e6:.1f}",
                str(int(agg["errors"])),
                f"{bar} {share:5.1%}",
            )
        )
    header = ("span", "calls", "total_s", "mb_in", "errors", "share_of_run")
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    lines = ["trace summary"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
