"""Coordinator side of the fleet: the :class:`DistributedExecutor`.

The executor conforms to the :class:`repro.parallel.Executor` contract
— ``map``/``map_timed``/``map_retry`` with submission-order results and
fail-fast cancellation — but fans work out to independent worker
*processes* over TCP instead of a ``concurrent.futures`` pool:

* Items are partitioned by :func:`repro.distributed.shards.plan_shards`
  into deterministic shards whose identity never depends on the fleet
  size.
* Shards are pushed to idle workers over the length-prefixed JSON+CRC
  wire protocol; the map function ships once per worker per map.
* Liveness is heartbeat-based with EOF fast-path: a SIGKILLed worker's
  connection drops immediately, a hung one trips the heartbeat
  timeout. Either way its in-flight shards go back to the head of the
  queue and are reassigned (``repro_dist_reassignments_total``).
* Result commit is **at-most-once** per shard: a worker presumed dead
  that still delivers is counted as a duplicate and ignored, so a
  reassigned shard can never produce two different results — the map's
  output is byte-identical to a serial run no matter how many workers
  died on the way.
* Worker-level faults reuse the resilience layer's
  :class:`~repro.resilience.policies.RetryPolicy` for deterministic
  respawn backoff, and a per-shard kill budget turns a poison shard
  (one that keeps killing its workers) into a clean
  :class:`WorkerLostError` instead of an infinite respawn loop.

The default fleet is self-spawned: ``python -m repro.distributed.worker``
children of this process, connected over loopback. Set ``listen`` (or
``REPRO_DIST_LISTEN``) to bind a fixed address and attach an external
fleet launched with ``repro-tool workers``.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.distributed.shards import Shard, ShardPlan, plan_shards
from repro.distributed.wire import (
    WireError,
    pack_blob,
    recv_frame,
    send_frame,
    unpack_blob,
)
from repro.observability.metrics import get_registry
from repro.observability.tracer import get_tracer
from repro.parallel.executor import Executor, default_workers

__all__ = ["DistributedExecutor", "WorkerLostError", "FleetError"]


class FleetError(RuntimeError):
    """The fleet could not be assembled or has been torn down."""


class WorkerLostError(RuntimeError):
    """A shard exhausted its kill budget; its result is unobtainable."""


def _counter(name: str, help: str, **labels: str):
    return get_registry().counter(
        name, labels=labels or None, help=help
    )


class _WorkerHandle:
    """One connected worker: socket, liveness clock, assignment slot."""

    def __init__(self, worker_id: int, conn: socket.socket, pid: int,
                 proc: Optional[subprocess.Popen]) -> None:
        self.worker_id = worker_id
        self.conn = conn
        self.pid = pid
        self.proc = proc
        self.alive = True
        self.last_seen = time.monotonic()
        self.busy_shard: Optional[Shard] = None
        self.assigned_at = 0.0
        self.seen_map_id: Optional[str] = None
        self.send_lock = threading.Lock()

    def send(self, doc: Any) -> int:
        with self.send_lock:
            return send_frame(self.conn, doc)


class _MapState:
    """Book-keeping for one in-progress distributed map."""

    def __init__(self, map_id: str, fn_blob: str, items: Sequence[Any],
                 plan: ShardPlan) -> None:
        self.map_id = map_id
        self.fn_blob = fn_blob
        self.items = list(items)
        self.plan = plan
        self.pending = deque(plan.shards)
        self.inflight: Dict[int, int] = {}  # shard index -> worker id
        self.assigned_at: Dict[int, float] = {}
        self.results: Dict[int, List[Any]] = {}
        self.failures: Dict[int, BaseException] = {}
        self.kills: Dict[int, int] = {}

    @property
    def done(self) -> bool:
        if len(self.results) == len(self.plan.shards):
            return True
        return bool(self.failures) and not self.pending and not self.inflight


class DistributedExecutor(Executor):
    """Socket-based multi-process fleet behind the Executor contract.

    Parameters mirror the pool backends where they overlap; the rest
    tune fleet behaviour:

    *workers* — fleet size (spawned, or awaited when external).
    *spawn* — launch local worker processes (default); ``False`` waits
    for external workers on *listen*.
    *listen* — ``"host:port"`` to bind (default loopback, ephemeral
    port; ``REPRO_DIST_LISTEN`` overrides and implies external mode).
    *max_shard_items* — shard granularity (default 1: every item is
    independently reassignable).
    *heartbeat_s* / *heartbeat_timeout_s* — liveness cadence and the
    silence span after which a worker is declared dead.
    *shard_kill_budget* — worker deaths one shard may cause before the
    map fails with :class:`WorkerLostError`.
    *respawn_policy* — resilience :class:`RetryPolicy` shaping the
    deterministic backoff between worker respawns.
    *cache_dir* — shared on-disk result-cache directory for the fleet;
    the default ``"auto"`` forwards the process cache's disk tier.
    *chaos_kill_after* — fault-injection hook: SIGKILL one busy worker
    after this many shard commits (once per executor). This is the
    chaos-test discipline of :mod:`repro.resilience` applied to the
    fleet itself; production callers leave it ``None``.
    """

    name = "distributed"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        spawn: Optional[bool] = None,
        listen: Optional[str] = None,
        max_shard_items: int = 1,
        heartbeat_s: float = 0.5,
        heartbeat_timeout_s: float = 10.0,
        shard_kill_budget: int = 3,
        respawn_policy: Optional[Any] = None,
        max_respawns: Optional[int] = None,
        cache_dir: Optional[str] = "auto",
        chaos_kill_after: Optional[int] = None,
        seed: int = 0,
        spawn_timeout_s: float = 60.0,
    ) -> None:
        super().__init__(workers if workers is not None else default_workers())
        env_listen = os.environ.get("REPRO_DIST_LISTEN")
        if listen is None and env_listen:
            listen = env_listen
            if spawn is None:
                spawn = False
        self.spawn = True if spawn is None else bool(spawn)
        self.listen = listen
        if max_shard_items < 1:
            raise ValueError(
                f"max_shard_items must be >= 1, got {max_shard_items}"
            )
        if heartbeat_s <= 0 or heartbeat_timeout_s <= heartbeat_s:
            raise ValueError(
                "need 0 < heartbeat_s < heartbeat_timeout_s, got "
                f"{heartbeat_s}/{heartbeat_timeout_s}"
            )
        if shard_kill_budget < 1:
            raise ValueError(
                f"shard_kill_budget must be >= 1, got {shard_kill_budget}"
            )
        self.max_shard_items = int(max_shard_items)
        self.heartbeat_s = float(heartbeat_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.shard_kill_budget = int(shard_kill_budget)
        if respawn_policy is None:
            from repro.resilience.policies import RetryPolicy

            respawn_policy = RetryPolicy(
                max_attempts=3, backoff_base_s=0.05, backoff_cap_s=2.0,
                jitter=0.1,
            )
        self.respawn_policy = respawn_policy
        self.max_respawns = (
            2 * self.workers if max_respawns is None else int(max_respawns)
        )
        self.cache_dir = cache_dir
        self.chaos_kill_after = chaos_kill_after
        self.seed = int(seed)
        self.spawn_timeout_s = float(spawn_timeout_s)

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._map_serial = 0
        self._map_gate = threading.Lock()  # one map at a time
        self._state: Optional[_MapState] = None
        self._workers: Dict[int, _WorkerHandle] = {}
        self._next_worker_id = 0
        self._respawns = 0
        self._respawn_due = 0.0
        self._respawning = False
        self._chaos_done = False
        self._closed = False
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._spawned_procs: List[subprocess.Popen] = []
        #: (shard_index, attempt) log of every reassignment this
        #: executor performed — chaos tests reconcile this against the
        #: ``repro_dist_reassignments_total`` counter.
        self.reassignment_log: List[Tuple[int, int]] = []
        self.duplicate_results = 0
        #: Telemetry samples shipped by workers (``telemetry`` frames),
        #: in arrival order, each annotated with the worker pid. Drained
        #: by :meth:`drain_telemetry`.
        self.telemetry: List[dict] = []
        #: (controller, cpu, power_curve) once attach_powercap() wires a
        #: ClusterCapController over the fleet; None = uncapped.
        self._powercap: Optional[Tuple[Any, Any, Any]] = None

    # -- fleet assembly ------------------------------------------------

    def _resolved_cache_dir(self) -> Optional[str]:
        if self.cache_dir != "auto":
            return self.cache_dir
        from repro.cache import get_cache

        cache = get_cache()
        return cache.disk_directory if cache.enabled else None

    def _bind(self) -> None:
        if self._listener is not None:
            return
        if self._closed:
            raise FleetError("executor is closed")
        host, port = "127.0.0.1", 0
        if self.listen:
            addr, sep, port_s = self.listen.rpartition(":")
            if not sep or not port_s.isdigit():
                raise ValueError(
                    f"listen address must be HOST:PORT, got {self.listen!r}"
                )
            host, port = addr, int(port_s)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(max(8, 2 * self.workers))
        listener.settimeout(0.2)
        self._listener = listener
        for target, name in (
            (self._accept_loop, "repro-dist-accept"),
            (self._monitor_loop, "repro-dist-monitor"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` workers connect to."""
        self._bind()
        return self._listener.getsockname()[:2]

    def _spawn_worker(self) -> subprocess.Popen:
        host, port = self.address
        cmd = [
            sys.executable, "-m", "repro.distributed.worker",
            "--connect", f"{host}:{port}",
            "--heartbeat", str(self.heartbeat_s),
        ]
        shared = self._resolved_cache_dir()
        if shared:
            cmd += ["--cache-dir", shared]
        env = dict(os.environ)
        # A spawned worker starts from a bare interpreter, so it must
        # re-import every module the pickled task graph references —
        # including this build of repro and (in tests) the module that
        # defines the task function. Propagating the parent's sys.path
        # gives the worker the same import environment fork would have
        # given a process pool. __main__-defined functions remain
        # unpicklable, exactly as under a spawn-method process pool.
        inherit = [p for p in sys.path if p]
        env["PYTHONPATH"] = os.pathsep.join(
            dict.fromkeys(p for p in (*inherit, env.get("PYTHONPATH")) if p)
        )
        proc = subprocess.Popen(cmd, env=env)
        with self._lock:
            self._spawned_procs.append(proc)
        _counter(
            "repro_dist_workers_spawned_total",
            "Worker processes launched by distributed executors",
        ).inc()
        return proc

    def _ensure_fleet(self) -> None:
        with self._lock:
            if self._closed:
                raise FleetError("executor is closed")
            self._bind()
            live = sum(1 for w in self._workers.values() if w.alive)
            to_spawn = self.workers - live if self.spawn else 0
            for _ in range(max(0, to_spawn)):
                self._spawn_worker()
            want = self.workers if self.spawn else 1
        deadline = time.monotonic() + self.spawn_timeout_s
        with self._cond:
            while True:
                live = sum(1 for w in self._workers.values() if w.alive)
                if live >= want:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise FleetError(
                        f"only {live}/{want} workers joined within "
                        f"{self.spawn_timeout_s:.0f}s"
                        + ("" if self.spawn else
                           " (external mode: start a fleet with "
                           "'repro-tool workers')")
                    )
                self._cond.wait(min(remaining, 0.2))

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._admit, args=(conn,),
                name="repro-dist-admit", daemon=True,
            ).start()

    def _admit(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(self.spawn_timeout_s)
            hello = recv_frame(conn)
            if not isinstance(hello, dict) or hello.get("type") != "hello":
                conn.close()
                return
            conn.settimeout(None)
        except (WireError, OSError):
            try:
                conn.close()
            except OSError:
                pass
            return
        with self._cond:
            if self._closed:
                conn.close()
                return
            worker_id = self._next_worker_id
            self._next_worker_id += 1
            pid = int(hello.get("pid", -1))
            proc = next(
                (p for p in self._spawned_procs if p.pid == pid), None
            )
            handle = _WorkerHandle(worker_id, conn, pid, proc=proc)
            self._workers[worker_id] = handle
            self._cond.notify_all()
        thread = threading.Thread(
            target=self._reader_loop, args=(handle,),
            name=f"repro-dist-reader-{worker_id}", daemon=True,
        )
        thread.start()
        with self._lock:
            self._threads.append(thread)
            self._pump_locked()
        self._sync_powercap("join")

    # -- per-worker reader ---------------------------------------------

    def _reader_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                msg = recv_frame(handle.conn)
            except (WireError, OSError) as exc:
                self._on_worker_dead(handle, f"connection error: {exc}")
                return
            if msg is None:
                self._on_worker_dead(handle, "connection closed")
                return
            kind = msg.get("type")
            if kind == "heartbeat":
                with self._lock:
                    handle.last_seen = time.monotonic()
            elif kind == "result":
                self._commit_result(handle, msg)
            elif kind == "task_error":
                self._commit_failure(handle, msg)
            elif kind == "telemetry":
                self._commit_telemetry(handle, msg)

    def _commit_telemetry(self, handle: _WorkerHandle, msg: dict) -> None:
        """Aggregate a worker's per-phase telemetry frame.

        Telemetry is observational, not transactional: frames from
        reassigned shards are kept (each is tagged with its worker pid
        and shard index), because duplicate power samples are still
        real power draw — deduplication is the consumer's call.
        """
        samples = msg.get("samples") or []
        with self._lock:
            handle.last_seen = time.monotonic()
            for sample in samples:
                record = dict(sample)
                record["worker_pid"] = handle.pid
                record["shard_index"] = int(msg.get("shard_index", -1))
                record["source"] = "distributed"
                self.telemetry.append(record)
        _counter(
            "repro_dist_telemetry_frames_total",
            "Telemetry frames shipped by fleet workers",
        ).inc()

    def drain_telemetry(self) -> List[dict]:
        """Return and clear the aggregated fleet telemetry records."""
        with self._lock:
            records, self.telemetry = self.telemetry, []
        return records

    def _commit_result(self, handle: _WorkerHandle, msg: dict) -> None:
        t_done = time.monotonic()
        results = unpack_blob(msg["results"])
        chaos_victim = None
        with self._cond:
            handle.last_seen = t_done
            state = self._state
            index = int(msg["shard_index"])
            if state is None or msg.get("map_id") != state.map_id \
                    or index in state.results:
                # Late delivery from a worker we already presumed dead
                # (or from a previous map): at-most-once commit drops it.
                self.duplicate_results += 1
                _counter(
                    "repro_dist_duplicate_results_total",
                    "Shard results dropped by at-most-once commit",
                ).inc()
                if handle.busy_shard is not None \
                        and handle.busy_shard.index == index:
                    handle.busy_shard = None
                self._pump_locked()
                return
            state.results[index] = results
            state.inflight.pop(index, None)
            assigned_at = state.assigned_at.pop(index, t_done)
            handle.busy_shard = None
            _counter(
                "repro_dist_shards_total",
                "Shards committed by distributed maps",
            ).inc()
            get_tracer().record_span(
                "dist.shard", t_done - assigned_at,
                shard=index, worker=handle.pid,
                items=len(results),
                attempt=state.kills.get(index, 0) + 1,
            )
            if (
                self.chaos_kill_after is not None
                and not self._chaos_done
                and len(state.results) >= self.chaos_kill_after
            ):
                chaos_victim = self._pick_chaos_victim_locked()
                if chaos_victim is not None:
                    self._chaos_done = True
                    # Declare the victim dead under this same lock hold
                    # so a result it already put on the wire cannot
                    # commit before the reassignment happens — the kill
                    # is then deterministic: a busy victim always costs
                    # exactly one reassignment.
                    self._on_worker_dead(
                        chaos_victim, "chaos kill (fault injection)"
                    )
            self._pump_locked()
            self._cond.notify_all()
        if chaos_victim is not None:
            self._sigkill(chaos_victim)

    def _commit_failure(self, handle: _WorkerHandle, msg: dict) -> None:
        exc = unpack_blob(msg["error"])
        with self._cond:
            handle.last_seen = time.monotonic()
            state = self._state
            index = int(msg["shard_index"])
            if state is None or msg.get("map_id") != state.map_id:
                handle.busy_shard = None
                return
            state.failures[int(msg["item_index"])] = exc
            state.inflight.pop(index, None)
            state.assigned_at.pop(index, None)
            handle.busy_shard = None
            # Fail fast: everything not yet started is cancelled; the
            # in-flight shards run out so the earliest failure wins.
            state.pending.clear()
            self._pump_locked()
            self._cond.notify_all()

    # -- liveness ------------------------------------------------------

    def _on_worker_dead(self, handle: _WorkerHandle, reason: str) -> None:
        with self._cond:
            if not handle.alive:
                return
            handle.alive = False
            try:
                handle.conn.close()
            except OSError:
                pass
            shard = handle.busy_shard
            handle.busy_shard = None
            state = self._state
            if shard is not None and state is not None \
                    and shard.index not in state.results:
                state.inflight.pop(shard.index, None)
                state.assigned_at.pop(shard.index, None)
                kills = state.kills.get(shard.index, 0) + 1
                state.kills[shard.index] = kills
                if state.failures:
                    # The map is already failing fast; a dead worker's
                    # shard is cancelled work, not a reassignment.
                    pass
                elif kills > self.shard_kill_budget:
                    state.failures[shard.item_indices[0]] = WorkerLostError(
                        f"shard {shard.index} caused {kills} worker deaths "
                        f"(budget {self.shard_kill_budget}); last: {reason}"
                    )
                    state.pending.clear()
                else:
                    state.pending.appendleft(shard)
                    self.reassignment_log.append((shard.index, kills))
                    _counter(
                        "repro_dist_reassignments_total",
                        "In-flight shards requeued after a worker died",
                    ).inc()
            if self.spawn and state is not None and not state.done \
                    and self._respawns < self.max_respawns:
                self._respawns += 1
                self._respawn_due = time.monotonic() + \
                    self.respawn_policy.backoff_s(
                        min(self._respawns, self.respawn_policy.max_attempts),
                        self.seed, 0,
                    )
            self._pump_locked()
            self._cond.notify_all()
        # A dead node's watts redistribute on the leave epoch; the
        # survivors get their raised caps broadcast right away.
        self._sync_powercap("leave")

    def _monitor_loop(self) -> None:
        while not self._closed:
            time.sleep(self.heartbeat_s / 2.0)
            dead: List[Tuple[_WorkerHandle, str]] = []
            spawn_now = 0
            with self._lock:
                now = time.monotonic()
                for handle in self._workers.values():
                    if not handle.alive:
                        continue
                    silent = now - handle.last_seen
                    if silent > self.heartbeat_timeout_s:
                        _counter(
                            "repro_dist_heartbeats_missed_total",
                            "Workers declared dead after heartbeat silence",
                        ).inc()
                        dead.append((
                            handle,
                            f"no heartbeat for {silent:.1f}s "
                            f"(timeout {self.heartbeat_timeout_s:g}s)",
                        ))
                    elif handle.proc is not None \
                            and handle.proc.poll() is not None:
                        dead.append((
                            handle,
                            f"process exited with {handle.proc.returncode}",
                        ))
                due = (
                    self._respawn_due and now >= self._respawn_due
                    and self._state is not None and not self._state.done
                )
                if due:
                    self._respawn_due = 0.0
                    live = sum(1 for w in self._workers.values() if w.alive)
                    spawn_now = max(0, self.workers - live)
                    if spawn_now:
                        # Holds off _wait_locked's all-dead check until
                        # the replacement processes are on the books.
                        self._respawning = True
            for handle, reason in dead:
                self._on_worker_dead(handle, reason)
            if spawn_now:
                for _ in range(spawn_now):
                    self._spawn_worker()
                with self._cond:
                    self._respawning = False
                    self._cond.notify_all()

    def _pick_chaos_victim_locked(self) -> Optional[_WorkerHandle]:
        busy = [w for w in self._workers.values()
                if w.alive and w.busy_shard is not None and w.pid > 0]
        idle = [w for w in self._workers.values() if w.alive and w.pid > 0]
        victims = busy or idle
        return min(victims, key=lambda w: w.worker_id) if victims else None

    @staticmethod
    def _sigkill(handle: _WorkerHandle) -> None:
        import signal

        try:
            os.kill(handle.pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):  # pragma: no cover - racy exit
            pass

    # -- dispatch ------------------------------------------------------

    def _pump_locked(self) -> None:
        """Assign pending shards to idle workers (lock already held)."""
        state = self._state
        if state is None:
            return
        for handle in sorted(self._workers.values(),
                             key=lambda w: w.worker_id):
            if not state.pending:
                return
            if not handle.alive or handle.busy_shard is not None:
                continue
            shard = state.pending.popleft()
            handle.busy_shard = shard
            handle.assigned_at = time.monotonic()
            state.inflight[shard.index] = handle.worker_id
            state.assigned_at[shard.index] = handle.assigned_at
            msg = {
                "type": "task",
                "map_id": state.map_id,
                "shard_index": shard.index,
                "shard_id": shard.shard_id,
                "item_indices": list(shard.item_indices),
                "items": pack_blob(
                    [state.items[i] for i in shard.item_indices]
                ),
            }
            if handle.seen_map_id != state.map_id:
                msg["fn"] = state.fn_blob
                handle.seen_map_id = state.map_id
            threading.Thread(
                target=self._send_task, args=(handle, msg),
                name="repro-dist-send", daemon=True,
            ).start()

    def _send_task(self, handle: _WorkerHandle, msg: dict) -> None:
        t0 = time.monotonic()
        try:
            nbytes = handle.send(msg)
        except OSError as exc:
            self._on_worker_dead(handle, f"send failed: {exc}")
            return
        get_tracer().record_span(
            "dist.rpc", time.monotonic() - t0,
            op="task", shard=msg["shard_index"], worker=handle.pid,
            nbytes=nbytes,
        )

    # -- power capping -------------------------------------------------

    def attach_powercap(self, controller, cpu, power_curve) -> None:
        """Wire a :class:`~repro.powercap.ClusterCapController` over
        the fleet.

        Every live worker joins the controller as a node (id
        ``worker-<id>``); later joins and deaths trigger allocation
        epochs, and each epoch's personalized cap goes out as a
        ``powercap`` wire frame. The frames are observational — shard
        results stay a pure function of the shard inputs (a campaign's
        watt budget travels inside its :class:`CampaignPoint`), which
        is what keeps distributed maps byte-identical to serial runs.
        A dead worker's watts redistribute on its leave epoch.
        """
        with self._lock:
            self._powercap = (controller, cpu, power_curve)
        self._sync_powercap("attach")

    def powercap_controller(self):
        """The attached controller, or None when uncapped."""
        attached = self._powercap
        return None if attached is None else attached[0]

    def _sync_powercap(self, event: str) -> None:
        """Reconcile fleet membership with the controller + broadcast."""
        attached = self._powercap
        if attached is None:
            return
        controller, cpu, power_curve = attached
        with self._lock:
            live = {
                f"worker-{w.worker_id}": w
                for w in self._workers.values()
                if w.alive
            }
        known = set(controller.node_ids())
        for node_id in sorted(set(live) - known):
            controller.join(node_id, cpu, power_curve)
        for node_id in sorted(known - set(live)):
            try:
                controller.leave(node_id)
            except KeyError:  # pragma: no cover - concurrent reconcile
                pass
        caps = controller.caps()
        epoch = controller.epoch
        for node_id, handle in sorted(live.items()):
            cap = caps.get(node_id)
            if cap is None:
                continue
            try:
                handle.send({
                    "type": "powercap",
                    "node_id": node_id,
                    "cap_w": cap.cap_w,
                    "cap_ghz": cap.cap_ghz,
                    "infeasible": cap.infeasible,
                    "epoch": epoch,
                })
            except OSError:
                continue
            _counter(
                "repro_dist_powercap_frames_total",
                "Power-cap frames broadcast to fleet workers",
                event=event,
            ).inc()

    # -- Executor contract ---------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        try:
            fn_blob = pack_blob(fn)
        except Exception as exc:
            raise TypeError(
                f"distributed maps require a picklable task function: {exc}"
            ) from exc
        with self._map_gate:
            self._ensure_fleet()
            try:
                with self._cond:
                    self._map_serial += 1
                    state = _MapState(
                        map_id=f"map-{os.getpid()}-{self._map_serial}",
                        fn_blob=fn_blob,
                        items=items,
                        plan=plan_shards(
                            len(items), self.max_shard_items, self.seed
                        ),
                    )
                    self._state = state
                    with get_tracer().span(
                        "dist.map", items=len(items),
                        shards=len(state.plan.shards), workers=self.workers,
                    ):
                        self._pump_locked()
                        self._wait_locked(state)
                if state.failures:
                    raise state.failures[min(state.failures)]
                out: List[Any] = [None] * len(items)
                for shard in state.plan.shards:
                    shard_results = state.results[shard.index]
                    for i, value in zip(shard.item_indices, shard_results):
                        out[i] = value
                return out
            finally:
                with self._lock:
                    self._state = None

    def _wait_locked(self, state: _MapState) -> None:
        while not state.done:
            if self._closed:
                raise FleetError("executor closed during a map")
            live = sum(1 for w in self._workers.values() if w.alive)
            if live == 0 and (state.pending or state.inflight):
                admitted = {w.pid for w in self._workers.values()}
                joining = any(
                    p.poll() is None and p.pid not in admitted
                    for p in self._spawned_procs
                )
                can_respawn = (
                    joining or self._respawning or self._respawn_due > 0.0
                )
                if not can_respawn:
                    raise WorkerLostError(
                        "all workers died with no respawn scheduled "
                        f"(budget {self._respawns}/{self.max_respawns} used) "
                        f"and {len(state.pending) + len(state.inflight)} "
                        "shards outstanding"
                    )
            self._cond.wait(0.1)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            listener = self._listener
        for handle in workers:
            if handle.alive:
                try:
                    handle.send({"type": "shutdown"})
                except OSError:
                    pass
            try:
                handle.conn.close()
            except OSError:
                pass
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        for handle in workers:
            if handle.proc is not None:
                try:
                    handle.proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    handle.proc.kill()
                    handle.proc.wait()
        # Reap self-spawned processes not yet associated with a handle.
        for proc in getattr(self, "_spawned_procs", []):
            if proc.poll() is None:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        with self._cond:
            self._cond.notify_all()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- introspection -------------------------------------------------

    def worker_pids(self) -> Tuple[int, ...]:
        """PIDs of the currently-live workers (chaos tests kill these)."""
        with self._lock:
            return tuple(
                w.pid for w in self._workers.values() if w.alive and w.pid > 0
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedExecutor(workers={self.workers}, "
            f"spawn={self.spawn}, shard_items={self.max_shard_items})"
        )
