"""Chunked compression: bounded-memory processing of huge arrays.

The paper's 512 GB experiment concatenates NYX snapshots; a real tool
cannot hold that in RAM. :class:`ChunkedCompressor` wraps any registered
codec and streams an array through it in slabs along axis 0, producing
an independent :class:`~repro.compressors.base.CompressedBuffer` per
slab inside a simple container. Each slab honours the same absolute
error bound, so the container does too.

Slab independence buys random access (decode one slab without the rest)
and parallelism: slabs are submitted through a
:class:`~repro.parallel.Executor` (serial, thread-pool or process-pool,
auto-selected from slab count and codec cost), with results collected
in slab order so the container — and its serialized bytes — are
identical no matter which backend ran. Per-slab timing is recorded on
``last_stats`` for pipeline reports and scaling benchmarks.
"""

from __future__ import annotations

import struct
import time
import zlib
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.compressors.base import (
    CompressedBuffer,
    Compressor,
    CorruptStreamError,
    get_compressor,
)
from repro.compressors import kernels
from repro.observability import get_registry, get_tracer
from repro.parallel import (
    CODEC_COST,
    Executor,
    ParallelStats,
    TaskStat,
    resolve_executor,
)
from repro.utils.validation import as_float_array, check_positive

__all__ = ["ChunkedBuffer", "ChunkedCompressor", "CorruptChunkError"]

_MAGIC = b"RPCK"
#: magic + ndim byte + chunk-count u32; the shape table adds 8 bytes/dim.
_FIXED_HEADER_BYTES = len(_MAGIC) + 1 + 4
#: u64 length prefix + u32 CRC-32 in front of every chunk body. The
#: checksum is what turns a bit flip in a stored container from a
#: silently-wrong array into a :class:`CorruptChunkError`.
_CHUNK_PREFIX_BYTES = 8 + 4


class CorruptChunkError(CorruptStreamError):
    """A chunk body failed its CRC-32 integrity check.

    ``chunk_index`` names the damaged slab so recovery can recompress
    just that slab instead of the whole container.
    """

    def __init__(self, chunk_index: int, message: str):
        super().__init__(message)
        self.chunk_index = int(chunk_index)


@dataclass(frozen=True)
class ChunkedBuffer:
    """Container of per-slab compressed buffers."""

    chunks: Tuple[CompressedBuffer, ...]
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Serialized size, computed arithmetically (no serialization)."""
        return (
            _FIXED_HEADER_BYTES
            + 8 * len(self.shape)
            + sum(_CHUNK_PREFIX_BYTES + c.nbytes for c in self.chunks)
        )

    @property
    def original_nbytes(self) -> int:
        return sum(c.original_nbytes for c in self.chunks)

    @property
    def ratio(self) -> float:
        return self.original_nbytes / max(self.nbytes, 1)

    def to_bytes(self) -> bytes:
        """Container layout: magic, ndim+shape, chunk count, then
        length-and-CRC-prefixed chunk buffers."""
        parts = [
            _MAGIC,
            struct.pack("<B", len(self.shape)),
            struct.pack(f"<{len(self.shape)}q", *self.shape),
            struct.pack("<I", len(self.chunks)),
        ]
        for chunk in self.chunks:
            blob = chunk.to_bytes()
            parts.append(struct.pack("<QI", len(blob), zlib.crc32(blob)))
            parts.append(blob)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ChunkedBuffer":
        if data[:4] != _MAGIC:
            raise CorruptStreamError("bad chunked-container magic")
        off = 4
        try:
            (ndim,) = struct.unpack_from("<B", data, off)
            off += 1
            shape = struct.unpack_from(f"<{ndim}q", data, off)
            off += 8 * ndim
            (count,) = struct.unpack_from("<I", data, off)
            off += 4
        except struct.error as exc:
            raise CorruptStreamError(f"container truncated in header: {exc}") from exc
        if ndim == 0:
            raise CorruptStreamError("container declares a 0-dimensional shape")
        if any(s <= 0 for s in shape):
            raise CorruptStreamError(f"container shape {tuple(shape)} is not positive")
        if count == 0:
            raise CorruptStreamError("container declares zero chunks")
        if count * _CHUNK_PREFIX_BYTES > len(data) - off:
            raise CorruptStreamError(
                f"chunk count {count} exceeds what {len(data)} bytes can hold"
            )
        chunks: List[CompressedBuffer] = []
        for index in range(count):
            if off + _CHUNK_PREFIX_BYTES > len(data):
                raise CorruptStreamError("container truncated in chunk table")
            size, crc = struct.unpack_from("<QI", data, off)
            off += _CHUNK_PREFIX_BYTES
            if off + size > len(data):
                raise CorruptStreamError("container truncated in chunk body")
            body = data[off : off + size]
            actual = zlib.crc32(body)
            if actual != crc:
                raise CorruptChunkError(
                    index,
                    f"chunk {index} checksum mismatch "
                    f"(stored {crc:#010x}, computed {actual:#010x})",
                )
            chunks.append(CompressedBuffer.from_bytes(body))
            off += size
        return cls(chunks=tuple(chunks), shape=tuple(int(s) for s in shape))


def _compress_slab(codec: Compressor, error_bound: float, slab: np.ndarray):
    """Module-level so process-pool workers can pickle the task."""
    return codec.compress(slab, error_bound)


def _decompress_chunk(codec: Compressor, chunk: CompressedBuffer):
    return codec.decompress(chunk)


class ChunkedCompressor:
    """Stream arrays through a codec in bounded-memory slabs.

    Parameters
    ----------
    codec:
        Registered codec name or instance; every slab runs through it.
    max_chunk_bytes:
        Upper bound on the uncompressed bytes per slab.
    executor:
        ``"serial"``, ``"thread"``, ``"process"``, ``"auto"`` (selection
        by slab count and codec cost) or a ready
        :class:`~repro.parallel.Executor` instance (not closed by us, so
        one pool can serve many calls).
    workers:
        Worker count for pool backends; ``None`` uses the CPU count.
    retries:
        Per-slab retry budget. With ``retries > 0`` a crashed slab is
        re-run (fail-fast cancellation becomes retry-failed-slab via
        :meth:`repro.parallel.Executor.map_timed_retry`) instead of
        aborting the whole map; the retried indices land on
        ``last_stats.retried_tasks``.
    slab_wrapper:
        Optional fault-injection hook (see
        :class:`repro.resilience.CrashingSlabWrapper`): a callable
        ``wrapper(fn) -> fn'`` where ``fn'`` receives ``(index, slab)``
        instead of ``slab``. Installed by the resilience engine; must be
        picklable for the process backend.
    """

    def __init__(
        self,
        codec: "Compressor | str" = "sz",
        max_chunk_bytes: int = 1 << 26,
        executor: "Executor | str" = "auto",
        workers: Optional[int] = None,
        retries: int = 0,
        slab_wrapper: Optional[Callable] = None,
    ):
        check_positive(max_chunk_bytes, "max_chunk_bytes")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.codec = get_compressor(codec) if isinstance(codec, str) else codec
        self.max_chunk_bytes = int(max_chunk_bytes)
        self.executor = executor
        self.workers = workers
        self.retries = int(retries)
        self.slab_wrapper = slab_wrapper
        #: Timing of the most recent compress/decompress call.
        self.last_stats: Optional[ParallelStats] = None

    def _slabs(self, arr: np.ndarray) -> Iterator[np.ndarray]:
        row_bytes = arr.nbytes // arr.shape[0] if arr.shape[0] else arr.nbytes
        rows = max(1, self.max_chunk_bytes // max(row_bytes, 1))
        for lo in range(0, arr.shape[0], rows):
            yield arr[lo : lo + rows]

    def _run(self, op, fn, items, bytes_in, bytes_out_of):
        """Map *fn* over *items* through the configured executor and
        record a :class:`ParallelStats` on ``last_stats``.

        The map runs inside a ``chunk.<op>`` span with one
        ``chunk.slab`` child per task; slab-time and byte totals land
        in the process metrics registry.
        """
        executor, owned = resolve_executor(
            self.executor,
            self.workers,
            n_tasks=len(items),
            task_nbytes=max(bytes_in) if bytes_in else 0,
            codec_cost=CODEC_COST.get(self.codec.name, 4.0),
        )
        if self.slab_wrapper is not None:
            # The wrapper targets slabs by index, so feed it (i, item).
            fn = self.slab_wrapper(fn)
            items = list(enumerate(items))
        retried: Tuple[int, ...] = ()
        tracer = get_tracer()
        with tracer.span(
            f"chunk.{op}",
            codec=self.codec.name,
            slabs=len(items),
            bytes_in=sum(bytes_in),
            kernels=kernels.active_backend(),
        ) as sp:
            t0 = time.perf_counter()
            try:
                if self.retries > 0:
                    results, times, retried = executor.map_timed_retry(
                        fn, items, retries=self.retries
                    )
                else:
                    results, times = executor.map_timed(fn, items)
            finally:
                if owned:
                    executor.close()
            wall = time.perf_counter() - t0
            self.last_stats = ParallelStats(
                executor=executor.name,
                workers=executor.workers,
                wall_s=wall,
                tasks=tuple(
                    TaskStat(
                        index=i,
                        wall_s=times[i],
                        bytes_in=bytes_in[i],
                        bytes_out=bytes_out_of(results[i]),
                    )
                    for i in range(len(results))
                ),
                retried_tasks=retried,
            )
            self.last_stats.record_spans(tracer, name="chunk.slab")
            sp.set(
                executor=executor.name,
                workers=executor.workers,
                concurrency=self.last_stats.concurrency,
            )
        registry = get_registry()
        labels = {"codec": self.codec.name, "op": op}
        registry.counter(
            "repro_chunk_slabs_total", labels,
            help="slabs processed by ChunkedCompressor",
        ).inc(len(items))
        registry.counter(
            "repro_chunk_bytes_in_total", labels,
            help="bytes fed to ChunkedCompressor slab maps",
        ).inc(sum(bytes_in))
        slab_seconds = registry.histogram(
            "repro_chunk_slab_seconds", labels=labels,
            help="per-slab in-worker wall time",
        )
        for t in times:
            slab_seconds.observe(t)
        if retried:
            registry.counter(
                "repro_chunk_slab_retries_total", labels,
                help="slabs re-run after a worker failure",
            ).inc(len(retried))
        return results

    def compress(self, data, error_bound: float) -> ChunkedBuffer:
        """Compress slab by slab; each slab satisfies the bound.

        Slabs run through the configured executor; chunk order (and
        therefore the serialized container) matches the serial path
        byte for byte.
        """
        arr = as_float_array(data, "data")
        slabs = list(self._slabs(arr))
        chunks = self._run(
            "compress",
            partial(_compress_slab, self.codec, float(error_bound)),
            slabs,
            bytes_in=[s.nbytes for s in slabs],
            bytes_out_of=lambda c: c.nbytes,
        )
        return ChunkedBuffer(chunks=tuple(chunks), shape=arr.shape)

    def decompress(self, container: ChunkedBuffer) -> np.ndarray:
        """Reassemble the full array from its slabs."""
        if not container.chunks:
            raise CorruptStreamError("container holds no chunks")
        parts = self._run(
            "decompress",
            partial(_decompress_chunk, self.codec),
            list(container.chunks),
            bytes_in=[c.nbytes for c in container.chunks],
            bytes_out_of=lambda a: a.nbytes,
        )
        out = np.concatenate(parts, axis=0)
        if out.shape != container.shape:
            raise CorruptStreamError(
                f"reassembled shape {out.shape} != container shape {container.shape}"
            )
        return out

    def decompress_chunk(self, container: ChunkedBuffer, index: int) -> np.ndarray:
        """Random access: decode a single slab."""
        if not 0 <= index < len(container.chunks):
            raise IndexError(
                f"chunk index {index} out of range [0, {len(container.chunks)})"
            )
        return self.codec.decompress(container.chunks[index])
