"""Tuning-as-a-service: the queryable face of the fitted models.

Characterization is expensive and runs once; afterwards the fitted
``P(f) = a·f^b + c`` bundles alone answer every tuning question. This
package serves those answers over HTTP — stdlib only — turning the
batch CLI into a long-running system:

* :mod:`repro.service.registry` — named, versioned, content-addressed
  :class:`~repro.core.persistence.ModelBundle` store with an LRU of
  parsed bundles and warm start from a directory.
* :mod:`repro.service.scheduler` — bounded admission (429 on a full
  queue), request batching and coalescing over a
  :class:`repro.parallel.Executor` pool, per-request deadlines.
* :mod:`repro.service.jobs` — async characterization jobs behind
  ``POST /v1/characterize`` + ``GET /v1/jobs/<id>``.
* :mod:`repro.service.http` — the ``ThreadingHTTPServer`` API
  (``/v1/tune``, ``/v1/decide``, ``/metrics``, health/readiness) with
  graceful drain.
* :mod:`repro.service.client` — a typed client with deterministic
  retry/backoff from :class:`~repro.resilience.policies.RetryPolicy`.

Run it with ``repro-tool serve``; see ``docs/SERVICE.md``.
"""

from repro.service.client import ConnectionFailed, ServiceClient
from repro.service.errors import (
    BadRequestError,
    DeadlineExceeded,
    InternalError,
    NotFoundError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    error_for_status,
)
from repro.service.handlers import RequestHandlers
from repro.service.http import ServiceConfig, TuningServer
from repro.service.jobs import Job, JobManager
from repro.service.registry import ModelEntry, ModelRegistry
from repro.service.scheduler import Scheduler, Ticket

__all__ = [
    "ServiceError",
    "BadRequestError",
    "NotFoundError",
    "QueueFullError",
    "ServiceClosedError",
    "DeadlineExceeded",
    "InternalError",
    "error_for_status",
    "ConnectionFailed",
    "ModelEntry",
    "ModelRegistry",
    "Scheduler",
    "Ticket",
    "Job",
    "JobManager",
    "RequestHandlers",
    "ServiceConfig",
    "TuningServer",
    "ServiceClient",
]
