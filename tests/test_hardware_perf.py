"""Unit tests for the perf-style measurement wrapper."""

import numpy as np
import pytest

from repro.hardware.cpu import BROADWELL_D1548
from repro.hardware.node import SimulatedNode
from repro.hardware.perf import PerfStat
from repro.hardware.workload import WorkloadKind, compression_workload


@pytest.fixture
def node():
    return SimulatedNode(BROADWELL_D1548, seed=0)


@pytest.fixture
def workload():
    return compression_workload(WorkloadKind.COMPRESS_SZ, int(5e8), 1e-2)


class TestMeasure:
    def test_sample_fields(self, node, workload):
        perf = PerfStat(node, repeats=10)
        s = perf.measure(workload, 1.5)
        assert s.cpu == "broadwell"
        assert s.freq_ghz == pytest.approx(1.5)
        assert s.repeats == 10
        assert len(s.energy_samples) == 10
        assert len(s.runtime_samples) == 10

    def test_averages_match_samples(self, node, workload):
        s = PerfStat(node, repeats=8).measure(workload, 2.0)
        assert s.energy_j == pytest.approx(np.mean(s.energy_samples))
        assert s.runtime_s == pytest.approx(np.mean(s.runtime_samples))

    def test_power_property(self, node, workload):
        s = PerfStat(node, repeats=5).measure(workload, 2.0)
        assert s.power_w == pytest.approx(s.energy_j / s.runtime_s)
        assert len(s.power_samples) == 5

    def test_averaging_reduces_variance(self, workload):
        singles, tens = [], []
        for seed in range(30):
            n1 = SimulatedNode(BROADWELL_D1548, seed=seed)
            n2 = SimulatedNode(BROADWELL_D1548, seed=seed + 1000)
            singles.append(PerfStat(n1, repeats=1).measure(workload, 2.0).power_w)
            tens.append(PerfStat(n2, repeats=10).measure(workload, 2.0).power_w)
        assert np.std(tens) < np.std(singles)

    def test_repeats_validation(self, node):
        with pytest.raises(ValueError):
            PerfStat(node, repeats=0)

    def test_snaps_frequency(self, node, workload):
        s = PerfStat(node, repeats=2).measure(workload, 1.512)
        assert s.freq_ghz == pytest.approx(1.5)


class TestSweep:
    def test_default_grid(self, node, workload):
        samples = PerfStat(node, repeats=2).sweep(workload)
        assert len(samples) == len(BROADWELL_D1548.available_frequencies())
        freqs = [s.freq_ghz for s in samples]
        assert freqs == sorted(freqs)

    def test_custom_grid(self, node, workload):
        samples = PerfStat(node, repeats=2).sweep(workload, [0.8, 1.4, 2.0])
        assert [s.freq_ghz for s in samples] == [0.8, 1.4, 2.0]

    def test_power_increases_along_sweep(self, node, workload):
        samples = PerfStat(node, repeats=10).sweep(workload, [0.8, 2.0])
        assert samples[0].power_w < samples[-1].power_w
