"""Pluggable codec kernel layer: the bit-level hot paths of SZ and ZFP.

Every campaign sweep, tuning answer and service request bottoms out in
the codec inner loops — Huffman bit emission and chain decoding, the
ZFP negabinary plane coder, the SZ grid quantizer. This package isolates
those loops behind a small dispatch surface with two interchangeable
backends that produce **byte-identical** streams:

``vector`` (default)
    NumPy table-driven implementations: canonical code assignment via
    ``bincount``/``cumsum``, bit emission through masked bit-matrix
    flattening, decode through :func:`repro.utils.chains.follow_chain`
    pointer doubling, plane coding through broadcast shifts.
``scalar``
    Pure-Python per-symbol / per-bit reference loops. Orders of
    magnitude slower; kept as the readable specification the
    differential suite (``tests/test_kernels_differential.py``) and the
    CI equivalence matrix hold the vector backend to.

Backend selection, outermost wins:

1. :func:`set_backend` / :func:`use_backend` (process-global override);
2. the ``REPRO_KERNELS`` environment variable (inherited by process-
   pool workers, which is how a whole parallel run switches backend);
3. the ``vector`` default.

Each dispatched call opens a ``kernel.<name>`` span on the active
tracer (zero overhead under the default :class:`NullTracer`) and bumps
``repro_kernel_calls_total`` / ``repro_kernel_items_total`` counters
labelled by kernel and backend.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.compressors.kernels import scalar, vector
from repro.observability import get_registry, get_tracer

__all__ = [
    "KERNELS_ENV",
    "DEFAULT_BACKEND",
    "backend_names",
    "active_backend",
    "set_backend",
    "use_backend",
    "canonical_codes",
    "huffman_histogram",
    "huffman_lookup_indices",
    "huffman_encode_bits",
    "huffman_decode_symbols",
    "pack_bits",
    "unpack_bits",
    "negabinary_encode",
    "negabinary_decode",
    "zfp_encode_plane_group",
    "zfp_decode_plane_group",
    "sz_quantize",
    "sz_reconstruct",
]

#: Environment variable consulted when no programmatic override is set.
KERNELS_ENV = "REPRO_KERNELS"

DEFAULT_BACKEND = "vector"

_BACKENDS = {"scalar": scalar, "vector": vector}

_lock = threading.Lock()
_override: Optional[str] = None


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def _validate(name: str) -> str:
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; valid backends: "
            f"{', '.join(backend_names())} (check ${KERNELS_ENV})"
        )
    return name


def active_backend() -> str:
    """Name of the backend the next kernel call will dispatch to."""
    if _override is not None:
        return _override
    env = os.environ.get(KERNELS_ENV)
    if env:
        return _validate(env)
    return DEFAULT_BACKEND


def set_backend(name: Optional[str]) -> Optional[str]:
    """Install a process-global backend override; returns the previous one.

    ``None`` clears the override, falling back to ``$REPRO_KERNELS`` /
    the default. The override is process-wide: thread-pool workers see
    it, process-pool workers do not (use the environment variable to
    reach those — both backends emit identical bytes, so a mixed fleet
    is never a correctness hazard, only a confusing benchmark).
    """
    global _override
    with _lock:
        previous = _override
        _override = _validate(name) if name is not None else None
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily dispatch kernel calls to backend *name*."""
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def _dispatch(kernel: str, items: int, args: tuple):
    backend = active_backend()
    impl = getattr(_BACKENDS[backend], kernel)
    registry = get_registry()
    labels = {"kernel": kernel, "backend": backend}
    registry.counter(
        "repro_kernel_calls_total", labels,
        help="Codec kernel invocations by kernel and backend.",
    ).inc()
    registry.counter(
        "repro_kernel_items_total", labels,
        help="Elements processed by codec kernels (symbols/bits/values).",
    ).inc(items)
    with get_tracer().span(f"kernel.{kernel}", backend=backend, items=items):
        return impl(*args)


# ----------------------------------------------------------------------
# Huffman kernels
# ----------------------------------------------------------------------


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical code values for code lengths sorted by (length, symbol).

    ``lengths`` must be non-decreasing; codes count upward within a
    length and shift left across length boundaries (RFC 1951 rule).
    """
    lens = np.asarray(lengths, dtype=np.int64)
    return _dispatch("canonical_codes", int(lens.size), (lens,))


def huffman_histogram(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(distinct sorted ascending, counts)`` of an int64 symbol stream."""
    v = np.asarray(values, dtype=np.int64).ravel()
    return _dispatch("huffman_histogram", int(v.size), (v,))


def huffman_lookup_indices(
    values: np.ndarray, symbols_sorted: np.ndarray
) -> np.ndarray:
    """Map each symbol to its index in the sorted alphabet.

    Raises ``KeyError`` naming the first out-of-alphabet symbol.
    """
    v = np.asarray(values, dtype=np.int64).ravel()
    return _dispatch("huffman_lookup_indices", int(v.size), (v, symbols_sorted))


def huffman_encode_bits(
    codes: np.ndarray, lengths: np.ndarray, max_len: int
) -> np.ndarray:
    """Flatten per-symbol (code, length) pairs into a 0/1 ``uint8`` stream."""
    codes = np.asarray(codes, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    return _dispatch(
        "huffman_encode_bits", int(codes.size), (codes, lengths, int(max_len))
    )


def huffman_decode_symbols(
    bits: np.ndarray,
    dec_symbol: np.ndarray,
    dec_length: np.ndarray,
    count: int,
    max_len: int,
) -> np.ndarray:
    """Decode *count* symbols from a 0/1 bit array via the prefix tables.

    ``dec_symbol``/``dec_length`` are the ``2**max_len``-entry canonical
    prefix tables. Raises ``ValueError`` when the code chain escapes the
    stream (corrupt input).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    return _dispatch(
        "huffman_decode_symbols",
        int(count),
        (bits, dec_symbol, dec_length, int(count), int(max_len)),
    )


# ----------------------------------------------------------------------
# Bit packing kernels (the BitWriter/BitReader byte boundary)
# ----------------------------------------------------------------------


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 ``uint8`` array into bytes, MSB-first, zero-padded."""
    bits = np.asarray(bits, dtype=np.uint8)
    return _dispatch("pack_bits", int(bits.size), (bits,))


def unpack_bits(data: np.ndarray) -> np.ndarray:
    """Expand a byte array into its 0/1 ``uint8`` bits, MSB-first."""
    data = np.asarray(data, dtype=np.uint8)
    return _dispatch("unpack_bits", int(data.size), (data,))


# ----------------------------------------------------------------------
# ZFP kernels
# ----------------------------------------------------------------------


def negabinary_encode(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to negabinary uint64 (zfp's ``int2uint``)."""
    v = np.asarray(values, dtype=np.int64)
    return _dispatch("negabinary_encode", int(v.size), (v,))


def negabinary_decode(values: np.ndarray) -> np.ndarray:
    """Invert :func:`negabinary_encode` (zfp's ``uint2int``)."""
    v = np.asarray(values, dtype=np.uint64)
    return _dispatch("negabinary_decode", int(v.size), (v,))


def zfp_encode_plane_group(rows: np.ndarray, planes: np.ndarray) -> np.ndarray:
    """Emit the chunk stream for one kept-plane group.

    *rows* is the ``(g, block_size)`` uint64 negabinary matrix of the
    group's blocks; *planes* lists plane indices most-significant first.
    Per block, per plane: a 1-bit non-zero flag, then the plane's
    ``block_size`` raw bits only when the flag is set. Returns the 0/1
    ``uint8`` stream.
    """
    rows = np.asarray(rows, dtype=np.uint64)
    planes = np.asarray(planes, dtype=np.int64)
    return _dispatch(
        "zfp_encode_plane_group", int(rows.size * planes.size), (rows, planes)
    )


def zfp_decode_plane_group(
    bits: np.ndarray, nchunks: int, block_size: int
) -> Tuple[np.ndarray, int]:
    """Parse *nchunks* flag/payload chunks from a plane-group bit stream.

    Returns ``(plane_vals, consumed)`` where ``plane_vals`` is the
    ``(nchunks, block_size)`` uint64 payload matrix (zero rows for
    unset flags) and ``consumed`` the number of bits the chunks cover.
    Raises ``ValueError`` when the chunk chain escapes the stream.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    return _dispatch(
        "zfp_decode_plane_group",
        int(nchunks) * (1 + int(block_size)),
        (bits, int(nchunks), int(block_size)),
    )


# ----------------------------------------------------------------------
# SZ quantizer kernels
# ----------------------------------------------------------------------


def sz_quantize(data: np.ndarray, origin: float, bin_width: float) -> np.ndarray:
    """Grid indices ``round((x - origin) / bin_width)`` as int64."""
    arr = np.asarray(data, dtype=np.float64)
    return _dispatch(
        "sz_quantize", int(arr.size), (arr, float(origin), float(bin_width))
    )


def sz_reconstruct(indices: np.ndarray, origin: float, bin_width: float) -> np.ndarray:
    """Grid values ``origin + bin_width * k`` as float64."""
    idx = np.asarray(indices)
    return _dispatch(
        "sz_reconstruct", int(idx.size), (idx, float(origin), float(bin_width))
    )
