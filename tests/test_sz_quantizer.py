"""Unit + property tests for the SZ grid quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.sz.quantizer import GridQuantizer


class TestPlan:
    def test_feasible_for_moderate_data(self):
        q = GridQuantizer(1e-3)
        plan = q.plan(np.linspace(-1, 1, 100))
        assert plan.feasible
        assert plan.origin == -1.0
        assert plan.bin_width == 2e-3

    def test_huge_range_infeasible(self):
        q = GridQuantizer(1e-10)
        plan = q.plan(np.array([0.0, 1e30]))
        assert not plan.feasible
        assert "bins" in plan.reason

    def test_bound_below_ulp_infeasible(self):
        # float32 values near 1e6 have ulp ~0.06; eb=1e-4 is unsafe.
        q = GridQuantizer(1e-4)
        arr = np.array([1e6, 1e6 + 1], dtype=np.float32)
        plan = q.plan(arr)
        assert not plan.feasible
        assert "ulp" in plan.reason

    def test_max_index_counts_bins(self):
        q = GridQuantizer(0.5)
        plan = q.plan(np.array([0.0, 10.0]))
        assert plan.feasible
        assert plan.max_index == 11  # 10 / 1.0 bins + 1

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            GridQuantizer(0.0)


class TestQuantizeReconstruct:
    def test_error_within_bound(self):
        q = GridQuantizer(1e-2)
        data = np.random.default_rng(0).normal(size=1000)
        idx = q.quantize(data, data.min())
        rec = q.reconstruct(idx, data.min())
        assert np.max(np.abs(rec - data)) <= 1e-2

    def test_grid_points_are_fixed(self):
        q = GridQuantizer(0.25)
        idx = q.quantize(np.array([0.0, 0.5, 1.0]), 0.0)
        assert idx.tolist() == [0, 1, 2]

    def test_idempotent_on_grid(self):
        q = GridQuantizer(1e-3)
        origin = -3.0
        idx = np.arange(100, dtype=np.int64)
        values = q.reconstruct(idx, origin)
        assert np.array_equal(q.quantize(values, origin), idx)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
        st.floats(1e-6, 1e3),
    )
    @settings(max_examples=60, deadline=None)
    def test_bound_property(self, values, eb):
        data = np.array(values, dtype=np.float64)
        q = GridQuantizer(eb)
        plan = q.plan(data)
        if not plan.feasible:
            return
        rec = q.reconstruct(q.quantize(data, plan.origin), plan.origin)
        # In isolation the quantizer guarantees eb up to float64
        # rounding of huge grid indices (< 2^46 * 2^-52 relative); the
        # codec's 0.85 internal factor absorbs this, keeping the
        # end-to-end bound strict.
        assert np.max(np.abs(rec - data)) <= eb * (1 + 1e-5)
