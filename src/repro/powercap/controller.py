"""Cluster-level power-cap controller: measure, allocate, actuate.

The layer above the per-node DVFS governor. A fleet-wide watt budget is
split into a reserve for the shared NFS server plus per-node watt caps
(:mod:`repro.powercap.allocation`); each node's watt cap is then
inverted through its fitted ``P(f) = a * f**b + c`` curve
(:meth:`PowerCurve.frequency_for_power`) into a ``cap_ghz`` ceiling
that callers push down through the existing
``Governor.decide(cap_ghz=...)`` hook.

The controller re-solves the allocation on *epochs*: node join, node
leave (a dead node's watts redistribute on that epoch), phase change
(compress and write draw very different power at the same clock), and
explicit requests. Demand estimates for the proportional policy stream
in from a :class:`~repro.governor.telemetry.TelemetryBus` — samples are
attributed to nodes by their ``source`` tag — or are recorded directly
via :meth:`ClusterCapController.record_demand`.

Every epoch appends a canonical trace entry; :meth:`report` seals the
trace with a sha256 receipt, the same determinism contract the adaptive
governor keeps: two runs with the same fleet, events and budget must
produce byte-identical traces.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.hardware.cpu import CpuSpec
from repro.hardware.powercurves import PowerCurve
from repro.hardware.workload import FREQUENCY_SENSITIVITY, WorkloadKind
from repro.powercap.allocation import (
    ALLOCATION_POLICIES,
    DEFAULT_CAP_HYSTERESIS,
    NodePowerModel,
    allocate_budget,
    allocation_makespan,
    apply_hysteresis,
    check_budget_w,
)
from repro.utils.validation import check_in_range, check_nonnegative

__all__ = [
    "DEFAULT_NFS_RESERVE_W",
    "POWERCAP_PHASES",
    "NodeCap",
    "PowercapReport",
    "ClusterCapController",
    "node_power_model",
    "cap_ghz_for_watts",
    "phase_caps_for_budget",
]

#: Default watts held back for the shared NFS server before splitting
#: the rest across compute nodes. Sized for the paper's single-server
#: testbed: a low-power storage box under sustained sequential writes.
DEFAULT_NFS_RESERVE_W = 40.0

POWERCAP_PHASES: Tuple[str, ...] = ("compress", "write", "idle")

#: Workload kind whose power curve stands in for each I/O phase when a
#: caller does not name the codec (idle nodes still pay the write-path
#: static floor).
_PHASE_KIND: Dict[str, WorkloadKind] = {
    "compress": WorkloadKind.COMPRESS_SZ,
    "write": WorkloadKind.WRITE,
    "idle": WorkloadKind.WRITE,
}

_CODEC_KIND: Dict[str, WorkloadKind] = {
    "sz": WorkloadKind.COMPRESS_SZ,
    "zfp": WorkloadKind.COMPRESS_ZFP,
}

_EPS = 1e-9


def _phase_name(phase) -> str:
    name = str(getattr(phase, "value", phase))
    if name not in POWERCAP_PHASES:
        raise ValueError(
            f"unknown phase {name!r}; known: {', '.join(POWERCAP_PHASES)}"
        )
    return name


def _phase_kind(phase: str, codec: Optional[str]) -> WorkloadKind:
    if phase == "compress" and codec is not None:
        try:
            return _CODEC_KIND[codec]
        except KeyError:
            raise ValueError(
                f"unknown codec {codec!r}; known: {', '.join(sorted(_CODEC_KIND))}"
            ) from None
    return _PHASE_KIND[phase]


def node_power_model(
    node_id: str,
    cpu: CpuSpec,
    power_curve: PowerCurve,
    phase: str = "compress",
    work: float = 1.0,
    codec: Optional[str] = None,
) -> NodePowerModel:
    """Discretize a node's P(f) curve into a :class:`NodePowerModel`.

    The grid is the CPU's DVFS grid; power per point comes from the
    node's curve for the phase's workload kind; the leading-loads
    sensitivity comes from :data:`FREQUENCY_SENSITIVITY` for the
    (kind, arch) pair, falling back to 0.5 for extension CPUs.
    """
    phase = _phase_name(phase)
    kind = _phase_kind(phase, codec)
    grid = tuple(float(f) for f in cpu.available_frequencies())
    power = tuple(power_curve.power_watts(cpu, f, kind) for f in grid)
    sensitivity = FREQUENCY_SENSITIVITY.get((kind, cpu.arch), 0.5)
    return NodePowerModel(
        node_id=node_id,
        grid=grid,
        power_w=power,
        work=float(work),
        sensitivity=sensitivity,
    )


def cap_ghz_for_watts(
    cpu: CpuSpec,
    power_curve: PowerCurve,
    watts: float,
    phase: str = "compress",
    codec: Optional[str] = None,
) -> Tuple[float, bool]:
    """Invert the phase's P(f) curve: ``(cap_ghz, infeasible)``.

    The frequency is floor-snapped to the DVFS grid (a cap must never
    round *up* over the watt budget). ``infeasible`` is True when the
    watt cap lies below the floor power — the node will run at fmin
    anyway, and the governor layer records ``capped_below_fmin``.
    """
    phase = _phase_name(phase)
    kind = _phase_kind(phase, codec)
    floor_w = power_curve.power_watts(cpu, cpu.fmin_ghz, kind)
    infeasible = watts < floor_w - _EPS
    raw = power_curve.frequency_for_power(cpu, watts, kind)
    feasible = [f for f in cpu.available_frequencies() if f <= raw + 1e-6]
    cap_ghz = float(feasible[-1]) if feasible else cpu.fmin_ghz
    return cap_ghz, infeasible


def phase_caps_for_budget(
    cpu: CpuSpec,
    power_curve: PowerCurve,
    budget_w: float,
    codec: Optional[str] = None,
) -> Dict[str, float]:
    """Per-phase governor frequency caps for one node under *budget_w*.

    The single-node degenerate case of the cluster allocation: the
    whole budget is the node's watt cap in every phase; each phase
    inverts its own curve. Infeasible phases (budget below the phase's
    floor power) map to ``0.0`` — passing that to
    ``Governor.decide(cap_ghz=0.0)`` pins fmin and records the
    ``capped_below_fmin`` tag.
    """
    budget_w = check_budget_w(budget_w)
    caps: Dict[str, float] = {}
    for phase in ("compress", "write"):
        cap_ghz, infeasible = cap_ghz_for_watts(
            cpu, power_curve, budget_w, phase, codec=codec
        )
        caps[phase] = 0.0 if infeasible else cap_ghz
    return caps


@dataclass(frozen=True)
class NodeCap:
    """One node's cap for the current epoch."""

    node_id: str
    cap_w: float
    cap_ghz: float
    #: The watt cap demands less than the node's DVFS floor can deliver.
    infeasible: bool = False

    @property
    def governor_cap_ghz(self) -> float:
        """Value to hand ``Governor.decide(cap_ghz=...)``.

        Infeasible caps pass 0.0 — below fmin — so the governor pins
        the floor *and* records its ``capped_below_fmin`` tag, instead
        of the controller silently rewriting the cap to fmin.
        """
        return 0.0 if self.infeasible else self.cap_ghz


@dataclass(frozen=True)
class PowercapReport:
    """Sealed summary of a controller's run: caps + trace receipt."""

    policy: str
    budget_w: float
    nfs_reserve_w: float
    epochs: int
    phase: str
    caps: Tuple[Tuple[str, float, float], ...]  # (node_id, cap_w, cap_ghz)
    infeasible: Tuple[str, ...]
    makespan: float
    trace_sha256: str


class ClusterCapController:
    """Splits a fleet watt budget across nodes plus the NFS reserve.

    Thread-safe: the distributed coordinator joins/leaves nodes from
    its reader threads while telemetry streams in. Telemetry callbacks
    run under the bus lock, so :meth:`_on_sample` only records demand
    and phase changes — it never publishes back to the bus.
    """

    def __init__(
        self,
        budget_w: float,
        policy: str = "waterfill",
        nfs_reserve_w: float = DEFAULT_NFS_RESERVE_W,
        hysteresis: float = DEFAULT_CAP_HYSTERESIS,
        telemetry=None,
        demand_window: int = 8,
    ) -> None:
        self.budget_w = check_budget_w(budget_w)
        if policy not in ALLOCATION_POLICIES:
            raise ValueError(
                f"unknown allocation policy {policy!r}; "
                f"known: {', '.join(ALLOCATION_POLICIES)}"
            )
        self.policy = policy
        check_nonnegative(nfs_reserve_w, "nfs_reserve_w")
        if nfs_reserve_w >= budget_w:
            raise ValueError(
                f"nfs_reserve_w={nfs_reserve_w} leaves no budget for compute "
                f"nodes (budget_w={budget_w})"
            )
        self.nfs_reserve_w = float(nfs_reserve_w)
        check_in_range(hysteresis, 0.0, 1.0, "hysteresis")
        self.hysteresis = float(hysteresis)
        if demand_window < 1:
            raise ValueError(f"demand_window must be >= 1, got {demand_window}")
        self._demand_window = int(demand_window)
        self._lock = threading.RLock()
        # node_id -> (cpu, power_curve, work)
        self._nodes: Dict[str, Tuple[CpuSpec, PowerCurve, float]] = {}
        self._demand: Dict[str, Deque[float]] = {}
        self._caps: Dict[str, NodeCap] = {}
        self._phase = "compress"
        self._epoch = 0
        self._last_makespan = 0.0
        self.trace: List[dict] = []
        self._unsubscribe = None
        if telemetry is not None:
            self._unsubscribe = telemetry.subscribe(self._on_sample)

    # -- fleet membership ------------------------------------------------

    def join(
        self,
        node_id: str,
        cpu: CpuSpec,
        power_curve: PowerCurve,
        work: float = 1.0,
    ) -> Dict[str, NodeCap]:
        """Register a node and re-solve the allocation.

        Joining an already-registered node_id only updates its work
        weight (idempotent re-announcement, no epoch).
        """
        node_id = str(node_id)
        if not node_id:
            raise ValueError("node_id must be a non-empty string")
        with self._lock:
            if node_id in self._nodes:
                old_cpu, old_curve, _ = self._nodes[node_id]
                self._nodes[node_id] = (old_cpu, old_curve, float(work))
                return self.caps()
            self._nodes[node_id] = (cpu, power_curve, float(work))
            self._demand.setdefault(
                node_id, deque(maxlen=self._demand_window)
            )
            return self._reallocate_locked("join")

    def leave(self, node_id: str) -> Dict[str, NodeCap]:
        """Drop a node (death or drain); its watts redistribute now."""
        node_id = str(node_id)
        with self._lock:
            if node_id not in self._nodes:
                raise KeyError(f"unknown node_id {node_id!r}")
            del self._nodes[node_id]
            self._demand.pop(node_id, None)
            self._caps.pop(node_id, None)
            return self._reallocate_locked("leave")

    def node_ids(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._nodes))

    # -- telemetry -------------------------------------------------------

    def _on_sample(self, sample) -> None:
        """TelemetryBus subscriber: record demand, track phase flips.

        Runs under the bus lock — must stay cheap and must never
        publish. Samples from unregistered sources are ignored (the
        local bus also carries the single-node governor's samples).
        """
        source = getattr(sample, "source", None)
        phase = getattr(sample, "phase", None)
        power_w = getattr(sample, "power_w", None)
        with self._lock:
            if source in self._nodes and power_w is not None:
                self._demand[source].append(float(power_w))
            if (
                source in self._nodes
                and phase in POWERCAP_PHASES
                and phase != self._phase
            ):
                self._phase = phase
                self._reallocate_locked("phase-change")

    def record_demand(self, node_id: str, power_w: float) -> None:
        """Directly record a node's observed watts (no bus required)."""
        node_id = str(node_id)
        check_budget_w(power_w, "power_w")
        with self._lock:
            if node_id not in self._nodes:
                raise KeyError(f"unknown node_id {node_id!r}")
            self._demand[node_id].append(float(power_w))

    def demands(self) -> Dict[str, float]:
        """Per-node demand estimate: mean of the telemetry window."""
        with self._lock:
            return {
                node_id: sum(window) / len(window)
                for node_id, window in sorted(self._demand.items())
                if window
            }

    # -- epochs ----------------------------------------------------------

    @property
    def phase(self) -> str:
        return self._phase

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def last_makespan(self) -> float:
        return self._last_makespan

    def begin_phase(self, phase) -> Dict[str, NodeCap]:
        """Announce a phase boundary; re-solves if the phase changed."""
        phase = _phase_name(phase)
        with self._lock:
            if phase == self._phase:
                return self.caps()
            self._phase = phase
            return self._reallocate_locked("phase-change")

    def reallocate(self, event: str = "request") -> Dict[str, NodeCap]:
        """Force an allocation epoch (e.g. fresh demand telemetry)."""
        with self._lock:
            return self._reallocate_locked(str(event))

    def caps(self) -> Dict[str, NodeCap]:
        with self._lock:
            return dict(self._caps)

    def cap_for(self, node_id: str) -> NodeCap:
        with self._lock:
            return self._caps[str(node_id)]

    def _reallocate_locked(self, event: str) -> Dict[str, NodeCap]:
        from repro.observability import get_registry, get_tracer

        models = [
            node_power_model(
                node_id, cpu, curve, phase=self._phase, work=work
            )
            for node_id, (cpu, curve, work) in sorted(self._nodes.items())
        ]
        node_budget = self.budget_w - self.nfs_reserve_w
        demands = {
            node_id: sum(window) / len(window)
            for node_id, window in sorted(self._demand.items())
            if window
        }
        with get_tracer().span(
            "powercap.allocate",
            event=event,
            policy=self.policy,
            phase=self._phase,
            nodes=len(models),
        ) as sp:
            watts = allocate_budget(self.policy, models, node_budget, demands)
            if self._caps and event == "phase-change":
                previous = {
                    node_id: cap.cap_w for node_id, cap in self._caps.items()
                }
                watts = apply_hysteresis(
                    previous, watts, node_budget, self.hysteresis
                )
            caps: Dict[str, NodeCap] = {}
            for model in models:
                cpu, curve, _ = self._nodes[model.node_id]
                cap_w = watts[model.node_id]
                if cap_w <= 0:
                    cap_ghz, infeasible = cpu.fmin_ghz, True
                else:
                    cap_ghz, infeasible = cap_ghz_for_watts(
                        cpu, curve, cap_w, self._phase
                    )
                caps[model.node_id] = NodeCap(
                    node_id=model.node_id,
                    cap_w=cap_w,
                    cap_ghz=cap_ghz,
                    infeasible=infeasible,
                )
            makespan = allocation_makespan(models, watts)
            sp.set(makespan=round(makespan, 6))
        self._caps = caps
        self._epoch += 1
        self._last_makespan = makespan
        self.trace.append(
            {
                "epoch": self._epoch,
                "event": event,
                "phase": self._phase,
                "policy": self.policy,
                "budget_w": round(self.budget_w, 6),
                "nfs_reserve_w": round(self.nfs_reserve_w, 6),
                "nodes": len(models),
                "makespan": round(makespan, 6),
                "caps": {
                    node_id: {
                        "watts": round(cap.cap_w, 6),
                        "cap_ghz": round(cap.cap_ghz, 6),
                        "infeasible": cap.infeasible,
                    }
                    for node_id, cap in sorted(caps.items())
                },
            }
        )
        registry = get_registry()
        registry.counter(
            "repro_powercap_epochs_total",
            {"policy": self.policy, "event": event},
            help="allocation epochs run by cluster power-cap controllers",
        ).inc()
        infeasible_count = sum(1 for cap in caps.values() if cap.infeasible)
        if infeasible_count:
            registry.counter(
                "repro_powercap_infeasible_caps_total",
                {"policy": self.policy},
                help="node caps below the DVFS floor power at allocation time",
            ).inc(infeasible_count)
        return dict(caps)

    # -- receipts --------------------------------------------------------

    def trace_json(self) -> str:
        """Canonical JSON of the decision trace (the hashed bytes)."""
        with self._lock:
            return json.dumps(
                self.trace, sort_keys=True, separators=(",", ":")
            )

    def report(self) -> PowercapReport:
        """Seal the run: current caps plus the sha256 trace receipt."""
        with self._lock:
            digest = hashlib.sha256(self.trace_json().encode()).hexdigest()
            return PowercapReport(
                policy=self.policy,
                budget_w=self.budget_w,
                nfs_reserve_w=self.nfs_reserve_w,
                epochs=self._epoch,
                phase=self._phase,
                caps=tuple(
                    (node_id, cap.cap_w, cap.cap_ghz)
                    for node_id, cap in sorted(self._caps.items())
                ),
                infeasible=tuple(
                    node_id
                    for node_id, cap in sorted(self._caps.items())
                    if cap.infeasible
                ),
                makespan=self._last_makespan,
                trace_sha256=digest,
            )

    def close(self) -> None:
        """Detach from the telemetry bus (idempotent)."""
        unsubscribe, self._unsubscribe = self._unsubscribe, None
        if unsubscribe is not None:
            unsubscribe()

    def __enter__(self) -> "ClusterCapController":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
