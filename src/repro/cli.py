"""Command-line interface: the power-tuning model tool.

Subcommands cover the full workflow without writing Python:

========== ==========================================================
command     what it does
========== ==========================================================
datasets    list the registered Table I datasets and their geometry
generate    synthesize a dataset field to a ``.npy`` file
compress    compress a ``.npy`` array with SZ/ZFP/gzip
decompress  reconstruct a ``.npy`` array from a compressed file
characterize  run the measurement campaign and save fitted models
tune        print frequency recommendations from a saved model bundle
dump        simulate a compress-and-dump and report the energy saved
govern      run a checkpoint campaign under an online DVFS governor
faults      validate or emit example fault-injection plans
experiment  regenerate one of the paper's tables/figures
========== ==========================================================

Example session::

    repro-tool characterize --output models.json --repeats 5
    repro-tool tune --models models.json --policy eqn3
    repro-tool dump --models models.json --arch skylake --target-gb 512
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]

_EXPERIMENTS = (
    "table1", "table2", "table3", "table4", "table5",
    "figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
    "headline",
    "ext-restore", "ext-cluster", "ext-breakeven", "ext-multicore",
)


def _add_executor_args(p: argparse.ArgumentParser) -> None:
    """--workers/--executor knobs shared by the parallel-capable commands."""
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for slab-parallel execution "
                        "(default: CPU count)")
    p.add_argument("--executor", default="auto",
                   choices=("auto", "serial", "thread", "process",
                            "distributed"),
                   help="execution backend for independent slabs "
                        "(distributed shards across a worker fleet; "
                        "see 'repro-tool workers')")


def _check_executor_args(args) -> None:
    """Reject contradictory executor knobs before any work starts."""
    workers = getattr(args, "workers", None)
    if getattr(args, "executor", "auto") == "serial" and workers is not None:
        raise ValueError(
            "--workers conflicts with --executor serial "
            "(the serial backend always runs one worker)"
        )
    # Commands that only shard when --chunk-mb is given would otherwise
    # silently ignore a nonsensical worker count.
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    """--fault-plan knob for the resilience-capable commands."""
    p.add_argument("--fault-plan", default=None, metavar="PATH",
                   help="JSON fault plan to inject (see docs/RESILIENCE.md; "
                        "validate with 'repro-tool faults validate')")


def _load_fault_plan(args):
    """Load + validate the plan named by --fault-plan (None if absent)."""
    if getattr(args, "fault_plan", None) is None:
        return None
    from repro.resilience import FaultPlan, RecoveryPolicy

    plan = FaultPlan.from_file(args.fault_plan)
    RecoveryPolicy.from_dict(plan.policy_doc)  # fail fast on bad policies
    return plan


def _add_governor_args(p: argparse.ArgumentParser) -> None:
    """--governor knobs for commands whose tuned leg can be governed."""
    p.add_argument("--governor", default=None,
                   choices=("static", "adaptive"),
                   help="steer the tuned run with a DVFS governor instead "
                        "of pinned Eqn. 3 frequencies (adaptive learns the "
                        "power curve online; see docs/GOVERNOR.md)")
    p.add_argument("--governor-seed", type=int, default=0,
                   help="RNG seed for the adaptive governor's exploration")
    p.add_argument("--governor-window", type=int, default=64,
                   help="telemetry window per incremental refit (>= 4)")


def _check_governor_plan(name, plan) -> None:
    """Reject two actuators fighting over one frequency knob."""
    if name != "adaptive" or plan is None:
        return
    if "dvfs-throttle" in plan.kinds():
        raise ValueError(
            "--governor adaptive conflicts with a fault plan that injects "
            "dvfs-throttle: the governor and the fault would both cap the "
            "same DVFS knob, making the run's energy unattributable; "
            "drop one of them"
        )


def _add_cache_args(p: argparse.ArgumentParser) -> None:
    """--cache-dir/--no-cache knobs for the result-cache-aware commands."""
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persist the result cache here (survives runs; "
                        "see docs/CACHING.md)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache for this command")


def _install_cache(args):
    """Apply --cache-dir/--no-cache; returns a restore callable (or None).

    Only commands that declare the cache flags touch the global cache;
    the caller invokes the returned callable when the command finishes
    so the process-wide cache is exactly what it was before.
    """
    if args.command in ("cache", "workers"):
        # These commands take --cache-dir as the *object* they operate
        # on (a store to inspect, a fleet's shared directory), not as
        # this process's cache config; installing a disk tier here
        # would create the directory as a side effect.
        return None
    cache_dir = getattr(args, "cache_dir", None)
    no_cache = getattr(args, "no_cache", False)
    if cache_dir is None and not no_cache:
        return None
    from repro.cache import ResultCache, set_cache

    previous = set_cache(ResultCache(disk_dir=cache_dir, enabled=not no_cache))
    return lambda: set_cache(previous)


def _add_observability_args(p: argparse.ArgumentParser) -> None:
    """--trace-out/--metrics-out/--trace-summary artifact knobs.

    Any of these flags switches the process from the no-op tracer to a
    recording one for the duration of the command.
    """
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write the run's span tree as JSON lines")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write run metrics in Prometheus text format")
    p.add_argument("--trace-summary", action="store_true",
                   help="print an ASCII per-stage summary after the run")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-tool",
        description="Power modeling and DVFS tuning of lossy compressed I/O "
                    "(Wilkins & Calhoun 2022 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list registered datasets")

    p = sub.add_parser("generate", help="synthesize a dataset field to .npy")
    p.add_argument("--dataset", required=True)
    p.add_argument("--field", required=True)
    p.add_argument("--scale", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", required=True)

    p = sub.add_parser("compress", help="compress a .npy array")
    p.add_argument("--input", required=True)
    p.add_argument("--output", required=True)
    p.add_argument("--codec", default="sz")
    p.add_argument("--error-bound", type=float, default=1e-3)
    p.add_argument("--chunk-mb", type=float, default=None,
                   help="bounded-memory slab size; writes a chunked container")
    _add_executor_args(p)
    _add_observability_args(p)

    p = sub.add_parser("decompress", help="decompress to a .npy array")
    p.add_argument("--input", required=True)
    p.add_argument("--output", required=True)
    _add_executor_args(p)
    _add_observability_args(p)

    p = sub.add_parser("characterize",
                       help="run the measurement campaign, save fitted models")
    p.add_argument("--output", required=True, help="model bundle JSON path")
    p.add_argument("--export-dir", default=None,
                   help="also write raw sweeps, tables and a manifest here")
    p.add_argument("--repeats", type=int, default=10)
    p.add_argument("--stride", type=int, default=1,
                   help="take every n-th DVFS grid frequency")
    p.add_argument("--scale", type=int, default=16, help="dataset scale divisor")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--curve", choices=("calibrated", "physical"),
                   default="calibrated", help="ground-truth power curve")
    _add_cache_args(p)
    _add_observability_args(p)

    p = sub.add_parser("tune", help="print recommendations from saved models")
    p.add_argument("--models", required=True)
    p.add_argument("--policy", choices=("eqn3", "optimal"), default="eqn3")
    p.add_argument("--objective", choices=("power", "energy", "edp", "ed2p"),
                   default="energy",
                   help="objective for --policy optimal")
    _add_cache_args(p)

    p = sub.add_parser("dump", help="simulate a compress-and-dump with tuning")
    p.add_argument("--models", required=True)
    p.add_argument("--arch", default="skylake")
    p.add_argument("--codec", default="sz")
    p.add_argument("--dataset", default="nyx")
    p.add_argument("--field", default="velocity_x")
    p.add_argument("--error-bound", type=float, default=1e-2)
    p.add_argument("--target-gb", type=float, default=512.0)
    p.add_argument("--scale", type=int, default=16)
    p.add_argument("--chunk-mb", type=float, default=None,
                   help="shard the ratio measurement into slabs of this size")
    p.add_argument("--power-budget-w", type=float, default=None,
                   help="node package watt budget; each phase's frequency is "
                        "capped by inverting the node's P(f) curve")
    _add_executor_args(p)
    _add_governor_args(p)
    _add_fault_args(p)
    _add_cache_args(p)
    _add_observability_args(p)

    p = sub.add_parser("govern",
                       help="run a checkpoint campaign under an online DVFS "
                            "governor (see docs/GOVERNOR.md)")
    p.add_argument("--arch", default="broadwell")
    p.add_argument("--codec", default="sz")
    p.add_argument("--error-bound", type=float, default=1e-2)
    p.add_argument("--snapshot-gb", type=float, default=128.0)
    p.add_argument("--snapshots", type=int, default=12)
    p.add_argument("--interval-s", type=float, default=3600.0)
    p.add_argument("--scale", type=int, default=16)
    # No argparse choices here: the governor registry owns the set of
    # policies, so an unknown name gets its (richer) error message.
    p.add_argument("--governor", default="adaptive",
                   help="policy: static (paper's Eqn. 3), adaptive "
                        "(online explore/fit/exploit) or oracle "
                        "(ground-truth lower bound)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the node's sensors and the governor's "
                        "exploration RNG")
    p.add_argument("--window", type=int, default=64,
                   help="telemetry window per incremental refit (>= 4)")
    p.add_argument("--telemetry-out", default=None, metavar="PATH",
                   help="write the governor's telemetry stream as JSON lines")
    _add_fault_args(p)
    _add_cache_args(p)
    _add_observability_args(p)

    p = sub.add_parser("faults",
                       help="inspect and validate fault-injection plans")
    faults_sub = p.add_subparsers(dest="action", required=True)
    pv = faults_sub.add_parser("validate", help="check a fault-plan JSON file")
    pv.add_argument("plan", help="path to the fault-plan JSON file")
    pe = faults_sub.add_parser("example", help="print an example fault plan")
    pe.add_argument("--output", default=None,
                    help="write the example plan here instead of stdout")

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", choices=_EXPERIMENTS)
    p.add_argument("--repeats", type=int, default=10)
    p.add_argument("--stride", type=int, default=1)
    p.add_argument("--scale", type=int, default=16)

    p = sub.add_parser("advise", help="pick an error bound from a target")
    p.add_argument("--codec", default="sz")
    p.add_argument("--dataset", default="nyx")
    p.add_argument("--field", default="velocity_x")
    p.add_argument("--scale", type=int, default=16)
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--target-ratio", type=float)
    group.add_argument("--target-psnr", type=float)

    p = sub.add_parser("campaign",
                       help="simulate a checkpoint campaign, base vs tuned")
    p.add_argument("--arch", default="skylake")
    p.add_argument("--snapshot-gb", type=float, default=128.0)
    p.add_argument("--snapshots", type=int, default=12)
    p.add_argument("--interval-s", type=float, default=3600.0)
    p.add_argument("--error-bound", type=float, default=1e-2)
    p.add_argument("--scale", type=int, default=16)
    p.add_argument("--chunk-mb", type=float, default=None,
                   help="shard each snapshot's ratio measurement into slabs "
                        "of this size (traces then show chunk/slab stages)")
    p.add_argument("--power-budget-w", type=float, default=None,
                   help="per-node package watt budget applied to every sweep "
                        "point (base and tuned alike)")
    _add_executor_args(p)
    _add_governor_args(p)
    _add_fault_args(p)
    _add_cache_args(p)
    _add_observability_args(p)

    p = sub.add_parser("serve",
                       help="run the tuning service (HTTP, see docs/SERVICE.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8023,
                   help="TCP port (0 picks a free one; the bound address "
                        "is printed on startup)")
    p.add_argument("--models", action="append", default=None, metavar="[NAME=]PATH",
                   help="bundle JSON to preload (repeatable); NAME defaults "
                        "to the file stem")
    p.add_argument("--models-dir", default=None, metavar="DIR",
                   help="warm-start: register every *.json bundle in DIR")
    p.add_argument("--workers", type=int, default=4,
                   help="scheduler worker threads")
    p.add_argument("--queue-size", type=int, default=64,
                   help="admission bound; a full queue answers 429")
    p.add_argument("--batch-max", type=int, default=16,
                   help="max requests coalesced into one dispatch cycle")
    p.add_argument("--deadline-s", type=float, default=30.0,
                   help="default per-request deadline (queued longer "
                        "answers 504)")
    p.add_argument("--max-jobs", type=int, default=4,
                   help="max unfinished characterize jobs before 429")
    _add_cache_args(p)
    _add_observability_args(p)

    p = sub.add_parser("cache",
                       help="inspect or clear a persisted result cache")
    cache_sub = p.add_subparsers(dest="action", required=True)
    ps = cache_sub.add_parser("stats", help="print cache occupancy and counters")
    ps.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="on-disk cache to inspect (default: this "
                         "process's in-memory cache)")
    pc = cache_sub.add_parser("clear", help="delete every cached entry")
    pc.add_argument("--cache-dir", required=True, metavar="DIR",
                    help="on-disk cache to clear")

    p = sub.add_parser("workers",
                       help="launch a local worker fleet for a "
                            "distributed-executor coordinator")
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="coordinator address (set REPRO_DIST_LISTEN on "
                        "the coordinator side to pin one)")
    p.add_argument("--workers", type=int, default=None,
                   help="processes to launch (default: CPU count)")
    p.add_argument("--heartbeat", type=float, default=0.5,
                   help="seconds between liveness heartbeats")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="shared on-disk result cache for the fleet")

    p = sub.add_parser("cluster",
                       help="simulate an N-node dump through a shared NFS")
    p.add_argument("--arch", default="skylake")
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--per-node-gb", type=float, default=64.0)
    p.add_argument("--error-bound", type=float, default=1e-2)
    p.add_argument("--scale", type=int, default=16)
    _add_observability_args(p)

    p = sub.add_parser("powercap",
                       help="split a fleet watt budget across a simulated "
                            "cluster (see docs/POWERCAP.md)")
    p.add_argument("--budget-w", type=float, required=True,
                   help="fleet-wide power budget, NFS reserve included")
    p.add_argument("--arch", default="broadwell")
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--policy", default="waterfill",
                   choices=("uniform", "proportional", "waterfill"))
    p.add_argument("--nfs-reserve-w", type=float, default=None,
                   help="watts held back for the shared NFS server "
                        "(default 40)")
    p.add_argument("--per-node-gb", type=float, default=64.0)
    p.add_argument("--error-bound", type=float, default=1e-2)
    p.add_argument("--scale", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    _add_observability_args(p)

    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------

def _cmd_datasets(args) -> int:
    from repro.data.registry import DATASETS
    from repro.workflow.report import render_table

    rows = [
        {
            "name": spec.name,
            "domain": spec.domain,
            "dimensions": " x ".join(str(s) for s in spec.full_shape),
            "fields": ", ".join(f.name for f in spec.fields),
            "field_mb": round(spec.full_field_megabytes, 1),
        }
        for spec in DATASETS.values()
    ]
    print(render_table(rows, title="Registered datasets"))
    return 0


def _cmd_generate(args) -> int:
    from repro.data.registry import load_field

    arr = load_field(args.dataset, args.field, scale=args.scale, seed=args.seed)
    np.save(args.output, arr)
    print(f"wrote {args.output}: shape {arr.shape}, dtype {arr.dtype}, "
          f"{arr.nbytes / 1e6:.1f} MB")
    return 0


def _cmd_compress(args) -> int:
    from repro.compressors import ChunkedCompressor, get_compressor

    _check_executor_args(args)
    arr = np.load(args.input)
    chunk_mb = args.chunk_mb
    # A worker request implies slab sharding; default to 64 MB slabs.
    if chunk_mb is None and (args.workers is not None or args.executor != "auto"):
        chunk_mb = 64.0
    if chunk_mb is not None:
        cc = ChunkedCompressor(
            args.codec, max_chunk_bytes=int(chunk_mb * 1e6),
            executor=args.executor, workers=args.workers,
        )
        buf = cc.compress(arr, args.error_bound)
        label = f"{args.codec} ({len(buf.chunks)} chunks)"
        stats = cc.last_stats
    else:
        buf = get_compressor(args.codec).compress(arr, args.error_bound)
        label = args.codec
        stats = None
    with open(args.output, "wb") as fh:
        fh.write(buf.to_bytes())
    print(f"{label}: {arr.nbytes} -> {buf.nbytes} bytes "
          f"(ratio {buf.ratio:.2f}x, eb {args.error_bound:g})")
    if stats is not None:
        print(f"  {stats.summary()}")
    return 0


def _cmd_decompress(args) -> int:
    from repro.compressors import ChunkedBuffer, ChunkedCompressor, CompressedBuffer, get_compressor

    _check_executor_args(args)
    with open(args.input, "rb") as fh:
        blob = fh.read()
    if blob[:4] == b"RPCK":
        container = ChunkedBuffer.from_bytes(blob)
        codec_name = container.chunks[0].codec
        rec = ChunkedCompressor(
            codec_name, executor=args.executor, workers=args.workers
        ).decompress(container)
        eb = container.chunks[0].error_bound
    else:
        buf = CompressedBuffer.from_bytes(blob)
        codec_name = buf.codec
        rec = get_compressor(buf.codec).decompress(buf)
        eb = buf.error_bound
    np.save(args.output, rec)
    print(f"wrote {args.output}: shape {rec.shape}, dtype {rec.dtype} "
          f"(codec {codec_name}, eb {eb:g})")
    return 0


def _make_pipeline(curve_name: str, seed: int):
    from repro.core.pipeline import TunedIOPipeline
    from repro.hardware.powercurves import CalibratedPowerCurve, PhysicalPowerCurve
    from repro.workflow.sweep import default_nodes

    curve = {"calibrated": CalibratedPowerCurve, "physical": PhysicalPowerCurve}[
        curve_name
    ]()
    return TunedIOPipeline(default_nodes(power_curve=curve, seed=seed))


def _cmd_characterize(args) -> int:
    from repro.core.persistence import ModelBundle
    from repro.workflow.report import render_table
    from repro.workflow.sweep import SweepConfig

    pipe = _make_pipeline(args.curve, args.seed)
    config = SweepConfig(
        repeats=args.repeats,
        frequency_stride=args.stride,
        data_scale=args.scale,
        seed=args.seed,
    )
    outcome = pipe.characterize(config)
    bundle = ModelBundle.from_outcome(
        outcome,
        metadata={
            "curve": args.curve,
            "repeats": args.repeats,
            "frequency_stride": args.stride,
            "data_scale": args.scale,
            "seed": args.seed,
        },
    )
    bundle.save(args.output)
    print(render_table(outcome.model_table("compression"),
                       title="Compression power models (Table IV)"))
    print()
    print(render_table(outcome.model_table("transit"),
                       title="Data-transit power models (Table V)"))
    print(f"\nmodel bundle written to {args.output}")
    if args.export_dir:
        from repro.workflow.export import export_campaign

        paths = export_campaign(
            outcome, args.export_dir,
            config_metadata={"curve": args.curve, "repeats": args.repeats,
                             "frequency_stride": args.stride,
                             "data_scale": args.scale, "seed": args.seed},
        )
        print(f"campaign artifacts exported to {args.export_dir} "
              f"({len(paths)} files)")
    return 0


def _cmd_tune(args) -> int:
    from repro.core.objectives import Objective, optimal_frequency
    from repro.core.persistence import ModelBundle
    from repro.core.tuning import PAPER_POLICY, recommend_from_models
    from repro.hardware.cpu import get_cpu
    from repro.workflow.report import render_table

    bundle = ModelBundle.load(args.models)
    rows = []
    for arch, runtime in bundle.compression_runtime.items():
        cpu = get_cpu(arch)
        power = bundle.compression_power.get(arch.capitalize())
        tran_power = bundle.transit_power.get(arch.capitalize())
        tran_runtime = bundle.transit_runtime[arch]
        for stage, pm, rm in (("compress", power, runtime),
                              ("write", tran_power, tran_runtime)):
            if pm is None:
                continue
            if args.policy == "eqn3":
                rec = recommend_from_models(cpu, stage, pm, rm, PAPER_POLICY)
                freq = rec.freq_ghz
            else:
                freq = optimal_frequency(pm, rm, cpu, Objective(args.objective))
                rec = None
            p_saving = 1.0 - float(pm.predict(freq)) / float(pm.predict(cpu.fmax_ghz))
            slowdown = float(rm.predict(freq)) - 1.0
            rows.append(
                {
                    "cpu": arch,
                    "stage": stage,
                    "policy": args.policy if args.policy == "eqn3"
                    else f"optimal/{args.objective}",
                    "freq_ghz": freq,
                    "power_saving_pct": p_saving * 100,
                    "slowdown_pct": slowdown * 100,
                    "energy_saving_pct": (1 - (1 - p_saving) * (1 + slowdown)) * 100,
                }
            )
    print(render_table(rows, title="Frequency recommendations"))
    return 0


def _cmd_dump(args) -> int:
    from repro.compressors import get_compressor
    from repro.core.persistence import ModelBundle
    from repro.core.tuning import PAPER_POLICY
    from repro.data.registry import load_field
    from repro.hardware.cpu import get_cpu
    from repro.hardware.node import SimulatedNode
    from repro.hardware.workload import WorkloadKind
    from repro.iosim.dumper import DataDumper

    _check_executor_args(args)
    bundle = ModelBundle.load(args.models)
    cpu = get_cpu(args.arch)
    node = SimulatedNode(cpu, seed=0)
    chunk_bytes = None if args.chunk_mb is None else int(args.chunk_mb * 1e6)
    dumper = DataDumper(
        node, chunk_bytes=chunk_bytes,
        executor=args.executor, workers=args.workers,
    )
    arr = load_field(args.dataset, args.field, scale=args.scale)
    codec = get_compressor(args.codec)
    target = int(args.target_gb * 1e9)
    plan = _load_fault_plan(args)
    _check_governor_plan(args.governor, plan)
    phase_caps = None
    if args.power_budget_w is not None:
        from repro.powercap import phase_caps_for_budget

        phase_caps = phase_caps_for_budget(
            cpu, node.power_curve, args.power_budget_w, codec=args.codec
        )

    base = dumper.dump(codec, arr, args.error_bound, target, fault_plan=plan,
                       phase_caps=phase_caps)
    if args.governor is not None:
        from repro.governor import make_governor

        governor = make_governor(
            args.governor, cpu,
            seed=args.governor_seed, window=args.governor_window,
            power_curve=node.power_curve,
        )
        tuned = dumper.dump(
            codec, arr, args.error_bound, target,
            governor=governor, fault_plan=plan, phase_caps=phase_caps,
        )
        tuned_label = f"{args.governor} gov."
    else:
        tuned = dumper.dump(
            codec, arr, args.error_bound, target,
            compress_freq_ghz=PAPER_POLICY.frequency_for(cpu, WorkloadKind.COMPRESS_SZ),
            write_freq_ghz=PAPER_POLICY.frequency_for(cpu, WorkloadKind.WRITE),
            fault_plan=plan, phase_caps=phase_caps,
        )
        tuned_label = "Eqn. 3"
    saved = base.total_energy_j - tuned.total_energy_j
    print(f"{args.target_gb:g} GB {args.codec} dump on {args.arch} "
          f"(eb {args.error_bound:g}, ratio {base.compression_ratio:.2f}x):")
    if phase_caps is not None:
        caps = ", ".join(
            f"{phase} <= {ghz:.2f} GHz" if ghz > 0 else f"{phase} infeasible"
            for phase, ghz in sorted(phase_caps.items())
        )
        print(f"  power cap  : {args.power_budget_w:g} W -> {caps}")
    print(f"  base clock : {base.total_energy_j / 1e3:8.2f} kJ "
          f"in {base.total_runtime_s:8.1f} s")
    print(f"  {tuned_label:<11s}: {tuned.total_energy_j / 1e3:8.2f} kJ "
          f"in {tuned.total_runtime_s:8.1f} s")
    print(f"  saved      : {saved / 1e3:8.2f} kJ "
          f"({saved / base.total_energy_j:+.1%})")
    if base.parallel is not None:
        print(f"  slab exec  : {base.parallel.summary()}")
    for label, rep in (("base", base), ("tuned", tuned)):
        res = rep.resilience
        if res is not None:
            print(f"  resilience ({label}) : {res.attempts} attempts, "
                  f"{res.retries} retries, "
                  f"overhead {res.energy_overhead_j / 1e3:.2f} kJ, "
                  f"failover {'yes' if res.failover else 'no'}, "
                  f"lost {'yes' if res.lost else 'no'}")
    return 0


def _cmd_govern(args) -> int:
    from repro.compressors import get_compressor
    from repro.data.registry import load_field
    from repro.governor import make_governor
    from repro.hardware.cpu import get_cpu
    from repro.hardware.node import SimulatedNode
    from repro.workflow.campaign import CheckpointCampaign, run_campaign

    if args.window < 4:
        raise ValueError(f"window must be >= 4, got {args.window}")
    plan = _load_fault_plan(args)
    _check_governor_plan(args.governor, plan)
    cpu = get_cpu(args.arch)
    node = SimulatedNode(cpu, seed=args.seed)
    governor = make_governor(
        args.governor, cpu, seed=args.seed, window=args.window,
        power_curve=node.power_curve,
    )
    arr = load_field("nyx", "velocity_x", scale=args.scale)
    campaign = CheckpointCampaign(
        snapshot_bytes=int(args.snapshot_gb * 1e9),
        n_snapshots=args.snapshots,
        compute_interval_s=args.interval_s,
    )
    report = run_campaign(
        node, get_compressor(args.codec), arr, args.error_bound, campaign,
        governor=governor, fault_plan=plan,
    )
    gov = report.governor
    print(f"{args.snapshots} snapshots x {args.snapshot_gb:g} GB on "
          f"{args.arch} under the {gov.policy} governor "
          f"(eb {args.error_bound:g}, seed {args.seed}):")
    print(f"  I/O energy   : {report.io_energy_j / 1e3:8.2f} kJ")
    print(f"  I/O wall time: {report.io_time_s:8.1f} s "
          f"({report.io_time_fraction:.1%} of the campaign)")
    freqs = ", ".join(f"{phase} @ {f:.2f} GHz" for phase, f in gov.frequencies)
    print(f"  frequencies  : {freqs or '(no stages ran)'}")
    settled = all(c for _, c in gov.converged) and bool(gov.converged)
    print(f"  converged    : {'yes' if settled else 'no'} "
          f"({len(gov.decisions)} decisions, {gov.refits} refits, "
          f"trace {gov.trace_sha256[:12]})")
    if args.telemetry_out:
        governor.telemetry.export_jsonl(args.telemetry_out)
        print(f"telemetry written to {args.telemetry_out} "
              f"({len(governor.telemetry)} samples)", file=sys.stderr)
    return 0


def _cmd_experiment(args) -> int:
    import importlib

    from repro.experiments.context import ExperimentContext
    from repro.workflow.sweep import SweepConfig

    if args.name in ("table1", "table2", "table3"):
        module = importlib.import_module(f"repro.experiments.{args.name}")
        module.main()
        return 0
    ctx = ExperimentContext(
        config=SweepConfig(
            repeats=args.repeats,
            frequency_stride=args.stride,
            data_scale=args.scale,
        )
    )
    if args.name.startswith("ext-"):
        from repro.experiments import extensions

        extensions.main(args.name, ctx)
        return 0
    module = importlib.import_module(f"repro.experiments.{args.name}")
    module.main(ctx)
    return 0


def _cmd_advise(args) -> int:
    from repro.compressors import get_compressor
    from repro.core.advisor import ErrorBoundAdvisor
    from repro.data.registry import load_field
    from repro.workflow.report import render_table

    arr = load_field(args.dataset, args.field, scale=args.scale)
    advisor = ErrorBoundAdvisor(get_compressor(args.codec), arr)
    print(render_table(advisor.table(),
                       title=f"{args.codec} profile on {args.dataset}/{args.field}"))
    if args.target_ratio is not None:
        eb = advisor.bound_for_ratio(args.target_ratio)
        print(f"\nbound for ratio >= {args.target_ratio:g}: eb = {eb:.3e}")
    else:
        eb = advisor.bound_for_psnr(args.target_psnr)
        print(f"\nbound for PSNR >= {args.target_psnr:g} dB: eb = {eb:.3e}")
    return 0


def _cmd_campaign(args) -> int:
    from repro.compressors import SZCompressor
    from repro.data.registry import load_field
    from repro.hardware.cpu import get_cpu
    from repro.workflow.campaign import (
        CampaignPoint,
        CheckpointCampaign,
        run_campaign_sweep,
    )

    _check_executor_args(args)
    cpu = get_cpu(args.arch)
    arr = load_field("nyx", "velocity_x", scale=args.scale)
    campaign = CheckpointCampaign(
        snapshot_bytes=int(args.snapshot_gb * 1e9),
        n_snapshots=args.snapshots,
        compute_interval_s=args.interval_s,
    )
    chunk_bytes = None if args.chunk_mb is None else int(args.chunk_mb * 1e6)
    plan = _load_fault_plan(args)
    _check_governor_plan(args.governor, plan)
    if args.governor is not None:
        from repro.governor import GovernorSpec

        tuned_point = CampaignPoint(
            error_bound=args.error_bound,
            governor=GovernorSpec(
                kind=args.governor,
                seed=args.governor_seed, window=args.governor_window,
            ),
        )
        tuned_label = f"{args.governor} gov."
    else:
        tuned_point = CampaignPoint(
            error_bound=args.error_bound,
            compress_freq_ghz=cpu.snap_frequency(0.875 * cpu.fmax_ghz),
            write_freq_ghz=cpu.snap_frequency(0.85 * cpu.fmax_ghz),
        )
        tuned_label = "Eqn. 3"
    # Base and tuned are two points of one cached sweep: each runs on a
    # fresh seed-0 node (mutually comparable), and with --cache-dir a
    # re-run recomputes nothing.
    base, tuned = run_campaign_sweep(
        cpu, SZCompressor(), arr,
        (CampaignPoint(error_bound=args.error_bound), tuned_point),
        campaign,
        chunk_bytes=chunk_bytes, executor=args.executor, workers=args.workers,
        fault_plan=plan, power_budget_w=args.power_budget_w,
    )
    print(f"{args.snapshots} snapshots x {args.snapshot_gb:g} GB on {args.arch} "
          f"(eb {args.error_bound:g}):")
    if args.power_budget_w is not None:
        print(f"  power budget           : {args.power_budget_w:g} W per node")
    print(f"  I/O share of wall time : {base.io_time_fraction:.1%}")
    print(f"  I/O energy, base clock : {base.io_energy_j / 1e3:8.1f} kJ")
    print(f"  I/O energy, {tuned_label:<11s}: {tuned.io_energy_j / 1e3:8.1f} kJ "
          f"({1 - tuned.io_energy_j / base.io_energy_j:.1%} saved)")
    if tuned.governor is not None:
        gov = tuned.governor
        freqs = ", ".join(f"{ph} @ {f:.2f} GHz" for ph, f in gov.frequencies)
        settled = all(c for _, c in gov.converged) and bool(gov.converged)
        print(f"  governor               : "
              f"{'converged' if settled else 'still exploring'} "
              f"({len(gov.decisions)} decisions, {gov.refits} refits) "
              f"-> {freqs}")
    print(f"  campaign wall penalty  : "
          f"{tuned.total_wall_s / base.total_wall_s - 1:.2%}")
    if plan is not None:
        for label, rep in (("base ", base), ("tuned", tuned)):
            print(f"  resilience, {label}    : "
                  f"{rep.attempts} attempts for {len(rep.snapshots)} "
                  f"snapshots, {rep.retried_bytes / 1e9:.2f} GB retried, "
                  f"overhead {rep.energy_overhead_j / 1e3:.2f} kJ, "
                  f"{rep.snapshots_lost} lost")
    return 0


def _cmd_faults(args) -> int:
    from repro.resilience import FaultPlan, RecoveryPolicy, example_plan

    if args.action == "validate":
        plan = FaultPlan.from_file(args.plan)
        policy = RecoveryPolicy.from_dict(plan.policy_doc)
        kinds = ", ".join(plan.kinds()) or "none"
        print(f"{args.plan}: OK")
        print(f"  specs   : {len(plan.specs)} ({kinds})")
        print(f"  seed    : {plan.seed}")
        print(f"  policy  : retry x{policy.retry.max_attempts}, "
              f"failover {'on' if policy.failover else 'off'}, "
              f"retune {'on' if policy.degraded_retune else 'off'}, "
              f"skip {'on' if policy.skip_on_exhaustion else 'off'}")
        return 0
    # action == "example"
    doc = example_plan().to_json()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(doc + "\n")
        print(f"example fault plan written to {args.output}")
    else:
        print(doc)
    return 0


def _cmd_cache(args) -> int:
    import os

    from repro.cache import ResultCache, get_cache

    # A configured-but-nonexistent directory is an empty store, not an
    # error — and inspecting it must not create it as a side effect
    # (ResultCache's disk tier would mkdir on construction).
    if args.cache_dir is not None and not os.path.isdir(args.cache_dir):
        if os.path.exists(args.cache_dir):
            print(f"error: {args.cache_dir} is not a directory",
                  file=sys.stderr)
            return 1
        if args.action == "clear":
            print(f"{args.cache_dir}: 0 entrie(s) removed (no such cache)")
            return 0
        print("enabled        : True")
        print("hits / misses  : 0 / 0")
        print("evictions      : 0")
        print("memory entries : 0 (0 bytes)")
        print(f"disk dir       : {args.cache_dir} (not created yet)")
        print("disk entries   : 0 (0 bytes)")
        return 0
    if args.action == "clear":
        removed = ResultCache(disk_dir=args.cache_dir).clear()
        print(f"{args.cache_dir}: {removed} entrie(s) removed")
        return 0
    # action == "stats"
    cache = (
        ResultCache(disk_dir=args.cache_dir)
        if args.cache_dir is not None else get_cache()
    )
    stats = cache.stats()
    print(f"enabled        : {stats['enabled']}")
    print(f"hits / misses  : {stats['hits']} / {stats['misses']}")
    print(f"evictions      : {stats['evictions']}")
    print(f"memory entries : {stats['memory_entries']} "
          f"({stats['memory_bytes']} bytes)")
    if "disk_dir" in stats:
        print(f"disk dir       : {stats['disk_dir']}")
        print(f"disk entries   : {stats['disk_entries']} "
              f"({stats['disk_bytes']} bytes)")
    return 0


def _cmd_serve(args) -> int:
    import os
    import signal
    import threading

    from repro.core.persistence import ModelBundle
    from repro.service import ServiceConfig, TuningServer

    config = ServiceConfig(
        host=args.host, port=args.port,
        workers=args.workers, queue_size=args.queue_size,
        batch_max=args.batch_max, default_deadline_s=args.deadline_s,
        max_pending_jobs=args.max_jobs,
    )
    server = TuningServer(config)
    if args.models_dir:
        entries = server.registry.load_dir(args.models_dir)
        print(f"warm start: {len(entries)} bundle(s) from {args.models_dir}")
    for spec in args.models or ():
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = "", spec
        if not name:
            name = os.path.splitext(os.path.basename(path))[0]
        entry = server.registry.put(name, ModelBundle.load(path))
        print(f"registered model {entry.name} v{entry.version} "
              f"({entry.fingerprint[:12]}) from {path}")

    # SIGTERM/SIGINT start a graceful drain on a helper thread (the
    # main thread sits in serve_forever and must keep running until
    # httpd.shutdown() releases it). Accepted work always completes.
    state = {"signal": None}

    def _on_signal(signum, frame):
        if state["signal"] is None:
            state["signal"] = signal.Signals(signum).name
            threading.Thread(
                target=server.drain, name="repro-serve-drain", daemon=True
            ).start()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    host, port = server.address
    print(f"tuning service listening on http://{host}:{port} "
          f"(workers={config.workers}, queue={config.queue_size}, "
          f"models={len(server.registry)})", flush=True)
    server.serve_forever()
    print(f"received {state['signal'] or 'shutdown'}: drained "
          f"{'cleanly' if server.jobs.unfinished() == 0 else 'with pending jobs'}, "
          f"queue depth {server.scheduler.queue_depth}", flush=True)
    return 0 if server.jobs.unfinished() == 0 else 1


def _cmd_cluster(args) -> int:
    from repro.compressors import SZCompressor
    from repro.data.registry import load_field
    from repro.hardware.cpu import get_cpu
    from repro.iosim.cluster import Cluster

    cpu = get_cpu(args.arch)
    cluster = Cluster(cpu, n_nodes=args.nodes, seed=0, repeats=3)
    arr = load_field("nyx", "velocity_x", scale=args.scale)
    per_node = int(args.per_node_gb * 1e9)
    base = cluster.dump_all(SZCompressor(), arr, args.error_bound, per_node)
    tuned = cluster.dump_all(
        SZCompressor(), arr, args.error_bound, per_node,
        compress_freq_ghz=cpu.snap_frequency(0.875 * cpu.fmax_ghz),
        write_freq_ghz=cpu.snap_frequency(0.85 * cpu.fmax_ghz),
    )
    print(f"{args.nodes} x {args.per_node_gb:g} GB dump on {args.arch} "
          f"(eb {args.error_bound:g}):")
    print(f"  CPU-bound fraction of the write path: {base.cpu_bound_fraction:.2f}")
    print(f"  aggregate write bandwidth: "
          f"{base.aggregate_write_bandwidth_bps / 1e6:.0f} MB/s")
    print(f"  cluster energy, base clock: {base.total_energy_j / 1e3:8.1f} kJ")
    print(f"  cluster energy, Eqn. 3    : {tuned.total_energy_j / 1e3:8.1f} kJ "
          f"({1 - tuned.total_energy_j / base.total_energy_j:.1%} saved)")
    print(f"  makespan: {base.makespan_s:.0f} s -> {tuned.makespan_s:.0f} s")
    return 0


def _cmd_powercap(args) -> int:
    from repro.compressors import SZCompressor
    from repro.data.registry import load_field
    from repro.hardware.cpu import get_cpu
    from repro.iosim.cluster import Cluster, SimulatedCluster

    cpu = get_cpu(args.arch)
    arr = load_field("nyx", "velocity_x", scale=args.scale)
    per_node = int(args.per_node_gb * 1e9)

    uncapped = Cluster(cpu, n_nodes=args.nodes, seed=args.seed, repeats=3)
    base = uncapped.dump_all(SZCompressor(), arr, args.error_bound, per_node)
    capped_cluster = SimulatedCluster(
        cpu, n_nodes=args.nodes, seed=args.seed, repeats=3,
        power_budget_w=args.budget_w, policy=args.policy,
        nfs_reserve_w=args.nfs_reserve_w,
    )
    capped = capped_cluster.dump_all(
        SZCompressor(), arr, args.error_bound, per_node
    )
    rep = capped.powercap

    print(f"{args.nodes}-node fleet on {args.arch} under a "
          f"{args.budget_w:g} W budget ({rep.policy} policy, "
          f"NFS reserve {rep.nfs_reserve_w:g} W):")
    infeasible = set(rep.infeasible)
    for node_id, cap_w, cap_ghz in rep.caps:
        note = "  [below DVFS floor]" if node_id in infeasible else ""
        print(f"  {node_id}: {cap_w:6.1f} W -> {cap_ghz:.2f} GHz{note}")
    delta_e = capped.total_energy_j / base.total_energy_j - 1
    stretch = capped.makespan_s / base.makespan_s - 1
    print(f"  uncapped: {base.total_energy_j / 1e3:8.1f} kJ, "
          f"makespan {base.makespan_s:7.0f} s")
    print(f"  capped  : {capped.total_energy_j / 1e3:8.1f} kJ "
          f"({delta_e:+.1%}), makespan {capped.makespan_s:7.0f} s "
          f"({stretch:+.1%})")
    print(f"  epochs  : {rep.epochs} allocation epochs, "
          f"trace receipt {rep.trace_sha256[:12]}")
    return 0


def _cmd_workers(args) -> int:
    import subprocess

    host, sep, port = args.connect.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"--connect must be HOST:PORT, got {args.connect!r}"
        )
    from repro.parallel import default_workers

    n = args.workers if args.workers is not None else default_workers()
    if n < 1:
        raise ValueError(f"workers must be >= 1, got {n}")
    cmd = [
        sys.executable, "-m", "repro.distributed.worker",
        "--connect", args.connect,
        "--heartbeat", str(args.heartbeat),
    ]
    if args.cache_dir:
        cmd += ["--cache-dir", args.cache_dir]
    procs = [subprocess.Popen(cmd) for _ in range(n)]
    print(f"{n} worker(s) -> {args.connect} "
          f"(pids {', '.join(str(p.pid) for p in procs)})", flush=True)
    try:
        return max(p.wait() for p in procs)
    except KeyboardInterrupt:
        for p in procs:
            p.terminate()
        for p in procs:
            p.wait()
        return 130


_HANDLERS = {
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "characterize": _cmd_characterize,
    "tune": _cmd_tune,
    "dump": _cmd_dump,
    "govern": _cmd_govern,
    "faults": _cmd_faults,
    "experiment": _cmd_experiment,
    "advise": _cmd_advise,
    "campaign": _cmd_campaign,
    "cluster": _cmd_cluster,
    "powercap": _cmd_powercap,
    "serve": _cmd_serve,
    "cache": _cmd_cache,
    "workers": _cmd_workers,
}


def _export_observability(args, tracer) -> None:
    """Write/print the artifacts requested by the observability flags."""
    from repro.observability import (
        get_registry,
        trace_summary,
        write_metrics_prom,
        write_spans_jsonl,
    )

    if args.trace_out:
        write_spans_jsonl(args.trace_out, tracer.spans)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        write_metrics_prom(args.metrics_out, get_registry())
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if args.trace_summary:
        print("\n" + trace_summary(tracer.spans))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    tracer = None
    if (
        getattr(args, "trace_out", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "trace_summary", False)
    ):
        from repro.observability import Tracer, set_tracer

        tracer = Tracer()
        set_tracer(tracer)
    restore_cache = _install_cache(args)
    try:
        return _HANDLERS[args.command](args)
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if restore_cache is not None:
            restore_cache()
        if tracer is not None:
            from repro.observability import NullTracer, set_tracer

            set_tracer(NullTracer())
            # Artifacts are written even if the command failed: a trace
            # of the stages that did run is exactly what debugging needs.
            _export_observability(args, tracer)


if __name__ == "__main__":
    sys.exit(main())
