"""Tidy storage for experiment samples.

A :class:`SampleSet` is a list of flat records (dicts) with filtering,
column extraction and grouping — the minimal relational algebra the
modeling pipeline needs, without growing a dataframe dependency.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Tuple

import numpy as np

__all__ = ["SampleSet"]


class SampleSet:
    """An ordered collection of flat sample records."""

    def __init__(self, records: Iterable[Dict[str, Any]] = ()) -> None:
        self._records: List[Dict[str, Any]] = [dict(r) for r in records]

    # -- container protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> Dict[str, Any]:
        return self._records[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SampleSet({len(self)} records)"

    # -- construction ---------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Add one record (shallow-copied)."""
        self._records.append(dict(record))

    def extend(self, records: Iterable[Dict[str, Any]]) -> None:
        """Add many records."""
        for r in records:
            self.append(r)

    def merged(self, other: "SampleSet") -> "SampleSet":
        """New set with this set's records followed by *other*'s."""
        return SampleSet(list(self._records) + list(other._records))

    # -- relational helpers ----------------------------------------------

    def filter(self, predicate: Callable[[Dict[str, Any]], bool] | None = None, **equals) -> "SampleSet":
        """Records matching a predicate and/or exact key=value pairs."""
        out = []
        for r in self._records:
            if equals and any(r.get(k) != v for k, v in equals.items()):
                continue
            if predicate is not None and not predicate(r):
                continue
            out.append(r)
        return SampleSet(out)

    def column(self, key: str) -> np.ndarray:
        """One field across all records, as a NumPy array.

        Raises ``KeyError`` naming the first record missing the field.
        """
        try:
            values = [r[key] for r in self._records]
        except KeyError as exc:
            raise KeyError(f"record is missing field {exc.args[0]!r}") from exc
        return np.asarray(values)

    def unique(self, key: str) -> Tuple[Any, ...]:
        """Sorted distinct values of a field."""
        return tuple(sorted({r[key] for r in self._records}))

    def group_by(self, *keys: str) -> Dict[Tuple[Any, ...], "SampleSet"]:
        """Partition records by a tuple of field values."""
        groups: Dict[Tuple[Any, ...], SampleSet] = {}
        for r in self._records:
            gk = tuple(r[k] for k in keys)
            groups.setdefault(gk, SampleSet()).append(r)
        return groups

    def with_field(self, key: str, fn: Callable[[Dict[str, Any]], Any]) -> "SampleSet":
        """New set with an extra computed field on every record."""
        out = SampleSet()
        for r in self._records:
            r2 = dict(r)
            r2[key] = fn(r)
            out.append(r2)
        return out

    def sort_by(self, key: str) -> "SampleSet":
        """New set sorted ascending by a field."""
        return SampleSet(sorted(self._records, key=lambda r: r[key]))
