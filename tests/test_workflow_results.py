"""Unit tests for result export and text rendering."""

import numpy as np
import pytest

from repro.core.samples import SampleSet
from repro.workflow.report import format_value, render_series, render_table
from repro.workflow.results import rows_to_csv, sampleset_to_rows


class TestSamplesetToRows:
    def test_drops_vector_fields(self):
        s = SampleSet([{"a": 1, "power_samples": (1, 2), "runtime_samples": (3, 4)}])
        rows = sampleset_to_rows(s)
        assert rows == [{"a": 1}]

    def test_explicit_fields(self):
        s = SampleSet([{"a": 1, "b": 2, "c": 3}])
        assert sampleset_to_rows(s, fields=("b", "a")) == [{"b": 2, "a": 1}]

    def test_missing_requested_field(self):
        s = SampleSet([{"a": 1}])
        with pytest.raises(KeyError, match="missing requested"):
            sampleset_to_rows(s, fields=("z",))


class TestRowsToCsv:
    def test_basic(self):
        text = rows_to_csv([{"x": 1, "y": 2.5}, {"x": 3, "y": 4.0}])
        lines = text.strip().split("\n")
        assert lines[0] == "x,y"
        assert lines[1] == "1,2.5"

    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_quotes_special_chars(self):
        text = rows_to_csv([{"name": 'a,"b"', "v": 1}])
        assert '"a,""b"""' in text

    def test_inconsistent_rows_rejected(self):
        with pytest.raises(ValueError, match="not in the header"):
            rows_to_csv([{"a": 1}, {"a": 1, "b": 2}])


class TestRenderTable:
    def test_header_and_rows(self):
        text = render_table([{"model": "Total", "rmse": 0.0442}], title="T")
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "model" in lines[1] and "rmse" in lines[1]
        assert "Total" in lines[3]

    def test_empty(self):
        assert "(empty)" in render_table([], title="x")

    def test_alignment(self):
        text = render_table([{"a": "xx", "b": 1}, {"a": "y", "b": 22}])
        lines = text.split("\n")
        assert len(lines[1]) == len(lines[2])  # separator matches header


class TestRenderSeries:
    def test_subsampling(self):
        x = np.linspace(0, 1, 100)
        text = render_series(x, {"y": x**2}, max_points=5)
        rows = text.strip().split("\n")[2:]
        assert len(rows) <= 6

    def test_short_series_kept_whole(self):
        text = render_series([1, 2, 3], {"y": [4, 5, 6]})
        assert text.count("\n") == 4  # header + sep + 3 rows

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError, match="points"):
            render_series([1, 2], {"y": [1, 2, 3]})


class TestFormatValue:
    def test_floats_four_sig_figs(self):
        assert format_value(0.044231) == "0.04423"

    def test_integral_floats(self):
        assert format_value(2.0) == "2"

    def test_strings_passthrough(self):
        assert format_value("abc") == "abc"
