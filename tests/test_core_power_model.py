"""Unit tests for PowerModel and RuntimeModel."""

import numpy as np
import pytest

from repro.core.power_model import PowerModel
from repro.core.runtime_model import RuntimeModel, fit_runtime_model
from repro.core.samples import SampleSet
from repro.utils.stats import GoodnessOfFit


def power_samples(a=0.0064, b=5.315, c=0.7429, fmin=0.8, fmax=2.0, noise=0.0, seed=0):
    f = np.arange(fmin, fmax + 1e-9, 0.05)
    y = a * f**b + c
    if noise:
        y = y + np.random.default_rng(seed).normal(0, noise, size=f.size)
    return SampleSet(
        [{"freq_ghz": float(fi), "scaled_power_w": float(yi)} for fi, yi in zip(f, y)]
    )


class TestPowerModelFit:
    def test_fit_recovers_curve(self):
        model = PowerModel.fit("Broadwell", power_samples())
        f = np.linspace(0.8, 2.0, 10)
        assert np.allclose(model.predict(f), 0.0064 * f**5.315 + 0.7429, atol=1e-5)

    def test_domain_from_samples(self):
        model = PowerModel.fit("x", power_samples())
        assert model.fmin_ghz == pytest.approx(0.8)
        assert model.fmax_ghz == pytest.approx(2.0)

    def test_invalid_domain_rejected(self):
        with pytest.raises(ValueError):
            PowerModel("x", 1, 1, 1, 2.0, 0.8, GoodnessOfFit(0, 0, 1))

    def test_savings_at_reduced_frequency(self):
        model = PowerModel.fit("x", power_samples())
        sav = model.savings_at(0.875 * 2.0)
        assert 0.10 < sav < 0.16  # paper band for Broadwell (~13 %)

    def test_savings_at_fmax_is_zero(self):
        model = PowerModel.fit("x", power_samples())
        assert model.savings_at(2.0) == pytest.approx(0.0)

    def test_evaluate_on_heldout(self):
        model = PowerModel.fit("x", power_samples())
        held = power_samples(noise=0.01, seed=3)
        gof = model.evaluate(held)
        assert gof.rmse < 0.03

    def test_table_row(self):
        model = PowerModel.fit("Skylake", power_samples())
        row = model.as_table_row()
        assert row["model"] == "Skylake"
        assert set(row) == {"model", "equation", "sse", "rmse", "r2"}

    def test_params_tuple(self):
        model = PowerModel.fit("x", power_samples())
        a, b, c = model.params
        assert (a, b, c) == (model.a, model.b, model.c)


def runtime_samples(s=0.55, fmax=2.0, noise=0.0, seed=0):
    f = np.arange(0.8, fmax + 1e-9, 0.05)
    r = (1 - s) + s * fmax / f
    if noise:
        r = r + np.random.default_rng(seed).normal(0, noise, size=f.size)
    return SampleSet(
        [{"freq_ghz": float(fi), "scaled_runtime_s": float(ri)} for fi, ri in zip(f, r)]
    )


class TestRuntimeModel:
    def test_fit_recovers_sensitivity(self):
        model = fit_runtime_model("x", runtime_samples(s=0.55))
        assert model.sensitivity == pytest.approx(0.55, abs=1e-9)

    def test_fit_under_noise(self):
        model = fit_runtime_model("x", runtime_samples(s=0.75, noise=0.01, seed=1))
        assert model.sensitivity == pytest.approx(0.75, abs=0.03)

    def test_predict_at_fmax_is_one(self):
        model = fit_runtime_model("x", runtime_samples(s=0.3))
        assert model.predict(2.0) == pytest.approx(1.0)

    def test_slowdown_at(self):
        model = RuntimeModel("x", 0.5, 2.0, GoodnessOfFit(0, 0, 1))
        # (1-0.5) + 0.5 * 2/1.6 = 1.125
        assert model.slowdown_at(1.6) == pytest.approx(0.125)

    def test_flat_workload_zero_sensitivity(self):
        model = fit_runtime_model("x", runtime_samples(s=0.0))
        assert model.sensitivity == pytest.approx(0.0, abs=1e-9)
        assert model.predict(0.8) == pytest.approx(1.0)

    def test_monotone_decreasing_prediction(self):
        model = fit_runtime_model("x", runtime_samples(s=0.6))
        f = np.linspace(0.8, 2.0, 20)
        assert np.all(np.diff(model.predict(f)) <= 0)

    def test_nonpositive_frequency_rejected(self):
        model = fit_runtime_model("x", runtime_samples())
        with pytest.raises(ValueError):
            model.predict(0.0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_runtime_model("x", SampleSet([{"freq_ghz": 1.0, "scaled_runtime_s": 1.0}]))
