"""Process-global power-cap state for distributed workers.

The coordinator broadcasts ``{"type": "powercap", ...}`` wire frames
whenever the :class:`~repro.powercap.controller.ClusterCapController`
runs an epoch; each worker stores its personalized cap here. The state
is **observational only**: task results are a pure function of the
:class:`~repro.workflow.campaign.CampaignPoint` (where a watt budget
travels as ``power_budget_w``), so runtime caps never alter what a
shard computes — that is what keeps a distributed capped campaign
byte-identical to the serial run. Operators read the cap back through
:func:`current_cap` (and the worker heartbeat path may surface it in
logs/telemetry).

Epoch-monotonic: a frame carrying an older epoch than the one already
applied is ignored, so out-of-order delivery after a coordinator
restart cannot roll a cap back.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = ["set_node_cap", "current_cap", "clear_node_cap"]

_lock = threading.Lock()
_state: Dict[str, object] = {}


def set_node_cap(
    cap_w: Optional[float],
    cap_ghz: Optional[float],
    epoch: int,
    node_id: Optional[str] = None,
) -> bool:
    """Apply a cap frame; returns False if it was stale (older epoch)."""
    epoch = int(epoch)
    with _lock:
        if _state and epoch < int(_state.get("epoch", 0)):
            return False
        _state.clear()
        _state.update(
            {
                "cap_w": None if cap_w is None else float(cap_w),
                "cap_ghz": None if cap_ghz is None else float(cap_ghz),
                "epoch": epoch,
                "node_id": node_id,
            }
        )
        return True


def current_cap() -> Optional[Dict[str, object]]:
    """The last applied cap frame, or None when uncapped."""
    with _lock:
        return dict(_state) if _state else None


def clear_node_cap() -> None:
    """Forget the cap (worker shutdown / tests)."""
    with _lock:
        _state.clear()
