"""Fault injection and recovery for the compress-and-dump pipeline.

A deterministic, seedable failure plane (:mod:`repro.resilience.faults`)
plus the recovery policy engine (:mod:`repro.resilience.engine`) that
the dumper, campaign runner and CLI thread fault plans through. See
``docs/RESILIENCE.md`` for the plan schema and the energy accounting of
retries.
"""

from repro.resilience.engine import (
    BACKOFF_POWER_FRACTION,
    STALL_POWER_FRACTION,
    CrashingSlabWrapper,
    FaultInjector,
    InjectedWorkerCrash,
    ResilienceEngine,
    SnapshotLostError,
)
from repro.resilience.faults import (
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    example_plan,
)
from repro.resilience.policies import (
    RecoveryPolicy,
    RetryPolicy,
    retune_write_frequency,
)
from repro.resilience.report import AttemptRecord, SnapshotResilience

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultPlanError",
    "example_plan",
    "RetryPolicy",
    "RecoveryPolicy",
    "retune_write_frequency",
    "FaultInjector",
    "ResilienceEngine",
    "CrashingSlabWrapper",
    "InjectedWorkerCrash",
    "SnapshotLostError",
    "AttemptRecord",
    "SnapshotResilience",
    "STALL_POWER_FRACTION",
    "BACKOFF_POWER_FRACTION",
]
