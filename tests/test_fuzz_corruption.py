"""Failure injection: corrupted streams must fail loudly, never hang.

Decoders face byte streams from disks and networks; a flipped bit must
produce a clean exception (or, where the corruption lands in payload
data rather than structure, a decoded array) — never an unbounded loop,
a segfault-from-NumPy-indexing, or silent shape corruption.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import (
    ChunkedBuffer,
    LosslessCompressor,
    SZCompressor,
    ZFPCompressor,
)
from repro.compressors.base import CompressedBuffer
from repro.data import load_field

#: Exceptions a decoder may raise on corrupt input; anything else is a bug.
ALLOWED = (ValueError, EOFError, KeyError, IndexError, OverflowError)

CODECS = (SZCompressor(), ZFPCompressor(), LosslessCompressor())


def reference_buffer(codec):
    arr = load_field("nyx", "velocity_x", scale=40)
    return arr, codec.compress(arr, 1e-2)


class TestBitFlips:
    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_payload_bit_flips_fail_cleanly(self, codec):
        arr, buf = reference_buffer(codec)
        rng = np.random.default_rng(0)
        payload = bytearray(buf.payload)
        for _ in range(30):
            corrupted = bytearray(payload)
            pos = int(rng.integers(0, len(corrupted)))
            corrupted[pos] ^= 1 << int(rng.integers(0, 8))
            bad = CompressedBuffer(
                codec=buf.codec, payload=bytes(corrupted), shape=buf.shape,
                dtype=buf.dtype, error_bound=buf.error_bound,
            )
            try:
                out = codec.decompress(bad)
            except ALLOWED:
                continue
            # Decoded despite corruption: shape/dtype must still hold.
            assert out.shape == arr.shape
            assert out.dtype == arr.dtype

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_truncations_fail_cleanly(self, codec):
        arr, buf = reference_buffer(codec)
        for frac in (0.0, 0.1, 0.5, 0.9):
            cut = int(len(buf.payload) * frac)
            bad = CompressedBuffer(
                codec=buf.codec, payload=buf.payload[:cut], shape=buf.shape,
                dtype=buf.dtype, error_bound=buf.error_bound,
            )
            with pytest.raises(ALLOWED):
                codec.decompress(bad)

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_random_garbage_buffers(self, junk):
        with pytest.raises(ALLOWED):
            CompressedBuffer.from_bytes(junk)
        with pytest.raises(ALLOWED):
            ChunkedBuffer.from_bytes(junk)

    @given(st.integers(0, 2**31), st.sampled_from(["sz", "zfp"]))
    @settings(max_examples=25, deadline=None)
    def test_random_payloads_behind_valid_header(self, seed, codec_name):
        from repro.compressors.base import get_compressor

        rng = np.random.default_rng(seed)
        junk = rng.integers(0, 256, size=rng.integers(1, 300)).astype(np.uint8)
        bad = CompressedBuffer(
            codec=codec_name, payload=junk.tobytes(), shape=(8, 8),
            dtype=np.dtype(np.float32), error_bound=1e-2,
        )
        codec = get_compressor(codec_name)
        try:
            out = codec.decompress(bad)
        except ALLOWED:
            return
        assert out.shape == (8, 8)


class TestWrongMetadata:
    def test_swapped_dtype_fails_or_decodes_shaped(self):
        arr = load_field("nyx", "velocity_x", scale=40).astype(np.float64)
        codec = SZCompressor()
        buf = codec.compress(arr, 1e-2)
        lied = CompressedBuffer(
            codec=buf.codec, payload=buf.payload, shape=buf.shape,
            dtype=np.dtype(np.float32), error_bound=buf.error_bound,
        )
        try:
            out = codec.decompress(lied)
        except ALLOWED:
            return
        assert out.dtype == np.float32

    def test_wrong_error_bound_degrades_not_crashes(self):
        # SZ derives the grid from the recorded bound: decoding with a
        # different bound yields wrong values but a well-formed array.
        arr = load_field("nyx", "velocity_x", scale=40)
        codec = SZCompressor()
        buf = codec.compress(arr, 1e-2)
        lied = CompressedBuffer(
            codec=buf.codec, payload=buf.payload, shape=buf.shape,
            dtype=buf.dtype, error_bound=1e-1,
        )
        out = codec.decompress(lied)
        assert out.shape == arr.shape
        assert np.max(np.abs(out - arr)) > 1e-2  # values really are wrong
