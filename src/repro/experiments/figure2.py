"""Fig. 2 — compression scaled runtime characteristics.

One trend per (CPU, compressor), scaled by the max-clock runtime.
Expected shape: monotonically decreasing in frequency (best runtime at
the base clock), SZ and ZFP trends overlapping, roughly 1.0 → 1.6-1.8×
over the DVFS range under the leading-loads model.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.characteristics import characteristic_bands
from repro.experiments.context import ExperimentContext
from repro.utils.stats import ConfidenceBand
from repro.workflow.report import render_series

__all__ = ["run", "main"]


def run(ctx: Optional[ExperimentContext] = None) -> Dict[Tuple, ConfidenceBand]:
    """Bands keyed by (cpu, compressor)."""
    ctx = ctx if ctx is not None else ExperimentContext()
    return characteristic_bands(
        ctx.outcome.compression_samples, ("cpu", "compressor"), value="runtime"
    )


def main(ctx: Optional[ExperimentContext] = None) -> str:
    """Render every trend of Fig. 2 as a subsampled series table."""
    bands = run(ctx)
    chunks = []
    for (cpu, comp), band in sorted(bands.items()):
        chunks.append(
            render_series(
                band.x,
                {"scaled_runtime": band.mean, "ci_low": band.lower, "ci_high": band.upper},
                title=f"FIG. 2 — compression scaled runtime: {cpu}/{comp}",
            )
        )
    text = "\n\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":
    main()
