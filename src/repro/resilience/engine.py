"""Deterministic fault injection and the recovery engine.

:class:`FaultInjector` answers one question — *which faults fire at
logical coordinate (stage, snapshot, attempt)?* — from a seeded RNG
keyed purely on those coordinates, so injection commutes with executor
choice. :class:`ResilienceEngine` owns the write-attempt loop: degrade
the NFS, stall, fail, back off, re-tune, fail over to the burst buffer
or finally skip — charging every wasted joule and second to the
snapshot's :class:`~repro.resilience.report.SnapshotResilience`.

Energy model of the failure modes (documented in docs/RESILIENCE.md):

- a failed attempt wastes ``severity × t_write`` seconds at full write
  power (the bytes moved before the error surfaced are thrown away);
- a stalled client burns :data:`STALL_POWER_FRACTION` of write power
  while it waits (cores idle in the iowait state, package stays awake);
- backoff waits burn :data:`BACKOFF_POWER_FRACTION` of write power;
- crashed slab workers and corrupted chunks re-run their slab, charged
  as that slab's share of the compress-stage energy.

All ground-truth lookups use the node's noise-free ``true_*`` surface —
fault accounting never consumes the measurement RNG, so a faulted run's
noise stream stays aligned with the clean run it is compared against.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.hardware.workload import write_workload
from repro.iosim.burstbuffer import BurstBufferTarget
from repro.iosim.nfs import NfsTarget
from repro.observability import get_registry, get_tracer
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.resilience.policies import RecoveryPolicy, retune_write_frequency
from repro.resilience.report import AttemptRecord, SnapshotResilience

__all__ = [
    "FaultInjector",
    "ResilienceEngine",
    "InjectedWorkerCrash",
    "SnapshotLostError",
    "STALL_POWER_FRACTION",
    "BACKOFF_POWER_FRACTION",
]

#: Fraction of write-stage power burned while the client blocks on a
#: stalled server (iowait: cores idle, package and uncore stay awake).
STALL_POWER_FRACTION = 0.35

#: Fraction of write-stage power burned during a backoff sleep.
BACKOFF_POWER_FRACTION = 0.25


class InjectedWorkerCrash(RuntimeError):
    """A slab worker was deliberately crashed by the fault plane."""


class SnapshotLostError(RuntimeError):
    """A snapshot could not be written and the policy forbids skipping."""


class _AttemptFailed(Exception):
    """Internal: unwinds a failed write attempt out of its error span."""

    def __init__(self, spec: FaultSpec):
        super().__init__(spec.kind.value)
        self.spec = spec


class FaultInjector:
    """Deterministic trigger oracle for a :class:`FaultPlan`.

    Trigger decisions depend only on ``(plan.seed, spec index, stage,
    snapshot, attempt[, target])`` — never on call order, wall clock or
    thread identity — so any executor backend observes the same faults.
    """

    _STAGE_KEYS = {"write": 1, "compress": 2, "slab": 3, "chunk": 4}

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def _rng(self, spec_index: int, stage: str, snapshot: int, attempt: int,
             target: int = 0) -> np.random.Generator:
        return np.random.default_rng((
            int(self.plan.seed),
            int(spec_index),
            self._STAGE_KEYS[stage],
            int(snapshot),
            int(attempt),
            int(target),
        ))

    def _fires(self, spec_index: int, spec: FaultSpec, stage: str,
               snapshot: int, attempt: int, target: int = 0) -> bool:
        if not spec.applies_to(snapshot, attempt):
            return False
        if spec.probability >= 1.0:
            return True
        if spec.probability <= 0.0:
            return False
        rng = self._rng(spec_index, stage, snapshot, attempt, target)
        return bool(rng.random() < spec.probability)

    def write_faults(self, snapshot: int, attempt: int) -> List[FaultSpec]:
        """Write-stage faults firing at this (snapshot, attempt)."""
        return [
            spec
            for i, spec in enumerate(self.plan.specs)
            if spec.kind.is_write_fault
            and self._fires(i, spec, "write", snapshot, attempt)
        ]

    def compress_frequency_cap(self, snapshot: int) -> Optional[float]:
        """Throttle cap (fraction of fmax) on the compress stage, if any."""
        caps = [
            spec.severity
            for i, spec in enumerate(self.plan.specs)
            if spec.kind is FaultKind.DVFS_THROTTLE
            and self._fires(i, spec, "compress", snapshot, 1)
        ]
        return min(caps) if caps else None

    def crashing_slabs(self, snapshot: int, attempt: int, n_slabs: int) -> Tuple[int, ...]:
        """Slab indices a worker-crash fault kills at this attempt."""
        crashed = set()
        for i, spec in enumerate(self.plan.specs):
            if spec.kind is not FaultKind.WORKER_CRASH:
                continue
            # Crashes clear by default after the first attempt: a
            # respawned worker does not re-crash unless the spec says so.
            attempts_limit = 1 if spec.attempts is None else spec.attempts
            if attempt > attempts_limit:
                continue
            if spec.snapshots is not None and snapshot not in spec.snapshots:
                continue
            targets = spec.targets if spec.targets is not None else range(n_slabs)
            for slab in targets:
                if slab >= n_slabs:
                    continue
                if spec.probability >= 1.0 or (
                    spec.probability > 0.0
                    and self._rng(i, "slab", snapshot, attempt, slab).random()
                    < spec.probability
                ):
                    crashed.add(int(slab))
        return tuple(sorted(crashed))

    def flipped_chunks(self, snapshot: int, n_chunks: int) -> Tuple[int, ...]:
        """Chunk indices a bit-flip fault corrupts for this snapshot."""
        flipped = set()
        for i, spec in enumerate(self.plan.specs):
            if spec.kind is not FaultKind.BIT_FLIP:
                continue
            targets = spec.targets if spec.targets is not None else range(n_chunks)
            for chunk in targets:
                if chunk >= n_chunks:
                    continue
                if self._fires(i, spec, "chunk", snapshot, 1, chunk):
                    flipped.add(int(chunk))
        return tuple(sorted(flipped))

    def slab_wrapper(self, snapshot: int, n_slabs: int) -> "CrashingSlabWrapper":
        """A picklable slab-fn wrapper injecting the planned crashes."""
        crashes = {
            attempt: self.crashing_slabs(snapshot, attempt, n_slabs)
            for attempt in (1, 2, 3)
        }
        return CrashingSlabWrapper(crashes)


class _CrashingSlabFn:
    """Picklable slab task that crashes on the planned (slab, attempt).

    ``attempt`` is bumped by :meth:`repro.parallel.Executor.map_retry`
    between rounds; process pools pickle the callable at submit time, so
    the bumped value travels to the workers.
    """

    def __init__(self, fn: Callable, crashes: dict):
        self.fn = fn
        self.crashes = crashes
        self.attempt = 1

    def __call__(self, indexed_item):
        index, item = indexed_item
        if index in self.crashes.get(self.attempt, ()):
            raise InjectedWorkerCrash(
                f"slab {index} crashed (injected, attempt {self.attempt})"
            )
        return self.fn(item)


class CrashingSlabWrapper:
    """Wraps a slab fn for :class:`~repro.compressors.ChunkedCompressor`.

    The chunked compressor enumerates its slabs when a wrapper is
    installed, so the wrapped callable sees ``(index, slab)`` and can
    target specific slabs deterministically.
    """

    def __init__(self, crashes: dict):
        self.crashes = crashes

    @property
    def any_planned(self) -> bool:
        return any(self.crashes.values())

    def __call__(self, fn: Callable) -> _CrashingSlabFn:
        return _CrashingSlabFn(fn, self.crashes)


class ResilienceEngine:
    """Runs recovery around the dump pipeline's write stage."""

    def __init__(
        self,
        plan: FaultPlan,
        policy: Optional[RecoveryPolicy] = None,
        burst_buffer: Optional[BurstBufferTarget] = None,
    ):
        self.plan = plan
        if policy is None:
            policy = RecoveryPolicy.from_dict(plan.policy_doc)
        self.policy = policy
        self.burst_buffer = (
            burst_buffer if burst_buffer is not None else BurstBufferTarget()
        )
        self.injector = FaultInjector(plan)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def degraded_nfs(nfs: NfsTarget, bandwidth_factor: float) -> NfsTarget:
        """An :class:`NfsTarget` with its server path scaled down."""
        return nfs.degraded(bandwidth_factor)

    def _count_fault(self, kind: FaultKind) -> None:
        get_registry().counter(
            "repro_faults_injected_total", {"kind": kind.value},
            help="faults fired by the injection plane",
        ).inc()

    # -- the write-attempt loop -------------------------------------------

    def run_write(
        self,
        node,
        nfs: NfsTarget,
        nbytes: int,
        freq_ghz: float,
        snapshot: int,
        run_stage: Callable,
    ):
        """Write *nbytes* with retry/failover/skip under the fault plan.

        *run_stage* is the dumper's measured-stage runner
        ``(workload, freq) -> (snapped_freq, runtime_s, energy_j)``; it
        is only invoked for the surviving attempt, so the measurement
        noise stream matches a clean run's.

        Returns ``(stage_name, snapped_freq, runtime_s, energy_j,
        SnapshotResilience)``.
        """
        policy = self.policy
        retry = policy.retry
        tracer = get_tracer()
        registry = get_registry()
        records: List[AttemptRecord] = []
        fault_names: List[str] = []
        energy_overhead = 0.0
        time_overhead = 0.0
        retried_bytes = 0
        attempts_used = 0

        for attempt in range(1, retry.max_attempts + 1):
            attempts_used = attempt
            faults = self.injector.write_faults(snapshot, attempt)
            eff_nfs = nfs
            cap_ghz: Optional[float] = None
            stall_s = 0.0
            failing: Optional[FaultSpec] = None
            for spec in faults:
                self._count_fault(spec.kind)
                fault_names.append(spec.kind.value)
                if spec.kind is FaultKind.NFS_SLOWDOWN:
                    eff_nfs = self.degraded_nfs(eff_nfs, 1.0 - spec.severity)
                elif spec.kind is FaultKind.NFS_STALL:
                    stall_s += spec.stall_s
                elif spec.kind is FaultKind.DVFS_THROTTLE:
                    # A thermal event cannot push the clock below the
                    # DVFS floor; clamp so deep throttles stay on-grid.
                    cap = max(spec.severity * node.cpu.fmax_ghz,
                              node.cpu.fmin_ghz)
                    cap_ghz = cap if cap_ghz is None else min(cap_ghz, cap)
                elif spec.kind.fails_attempt and failing is None:
                    failing = spec

            workload = write_workload(
                nbytes, eff_nfs.effective_bandwidth_bps(), name="dump-write"
            )
            f_eff = freq_ghz
            if cap_ghz is not None:
                f_eff = min(f_eff, node.cpu.snap_frequency(cap_ghz))
            if policy.degraded_retune and (eff_nfs is not nfs or cap_ghz is not None):
                f_eff = retune_write_frequency(node, workload, cap_ghz=cap_ghz)

            if stall_s > 0.0:
                stall_power = (
                    node.true_power_w(workload, f_eff) * STALL_POWER_FRACTION
                )
                time_overhead += stall_s
                energy_overhead += stall_s * stall_power

            if failing is not None:
                # The attempt dies after `severity` of the write moved;
                # charge the wasted slice at ground-truth cost.
                frac = float(failing.severity)
                t_lost = frac * node.true_runtime_s(workload, f_eff)
                e_lost = t_lost * node.true_power_w(workload, f_eff)
                time_overhead += t_lost
                energy_overhead += e_lost
                retried_bytes += nbytes
                registry.counter(
                    "repro_write_retries_total",
                    help="failed write attempts that were retried",
                ).inc()
                try:
                    with tracer.span(
                        "resilience.attempt",
                        snapshot=snapshot, attempt=attempt,
                        fault=failing.kind.value,
                    ) as sp:
                        sp.set(wasted_s=t_lost, wasted_j=e_lost)
                        raise _AttemptFailed(failing)
                except _AttemptFailed:
                    pass
                records.append(AttemptRecord(
                    snapshot=snapshot, attempt=attempt, stage="write",
                    outcome="failed", faults=tuple(s.kind.value for s in faults),
                    freq_ghz=float(f_eff), runtime_s=float(t_lost),
                    energy_j=float(e_lost), nbytes=int(nbytes),
                ))
                if attempt < retry.max_attempts:
                    backoff = retry.backoff_s(attempt, self.plan.seed, snapshot)
                    time_overhead += backoff
                    energy_overhead += backoff * (
                        node.true_power_w(workload, f_eff)
                        * BACKOFF_POWER_FRACTION
                    )
                continue

            # Surviving attempt: measure it for real.
            with tracer.span(
                "resilience.attempt",
                snapshot=snapshot, attempt=attempt, fault="none",
            ) as sp:
                snapped, runtime, energy = run_stage(workload, f_eff)
                sp.set(freq_ghz=snapped, modeled_runtime_s=runtime)
            records.append(AttemptRecord(
                snapshot=snapshot, attempt=attempt, stage="write",
                outcome="ok", faults=tuple(s.kind.value for s in faults),
                freq_ghz=float(snapped), runtime_s=float(runtime),
                energy_j=float(energy), nbytes=int(nbytes),
            ))
            return "write", snapped, runtime, energy, SnapshotResilience(
                snapshot=snapshot, attempts=attempts_used,
                retried_bytes=retried_bytes,
                energy_overhead_j=float(energy_overhead),
                time_overhead_s=float(time_overhead),
                faults=tuple(fault_names), records=tuple(records),
            )

        # Retries exhausted.
        if policy.failover:
            workload = write_workload(
                nbytes, self.burst_buffer.effective_bandwidth_bps(),
                name="dump-failover",
            )
            registry.counter(
                "repro_failover_total",
                help="snapshots redirected to the burst buffer",
            ).inc()
            with tracer.span(
                "resilience.failover", snapshot=snapshot,
                attempts=attempts_used,
            ) as sp:
                snapped, runtime, energy = run_stage(workload, freq_ghz)
                sp.set(freq_ghz=snapped, modeled_runtime_s=runtime)
            records.append(AttemptRecord(
                snapshot=snapshot, attempt=attempts_used + 1,
                stage="write-failover", outcome="failover",
                freq_ghz=float(snapped), runtime_s=float(runtime),
                energy_j=float(energy), nbytes=int(nbytes),
            ))
            return "write-failover", snapped, runtime, energy, SnapshotResilience(
                snapshot=snapshot, attempts=attempts_used + 1,
                retried_bytes=retried_bytes,
                energy_overhead_j=float(energy_overhead),
                time_overhead_s=float(time_overhead),
                faults=tuple(fault_names), failover=True,
                records=tuple(records),
            )

        if policy.skip_on_exhaustion:
            registry.counter(
                "repro_snapshots_lost_total",
                help="snapshots dropped after recovery was exhausted",
            ).inc()
            records.append(AttemptRecord(
                snapshot=snapshot, attempt=attempts_used, stage="write",
                outcome="skipped", nbytes=int(nbytes),
            ))
            return "write-skipped", float(freq_ghz), 0.0, 0.0, SnapshotResilience(
                snapshot=snapshot, attempts=attempts_used,
                retried_bytes=retried_bytes,
                energy_overhead_j=float(energy_overhead),
                time_overhead_s=float(time_overhead),
                faults=tuple(fault_names), lost=True,
                records=tuple(records),
            )

        raise SnapshotLostError(
            f"snapshot {snapshot}: {attempts_used} write attempts failed and "
            "the recovery policy forbids failover and skipping"
        )

    # -- compress-side corruption -----------------------------------------

    def verify_container(self, container, snapshot: int):
        """Exercise the per-chunk checksum against planned bit flips.

        For each chunk the plan corrupts, flip one payload byte in a
        serialized copy and confirm the container decoder rejects it
        with :class:`~repro.compressors.chunked.CorruptChunkError`.
        Returns the indices of chunks that needed recompression.
        """
        from repro.compressors.chunked import ChunkedBuffer, CorruptChunkError

        flipped = self.injector.flipped_chunks(snapshot, len(container.chunks))
        if not flipped:
            return ()
        registry = get_registry()
        blob = container.to_bytes()
        offsets = _chunk_body_offsets(container)
        detected = []
        for chunk_index in flipped:
            self._count_fault(FaultKind.BIT_FLIP)
            start, size = offsets[chunk_index]
            if size == 0:  # pragma: no cover - chunks always have bodies
                continue
            rng = self.injector._rng(0, "chunk", snapshot, 1, chunk_index)
            pos = start + int(rng.integers(0, size))
            corrupted = bytearray(blob)
            corrupted[pos] ^= 1 << int(rng.integers(0, 8))
            try:
                ChunkedBuffer.from_bytes(bytes(corrupted))
            except CorruptChunkError:
                detected.append(chunk_index)
                registry.counter(
                    "repro_corruption_detected_total",
                    help="bit flips caught by the per-chunk checksum",
                ).inc()
            except Exception:  # pragma: no cover - framing damage
                # The flip landed on structure the parser rejects before
                # the checksum runs; still a detection.
                detected.append(chunk_index)
        return tuple(detected)


def _chunk_body_offsets(container) -> List[Tuple[int, int]]:
    """(start, size) of every chunk body inside ``container.to_bytes()``."""
    from repro.compressors.chunked import (
        _CHUNK_PREFIX_BYTES,
        _FIXED_HEADER_BYTES,
    )

    offsets = []
    cursor = _FIXED_HEADER_BYTES + 8 * len(container.shape)
    for chunk in container.chunks:
        size = chunk.nbytes
        offsets.append((cursor + _CHUNK_PREFIX_BYTES, size))
        cursor += _CHUNK_PREFIX_BYTES + size
    return offsets
