"""Unit + property tests for the SZ codec end to end."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compressors import SZCompressor
from repro.compressors.base import CorruptStreamError
from repro.data import load_field


@pytest.fixture(scope="module")
def sz():
    return SZCompressor()


class TestModes:
    def test_constant_array(self, sz):
        arr = np.full((16, 16), 3.25, dtype=np.float32)
        buf, rec = sz.roundtrip(arr, 1e-3)
        assert np.max(np.abs(rec - arr)) <= 1e-3
        assert buf.nbytes < 200  # constant mode is tiny

    def test_near_constant_array(self, sz):
        arr = np.full(100, 1.0, dtype=np.float64)
        arr[50] = 1.0 + 4e-4
        buf, rec = sz.roundtrip(arr, 1e-3)
        assert np.max(np.abs(rec - arr)) <= 1e-3

    def test_raw_fallback_on_extreme_range(self, sz):
        # Range/eb overflows the grid: must fall back losslessly.
        arr = np.array([0.0, 1e300], dtype=np.float64)
        buf, rec = sz.roundtrip(arr, 1e-10)
        assert np.array_equal(rec, arr)

    def test_raw_fallback_on_sub_ulp_bound(self, sz):
        arr = np.array([1e6, 1e6 + 1, 1e6 + 2], dtype=np.float32)
        buf, rec = sz.roundtrip(arr, 1e-5)
        assert np.array_equal(rec, arr)

    def test_grid_mode_used_for_normal_data(self, sz):
        arr = np.random.default_rng(0).normal(size=2048).astype(np.float32)
        buf = sz.compress(arr, 1e-2)
        assert buf.ratio > 2.0  # actually compressed, not raw


class TestErrorBounds:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3, 1e-4])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_paper_bounds(self, sz, eb, dtype):
        arr = load_field("nyx", "velocity_x", scale=32).astype(dtype)
        buf, rec = sz.roundtrip(arr, eb)
        err = np.max(np.abs(arr.astype(np.float64) - rec.astype(np.float64)))
        assert err <= eb * (1 + 1e-9)

    def test_finer_bound_lower_ratio(self, sz):
        arr = load_field("cesm-atm", "T", scale=24)
        ratios = [sz.compress(arr, eb).ratio for eb in (1e-1, 1e-2, 1e-3, 1e-4)]
        assert ratios == sorted(ratios, reverse=True)

    def test_smooth_data_compresses_better(self, sz):
        smooth = load_field("cesm-atm", "T", scale=24)
        rough = np.random.default_rng(0).normal(size=smooth.shape).astype(np.float32)
        eb = 1e-3
        assert sz.compress(smooth, eb).ratio > sz.compress(rough, eb).ratio


class TestShapes:
    @pytest.mark.parametrize("shape", [(1,), (7,), (1000,), (3, 5), (16, 16),
                                       (4, 5, 6), (3, 4, 5, 6)])
    def test_arbitrary_shapes(self, sz, shape):
        rng = np.random.default_rng(1)
        arr = rng.normal(size=shape).astype(np.float32)
        buf, rec = sz.roundtrip(arr, 1e-2)
        assert rec.shape == shape
        assert np.max(np.abs(arr - rec)) <= 1e-2

    def test_single_element(self, sz):
        arr = np.array([[3.7]], dtype=np.float64)
        _, rec = sz.roundtrip(arr, 1e-3)
        assert abs(rec[0, 0] - 3.7) <= 1e-3


class TestSerialization:
    def test_buffer_bytes_roundtrip(self, sz):
        from repro.compressors.base import CompressedBuffer

        arr = np.random.default_rng(2).normal(size=(32, 32)).astype(np.float32)
        buf = sz.compress(arr, 1e-2)
        restored = CompressedBuffer.from_bytes(buf.to_bytes())
        rec = sz.decompress(restored)
        assert np.max(np.abs(arr - rec)) <= 1e-2

    def test_corrupt_payload_detected(self, sz):
        arr = np.random.default_rng(3).normal(size=256).astype(np.float32)
        buf = sz.compress(arr, 1e-2)
        bad = buf.__class__(
            codec=buf.codec,
            payload=b"\x00" + buf.payload[1:],
            shape=buf.shape,
            dtype=buf.dtype,
            error_bound=buf.error_bound,
        )
        with pytest.raises((CorruptStreamError, ValueError, EOFError)):
            sz.decompress(bad)

    def test_shape_mismatch_detected(self, sz):
        arr = np.random.default_rng(4).normal(size=256).astype(np.float32)
        buf = sz.compress(arr, 1e-2)
        bad = buf.__class__(
            codec=buf.codec,
            payload=buf.payload,
            shape=(128,),
            dtype=buf.dtype,
            error_bound=buf.error_bound,
        )
        with pytest.raises(CorruptStreamError, match="symbols"):
            sz.decompress(bad)


class TestConfiguration:
    def test_invalid_alphabet(self):
        with pytest.raises(ValueError):
            SZCompressor(max_alphabet=1)

    def test_invalid_zlib_level(self):
        with pytest.raises(ValueError):
            SZCompressor(zlib_level=10)

    def test_small_alphabet_forces_escapes(self):
        # With a tiny literal table most residuals escape — the codec
        # must still honour the bound.
        codec = SZCompressor(max_alphabet=4)
        arr = np.random.default_rng(5).normal(size=4096).astype(np.float32)
        buf, rec = codec.roundtrip(arr, 1e-3)
        assert np.max(np.abs(arr - rec)) <= 1e-3


class TestPropertyRoundTrip:
    @given(st.data())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_bound_always_respected(self, data):
        ndim = data.draw(st.integers(1, 3))
        shape = tuple(data.draw(st.integers(1, 12)) for _ in range(ndim))
        n = int(np.prod(shape))
        values = data.draw(
            st.lists(st.floats(-1e4, 1e4, width=32), min_size=n, max_size=n)
        )
        eb = data.draw(st.sampled_from([1e-1, 1e-2, 1e-3]))
        arr = np.array(values, dtype=np.float32).reshape(shape)
        sz = SZCompressor()
        _, rec = sz.roundtrip(arr, eb)
        err = np.max(np.abs(arr.astype(np.float64) - rec.astype(np.float64)))
        assert err <= eb * (1 + 1e-9)
