"""Distributed sharded execution: coordinator/worker fleet over TCP.

This package turns the :mod:`repro.parallel` executor abstraction into
a multi-*process-tree* fleet: a :class:`DistributedExecutor` shards a
map across independent worker processes connected by a verified wire
protocol, survives worker SIGKILLs by reassigning in-flight shards, and
commits every shard result at most once so the output stays
byte-identical to a serial run.

Layering (no cycles):

* :mod:`repro.distributed.wire` — framing, CRC, blob packing (stdlib only).
* :mod:`repro.distributed.shards` — deterministic worker-count-independent
  shard planning.
* :mod:`repro.distributed.worker` — the worker process entry point.
* :mod:`repro.distributed.coordinator` — the executor itself.

``repro.parallel`` registers the ``"distributed"`` backend lazily so
importing the parallel layer never drags sockets or subprocess
machinery in.
"""

from repro.distributed.coordinator import (
    DistributedExecutor,
    FleetError,
    WorkerLostError,
)
from repro.distributed.shards import Shard, ShardPlan, plan_shards
from repro.distributed.wire import (
    MAGIC,
    MAX_FRAME_BYTES,
    WireCorruptionError,
    WireError,
    WireTruncatedError,
    decode_frame,
    encode_frame,
    pack_blob,
    recv_frame,
    send_frame,
    unpack_blob,
)


def __getattr__(name):
    # ``run_worker`` loads lazily: eagerly importing ``.worker`` here
    # would shadow the ``python -m repro.distributed.worker`` entry
    # point (runpy's double-import warning) for every spawned process.
    if name == "run_worker":
        from repro.distributed.worker import run_worker

        return run_worker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DistributedExecutor",
    "FleetError",
    "WorkerLostError",
    "Shard",
    "ShardPlan",
    "plan_shards",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "WireError",
    "WireTruncatedError",
    "WireCorruptionError",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "recv_frame",
    "pack_blob",
    "unpack_blob",
    "run_worker",
]
