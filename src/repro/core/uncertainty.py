"""Bootstrap uncertainty for the fitted power models.

The paper reports point estimates for (a, b, c); with only tens of
frequency points and visible measurement scatter, the exponent in
particular is weakly identified (a grid of b values fits almost equally
well — the reason the Skylake rows vary wildly between fits). The
bootstrap quantifies that: refit on resampled records and report
percentile intervals for each parameter and a pointwise prediction
band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.regression import fit_power_law
from repro.core.samples import SampleSet

__all__ = ["ParameterInterval", "BootstrapResult", "bootstrap_power_fit"]


@dataclass(frozen=True)
class ParameterInterval:
    """Point estimate plus a percentile confidence interval."""

    estimate: float
    lower: float
    upper: float

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


@dataclass(frozen=True)
class BootstrapResult:
    """Bootstrap distribution summary of an ``a·f^b + c`` fit."""

    a: ParameterInterval
    b: ParameterInterval
    c: ParameterInterval
    #: Frequencies of the prediction band.
    band_freqs: np.ndarray
    #: Pointwise lower/upper prediction band (same percentiles).
    band_lower: np.ndarray
    band_upper: np.ndarray
    n_boot: int
    confidence: float


def bootstrap_power_fit(
    samples: SampleSet,
    value_key: str = "scaled_power_w",
    n_boot: int = 200,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapResult:
    """Nonparametric bootstrap over sample records.

    Records are resampled with replacement; each replicate is refit
    with the same estimator as the headline models. Intervals are
    percentile-based.
    """
    if n_boot < 10:
        raise ValueError(f"n_boot must be >= 10, got {n_boot}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    f = samples.column("freq_ghz").astype(np.float64)
    y = samples.column(value_key).astype(np.float64)
    if f.size < 8:
        raise ValueError(f"need at least 8 samples to bootstrap, got {f.size}")

    point = fit_power_law(f, y)
    rng = np.random.default_rng(seed)
    band_freqs = np.linspace(f.min(), f.max(), 25)

    params = np.empty((n_boot, 3))
    bands = np.empty((n_boot, band_freqs.size))
    for i in range(n_boot):
        idx = rng.integers(0, f.size, size=f.size)
        # Degenerate resamples (too few distinct frequencies) are
        # re-drawn; the fit needs leverage across the curve.
        while np.unique(f[idx]).size < 4:
            idx = rng.integers(0, f.size, size=f.size)
        fit = fit_power_law(f[idx], y[idx])
        params[i] = (fit.a, fit.b, fit.c)
        bands[i] = fit.predict(band_freqs)

    lo_q = 100 * (1 - confidence) / 2
    hi_q = 100 - lo_q

    def interval(estimate: float, column: np.ndarray) -> ParameterInterval:
        lo, hi = np.percentile(column, [lo_q, hi_q])
        return ParameterInterval(estimate=estimate, lower=float(lo), upper=float(hi))

    return BootstrapResult(
        a=interval(point.a, params[:, 0]),
        b=interval(point.b, params[:, 1]),
        c=interval(point.c, params[:, 2]),
        band_freqs=band_freqs,
        band_lower=np.percentile(bands, lo_q, axis=0),
        band_upper=np.percentile(bands, hi_q, axis=0),
        n_boot=n_boot,
        confidence=confidence,
    )
