"""Burst-buffer tier: dump to local NVMe, drain to the NFS asynchronously.

Liu et al. ([10] in the paper) analyse exactly this bottleneck
structure: applications absorb snapshots into a fast near-node tier and
a background drainer trickles them to the parallel file system. The
energy question changes shape — the *application-visible* dump is the
fast NVMe write, while the drain burns server-side time that overlaps
compute and can itself be frequency-tuned.

:class:`BurstBufferTarget` models the fast tier; :class:`TieredDumper`
runs compress → NVMe-write (application-visible) and reports the NFS
drain stage separately so campaign accounting can overlap it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compressors.base import Compressor
from repro.hardware.node import SimulatedNode
from repro.hardware.workload import WorkloadKind, compression_workload, write_workload
from repro.iosim.dumper import StageReport
from repro.iosim.nfs import NfsTarget
from repro.utils.validation import check_positive

__all__ = ["BurstBufferTarget", "TieredDumpReport", "TieredDumper"]

_KIND_BY_CODEC = {
    "sz": WorkloadKind.COMPRESS_SZ,
    "zfp": WorkloadKind.COMPRESS_ZFP,
}


@dataclass(frozen=True)
class BurstBufferTarget:
    """Near-node NVMe tier."""

    #: Sustained local write rate at reference clock, MB/s.
    nvme_mbps: float = 2400.0
    #: Per-op overhead is negligible on the local path.
    cpu_copy_mbps: float = 1600.0

    def __post_init__(self):
        check_positive(self.nvme_mbps, "nvme_mbps")
        check_positive(self.cpu_copy_mbps, "cpu_copy_mbps")

    def effective_bandwidth_bps(self) -> float:
        """Client-visible absorb rate (device ∧ copy path), B/s."""
        return min(self.nvme_mbps, self.cpu_copy_mbps) * 1e6


@dataclass(frozen=True)
class TieredDumpReport:
    """Outcome of a compress → burst-buffer → drain dump."""

    compress: StageReport
    absorb: StageReport
    drain: StageReport
    compression_ratio: float
    error_bound: float

    @property
    def application_visible_runtime_s(self) -> float:
        """Time the application is blocked (compress + NVMe absorb)."""
        return self.compress.runtime_s + self.absorb.runtime_s

    @property
    def total_energy_j(self) -> float:
        """All energy, including the overlapped drain."""
        return self.compress.energy_j + self.absorb.energy_j + self.drain.energy_j


class TieredDumper:
    """Runs the two-tier dump on a simulated node."""

    def __init__(
        self,
        node: SimulatedNode,
        burst_buffer: BurstBufferTarget | None = None,
        nfs: NfsTarget | None = None,
        repeats: int = 5,
    ) -> None:
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.node = node
        self.bb = burst_buffer if burst_buffer is not None else BurstBufferTarget()
        self.nfs = nfs if nfs is not None else NfsTarget()
        self.repeats = int(repeats)

    def _run_stage(self, workload, freq_ghz: float) -> StageReport:
        self.node.set_frequency(freq_ghz)
        runs = [self.node.run(workload) for _ in range(self.repeats)]
        return StageReport(
            stage=workload.name,
            freq_ghz=runs[0].freq_ghz,
            bytes_processed=workload.bytes_processed,
            runtime_s=float(np.mean([m.runtime_s for m in runs])),
            energy_j=float(np.mean([m.energy_j for m in runs])),
        )

    def dump(
        self,
        compressor: Compressor,
        sample_field: np.ndarray,
        error_bound: float,
        target_bytes: int,
        compress_freq_ghz: float | None = None,
        absorb_freq_ghz: float | None = None,
        drain_freq_ghz: float | None = None,
    ) -> TieredDumpReport:
        """Compress, absorb into the burst buffer, then drain to the NFS.

        The drain is the same compressed volume pushed through the NFS
        path (it still costs CPU on whichever core drives it). Because
        it overlaps compute, its *runtime* is free — but its energy is
        not, and since the write path is CPU-bound, running it at f_min
        actually costs more energy (the runtime stretch outweighs the
        power drop). The default is therefore the base clock; pass the
        site's energy-optimal write frequency for the real deployment.
        """
        check_positive(target_bytes, "target_bytes")
        if compressor.name not in _KIND_BY_CODEC:
            raise KeyError(f"no workload kind for codec {compressor.name!r}")
        cpu = self.node.cpu
        f_c = cpu.fmax_ghz if compress_freq_ghz is None else compress_freq_ghz
        f_a = cpu.fmax_ghz if absorb_freq_ghz is None else absorb_freq_ghz
        f_d = cpu.fmax_ghz if drain_freq_ghz is None else drain_freq_ghz

        buf = compressor.compress(sample_field, error_bound)
        ratio = buf.ratio
        compressed = max(1, int(round(target_bytes / ratio)))

        wl_c = compression_workload(
            _KIND_BY_CODEC[compressor.name], target_bytes, error_bound,
            name="tiered-compress",
        )
        wl_absorb = write_workload(
            compressed, self.bb.effective_bandwidth_bps(), name="bb-absorb"
        )
        wl_drain = write_workload(
            compressed, self.nfs.effective_bandwidth_bps(), name="nfs-drain"
        )
        return TieredDumpReport(
            compress=self._run_stage(wl_c, f_c),
            absorb=self._run_stage(wl_absorb, f_a),
            drain=self._run_stage(wl_drain, f_d),
            compression_ratio=ratio,
            error_bound=error_bound,
        )
