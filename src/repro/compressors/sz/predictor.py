"""N-dimensional Lorenzo prediction on grid indices.

The Lorenzo predictor estimates each point from its already-visited
neighbours; the prediction residual equals the n-th order mixed finite
difference of the field. On the integer grid-index array this is exact:
``residual = diff(diff(...g..., axis=0), axis=1, ...)`` with a zero
prepended along each axis, and reconstruction is the chain of cumulative
sums in reverse — both fully vectorized.

Residual magnitudes are bounded by ``2^ndim * max|g|``, so int64 is safe
for every feasible quantization plan (indices < 2^46, ndim <= 4).
"""

from __future__ import annotations

import numpy as np

__all__ = ["lorenzo_residual", "lorenzo_reconstruct"]


def lorenzo_residual(grid_indices: np.ndarray) -> np.ndarray:
    """Lorenzo prediction residuals of an integer index array."""
    d = np.asarray(grid_indices, dtype=np.int64)
    if d.ndim < 1 or d.ndim > 4:
        raise ValueError(f"grid index array must be 1-D to 4-D, got {d.ndim}-D")
    for axis in range(d.ndim):
        d = np.diff(d, axis=axis, prepend=np.int64(0))
    return d


def lorenzo_reconstruct(residuals: np.ndarray) -> np.ndarray:
    """Invert :func:`lorenzo_residual` via per-axis cumulative sums."""
    g = np.asarray(residuals, dtype=np.int64)
    if g.ndim < 1 or g.ndim > 4:
        raise ValueError(f"residual array must be 1-D to 4-D, got {g.ndim}-D")
    for axis in reversed(range(g.ndim)):
        g = np.cumsum(g, axis=axis)
    return g
