"""Bench: are the reproduced conclusions robust to the random seed?

EXPERIMENTS.md reports seed-0 numbers; this bench re-runs a reduced
campaign under several seeds and checks every qualitative conclusion
survives — the guard against cherry-picked noise.
"""

import numpy as np
from conftest import emit

from repro.core.pipeline import TunedIOPipeline
from repro.core.tuning import PAPER_POLICY
from repro.workflow.report import render_table
from repro.workflow.sweep import SweepConfig, default_nodes

REDUCED = SweepConfig(
    datasets=(("nyx", "velocity_x"), ("cesm-atm", "T"), ("hacc", "x")),
    error_bounds=(1e-1, 1e-3),
    transit_sizes_gb=(1.0, 8.0),
    repeats=5,
    data_scale=32,
    frequency_stride=2,
)


def test_bench_seed_robustness(benchmark):
    def run():
        rows = []
        for seed in (1, 2, 3, 4):
            pipe = TunedIOPipeline(default_nodes(seed=seed * 1000))
            cfg = SweepConfig(**{**REDUCED.__dict__, "seed": seed})
            out = pipe.recommend(pipe.characterize(cfg), PAPER_POLICY)
            models = out.compression_models
            comp_saving = float(np.mean(
                [r.predicted_power_saving for r in out.recommendations
                 if r.stage == "compress"]
            ))
            write_saving = float(np.mean(
                [r.predicted_power_saving for r in out.recommendations
                 if r.stage == "write"]
            ))
            rep = pipe.apply(out, arch="skylake", error_bound=1e-1,
                             target_bytes=int(128e9), data_scale=32, seed=seed)
            rows.append(
                {
                    "seed": seed,
                    "bw_exponent": models["Broadwell"].b,
                    "sky_exponent": models["Skylake"].b,
                    "bw_rmse": models["Broadwell"].gof.rmse,
                    "total_rmse": models["Total"].gof.rmse,
                    "comp_power_saving_pct": comp_saving * 100,
                    "write_power_saving_pct": write_saving * 100,
                    "dump_saving_pct": rep.energy_saving_fraction * 100,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(rows, title="SEED ROBUSTNESS — reduced campaign, seeds 1-4"))

    for r in rows:
        # Every qualitative conclusion, every seed:
        assert 4.0 < r["bw_exponent"] < 7.0, r
        assert 18.0 < r["sky_exponent"] < 30.0, r
        assert r["bw_rmse"] < r["total_rmse"], r
        assert r["comp_power_saving_pct"] > r["write_power_saving_pct"], r
        assert r["dump_saving_pct"] > 5.0, r

    spread = np.std([r["comp_power_saving_pct"] for r in rows])
    emit(f"compression power-saving spread across seeds: ±{spread:.2f} pp")
    assert spread < 2.0  # conclusions are not noise artifacts
