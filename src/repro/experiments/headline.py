"""Section V/VI headline numbers.

The paper's summary claims:

* ~19.4 % average power saving for compression at a 12.5 % frequency
  reduction (Eqn. 3, compression branch);
* ~11.2 % average power saving for data writing at a 15 % reduction;
* net runtime increases of ~7.5 % (compression) and ~9.3 % (writing),
  ~8.4 % combined;
* ~14.3 % combined energy saving;
* ~6.5 kJ (13 %) saved on the 512 GB dump.

This module computes each quantity from the reproduced models so the
bench can print measured-vs-paper side by side. (Note: the paper's own
19.4 %/14.3 % figures are not mutually consistent with its fitted
curves — evaluating *its* Table IV models at 0.875·f_max yields ~17 %
average power saving; see EXPERIMENTS.md.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.workflow.report import render_table

__all__ = ["run", "main", "HeadlineNumbers", "PAPER"]

PAPER = {
    "compress_power_saving": 0.194,
    "compress_slowdown": 0.075,
    "write_power_saving": 0.112,
    "write_slowdown": 0.093,
    "combined_energy_saving": 0.143,
    "combined_slowdown": 0.084,
}


@dataclass(frozen=True)
class HeadlineNumbers:
    """Reproduced counterparts of the paper's summary claims."""

    compress_power_saving: float
    compress_slowdown: float
    write_power_saving: float
    write_slowdown: float
    combined_energy_saving: float
    combined_slowdown: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "compress_power_saving": self.compress_power_saving,
            "compress_slowdown": self.compress_slowdown,
            "write_power_saving": self.write_power_saving,
            "write_slowdown": self.write_slowdown,
            "combined_energy_saving": self.combined_energy_saving,
            "combined_slowdown": self.combined_slowdown,
        }


def run(ctx: Optional[ExperimentContext] = None) -> HeadlineNumbers:
    """Average the per-architecture Eqn. 3 recommendations."""
    ctx = ctx if ctx is not None else ExperimentContext()
    recs = ctx.outcome.recommendations
    comp = [r for r in recs if r.stage == "compress"]
    writ = [r for r in recs if r.stage == "write"]
    if not comp or not writ:
        raise ValueError("outcome carries no recommendations; recommend() not run")

    c_power = float(np.mean([r.predicted_power_saving for r in comp]))
    c_slow = float(np.mean([r.predicted_slowdown for r in comp]))
    w_power = float(np.mean([r.predicted_power_saving for r in writ]))
    w_slow = float(np.mean([r.predicted_slowdown for r in writ]))
    energy = float(np.mean([r.predicted_energy_saving for r in comp + writ]))
    return HeadlineNumbers(
        compress_power_saving=c_power,
        compress_slowdown=c_slow,
        write_power_saving=w_power,
        write_slowdown=w_slow,
        combined_energy_saving=energy,
        combined_slowdown=(c_slow + w_slow) / 2.0,
    )


def main(ctx: Optional[ExperimentContext] = None) -> str:
    """Render measured vs. paper headline numbers."""
    measured = run(ctx).as_dict()
    rows = [
        {
            "quantity": key,
            "reproduced_pct": measured[key] * 100,
            "paper_pct": PAPER[key] * 100,
        }
        for key in PAPER
    ]
    text = render_table(rows, title="HEADLINE NUMBERS (Sections V-VI)")
    print(text)
    return text


if __name__ == "__main__":
    main()
