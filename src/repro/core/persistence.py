"""Model persistence: save fitted models, reload and tune without re-sweeping.

The practical value of the paper's methodology is that the (expensive)
characterization runs once per machine; afterwards the fitted models
alone drive tuning decisions. A :class:`ModelBundle` captures exactly
that artifact — the per-partition power models and per-architecture
runtime models — as a versioned JSON document.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict

from repro.core.power_model import PowerModel
from repro.core.runtime_model import RuntimeModel
from repro.utils.stats import GoodnessOfFit

__all__ = ["ModelBundle", "SCHEMA_VERSION", "check_schema_version"]

SCHEMA_VERSION = 1


def check_schema_version(doc: object, *, kind: str = "model bundle") -> None:
    """Validate a parsed document's ``schema_version`` against this build.

    Shared by every schema-versioned JSON artifact (model bundles, cache
    entries) so they all fail the same way: a :class:`ValueError` naming
    the problem, with a *newer*-than-this-build version called out
    explicitly so operators know to upgrade rather than suspect
    corruption.
    """
    if not isinstance(doc, dict):
        raise ValueError(
            f"not a valid {kind}: expected a JSON object, "
            f"got {type(doc).__name__}"
        )
    if "schema_version" not in doc:
        raise ValueError(f"not a valid {kind}: missing 'schema_version'")
    version = doc["schema_version"]
    if not isinstance(version, int) or version != SCHEMA_VERSION:
        hint = (
            "written by a newer build of this library; upgrade to read it"
            if isinstance(version, int) and version > SCHEMA_VERSION
            else f"this build reads version {SCHEMA_VERSION}"
        )
        raise ValueError(f"unsupported {kind} schema {version!r} ({hint})")

#: The model maps every bundle document must carry, schema v1.
_REQUIRED_SECTIONS = (
    "compression_power",
    "transit_power",
    "compression_runtime",
    "transit_runtime",
)


def _gof_to_dict(g: GoodnessOfFit) -> Dict[str, float]:
    return {"sse": g.sse, "rmse": g.rmse, "r2": g.r2}


def _gof_from_dict(d: Dict[str, float]) -> GoodnessOfFit:
    return GoodnessOfFit(sse=float(d["sse"]), rmse=float(d["rmse"]), r2=float(d["r2"]))


def _power_to_dict(m: PowerModel) -> Dict[str, object]:
    return {
        "name": m.name, "a": m.a, "b": m.b, "c": m.c,
        "fmin_ghz": m.fmin_ghz, "fmax_ghz": m.fmax_ghz,
        "gof": _gof_to_dict(m.gof),
    }


def _power_from_dict(d: Dict[str, object]) -> PowerModel:
    return PowerModel(
        name=str(d["name"]), a=float(d["a"]), b=float(d["b"]), c=float(d["c"]),
        fmin_ghz=float(d["fmin_ghz"]), fmax_ghz=float(d["fmax_ghz"]),
        gof=_gof_from_dict(d["gof"]),
    )


def _runtime_to_dict(m: RuntimeModel) -> Dict[str, object]:
    return {
        "name": m.name, "sensitivity": m.sensitivity, "fmax_ghz": m.fmax_ghz,
        "gof": _gof_to_dict(m.gof),
    }


def _runtime_from_dict(d: Dict[str, object]) -> RuntimeModel:
    return RuntimeModel(
        name=str(d["name"]), sensitivity=float(d["sensitivity"]),
        fmax_ghz=float(d["fmax_ghz"]), gof=_gof_from_dict(d["gof"]),
    )


@dataclass
class ModelBundle:
    """All fitted models from one characterization campaign."""

    compression_power: Dict[str, PowerModel]
    transit_power: Dict[str, PowerModel]
    compression_runtime: Dict[str, RuntimeModel]
    transit_runtime: Dict[str, RuntimeModel]
    metadata: Dict[str, object]

    @classmethod
    def from_outcome(cls, outcome, metadata: Dict[str, object] | None = None) -> "ModelBundle":
        """Capture the models of a :class:`~repro.core.pipeline.PipelineOutcome`."""
        return cls(
            compression_power=dict(outcome.compression_models),
            transit_power=dict(outcome.transit_models),
            compression_runtime=dict(outcome.compression_runtime),
            transit_runtime=dict(outcome.transit_runtime),
            metadata=dict(metadata or {}),
        )

    def to_json(self) -> str:
        """Serialize to a versioned JSON document."""
        doc = {
            "schema_version": SCHEMA_VERSION,
            "metadata": self.metadata,
            "compression_power": {k: _power_to_dict(v) for k, v in self.compression_power.items()},
            "transit_power": {k: _power_to_dict(v) for k, v in self.transit_power.items()},
            "compression_runtime": {k: _runtime_to_dict(v) for k, v in self.compression_runtime.items()},
            "transit_runtime": {k: _runtime_to_dict(v) for k, v in self.transit_runtime.items()},
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ModelBundle":
        """Parse a document produced by :meth:`to_json`.

        Malformed documents fail with a :class:`ValueError` naming the
        problem — never a bare ``KeyError``. A ``schema_version``
        *newer* than this build's is called out explicitly so operators
        know to upgrade rather than suspect corruption.
        """
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"not a valid model bundle: {exc}") from exc
        check_schema_version(doc, kind="model bundle")
        missing = [s for s in _REQUIRED_SECTIONS if s not in doc]
        if missing:
            raise ValueError(
                f"not a valid model bundle: missing sections {missing}"
            )
        try:
            return cls(
                compression_power={
                    k: _power_from_dict(v)
                    for k, v in doc["compression_power"].items()
                },
                transit_power={
                    k: _power_from_dict(v)
                    for k, v in doc["transit_power"].items()
                },
                compression_runtime={
                    k: _runtime_from_dict(v)
                    for k, v in doc["compression_runtime"].items()
                },
                transit_runtime={
                    k: _runtime_from_dict(v)
                    for k, v in doc["transit_runtime"].items()
                },
                metadata=dict(doc.get("metadata", {})),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ValueError(f"not a valid model bundle: {exc!r}") from exc

    def fingerprint(self) -> str:
        """Stable SHA-256 content address of the bundle.

        Hashes the canonical form of the JSON document (sorted keys,
        compact separators), so two bundles with equal models, metadata
        and schema hash identically regardless of how their JSON was
        formatted, while any one-field change produces a new digest.
        The model registry uses this as its content address.
        """
        doc = json.loads(self.to_json())
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def save(self, path) -> None:
        """Write the bundle to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "ModelBundle":
        """Read a bundle from *path*."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
