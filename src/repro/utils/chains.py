"""Vectorized traversal of jump chains.

Decoding a stream of variable-length chunks (Huffman codes, ZFP plane
records) is inherently sequential: the next chunk starts where the
current one ends. Doing that with a per-symbol Python loop is orders of
magnitude too slow for realistic arrays, so we use pointer doubling:

1. Precompute, for *every* bit position, where a chunk starting there
   would end (``jump_targets`` — fully vectorizable).
2. Extract the actually-visited chain with O(log n) rounds of bulk
   gathers: if ``chain`` holds the first ``m`` positions, then
   ``jump^m`` applied to it yields the next ``m``.

Total work is O(n) gathers over O(log n) rounds, all inside NumPy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["follow_chain"]


def follow_chain(jump_targets: np.ndarray, start: int, count: int) -> np.ndarray:
    """Return the first *count* positions of the chain ``p -> jump_targets[p]``.

    Parameters
    ----------
    jump_targets:
        1-D integer array; ``jump_targets[p]`` is the position following
        ``p``. Positions at or past ``len(jump_targets)`` terminate the
        chain (the caller guarantees the chain stays in bounds for the
        requested *count*).
    start:
        First chain position (included in the output).
    count:
        Number of chain positions to return.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of length *count*: ``start, j[start], j[j[start]], ...``

    Raises
    ------
    ValueError
        If the chain escapes the valid index range before *count*
        positions have been produced (corrupt stream).
    """
    jumps = np.ascontiguousarray(jump_targets, dtype=np.int64)
    n = jumps.size
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if not 0 <= start < n:
        raise ValueError(f"start={start} out of range for chain of length {n}")

    # `doubled` maps p -> position 2^k chunks ahead; out-of-range targets
    # are clamped to a sentinel slot that self-loops at `n` so corrupt
    # streams surface as an explicit error instead of a wild gather.
    sentinel = n
    table = np.empty(n + 1, dtype=np.int64)
    table[:n] = np.where((jumps >= 0) & (jumps <= n), jumps, sentinel)
    table[sentinel] = sentinel

    # Invariant at the top of each round: chain[0:filled] is correct and
    # `table` advances a position by exactly `filled` chunks, so
    # table[chain[0:take]] yields chain[filled:filled+take].
    chain = np.empty(count, dtype=np.int64)
    chain[0] = start
    filled = 1
    while filled < count:
        take = min(filled, count - filled)
        chain[filled : filled + take] = table[chain[:take]]
        filled += take
        if filled < count:
            table = table[table]
    if np.any(chain >= n):
        raise ValueError("jump chain escaped the stream: corrupt input")
    return chain
