"""Differential cached-vs-cold harness for the result cache.

Every cached entry point runs cold, then warm, and the two results are
compared *byte-for-byte* (via the cache's own canonical encoding, so
NaN-bearing payloads compare cleanly). A warm run must also recompute
nothing — asserted against the ``repro_cache_{hits,misses}_total``
counters, not wall time. Poisoned entries must raise
:class:`~repro.cache.CacheCorruptionError` (or the schema
``ValueError``); silently serving stale bytes is the one failure mode
this file exists to make impossible.

CI runs this file under the 3-backend ``REPRO_TEST_EXECUTOR`` matrix;
cache keys never include the executor, so the same disk cache must
serve all of them identically.
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import (
    CacheCorruptionError,
    ResultCache,
    canonical_json,
    encode_value,
    fingerprint,
    set_cache,
)
from repro.core.persistence import SCHEMA_VERSION
from repro.core.pipeline import TunedIOPipeline
from repro.core.tuning import PAPER_POLICY, recommend_from_models
from repro.data import load_field
from repro.hardware.cpu import SKYLAKE_4114
from repro.observability.metrics import get_registry as get_metrics_registry
from repro.workflow.campaign import (
    CampaignPoint,
    CheckpointCampaign,
    run_campaign_sweep,
)
from repro.workflow.sweep import SweepConfig, default_nodes

#: CI matrix knob; keys exclude the backend, so results must not vary.
EXECUTOR = os.environ.get("REPRO_TEST_EXECUTOR", "serial")

CAMPAIGN = CheckpointCampaign(
    snapshot_bytes=int(8e9), n_snapshots=2, compute_interval_s=600.0
)
POINTS = (
    CampaignPoint(error_bound=1e-1),
    CampaignPoint(error_bound=1e-2),
    CampaignPoint(error_bound=1e-2, compress_freq_ghz=1.925,
                  write_freq_ghz=1.85),
)

#: Deliberately tiny sweep; the harness compares, it does not fit-check.
SWEEP = SweepConfig(
    datasets=(("nyx", "velocity_x"),),
    error_bounds=(1e-1,),
    transit_sizes_gb=(1.0,),
    repeats=2,
    data_scale=64,
    frequency_stride=6,
)


@pytest.fixture(scope="module")
def sample():
    return load_field("nyx", "velocity_x", scale=64)


@pytest.fixture(autouse=True)
def fresh_state(tmp_path):
    """A scratch disk-backed cache as the process cache, fresh metrics."""
    get_metrics_registry().reset()
    cache = ResultCache(disk_dir=tmp_path / "cache")
    previous = set_cache(cache)
    yield cache
    set_cache(previous if previous is not None else ResultCache())
    get_metrics_registry().reset()


def sweep_kwargs(**overrides):
    kw = dict(repeats=1, seed=0, executor=EXECUTOR)
    kw.update(overrides)
    return kw


def run_sweep(sample, **overrides):
    return run_campaign_sweep(
        SKYLAKE_4114, "sz", sample, POINTS, CAMPAIGN, **sweep_kwargs(**overrides)
    )


class TestCampaignSweepDifferential:
    def test_warm_is_byte_identical_and_recomputes_nothing(
        self, fresh_state, sample
    ):
        cold = run_sweep(sample)
        after_cold = fresh_state.stats()
        assert after_cold["misses"] == len(POINTS)

        warm = run_sweep(sample)
        after_warm = fresh_state.stats()
        # Zero recomputation: not one new miss, one hit per point.
        assert after_warm["misses"] == after_cold["misses"]
        assert after_warm["hits"] == after_cold["hits"] + len(POINTS)
        hits_metric = get_metrics_registry().counter(
            "repro_cache_hits_total", labels={"context": "campaign.point"}
        )
        assert hits_metric.value == len(POINTS)
        for a, b in zip(cold, warm):
            assert encode_value(a) == encode_value(b)

    @pytest.mark.parametrize("warm_executor", ["thread", "process",
                                               "distributed"])
    def test_serial_cold_serves_pool_warm(
        self, fresh_state, sample, warm_executor
    ):
        # Keys are computed in the parent and never mention the backend:
        # a serial cold run must fully warm every other executor.
        cold = run_sweep(sample, executor="serial")
        misses = fresh_state.stats()["misses"]
        warm = run_sweep(sample, executor=warm_executor, workers=2)
        assert fresh_state.stats()["misses"] == misses
        for a, b in zip(cold, warm):
            assert encode_value(a) == encode_value(b)

    def test_disk_tier_alone_reproduces_cold(self, tmp_path, sample):
        # A new process sees an empty memory tier; model that by
        # pointing a fresh cache at the same directory.
        disk_dir = tmp_path / "cache"
        cold_cache = ResultCache(disk_dir=disk_dir)
        previous = set_cache(cold_cache)
        try:
            cold = run_sweep(sample)
            warm_cache = ResultCache(disk_dir=disk_dir)
            set_cache(warm_cache)
            warm = run_sweep(sample)
            stats = warm_cache.stats()
            assert stats["misses"] == 0 and stats["hits"] == len(POINTS)
            for a, b in zip(cold, warm):
                assert encode_value(a) == encode_value(b)
        finally:
            set_cache(previous if previous is not None else ResultCache())

    def test_perturbed_inputs_recompute(self, fresh_state, sample):
        run_sweep(sample)
        misses = fresh_state.stats()["misses"]
        run_sweep(sample, seed=1)  # same points, different node seed
        assert fresh_state.stats()["misses"] == misses + len(POINTS)

    def test_disabled_cache_stores_nothing(self, sample, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "off", enabled=False)
        previous = set_cache(cache)
        try:
            run_sweep(sample)
            stats = cache.stats()
            assert stats["hits"] == stats["misses"] == 0
            assert stats["disk_entries"] == 0
        finally:
            set_cache(previous if previous is not None else ResultCache())


class TestCharacterizeDifferential:
    def test_warm_characterize_refits_nothing(self, fresh_state):
        cold = TunedIOPipeline(default_nodes()).characterize(SWEEP)
        after_cold = fresh_state.stats()
        assert after_cold["misses"] > 0

        warm = TunedIOPipeline(default_nodes()).characterize(SWEEP)
        after_warm = fresh_state.stats()
        assert after_warm["misses"] == after_cold["misses"]
        fit_misses = get_metrics_registry().counter(
            "repro_cache_misses_total", labels={"context": "pipeline.fit"}
        )
        fit_hits = get_metrics_registry().counter(
            "repro_cache_hits_total", labels={"context": "pipeline.fit"}
        )
        assert fit_hits.value == fit_misses.value  # every fit reused once

        for attr in ("compression_samples", "transit_samples",
                     "compression_models", "transit_models",
                     "compression_runtime", "transit_runtime"):
            assert encode_value(getattr(warm, attr)) == \
                encode_value(getattr(cold, attr)), attr

    def test_warm_recommendations_identical(self, fresh_state):
        pipe = TunedIOPipeline(default_nodes())
        out = pipe.characterize(SWEEP)
        cold = pipe.recommend(out, PAPER_POLICY).recommendations
        misses = fresh_state.stats()["misses"]
        warm = pipe.recommend(out, PAPER_POLICY).recommendations
        assert fresh_state.stats()["misses"] == misses
        assert encode_value(warm) == encode_value(cold)


class TestTuningDifferential:
    def test_recommend_from_models_memoizes(self, fresh_state):
        out = TunedIOPipeline(default_nodes()).characterize(SWEEP)
        arch = "Skylake"
        args = (SKYLAKE_4114, "compress", out.compression_models[arch],
                out.compression_runtime["skylake"], PAPER_POLICY)
        cold = recommend_from_models(*args)
        ctx = {"context": "tuning.recommend"}
        reg = get_metrics_registry()
        assert reg.counter("repro_cache_misses_total", labels=ctx).value == 1
        warm = recommend_from_models(*args)
        assert reg.counter("repro_cache_misses_total", labels=ctx).value == 1
        assert reg.counter("repro_cache_hits_total", labels=ctx).value == 1
        assert encode_value(warm) == encode_value(cold)
        assert warm == cold  # no NaN fields; object equality must agree


class TestPoisonedEntries:
    """Tampered entries fail hard; staleness is never silent."""

    def _single_key(self, cache):
        keys = cache._disk.keys()
        assert len(keys) >= 1
        return keys[0]

    def _poison(self, tmp_path, rewrite):
        """Cold-run one point, mutate its disk doc, return a fresh cache."""
        disk_dir = tmp_path / "cache"
        cache = ResultCache(disk_dir=disk_dir)
        previous = set_cache(cache)
        try:
            run_campaign_sweep(
                SKYLAKE_4114, "sz",
                load_field("nyx", "velocity_x", scale=64),
                (CampaignPoint(error_bound=1e-1),), CAMPAIGN,
                **sweep_kwargs(),
            )
            key = self._single_key(cache)
            path = os.path.join(str(disk_dir), key + ".json")
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            body = rewrite(doc)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(body if isinstance(body, str) else json.dumps(body))
            fresh = ResultCache(disk_dir=disk_dir)
            set_cache(fresh)
            return fresh
        finally:
            set_cache(previous if previous is not None else ResultCache())

    def _warm_run(self):
        return run_campaign_sweep(
            SKYLAKE_4114, "sz", load_field("nyx", "velocity_x", scale=64),
            (CampaignPoint(error_bound=1e-1),), CAMPAIGN, **sweep_kwargs(),
        )

    def test_tampered_value_raises(self, tmp_path):
        def rewrite(doc):
            doc["value"] = doc["value"].replace("1", "2", 1)
            return doc  # digest now disagrees with the value text

        cache = self._poison(tmp_path, rewrite)
        previous = set_cache(cache)
        try:
            with pytest.raises(CacheCorruptionError, match="digest"):
                self._warm_run()
        finally:
            set_cache(previous if previous is not None else ResultCache())

    def test_torn_write_raises(self, tmp_path):
        cache = self._poison(
            tmp_path, lambda doc: json.dumps(doc)[: len(json.dumps(doc)) // 2]
        )
        previous = set_cache(cache)
        try:
            with pytest.raises(CacheCorruptionError, match="torn"):
                self._warm_run()
        finally:
            set_cache(previous if previous is not None else ResultCache())

    def test_newer_schema_raises_with_upgrade_hint(self, tmp_path):
        def rewrite(doc):
            doc["schema_version"] = SCHEMA_VERSION + 1
            return doc

        cache = self._poison(tmp_path, rewrite)
        previous = set_cache(cache)
        try:
            with pytest.raises(ValueError, match="newer build"):
                self._warm_run()
        finally:
            set_cache(previous if previous is not None else ResultCache())

    def test_memory_tier_tampering_raises(self, fresh_state):
        key = fingerprint(kind="poison-test", value=1)
        fresh_state.store(key, {"x": 1})
        text, digest = fresh_state._memory.get(key)
        fresh_state._memory.put(key, text + " ", digest)
        with pytest.raises(CacheCorruptionError, match="digest"):
            fresh_state.lookup(key)


# ----------------------------------------------------------------------
# Fingerprint properties
# ----------------------------------------------------------------------

campaign_st = st.builds(
    CheckpointCampaign,
    snapshot_bytes=st.integers(1, int(1e12)),
    n_snapshots=st.integers(1, 64),
    compute_interval_s=st.floats(0.0, 1e5, allow_nan=False),
    compute_power_w=st.floats(1.0, 500.0, allow_nan=False),
)
point_st = st.builds(
    CampaignPoint,
    error_bound=st.floats(1e-6, 1.0, allow_nan=False, exclude_min=False),
    compress_freq_ghz=st.one_of(st.none(), st.floats(0.8, 3.0)),
    write_freq_ghz=st.one_of(st.none(), st.floats(0.8, 3.0)),
)


class TestFingerprintProperties:
    @given(campaign_st, campaign_st, point_st, point_st)
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_injective_over_perturbed_configs(self, c1, c2, p1, p2):
        f1 = fingerprint(kind="t", campaign=c1, point=p1)
        f2 = fingerprint(kind="t", campaign=c2, point=p2)
        same_inputs = canonical_json({"c": c1, "p": p1}) == \
            canonical_json({"c": c2, "p": p2})
        assert (f1 == f2) == same_inputs

    @given(st.permutations(["alpha", "beta", "gamma", "delta"]),
           st.integers(0, 9))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_dict_insertion_order_never_leaks(self, order, value):
        base = {k: {"v": value, "k": k} for k in ["alpha", "beta", "gamma",
                                                 "delta"]}
        shuffled = {k: base[k] for k in order}
        assert fingerprint(kind="t", payload=shuffled) == \
            fingerprint(kind="t", payload=base)

    def test_stable_across_processes(self):
        # The disk tier is shared between runs of different processes;
        # a fingerprint must not embed ids, hash seeds or repr addresses.
        prog = (
            "from repro.cache import fingerprint\n"
            "from repro.hardware.cpu import SKYLAKE_4114\n"
            "from repro.workflow.campaign import CheckpointCampaign\n"
            "c = CheckpointCampaign(snapshot_bytes=10**9, n_snapshots=3,"
            " compute_interval_s=60.0)\n"
            "print(fingerprint(kind='t', cpu=SKYLAKE_4114, campaign=c,"
            " eb=1e-3))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), os.path.join(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                "src")) if p
        )
        env["PYTHONHASHSEED"] = "31337"  # prove hash seeds don't leak
        out = subprocess.run(
            [sys.executable, "-c", prog], capture_output=True, text=True,
            env=env, check=True,
        ).stdout.strip()
        c = CheckpointCampaign(
            snapshot_bytes=10**9, n_snapshots=3, compute_interval_s=60.0
        )
        assert out == fingerprint(
            kind="t", cpu=SKYLAKE_4114, campaign=c, eb=1e-3
        )
