"""Power modeling and DVFS tuning of lossy compressed I/O.

This is the paper's contribution: fit ``P(f) = a·f^b + c`` models to
measured power (Tables IV/V), pair them with leading-loads runtime
models, and derive frequency-tuning recommendations (Eqn. 3) that cut
I/O energy.
"""

from repro.core.samples import SampleSet
from repro.core.scaling import add_scaled_columns, scale_to_reference
from repro.core.regression import (
    PowerLawFit,
    fit_power_law,
    FittedModel,
    fit_best_model,
    CANDIDATE_MODELS,
)
from repro.core.power_model import PowerModel
from repro.core.runtime_model import RuntimeModel, fit_runtime_model
from repro.core.partitions import (
    Partition,
    COMPRESSION_PARTITIONS,
    TRANSIT_PARTITIONS,
    fit_partition_models,
)
from repro.core.tuning import (
    PAPER_POLICY,
    TuningPolicy,
    optimal_energy_frequency,
    energy_curve,
    TuningRecommendation,
    recommend_from_models,
)
from repro.core.energy import (
    energy_joules,
    savings_fraction,
    SavingsReport,
    compare_reports,
)
from repro.core.objectives import Objective, objective_curve, optimal_frequency
from repro.core.persistence import ModelBundle
from repro.core.advisor import BoundProfile, ErrorBoundAdvisor
from repro.core.breakeven import (
    StrategyOutcome,
    breakeven_bandwidth_bps,
    breakeven_clients,
    compare_strategies,
)
from repro.core.uncertainty import BootstrapResult, ParameterInterval, bootstrap_power_fit
from repro.core.multicore import (
    CoreFreqPoint,
    optimal_configuration,
    pareto_front,
    sweep_configurations,
)
from repro.core.impact import GridProfile, ImpactReport, US_AVERAGE_GRID, impact_of
from repro.core.service import StageDecision, TuningService
from repro.core.pipeline import TunedIOPipeline, PipelineOutcome

__all__ = [
    "SampleSet",
    "add_scaled_columns",
    "scale_to_reference",
    "PowerLawFit",
    "fit_power_law",
    "FittedModel",
    "fit_best_model",
    "CANDIDATE_MODELS",
    "PowerModel",
    "RuntimeModel",
    "fit_runtime_model",
    "Partition",
    "COMPRESSION_PARTITIONS",
    "TRANSIT_PARTITIONS",
    "fit_partition_models",
    "PAPER_POLICY",
    "TuningPolicy",
    "optimal_energy_frequency",
    "energy_curve",
    "TuningRecommendation",
    "recommend_from_models",
    "energy_joules",
    "savings_fraction",
    "SavingsReport",
    "compare_reports",
    "Objective",
    "objective_curve",
    "optimal_frequency",
    "ModelBundle",
    "BoundProfile",
    "ErrorBoundAdvisor",
    "StrategyOutcome",
    "breakeven_bandwidth_bps",
    "breakeven_clients",
    "compare_strategies",
    "BootstrapResult",
    "ParameterInterval",
    "bootstrap_power_fit",
    "CoreFreqPoint",
    "optimal_configuration",
    "pareto_front",
    "sweep_configurations",
    "GridProfile",
    "ImpactReport",
    "US_AVERAGE_GRID",
    "impact_of",
    "StageDecision",
    "TuningService",
    "TunedIOPipeline",
    "PipelineOutcome",
]
