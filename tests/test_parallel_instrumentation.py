"""ParallelStats summary math, including degenerate wall-time guards."""

import pytest

from repro.observability import NullTracer, Tracer
from repro.parallel import ParallelStats, TaskStat


def _stats(wall_s, tasks):
    return ParallelStats(
        executor="thread", workers=2, wall_s=wall_s, tasks=tuple(tasks)
    )


def test_concurrency_normal_case():
    stats = _stats(1.0, [TaskStat(0, 0.6), TaskStat(1, 0.8)])
    assert stats.concurrency == pytest.approx(1.4)


def test_concurrency_empty_tasks_is_zero():
    stats = _stats(0.0, [])
    assert stats.concurrency == 0.0


def test_concurrency_zero_wall_is_zero_not_inf():
    stats = _stats(0.0, [TaskStat(0, 0.5)])
    assert stats.concurrency == 0.0


def test_concurrency_near_zero_wall_is_zero():
    stats = _stats(1e-12, [TaskStat(0, 0.5)])
    assert stats.concurrency == 0.0


def test_as_row_and_summary_survive_zero_wall():
    stats = _stats(0.0, [TaskStat(0, 0.5, bytes_in=100, bytes_out=50)])
    row = stats.as_row()
    assert row["concurrency"] == 0.0
    assert "inf" not in stats.summary()


def test_byte_totals():
    stats = _stats(
        1.0,
        [TaskStat(0, 0.1, bytes_in=10, bytes_out=4),
         TaskStat(1, 0.1, bytes_in=30, bytes_out=6)],
    )
    assert stats.bytes_in == 40
    assert stats.bytes_out == 10
    assert stats.throughput_bps == pytest.approx(40.0)


def test_record_spans_noop_on_null_tracer():
    stats = _stats(1.0, [TaskStat(0, 0.5)])
    stats.record_spans(NullTracer())  # must not raise, records nothing


def test_record_spans_emits_one_span_per_task():
    stats = _stats(
        1.0,
        [TaskStat(0, 0.25, bytes_in=10), TaskStat(1, 0.5, bytes_in=20)],
    )
    tracer = Tracer()
    with tracer.span("map"):
        stats.record_spans(tracer, name="chunk.slab")
    root = tracer.spans[0]
    assert [c.name for c in root.children] == ["chunk.slab", "chunk.slab"]
    assert root.children[0].duration_s == pytest.approx(0.25)
    assert root.children[1].attrs["bytes_in"] == 20
    assert root.children[1].attrs["executor"] == "thread"
