"""Negabinary mapping and bit-plane coding over the kernel layer.

ZFP encodes transform coefficients in negabinary (base −2), whose
sign-free representation makes truncating low bit planes a clean
magnitude cut: zeroing planes below *p* perturbs the value by less than
``2**p``.

The plane coder serializes, for every block, its kept planes from most
to least significant. Each plane is one chunk: a 1-bit "non-zero" flag,
followed by the plane's ``block_size`` raw bits only when the flag is
set — ZFP's group-testing idea reduced to plane granularity. The
per-bit inner loops live in :mod:`repro.compressors.kernels`: the
default ``vector`` backend encodes through a masked bit-matrix flatten
and decodes through a :func:`~repro.utils.chains.follow_chain` jump
chain (a chunk is 1 or ``1 + block_size`` bits), while
``REPRO_KERNELS=scalar`` swaps in the byte-identical reference loops.
"""

from __future__ import annotations

import numpy as np

from repro.compressors import kernels
from repro.utils.bitio import BitReader, BitWriter

__all__ = [
    "int_to_negabinary",
    "negabinary_to_int",
    "encode_planes",
    "decode_planes",
]


def int_to_negabinary(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to negabinary uint64 (zfp's ``int2uint``)."""
    return kernels.negabinary_encode(np.asarray(values, dtype=np.int64))


def negabinary_to_int(values: np.ndarray) -> np.ndarray:
    """Invert :func:`int_to_negabinary` (zfp's ``uint2int``)."""
    return kernels.negabinary_decode(np.asarray(values, dtype=np.uint64))


def encode_planes(
    writer: BitWriter,
    negabinary: np.ndarray,
    kept_planes: np.ndarray,
    top_plane: int,
) -> None:
    """Serialize per-block kept bit planes of a negabinary matrix.

    Parameters
    ----------
    writer:
        Destination bit stream.
    negabinary:
        ``(nblocks, block_size)`` uint64 matrix.
    kept_planes:
        Per-block number of planes to keep (from *top_plane* downward);
        values in ``[0, top_plane + 1]``.
    top_plane:
        Index of the most significant plane (all planes above it must be
        zero for every block).

    Layout: blocks are grouped by their ``kept_planes`` value (ascending,
    zero-plane blocks emit nothing); a 64-bit substream length precedes
    each group so the decoder can window its jump chain. Group membership
    is *not* stored — the decoder recomputes ``kept_planes`` from block
    exponents exactly as the encoder did.
    """
    nb = np.asarray(negabinary, dtype=np.uint64)
    k = np.asarray(kept_planes, dtype=np.int64)
    if nb.ndim != 2:
        raise ValueError("negabinary must be 2-D (nblocks, block_size)")
    if k.shape != (nb.shape[0],):
        raise ValueError("kept_planes must have one entry per block")
    if np.any(k < 0) or np.any(k > top_plane + 1):
        raise ValueError(f"kept_planes must lie in [0, {top_plane + 1}]")

    for kv in np.unique(k):
        kv = int(kv)
        if kv == 0:
            continue
        rows = nb[k == kv]
        planes = np.arange(top_plane, top_plane - kv, -1, dtype=np.int64)
        group_bits = kernels.zfp_encode_plane_group(rows, planes)
        writer.write_uint(group_bits.size, 64)
        writer.write_bits_array(group_bits)


def decode_planes(
    reader: BitReader,
    kept_planes: np.ndarray,
    top_plane: int,
    block_size: int,
) -> np.ndarray:
    """Reconstruct the (truncated) negabinary matrix written by
    :func:`encode_planes`.

    Planes below each block's kept range decode as zero, matching the
    encoder-side truncation.
    """
    k = np.asarray(kept_planes, dtype=np.int64)
    nblocks = k.size
    nb = np.zeros((nblocks, block_size), dtype=np.uint64)

    for kv in np.unique(k):
        kv = int(kv)
        if kv == 0:
            continue
        sel = np.flatnonzero(k == kv)
        nbits = reader.read_uint(64)
        bits = reader.read_bits_array(nbits)
        nchunks = sel.size * kv
        if nchunks:
            if nbits == 0:
                raise ValueError("empty plane group with pending chunks")
            plane_vals, _ = kernels.zfp_decode_plane_group(bits, nchunks, block_size)
            planes = np.arange(top_plane, top_plane - kv, -1, dtype=np.int64)
            shifts = planes.astype(np.uint64)  # (kv,)
            vals = plane_vals.reshape(sel.size, kv, block_size)
            contrib = vals << shifts[None, :, None]
            nb[sel] = contrib.sum(axis=1, dtype=np.uint64)
    return nb
