"""Multi-field snapshot dumps.

Fig. 6 dumps one concatenated field; a real simulation snapshot carries
several fields with *different* error-bound requirements (velocities
tolerate more loss than densities). :class:`SnapshotSpec` describes
such a bundle; :class:`SnapshotDumper` compresses each field with the
real codec at its own bound, then writes the combined compressed volume
— one pipeline invocation per snapshot, matching how HACC-style codes
actually checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.compressors.base import Compressor
from repro.hardware.node import SimulatedNode
from repro.hardware.workload import WorkloadKind, compression_workload
from repro.iosim.dumper import StageReport
from repro.iosim.nfs import NfsTarget
from repro.iosim.transit import transit_workload
from repro.utils.validation import check_positive

__all__ = ["SnapshotField", "SnapshotSpec", "SnapshotDumpReport", "SnapshotDumper"]

_KIND_BY_CODEC = {
    "sz": WorkloadKind.COMPRESS_SZ,
    "zfp": WorkloadKind.COMPRESS_ZFP,
}


@dataclass(frozen=True)
class SnapshotField:
    """One field of a snapshot: data geometry plus its fidelity need."""

    name: str
    sample: np.ndarray
    error_bound: float
    target_bytes: int

    def __post_init__(self):
        check_positive(self.error_bound, "error_bound")
        check_positive(self.target_bytes, "target_bytes")


@dataclass(frozen=True)
class SnapshotSpec:
    """A bundle of fields dumped together."""

    fields: Tuple[SnapshotField, ...]

    def __post_init__(self):
        if not self.fields:
            raise ValueError("a snapshot needs at least one field")
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in snapshot: {names}")

    @property
    def total_bytes(self) -> int:
        return sum(f.target_bytes for f in self.fields)


@dataclass(frozen=True)
class SnapshotDumpReport:
    """Outcome of one snapshot dump."""

    per_field: Dict[str, StageReport]
    write: StageReport
    ratios: Dict[str, float]
    total_uncompressed: int
    total_compressed: int

    @property
    def compress_energy_j(self) -> float:
        return sum(s.energy_j for s in self.per_field.values())

    @property
    def compress_runtime_s(self) -> float:
        return sum(s.runtime_s for s in self.per_field.values())

    @property
    def total_energy_j(self) -> float:
        return self.compress_energy_j + self.write.energy_j

    @property
    def total_runtime_s(self) -> float:
        return self.compress_runtime_s + self.write.runtime_s

    @property
    def overall_ratio(self) -> float:
        return self.total_uncompressed / max(self.total_compressed, 1)


class SnapshotDumper:
    """Compress every field at its own bound, then write the bundle."""

    def __init__(
        self, node: SimulatedNode, nfs: NfsTarget | None = None, repeats: int = 5
    ) -> None:
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.node = node
        self.nfs = nfs if nfs is not None else NfsTarget()
        self.repeats = int(repeats)

    def _run(self, workload, freq_ghz: float) -> StageReport:
        self.node.set_frequency(freq_ghz)
        runs = [self.node.run(workload) for _ in range(self.repeats)]
        return StageReport(
            stage=workload.name,
            freq_ghz=runs[0].freq_ghz,
            bytes_processed=workload.bytes_processed,
            runtime_s=float(np.mean([m.runtime_s for m in runs])),
            energy_j=float(np.mean([m.energy_j for m in runs])),
        )

    def dump(
        self,
        compressor: Compressor,
        spec: SnapshotSpec,
        compress_freq_ghz: float | None = None,
        write_freq_ghz: float | None = None,
    ) -> SnapshotDumpReport:
        """Dump the snapshot at the given per-stage frequencies."""
        if compressor.name not in _KIND_BY_CODEC:
            raise KeyError(f"no workload kind for codec {compressor.name!r}")
        cpu = self.node.cpu
        f_c = cpu.fmax_ghz if compress_freq_ghz is None else compress_freq_ghz
        f_w = cpu.fmax_ghz if write_freq_ghz is None else write_freq_ghz

        per_field: Dict[str, StageReport] = {}
        ratios: Dict[str, float] = {}
        total_compressed = 0
        for field in spec.fields:
            buf = compressor.compress(field.sample, field.error_bound)
            ratios[field.name] = buf.ratio
            total_compressed += max(1, int(round(field.target_bytes / buf.ratio)))
            wl = compression_workload(
                _KIND_BY_CODEC[compressor.name],
                field.target_bytes,
                field.error_bound,
                name=f"snap:{field.name}",
            )
            per_field[field.name] = self._run(wl, f_c)

        wl_w = transit_workload(total_compressed, self.nfs, name="snap-write")
        write = self._run(wl_w, f_w)
        return SnapshotDumpReport(
            per_field=per_field,
            write=write,
            ratios=ratios,
            total_uncompressed=spec.total_bytes,
            total_compressed=total_compressed,
        )
