"""Shared, lazily-evaluated experiment state.

Tables IV-V and Figures 1-6 all consume the same measurement campaign;
:class:`ExperimentContext` runs it once (per configuration) and caches
the sweep outputs, fitted models and tuning recommendations.
"""

from __future__ import annotations

from typing import Optional

from repro.core.pipeline import PipelineOutcome, TunedIOPipeline
from repro.core.tuning import PAPER_POLICY, TuningPolicy
from repro.hardware.powercurves import PowerCurve
from repro.iosim.nfs import NfsTarget
from repro.workflow.sweep import SweepConfig, default_nodes

__all__ = ["ExperimentContext"]


class ExperimentContext:
    """Lazy holder of nodes, pipeline, sweeps and models."""

    def __init__(
        self,
        config: Optional[SweepConfig] = None,
        power_curve: Optional[PowerCurve] = None,
        policy: TuningPolicy = PAPER_POLICY,
        nfs: Optional[NfsTarget] = None,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else SweepConfig()
        self.policy = policy
        self.nodes = default_nodes(power_curve=power_curve, seed=seed)
        self.pipeline = TunedIOPipeline(self.nodes, nfs=nfs)
        self._outcome: Optional[PipelineOutcome] = None

    @property
    def outcome(self) -> PipelineOutcome:
        """The characterized + tuned pipeline outcome (computed once)."""
        if self._outcome is None:
            out = self.pipeline.characterize(self.config)
            self._outcome = self.pipeline.recommend(out, self.policy)
        return self._outcome

    def node(self, arch: str):
        """The simulated node with the given architecture."""
        for n in self.nodes:
            if n.cpu.arch == arch:
                return n
        raise KeyError(f"no node with architecture {arch!r}")
