"""Tests for the extension hardware: restore-path kinds and Cascade Lake."""

import numpy as np
import pytest

from repro.hardware.cpu import BROADWELL_D1548, CASCADELAKE_6230, get_cpu
from repro.hardware.node import SimulatedNode
from repro.hardware.powercurves import CalibratedPowerCurve, PhysicalPowerCurve
from repro.hardware.workload import (
    WorkloadKind,
    compression_workload,
    decompression_workload,
    read_workload,
    write_workload,
)


class TestRestoreKinds:
    def test_kind_classification(self):
        assert WorkloadKind.DECOMPRESS_SZ.is_decompression
        assert WorkloadKind.DECOMPRESS_SZ.is_codec
        assert not WorkloadKind.DECOMPRESS_SZ.is_compression
        assert not WorkloadKind.READ.is_codec

    def test_decompression_faster_than_compression(self):
        comp = compression_workload(WorkloadKind.COMPRESS_SZ, int(1e9), 1e-2)
        dec = decompression_workload(WorkloadKind.DECOMPRESS_SZ, int(1e9), 1e-2)
        assert dec.reference_runtime_s < comp.reference_runtime_s

    def test_decompression_builder_validates_kind(self):
        with pytest.raises(ValueError):
            decompression_workload(WorkloadKind.COMPRESS_SZ, 100, 1e-2)

    def test_read_workload_kind(self):
        wl = read_workload(int(1e9), 500e6)
        assert wl.kind is WorkloadKind.READ
        assert wl.reference_runtime_s == pytest.approx(2.0)

    @pytest.mark.parametrize("curve_cls", [CalibratedPowerCurve, PhysicalPowerCurve])
    def test_power_curves_cover_new_kinds(self, curve_cls):
        curve = curve_cls()
        for kind in WorkloadKind:
            p = curve.power_watts(BROADWELL_D1548, 1.5, kind)
            assert p > 0

    def test_decompress_draws_less_than_compress(self):
        curve = CalibratedPowerCurve()
        for kind_c, kind_d in (
            (WorkloadKind.COMPRESS_SZ, WorkloadKind.DECOMPRESS_SZ),
            (WorkloadKind.COMPRESS_ZFP, WorkloadKind.DECOMPRESS_ZFP),
        ):
            pc = curve.power_watts(BROADWELL_D1548, 2.0, kind_c)
            pd = curve.power_watts(BROADWELL_D1548, 2.0, kind_d)
            assert pd < pc

    def test_node_runs_restore_workloads(self):
        node = SimulatedNode(BROADWELL_D1548, seed=0)
        for wl in (
            decompression_workload(WorkloadKind.DECOMPRESS_ZFP, int(1e9), 1e-3),
            read_workload(int(1e9), 500e6),
        ):
            m = node.run(wl)
            assert m.energy_j > 0 and m.runtime_s > 0


class TestCascadeLake:
    def test_spec(self):
        assert CASCADELAKE_6230.arch == "cascadelake"
        assert CASCADELAKE_6230.fmax_ghz == 2.1
        assert get_cpu("cascadelake") is CASCADELAKE_6230

    @pytest.mark.parametrize("curve_cls", [CalibratedPowerCurve, PhysicalPowerCurve])
    def test_curves_defined(self, curve_cls):
        curve = curve_cls()
        for kind in (WorkloadKind.COMPRESS_SZ, WorkloadKind.WRITE):
            grid = CASCADELAKE_6230.available_frequencies()
            p = [curve.power_watts(CASCADELAKE_6230, float(f), kind) for f in grid]
            assert all(v > 0 for v in p)
            assert np.all(np.diff(p) >= -1e-9)

    def test_scaled_power_normalized(self):
        curve = CalibratedPowerCurve()
        assert curve.scaled_power(
            CASCADELAKE_6230, 2.1, WorkloadKind.COMPRESS_SZ
        ) == pytest.approx(1.0)

    def test_exponent_between_broadwell_and_skylake(self):
        # The extension chip's curve steepness sits between the two
        # paper chips: check power drop at 0.875*fmax per arch.
        curve = CalibratedPowerCurve()
        k = WorkloadKind.COMPRESS_SZ

        def drop(cpu):
            f = cpu.snap_frequency(0.875 * cpu.fmax_ghz)
            return 1.0 - curve.scaled_power(cpu, f, k)

        from repro.hardware.cpu import SKYLAKE_4114

        assert drop(BROADWELL_D1548) < drop(CASCADELAKE_6230) < drop(SKYLAKE_4114)

    def test_node_executes_all_kinds(self):
        node = SimulatedNode(CASCADELAKE_6230, seed=0)
        wl = compression_workload(WorkloadKind.COMPRESS_SZ, int(1e9), 1e-2)
        m = node.run(wl)
        assert m.cpu == "cascadelake"
        assert m.energy_j > 0

    def test_trends_hold_on_third_cpu(self):
        # The paper's future-work question: critical power slope +
        # positive Eqn. 3 energy savings on an unseen architecture.
        node = SimulatedNode(CASCADELAKE_6230, power_noise=0.0, runtime_noise=0.0)
        wl = compression_workload(WorkloadKind.COMPRESS_SZ, int(1e9), 1e-2)
        grid = CASCADELAKE_6230.available_frequencies()
        power = np.array([node.true_power_w(wl, float(f)) for f in grid])
        runtime = np.array([node.true_runtime_s(wl, float(f)) for f in grid])
        energy = power * runtime
        f_eqn3 = CASCADELAKE_6230.snap_frequency(0.875 * 2.1)
        i = int(np.argmin(np.abs(grid - f_eqn3)))
        assert energy[i] < energy[-1]  # Eqn. 3 saves energy here too
        assert power[0] == power.min() and power[-1] == power.max()
