"""Tests for the repro-tool CLI."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_experiments_listed(self):
        ns = build_parser().parse_args(["experiment", "table4"])
        assert ns.name == "table4"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])


class TestDatasets:
    def test_lists_registered(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("cesm-atm", "hacc", "nyx", "hurricane-isabel"):
            assert name in out


class TestGenerateCompressDecompress:
    def test_full_file_workflow(self, tmp_path, capsys):
        field = tmp_path / "field.npy"
        comp = tmp_path / "field.rpz"
        rec = tmp_path / "rec.npy"

        assert main(["generate", "--dataset", "nyx", "--field", "velocity_x",
                     "--scale", "32", "--output", str(field)]) == 0
        assert main(["compress", "--input", str(field), "--output", str(comp),
                     "--codec", "zfp", "--error-bound", "1e-2"]) == 0
        assert main(["decompress", "--input", str(comp),
                     "--output", str(rec)]) == 0

        a, b = np.load(field), np.load(rec)
        assert a.shape == b.shape
        assert np.max(np.abs(a.astype(float) - b.astype(float))) <= 1e-2

    def test_chunked_file_workflow(self, tmp_path, capsys):
        field = tmp_path / "f.npy"
        comp = tmp_path / "f.rpck"
        rec = tmp_path / "r.npy"
        assert main(["generate", "--dataset", "cesm-atm", "--field", "T",
                     "--scale", "24", "--output", str(field)]) == 0
        assert main(["compress", "--input", str(field), "--output", str(comp),
                     "--codec", "sz", "--error-bound", "1e-2",
                     "--chunk-mb", "0.05"]) == 0
        assert "chunks" in capsys.readouterr().out
        assert main(["decompress", "--input", str(comp),
                     "--output", str(rec)]) == 0
        a, b = np.load(field), np.load(rec)
        assert np.max(np.abs(a.astype(float) - b.astype(float))) <= 1e-2

    def test_parallel_chunked_workflow(self, tmp_path, capsys):
        field = tmp_path / "f.npy"
        comp = tmp_path / "f.rpck"
        rec = tmp_path / "r.npy"
        assert main(["generate", "--dataset", "nyx", "--field", "velocity_x",
                     "--scale", "32", "--output", str(field)]) == 0
        assert main(["compress", "--input", str(field), "--output", str(comp),
                     "--codec", "sz", "--error-bound", "1e-2",
                     "--chunk-mb", "0.01",
                     "--executor", "thread", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "chunks" in out
        assert "tasks via thread" in out
        assert main(["decompress", "--input", str(comp), "--output", str(rec),
                     "--executor", "serial"]) == 0
        a, b = np.load(field), np.load(rec)
        assert np.max(np.abs(a.astype(float) - b.astype(float))) <= 1e-2

    def test_workers_flag_implies_chunking(self, tmp_path, capsys):
        field = tmp_path / "f.npy"
        np.save(field, np.ones((64, 8), dtype=np.float32))
        assert main(["compress", "--input", str(field),
                     "--output", str(tmp_path / "o.rpck"),
                     "--codec", "sz", "--workers", "2"]) == 0
        assert "chunks" in capsys.readouterr().out

    def test_executor_flag_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compress", "--input", "x", "--output", "y",
                 "--executor", "gpu"]
            )

    def test_unknown_codec_is_error_not_crash(self, tmp_path, capsys):
        field = tmp_path / "f.npy"
        np.save(field, np.ones(16, dtype=np.float32))
        code = main(["compress", "--input", str(field),
                     "--output", str(tmp_path / "o"), "--codec", "lz4"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_input_is_error(self, tmp_path, capsys):
        code = main(["compress", "--input", str(tmp_path / "absent.npy"),
                     "--output", str(tmp_path / "o"), "--codec", "sz"])
        assert code == 1


class TestCharacterizeTuneDump:
    @pytest.fixture(scope="class")
    def bundle_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "models.json"
        code = main(["characterize", "--output", str(path),
                     "--repeats", "3", "--stride", "5", "--scale", "32"])
        assert code == 0
        return path

    def test_bundle_is_valid_json(self, bundle_path):
        doc = json.loads(bundle_path.read_text())
        assert set(doc["compression_power"]) == {
            "Total", "SZ", "ZFP", "Broadwell", "Skylake"
        }
        assert doc["metadata"]["repeats"] == 3

    def test_tune_eqn3(self, bundle_path, capsys):
        assert main(["tune", "--models", str(bundle_path)]) == 0
        out = capsys.readouterr().out
        assert "broadwell" in out and "skylake" in out
        assert "1.75" in out  # Eqn. 3 Broadwell compression frequency

    def test_tune_optimal_edp(self, bundle_path, capsys):
        assert main(["tune", "--models", str(bundle_path),
                     "--policy", "optimal", "--objective", "edp"]) == 0
        assert "optimal/edp" in capsys.readouterr().out

    def test_dump(self, bundle_path, capsys):
        assert main(["dump", "--models", str(bundle_path), "--arch", "skylake",
                     "--target-gb", "64", "--scale", "32"]) == 0
        out = capsys.readouterr().out
        assert "saved" in out and "kJ" in out

    def test_dump_unknown_arch(self, bundle_path, capsys):
        assert main(["dump", "--models", str(bundle_path),
                     "--arch", "epyc"]) == 1

    def test_characterize_with_export_dir(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        export = tmp_path / "artifacts"
        assert main(["characterize", "--output", str(out),
                     "--export-dir", str(export),
                     "--repeats", "2", "--stride", "6", "--scale", "32"]) == 0
        assert (export / "manifest.json").exists()
        assert (export / "compression_sweep.csv").exists()
        assert "artifacts exported" in capsys.readouterr().out

    def test_characterize_physical_curve(self, tmp_path, capsys):
        out = tmp_path / "phys.json"
        assert main(["characterize", "--output", str(out),
                     "--curve", "physical",
                     "--repeats", "2", "--stride", "6", "--scale", "32"]) == 0
        doc = json.loads(out.read_text())
        assert doc["metadata"]["curve"] == "physical"


class TestAdviseCampaignCluster:
    def test_advise_ratio(self, capsys):
        assert main(["advise", "--target-ratio", "5", "--scale", "32"]) == 0
        out = capsys.readouterr().out
        assert "bound for ratio" in out and "eb =" in out

    def test_advise_psnr(self, capsys):
        assert main(["advise", "--target-psnr", "55", "--scale", "32"]) == 0
        assert "PSNR" in capsys.readouterr().out

    def test_advise_requires_exactly_one_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["advise", "--target-ratio", "5", "--target-psnr", "60"]
            )

    def test_campaign(self, capsys):
        assert main(["campaign", "--snapshots", "2", "--snapshot-gb", "8",
                     "--scale", "32"]) == 0
        out = capsys.readouterr().out
        assert "I/O share" in out and "saved" in out

    def test_cluster(self, capsys):
        assert main(["cluster", "--nodes", "4", "--per-node-gb", "8",
                     "--scale", "32"]) == 0
        out = capsys.readouterr().out
        assert "CPU-bound fraction" in out and "makespan" in out


class TestExperimentCommand:
    def test_static_table(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_model_table_with_small_campaign(self, capsys):
        assert main(["experiment", "table5",
                     "--repeats", "2", "--stride", "6", "--scale", "32"]) == 0
        assert "TABLE V" in capsys.readouterr().out
