"""Unit + property tests for the Lorenzo predictor on grid indices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.sz.predictor import lorenzo_reconstruct, lorenzo_residual


class TestLorenzo1D:
    def test_residual_is_first_difference(self):
        g = np.array([3, 5, 4, 4], dtype=np.int64)
        assert lorenzo_residual(g).tolist() == [3, 2, -1, 0]

    def test_roundtrip(self):
        g = np.array([10, -3, 7, 0, 0, 2], dtype=np.int64)
        assert np.array_equal(lorenzo_reconstruct(lorenzo_residual(g)), g)


class TestLorenzo2D:
    def test_residual_matches_manual_lorenzo(self):
        g = np.arange(12, dtype=np.int64).reshape(3, 4)
        d = lorenzo_residual(g)
        # Manual: residual[i,j] = g[i,j] - g[i-1,j] - g[i,j-1] + g[i-1,j-1]
        for i in range(3):
            for j in range(4):
                pred = 0
                if i > 0:
                    pred += g[i - 1, j]
                if j > 0:
                    pred += g[i, j - 1]
                if i > 0 and j > 0:
                    pred -= g[i - 1, j - 1]
                assert d[i, j] == g[i, j] - pred

    def test_smooth_field_small_residuals(self):
        x = np.linspace(0, 1, 32)
        g = (np.add.outer(x, x) * 1000).astype(np.int64)
        d = lorenzo_residual(g)
        # Interior residuals of a bilinear ramp are ~0/±1 (rounding).
        assert np.abs(d[1:, 1:]).max() <= 1


class TestLorenzoND:
    @pytest.mark.parametrize("shape", [(17,), (5, 7), (3, 4, 5), (2, 3, 4, 5)])
    def test_roundtrip_all_dims(self, shape):
        rng = np.random.default_rng(0)
        g = rng.integers(-(2**40), 2**40, size=shape)
        assert np.array_equal(lorenzo_reconstruct(lorenzo_residual(g)), g)

    def test_5d_rejected(self):
        with pytest.raises(ValueError):
            lorenzo_residual(np.zeros((2,) * 5, dtype=np.int64))
        with pytest.raises(ValueError):
            lorenzo_reconstruct(np.zeros((2,) * 5, dtype=np.int64))

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        ndim = data.draw(st.integers(1, 3))
        shape = tuple(data.draw(st.integers(1, 8)) for _ in range(ndim))
        flat = data.draw(
            st.lists(
                st.integers(-(2**45), 2**45),
                min_size=int(np.prod(shape)),
                max_size=int(np.prod(shape)),
            )
        )
        g = np.array(flat, dtype=np.int64).reshape(shape)
        assert np.array_equal(lorenzo_reconstruct(lorenzo_residual(g)), g)
