"""Failure injection: corrupted streams must fail loudly, never hang.

Decoders face byte streams from disks and networks; a flipped bit must
produce a clean exception (or, where the corruption lands in payload
data rather than structure, a decoded array) — never an unbounded loop,
a segfault-from-NumPy-indexing, or silent shape corruption.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import (
    ChunkedBuffer,
    ChunkedCompressor,
    LosslessCompressor,
    SZCompressor,
    ZFPCompressor,
)
from repro.compressors.base import CompressedBuffer, CorruptStreamError
from repro.compressors.chunked import _CHUNK_PREFIX_BYTES, CorruptChunkError
from repro.data import load_field

#: Exceptions a decoder may raise on corrupt input; anything else is a bug.
ALLOWED = (ValueError, EOFError, KeyError, IndexError, OverflowError)

CODECS = (SZCompressor(), ZFPCompressor(), LosslessCompressor())


def reference_buffer(codec):
    arr = load_field("nyx", "velocity_x", scale=40)
    return arr, codec.compress(arr, 1e-2)


class TestBitFlips:
    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_payload_bit_flips_fail_cleanly(self, codec):
        arr, buf = reference_buffer(codec)
        rng = np.random.default_rng(0)
        payload = bytearray(buf.payload)
        for _ in range(30):
            corrupted = bytearray(payload)
            pos = int(rng.integers(0, len(corrupted)))
            corrupted[pos] ^= 1 << int(rng.integers(0, 8))
            bad = CompressedBuffer(
                codec=buf.codec, payload=bytes(corrupted), shape=buf.shape,
                dtype=buf.dtype, error_bound=buf.error_bound,
            )
            try:
                out = codec.decompress(bad)
            except ALLOWED:
                continue
            # Decoded despite corruption: shape/dtype must still hold.
            assert out.shape == arr.shape
            assert out.dtype == arr.dtype

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_truncations_fail_cleanly(self, codec):
        arr, buf = reference_buffer(codec)
        for frac in (0.0, 0.1, 0.5, 0.9):
            cut = int(len(buf.payload) * frac)
            bad = CompressedBuffer(
                codec=buf.codec, payload=buf.payload[:cut], shape=buf.shape,
                dtype=buf.dtype, error_bound=buf.error_bound,
            )
            with pytest.raises(ALLOWED):
                codec.decompress(bad)

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_random_garbage_buffers(self, junk):
        with pytest.raises(ALLOWED):
            CompressedBuffer.from_bytes(junk)
        with pytest.raises(ALLOWED):
            ChunkedBuffer.from_bytes(junk)

    @given(st.integers(0, 2**31), st.sampled_from(["sz", "zfp"]))
    @settings(max_examples=25, deadline=None)
    def test_random_payloads_behind_valid_header(self, seed, codec_name):
        from repro.compressors.base import get_compressor

        rng = np.random.default_rng(seed)
        junk = rng.integers(0, 256, size=rng.integers(1, 300)).astype(np.uint8)
        bad = CompressedBuffer(
            codec=codec_name, payload=junk.tobytes(), shape=(8, 8),
            dtype=np.dtype(np.float32), error_bound=1e-2,
        )
        codec = get_compressor(codec_name)
        try:
            out = codec.decompress(bad)
        except ALLOWED:
            return
        assert out.shape == (8, 8)


class TestChunkedContainerCorruption:
    """The RPCK container must fail loudly on any structural damage."""

    @pytest.fixture(scope="class")
    def reference(self):
        arr = load_field("nyx", "velocity_x", scale=40)
        cc = ChunkedCompressor("sz", max_chunk_bytes=1 << 11)
        container = cc.compress(arr, 1e-2)
        assert len(container.chunks) >= 3  # structure worth corrupting
        return arr, cc, container, container.to_bytes()

    @staticmethod
    def _header_bytes(container) -> int:
        return 4 + 1 + 8 * len(container.shape) + 4

    def test_reference_blob_is_valid(self, reference):
        _, cc, container, blob = reference
        restored = ChunkedBuffer.from_bytes(blob)
        assert len(restored.chunks) == len(container.chunks)

    def test_zero_chunk_payload_rejected(self):
        blob = (b"RPCK" + struct.pack("<B", 2)
                + struct.pack("<2q", 4, 4) + struct.pack("<I", 0))
        with pytest.raises(CorruptStreamError, match="zero chunks"):
            ChunkedBuffer.from_bytes(blob)
        # The in-memory route serializes to the same rejected layout.
        empty = ChunkedBuffer(chunks=(), shape=(4, 4)).to_bytes()
        with pytest.raises(CorruptStreamError, match="zero chunks"):
            ChunkedBuffer.from_bytes(empty)

    def test_chunk_count_overflow_rejected_fast(self, reference):
        _, _, container, blob = reference
        count_off = 4 + 1 + 8 * len(container.shape)
        for count in (0xFFFFFFFF, len(blob), len(container.chunks) + 1):
            bad = (blob[:count_off] + struct.pack("<I", count)
                   + blob[count_off + 4:])
            with pytest.raises(CorruptStreamError):
                ChunkedBuffer.from_bytes(bad)

    def test_nonpositive_shape_rejected(self):
        for dim in (0, -4):
            blob = (b"RPCK" + struct.pack("<B", 1)
                    + struct.pack("<q", dim) + struct.pack("<I", 1))
            with pytest.raises(CorruptStreamError):
                ChunkedBuffer.from_bytes(blob)
        zero_d = b"RPCK" + struct.pack("<B", 0) + struct.pack("<I", 1)
        with pytest.raises(CorruptStreamError, match="0-dimensional"):
            ChunkedBuffer.from_bytes(zero_d)

    def test_truncation_at_every_header_boundary(self, reference):
        _, _, container, blob = reference
        # Every byte of the container header, every chunk-prefix
        # boundary, and mid-prefix cuts must all raise cleanly.
        cuts = set(range(self._header_bytes(container) + 1))
        off = self._header_bytes(container)
        for chunk in container.chunks:
            cuts.update((off, off + 8, off + _CHUNK_PREFIX_BYTES))
            off += _CHUNK_PREFIX_BYTES + chunk.nbytes
        assert off == len(blob)  # the offset walk matches the layout
        cuts.add(len(blob) - 1)
        for cut in sorted(cuts):
            if cut >= len(blob):
                continue
            with pytest.raises(ALLOWED):
                ChunkedBuffer.from_bytes(blob[:cut])

    def test_structural_bit_flips_never_return_wrong_data(self, reference):
        arr, cc, container, blob = reference
        baseline = cc.decompress(container)
        # Flip every bit of the container header and of each chunk's
        # length prefix: parse or decode must raise, or — if the flip
        # lands somewhere provably benign — reproduce the exact output.
        targets = list(range(self._header_bytes(container)))
        off = self._header_bytes(container)
        for chunk in container.chunks:
            targets.extend(range(off, off + _CHUNK_PREFIX_BYTES))
            off += _CHUNK_PREFIX_BYTES + chunk.nbytes
        for pos in targets:
            for bit in range(8):
                bad = bytearray(blob)
                bad[pos] ^= 1 << bit
                try:
                    parsed = ChunkedBuffer.from_bytes(bytes(bad))
                    out = cc.decompress(parsed)
                except ALLOWED:
                    continue
                assert np.array_equal(out, baseline), (
                    f"silent corruption at byte {pos} bit {bit}"
                )

    def test_every_byte_flip_detected_or_exact(self):
        # Exhaustive single-bit sweep over a whole (small, lossless)
        # container: every flipped byte must yield a clean error or the
        # exact baseline array — never a silently different array.
        # Flips inside a chunk body must specifically raise
        # CorruptChunkError naming that chunk, because CRC-32 detects
        # every single-bit error.
        arr = np.linspace(-1.0, 1.0, 256).reshape(16, 16)
        cc = ChunkedCompressor("gzip", max_chunk_bytes=512)
        container = cc.compress(arr, 1e-3)
        assert len(container.chunks) >= 3
        baseline = cc.decompress(container)
        blob = container.to_bytes()

        body_spans = []
        off = self._header_bytes(container)
        for index, chunk in enumerate(container.chunks):
            start = off + _CHUNK_PREFIX_BYTES
            body_spans.append((start, start + chunk.nbytes, index))
            off = start + chunk.nbytes
        assert off == len(blob)

        def body_index(pos):
            for start, end, index in body_spans:
                if start <= pos < end:
                    return index
            return None

        for pos in range(len(blob)):
            bad = bytearray(blob)
            bad[pos] ^= 1 << (pos % 8)
            try:
                out = cc.decompress(ChunkedBuffer.from_bytes(bytes(bad)))
            except CorruptChunkError as exc:
                expected = body_index(pos)
                if expected is not None:
                    assert exc.chunk_index == expected, pos
                continue
            except ALLOWED:
                assert body_index(pos) is None, (
                    f"body flip at byte {pos} escaped the CRC check"
                )
                continue
            assert body_index(pos) is None, (
                f"body flip at byte {pos} decoded silently"
            )
            assert np.array_equal(out, baseline), (
                f"silent corruption at byte {pos}"
            )

    @given(st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_random_payload_bit_flips_fail_cleanly(self, reference, seed):
        arr, cc, container, blob = reference
        rng = np.random.default_rng(seed)
        bad = bytearray(blob)
        pos = int(rng.integers(0, len(bad)))
        bad[pos] ^= 1 << int(rng.integers(0, 8))
        try:
            out = cc.decompress(ChunkedBuffer.from_bytes(bytes(bad)))
        except ALLOWED:
            return
        # Flip landed in codec payload data: values may be wrong but the
        # geometry must survive.
        assert out.shape == arr.shape


class TestWrongMetadata:
    def test_swapped_dtype_fails_or_decodes_shaped(self):
        arr = load_field("nyx", "velocity_x", scale=40).astype(np.float64)
        codec = SZCompressor()
        buf = codec.compress(arr, 1e-2)
        lied = CompressedBuffer(
            codec=buf.codec, payload=buf.payload, shape=buf.shape,
            dtype=np.dtype(np.float32), error_bound=buf.error_bound,
        )
        try:
            out = codec.decompress(lied)
        except ALLOWED:
            return
        assert out.dtype == np.float32

    def test_wrong_error_bound_degrades_not_crashes(self):
        # SZ derives the grid from the recorded bound: decoding with a
        # different bound yields wrong values but a well-formed array.
        arr = load_field("nyx", "velocity_x", scale=40)
        codec = SZCompressor()
        buf = codec.compress(arr, 1e-2)
        lied = CompressedBuffer(
            codec=buf.codec, payload=buf.payload, shape=buf.shape,
            dtype=buf.dtype, error_bound=1e-1,
        )
        out = codec.decompress(lied)
        assert out.shape == arr.shape
        assert np.max(np.abs(out - arr)) > 1e-2  # values really are wrong
