"""Unit tests for the tuning objective family."""

import numpy as np
import pytest

from repro.core.objectives import Objective, objective_curve, optimal_frequency
from repro.core.power_model import PowerModel
from repro.core.runtime_model import RuntimeModel
from repro.hardware.cpu import BROADWELL_D1548
from repro.utils.stats import GoodnessOfFit

GOF = GoodnessOfFit(0.0, 0.0, 1.0)
POWER = PowerModel("Broadwell", 0.0064, 5.315, 0.7429, 0.8, 2.0, GOF)
RUNTIME = RuntimeModel("compress", 0.55, 2.0, GOF)


class TestObjective:
    def test_delay_exponents(self):
        assert Objective.POWER.delay_exponent == 0
        assert Objective.ENERGY.delay_exponent == 1
        assert Objective.EDP.delay_exponent == 2
        assert Objective.ED2P.delay_exponent == 3

    def test_parse_by_value(self):
        assert Objective("edp") is Objective.EDP


class TestObjectiveCurve:
    def test_energy_matches_product(self):
        f = np.array([1.0, 1.5, 2.0])
        e = objective_curve(POWER, RUNTIME, f, Objective.ENERGY)
        assert np.allclose(e, POWER.predict(f) * RUNTIME.predict(f))

    def test_power_objective_ignores_runtime(self):
        f = np.array([1.0, 1.5, 2.0])
        p = objective_curve(POWER, RUNTIME, f, Objective.POWER)
        assert np.allclose(p, POWER.predict(f))

    def test_invalid_objective_type(self):
        with pytest.raises(TypeError):
            objective_curve(POWER, RUNTIME, [1.0], "energy")


class TestOptimalFrequency:
    def test_power_objective_picks_fmin(self):
        f = optimal_frequency(POWER, RUNTIME, BROADWELL_D1548, Objective.POWER)
        assert f == pytest.approx(0.8)

    def test_delay_aversion_monotone_in_frequency(self):
        # More delay-averse objectives never pick lower frequencies.
        freqs = [
            optimal_frequency(POWER, RUNTIME, BROADWELL_D1548, obj)
            for obj in (Objective.POWER, Objective.ENERGY, Objective.EDP,
                        Objective.ED2P)
        ]
        assert freqs == sorted(freqs)

    def test_ed2p_near_base_clock(self):
        f = optimal_frequency(POWER, RUNTIME, BROADWELL_D1548, Objective.ED2P)
        assert f >= 0.9 * 2.0

    def test_default_is_energy(self):
        from repro.core.tuning import optimal_energy_frequency

        assert optimal_frequency(POWER, RUNTIME, BROADWELL_D1548) == pytest.approx(
            optimal_energy_frequency(POWER, RUNTIME, BROADWELL_D1548)
        )
