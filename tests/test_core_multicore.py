"""Unit tests for multi-core frequency/width co-tuning."""

import numpy as np
import pytest

from repro.core.multicore import (
    CoreFreqPoint,
    optimal_configuration,
    pareto_front,
    sweep_configurations,
)
from repro.hardware.cpu import BROADWELL_D1548, SKYLAKE_4114
from repro.hardware.node import SimulatedNode
from repro.hardware.powercurves import CalibratedPowerCurve
from repro.hardware.workload import WorkloadKind, compression_workload, write_workload


@pytest.fixture
def node():
    return SimulatedNode(BROADWELL_D1548, power_noise=0.0, runtime_noise=0.0)


@pytest.fixture
def workload():
    return compression_workload(WorkloadKind.COMPRESS_SZ, int(16e9), 1e-2)


class TestMulticorePower:
    def test_additive_until_tdp(self):
        curve = CalibratedPowerCurve()
        cpu = BROADWELL_D1548
        k = WorkloadKind.COMPRESS_SZ
        p1 = curve.multicore_power_watts(cpu, 2.0, k, 1)
        p2 = curve.multicore_power_watts(cpu, 2.0, k, 2)
        dyn = curve.dynamic_watts(cpu, 2.0, k)
        assert p2 - p1 == pytest.approx(dyn, rel=1e-9)

    def test_tdp_cap(self):
        curve = CalibratedPowerCurve()
        cpu = SKYLAKE_4114
        k = WorkloadKind.COMPRESS_SZ
        p_all = curve.multicore_power_watts(cpu, cpu.fmax_ghz, k, cpu.cores)
        assert p_all <= cpu.tdp_watts

    def test_static_watts_matches_floor(self):
        curve = CalibratedPowerCurve()
        cpu = BROADWELL_D1548
        k = WorkloadKind.COMPRESS_SZ
        # At fmin the dynamic term is tiny: power ≈ static.
        assert curve.static_watts(cpu, k) <= curve.power_watts(cpu, 0.8, k)
        assert curve.static_watts(cpu, k) > 0.9 * curve.power_watts(cpu, 0.8, k) * 0.95

    def test_core_count_validation(self):
        curve = CalibratedPowerCurve()
        with pytest.raises(ValueError):
            curve.multicore_power_watts(BROADWELL_D1548, 2.0,
                                        WorkloadKind.COMPRESS_SZ, 0)
        with pytest.raises(ValueError):
            curve.multicore_power_watts(BROADWELL_D1548, 2.0,
                                        WorkloadKind.COMPRESS_SZ, 999)


class TestMulticoreRuntime:
    def test_amdahl_speedup(self, workload):
        cpu = BROADWELL_D1548
        t1 = workload.multicore_runtime_s(cpu, 2.0, 1)
        t4 = workload.multicore_runtime_s(cpu, 2.0, 4)
        p = workload.parallel_fraction
        assert t4 == pytest.approx(t1 * ((1 - p) + p / 4))

    def test_serial_workload_no_speedup(self):
        wl = write_workload(int(1e9), 500e6)  # parallel_fraction = 0
        cpu = BROADWELL_D1548
        assert wl.multicore_runtime_s(cpu, 2.0, 8) == pytest.approx(
            wl.multicore_runtime_s(cpu, 2.0, 1)
        )

    def test_single_core_matches_runtime_s(self, workload):
        cpu = BROADWELL_D1548
        assert workload.multicore_runtime_s(cpu, 1.5, 1) == pytest.approx(
            workload.runtime_s(cpu, 1.5)
        )

    def test_cores_validation(self, workload):
        with pytest.raises(ValueError):
            workload.multicore_runtime_s(BROADWELL_D1548, 2.0, 0)


class TestSweepAndOptimum:
    def test_sweep_covers_grid(self, node, workload):
        points = sweep_configurations(node, workload, max_cores=2)
        n_freqs = len(BROADWELL_D1548.available_frequencies())
        assert len(points) == 2 * n_freqs

    def test_wide_and_slow_beats_single_core(self, node, workload):
        # The headline extension finding: amortizing the static floor
        # across cores dwarfs the paper's single-core savings.
        single = optimal_configuration(node, workload, max_cores=1)
        multi = optimal_configuration(node, workload)
        assert multi.cores > 1
        assert multi.energy_j < 0.5 * single.energy_j
        assert multi.runtime_s < single.runtime_s  # and it's faster too

    def test_makespan_cap_respected(self, node, workload):
        points = sweep_configurations(node, workload)
        fastest = min(p.runtime_s for p in points)
        unconstrained = optimal_configuration(node, workload)
        cap = fastest * 1.2
        capped = optimal_configuration(node, workload, max_runtime_s=cap)
        assert capped.runtime_s <= cap
        assert capped.energy_j >= unconstrained.energy_j - 1e-9

    def test_impossible_cap(self, node, workload):
        with pytest.raises(ValueError, match="no .* configuration"):
            optimal_configuration(node, workload, max_runtime_s=1e-6)

    def test_max_cores_validation(self, node, workload):
        with pytest.raises(ValueError):
            sweep_configurations(node, workload, max_cores=0)

    def test_node_run_with_cores(self, workload):
        noisy = SimulatedNode(BROADWELL_D1548, seed=0)
        m1 = noisy.run(workload, cores=1)
        m8 = noisy.run(workload, cores=8)
        assert m8.runtime_s < m1.runtime_s
        assert m8.power_w > m1.power_w


class TestParetoFront:
    def test_front_monotone(self, node, workload):
        front = pareto_front(sweep_configurations(node, workload))
        runtimes = [p.runtime_s for p in front]
        energies = [p.energy_j for p in front]
        assert runtimes == sorted(runtimes)
        assert energies == sorted(energies, reverse=True)

    def test_front_dominates_all_points(self, node, workload):
        points = sweep_configurations(node, workload)
        front = pareto_front(points)
        for p in points:
            assert any(
                f.runtime_s <= p.runtime_s + 1e-12 and f.energy_j <= p.energy_j + 1e-9
                for f in front
            )

    def test_energy_property(self):
        p = CoreFreqPoint(cores=2, freq_ghz=1.0, runtime_s=10.0, power_w=20.0)
        assert p.energy_j == 200.0
