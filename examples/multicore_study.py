#!/usr/bin/env python
"""Multi-core co-tuning: wide-and-slow vs the paper's single-core rule.

The paper tunes one core's frequency. A socket has many cores sharing
one static-power floor — the large constant 'c' in every fitted model.
This study sweeps (cores × frequency) for the 64 GB SZ compression
stage and shows that spreading the work wide at a moderate clock
amortizes that floor, beating single-core Eqn. 3 by several times in
energy while *also* finishing sooner.

    python examples/multicore_study.py
"""

from repro import default_nodes
from repro.core.multicore import (
    optimal_configuration,
    pareto_front,
    sweep_configurations,
)
from repro.hardware.workload import WorkloadKind, compression_workload
from repro.workflow.asciiplot import ascii_chart
from repro.workflow.report import render_table


def main() -> None:
    wl = compression_workload(WorkloadKind.COMPRESS_SZ, int(64e9), 1e-2)
    rows = []
    for node in default_nodes():
        node.power_noise = 0.0
        node.runtime_noise = 0.0
        cpu = node.cpu
        single_eqn3_f = cpu.snap_frequency(0.875 * cpu.fmax_ghz)
        t_eqn3 = node.true_runtime_s(wl, single_eqn3_f, cores=1)
        e_eqn3 = t_eqn3 * node.true_power_w(wl, single_eqn3_f, cores=1)
        best = optimal_configuration(node, wl)
        rows.append(
            {
                "arch": cpu.arch,
                "policy": "Eqn.3 single-core",
                "cores": 1,
                "freq_ghz": single_eqn3_f,
                "runtime_s": t_eqn3,
                "energy_kj": e_eqn3 / 1e3,
            }
        )
        rows.append(
            {
                "arch": cpu.arch,
                "policy": "wide-and-slow optimum",
                "cores": best.cores,
                "freq_ghz": best.freq_ghz,
                "runtime_s": best.runtime_s,
                "energy_kj": best.energy_j / 1e3,
            }
        )
    print(render_table(rows, title="64 GB SZ compression: single-core Eqn. 3 vs (cores x f) optimum"))

    # Pareto front on Broadwell, rendered as an ASCII chart.
    node = default_nodes()[0]
    node.power_noise = 0.0
    node.runtime_noise = 0.0
    front = pareto_front(sweep_configurations(node, wl))
    print()
    print(ascii_chart(
        [p.runtime_s for p in front],
        {"energy_kJ": [p.energy_j / 1e3 for p in front]},
        title="Broadwell runtime/energy Pareto front (cores x frequency)",
        x_label="runtime (s)",
        width=56, height=12,
    ))

    for arch in ("broadwell", "skylake"):
        single = next(r for r in rows if r["arch"] == arch and r["cores"] == 1)
        multi = next(r for r in rows if r["arch"] == arch and r["cores"] > 1)
        assert multi["energy_kj"] < 0.5 * single["energy_kj"]
        assert multi["runtime_s"] < single["runtime_s"]
    print("\nAmortizing the shared static floor across cores beats the "
          "single-core frequency rule by >2x in energy — and is faster. "
          "The paper's own fitted constants (c ≈ 0.74-0.89) predict this.")


if __name__ == "__main__":
    main()
