"""Checkpoint-campaign simulation: the paper's motivating scenario.

Section I motivates the study with HACC-style runs whose snapshot
volumes take hours to move. A :class:`CheckpointCampaign` describes
such a run — N snapshots of S bytes, separated by compute phases — and
:func:`run_campaign` plays it through a node's dump pipeline at chosen
frequencies, producing campaign-level energy/time totals. This is where
the paper's core argument becomes quantitative: the tuned I/O's runtime
penalty is diluted by the compute phases, while its energy saving is
not.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from repro.cache import fingerprint, get_cache
from repro.compressors.base import Compressor, get_compressor
from repro.hardware.cpu import CpuSpec
from repro.hardware.node import SimulatedNode
from repro.iosim.dumper import DataDumper, DumpReport
from repro.iosim.nfs import NfsTarget
from repro.observability import get_registry, get_tracer
from repro.parallel import Executor, resolve_executor
from repro.utils.validation import check_nonnegative, check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.governor import GovernorReport, GovernorSpec
    from repro.resilience.faults import FaultPlan
    from repro.resilience.policies import RecoveryPolicy

__all__ = [
    "CheckpointCampaign",
    "CampaignReport",
    "CampaignPoint",
    "run_campaign",
    "run_campaign_sweep",
]


@dataclass(frozen=True)
class CheckpointCampaign:
    """A simulation run that periodically dumps compressed snapshots."""

    snapshot_bytes: int
    n_snapshots: int
    compute_interval_s: float
    #: Average node power during the compute phase, W (full-tilt cores).
    compute_power_w: float = 38.0

    def __post_init__(self):
        check_positive(self.snapshot_bytes, "snapshot_bytes")
        if self.n_snapshots < 1:
            raise ValueError(f"n_snapshots must be >= 1, got {self.n_snapshots}")
        check_nonnegative(self.compute_interval_s, "compute_interval_s")
        check_positive(self.compute_power_w, "compute_power_w")


@dataclass(frozen=True)
class CampaignReport:
    """Totals over an entire campaign."""

    snapshots: Tuple[DumpReport, ...]
    compute_time_s: float
    compute_energy_j: float
    #: Decision summary when the campaign ran under a governor; ``None``
    #: for explicitly pinned (or base-clock) runs.
    governor: Optional["GovernorReport"] = None

    @property
    def io_energy_j(self) -> float:
        return float(sum(s.total_energy_j for s in self.snapshots))

    @property
    def io_time_s(self) -> float:
        return float(sum(s.total_runtime_s for s in self.snapshots))

    @property
    def total_energy_j(self) -> float:
        return self.io_energy_j + self.compute_energy_j

    @property
    def total_wall_s(self) -> float:
        return self.io_time_s + self.compute_time_s

    @property
    def io_time_fraction(self) -> float:
        """Share of the campaign wall time spent in I/O."""
        return self.io_time_s / self.total_wall_s

    # -- resilience accounting (all zero-ish on clean runs) ----------------

    @property
    def attempts(self) -> int:
        """Total write attempts across all snapshots (≥ ``n_snapshots``)."""
        return sum(
            s.resilience.attempts if s.resilience else 1 for s in self.snapshots
        )

    @property
    def retried_bytes(self) -> int:
        """Bytes re-processed because an attempt failed or a slab died."""
        return sum(
            s.resilience.retried_bytes for s in self.snapshots if s.resilience
        )

    @property
    def energy_overhead_j(self) -> float:
        """Joules burned on failed attempts, stalls, backoff and re-runs."""
        return float(sum(
            s.resilience.energy_overhead_j for s in self.snapshots if s.resilience
        ))

    @property
    def snapshots_lost(self) -> int:
        """Snapshots dropped after recovery was exhausted."""
        return sum(
            1 for s in self.snapshots if s.resilience and s.resilience.lost
        )


def run_campaign(
    node: SimulatedNode,
    compressor: Compressor,
    sample_field: np.ndarray,
    error_bound: float,
    campaign: CheckpointCampaign,
    compress_freq_ghz: float | None = None,
    write_freq_ghz: float | None = None,
    nfs: NfsTarget | None = None,
    repeats: int = 3,
    chunk_bytes: Optional[int] = None,
    executor: "Executor | str" = "auto",
    workers: Optional[int] = None,
    fault_plan: Optional["FaultPlan"] = None,
    policy: Optional["RecoveryPolicy"] = None,
    governor=None,
    power_budget_w: Optional[float] = None,
) -> CampaignReport:
    """Play the campaign through the dump pipeline.

    Compute phases run at the base clock (simulations need full speed —
    the paper's premise); only the snapshot dumps are frequency-tuned.
    With *chunk_bytes* set, each snapshot's ratio measurement shards the
    sample field through :mod:`repro.parallel` (*executor*/*workers*
    pick the backend), so traces show the chunk/slab stages. A
    *fault_plan* injects its faults per snapshot index; retries,
    failovers and losses land on the report's resilience properties.
    A *governor* (a :class:`repro.governor.Governor`, spec or policy
    name) steers any stage without an explicit frequency, learning
    across snapshots; its decision summary lands on
    :attr:`CampaignReport.governor`. A *power_budget_w* caps the node's
    package watts: each phase's cap_ghz comes from inverting the node's
    P(f) curve (:func:`repro.powercap.phase_caps_for_budget`) and binds
    pinned and governed stages alike; ``None`` is bit-identical to an
    uncapped run.
    """
    from repro.governor import resolve_governor

    governor = resolve_governor(governor, node.cpu, power_curve=node.power_curve)
    phase_caps = None
    if power_budget_w is not None:
        from repro.powercap import phase_caps_for_budget

        phase_caps = phase_caps_for_budget(
            node.cpu, node.power_curve, power_budget_w, codec=compressor.name
        )
    dumper = DataDumper(
        node, nfs, repeats=repeats,
        chunk_bytes=chunk_bytes, executor=executor, workers=workers,
    )
    tracer = get_tracer()
    with tracer.span(
        "campaign.run",
        codec=compressor.name,
        snapshots=campaign.n_snapshots,
        snapshot_bytes=campaign.snapshot_bytes,
    ):
        snapshots = []
        for index in range(campaign.n_snapshots):
            with tracer.span("campaign.snapshot", index=index) as sp:
                report = dumper.dump(
                    compressor,
                    sample_field,
                    error_bound,
                    campaign.snapshot_bytes,
                    compress_freq_ghz=compress_freq_ghz,
                    write_freq_ghz=write_freq_ghz,
                    fault_plan=fault_plan,
                    policy=policy,
                    snapshot_index=index,
                    governor=governor,
                    phase_caps=phase_caps,
                )
                sp.set(
                    ratio=report.compression_ratio,
                    modeled_energy_j=report.total_energy_j,
                )
                if report.resilience is not None:
                    sp.set(
                        attempts=report.resilience.attempts,
                        lost=report.resilience.lost,
                    )
            snapshots.append(report)
    get_registry().counter(
        "repro_campaign_snapshots_total",
        help="snapshots dumped by checkpoint campaigns",
    ).inc(campaign.n_snapshots)
    compute_time = campaign.compute_interval_s * campaign.n_snapshots
    compute_energy = compute_time * campaign.compute_power_w
    return CampaignReport(
        snapshots=tuple(snapshots),
        compute_time_s=compute_time,
        compute_energy_j=compute_energy,
        governor=governor.report() if governor is not None else None,
    )


@dataclass(frozen=True)
class CampaignPoint:
    """One point of a campaign sweep: a bound and optional tuned clocks."""

    error_bound: float
    compress_freq_ghz: Optional[float] = None
    write_freq_ghz: Optional[float] = None
    #: Per-point governor spec; mutually exclusive with pinned clocks
    #: (a pinned stage ignores the governor by construction, so mixing
    #: them would silently half-apply the policy).
    governor: Optional["GovernorSpec"] = None
    #: Node package watt budget; phase caps derived from the node's
    #: P(f) curve bind every stage. Rides in the point so capped and
    #: uncapped runs can never alias in the result cache.
    power_budget_w: Optional[float] = None

    def __post_init__(self):
        check_positive(self.error_bound, "error_bound")
        if self.governor is not None and (
            self.compress_freq_ghz is not None or self.write_freq_ghz is not None
        ):
            raise ValueError(
                "a CampaignPoint cannot pin stage frequencies and carry a "
                "governor at the same time"
            )
        if self.power_budget_w is not None:
            check_positive(self.power_budget_w, "power_budget_w")


def _run_campaign_point(
    cpu: CpuSpec,
    codec_name: str,
    sample_field: np.ndarray,
    campaign: CheckpointCampaign,
    nfs: Optional[NfsTarget],
    repeats: int,
    seed: int,
    fault_plan: Optional["FaultPlan"],
    chunk_bytes: Optional[int],
    point: CampaignPoint,
) -> CampaignReport:
    """Module-level so process-pool workers can pickle the task.

    Every point gets its own freshly seeded node, so results are
    independent of execution order — and therefore of the backend.
    """
    node = SimulatedNode(cpu, seed=seed)
    return run_campaign(
        node,
        get_compressor(codec_name),
        sample_field,
        point.error_bound,
        campaign,
        compress_freq_ghz=point.compress_freq_ghz,
        write_freq_ghz=point.write_freq_ghz,
        nfs=nfs,
        repeats=repeats,
        chunk_bytes=chunk_bytes,
        fault_plan=fault_plan,
        governor=point.governor,
        power_budget_w=point.power_budget_w,
    )


def run_campaign_sweep(
    cpu: CpuSpec,
    compressor: "Compressor | str",
    sample_field: np.ndarray,
    points: Sequence["CampaignPoint | float"],
    campaign: CheckpointCampaign,
    nfs: Optional[NfsTarget] = None,
    repeats: int = 3,
    seed: int = 0,
    executor: "Executor | str" = "auto",
    workers: Optional[int] = None,
    fault_plan: Optional["FaultPlan"] = None,
    chunk_bytes: Optional[int] = None,
    governor: "GovernorSpec | str | None" = None,
    power_budget_w: Optional[float] = None,
) -> Tuple[CampaignReport, ...]:
    """Play the campaign at every sweep point, points in parallel.

    Each point (a :class:`CampaignPoint`, or a bare error bound) runs on
    its own node seeded with *seed*, so a sweep's reports are mutually
    comparable and byte-identical across executor backends (a
    *fault_plan*'s triggers are keyed on logical coordinates, so faulted
    sweeps stay backend-identical too). The sweep fans out through
    :mod:`repro.parallel` — process pools pay off once the per-point
    codec work dominates the fork cost. *chunk_bytes* shards each
    snapshot's ratio measurement (and joins the cache key, since it
    shapes the reports' parallel-stage annotations).

    *governor* (a :class:`repro.governor.GovernorSpec` or policy name)
    is the sweep-wide default: it fills every point that neither pins a
    stage frequency nor carries its own spec, *before* cache keys are
    computed — governed and ungoverned sweeps can never alias.

    *power_budget_w* is likewise the sweep-wide watt budget: it fills
    every point that doesn't carry its own, before cache keys are
    computed, so capped and uncapped sweeps never alias either. Because
    the budget travels inside the pure, picklable point, capped sweeps
    stay byte-identical across executor backends — including the
    distributed one — for free.
    """
    if not points:
        raise ValueError("points must be non-empty")
    resolved = tuple(
        p if isinstance(p, CampaignPoint) else CampaignPoint(error_bound=float(p))
        for p in points
    )
    if governor is not None:
        from repro.governor import GovernorSpec

        spec = (
            GovernorSpec(kind=governor) if isinstance(governor, str) else governor
        )
        if not isinstance(spec, GovernorSpec):
            raise ValueError(
                "sweep governor must be a GovernorSpec or policy name, "
                f"got {type(governor).__name__}"
            )
        resolved = tuple(
            replace(p, governor=spec)
            if (
                p.governor is None
                and p.compress_freq_ghz is None
                and p.write_freq_ghz is None
            )
            else p
            for p in resolved
        )
    if power_budget_w is not None:
        from repro.powercap import check_budget_w

        budget = check_budget_w(power_budget_w, "power_budget_w")
        resolved = tuple(
            replace(p, power_budget_w=budget) if p.power_budget_w is None else p
            for p in resolved
        )
    codec_name = compressor if isinstance(compressor, str) else compressor.name
    get_compressor(codec_name)  # fail fast on unknown codecs

    # Incremental recomputation: every point is pure in (cpu, codec,
    # field, campaign, nfs, repeats, seed, fault plan, point) — each
    # fresh-node run is content-addressable. Lookups and stores happen
    # here in the parent, so cache state never depends on the executor
    # backend; only the dirty points fan out through the pool.
    cache = get_cache()
    reports: list = [None] * len(resolved)
    keys: list = []
    miss_indices = list(range(len(resolved)))
    if cache.enabled:
        miss_indices = []
        for i, point in enumerate(resolved):
            key = fingerprint(
                kind="campaign.point",
                cpu=cpu,
                codec=codec_name,
                field=sample_field,
                campaign=campaign,
                nfs=nfs,
                repeats=int(repeats),
                seed=int(seed),
                fault_plan=fault_plan,
                chunk=None if chunk_bytes is None else int(chunk_bytes),
                point=point,
            )
            keys.append(key)
            hit, value = cache.lookup(key, context="campaign.point")
            if hit:
                reports[i] = value
            else:
                miss_indices.append(i)

    fn = partial(
        _run_campaign_point,
        cpu,
        codec_name,
        sample_field,
        campaign,
        nfs,
        int(repeats),
        int(seed),
        fault_plan,
        None if chunk_bytes is None else int(chunk_bytes),
    )
    pool = owned = None
    if miss_indices:
        pool, owned = resolve_executor(
            executor,
            workers,
            n_tasks=len(miss_indices),
            task_nbytes=sample_field.nbytes * campaign.n_snapshots,
            codec_cost=4.0,
        )
    # Points may fan out to worker processes, whose spans are invisible
    # here; the sweep-level span still records the fan-out shape.
    with get_tracer().span(
        "campaign.sweep",
        points=len(resolved),
        cached=len(resolved) - len(miss_indices),
        executor=pool.name if pool is not None else "cache",
        workers=pool.workers if pool is not None else 0,
    ):
        if miss_indices:
            try:
                fresh = pool.map(fn, [resolved[i] for i in miss_indices])
            finally:
                if owned:
                    pool.close()
            for i, report in zip(miss_indices, fresh):
                reports[i] = report
                if cache.enabled:
                    cache.store(keys[i], report, context="campaign.point")
    return tuple(reports)
