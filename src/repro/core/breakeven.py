"""Compress-or-not break-even analysis.

The paper's introduction flags the caveat: "there are cases where the
compression itself can outweigh the runtime for reading and writing the
compressed data". This module makes that boundary precise for the
simulated platform: given a codec's throughput and ratio, at what
effective write bandwidth (equivalently, at how many contending
clients) does compress-then-write start beating a raw write — in time,
and in energy?

With compression throughput ``v_c``, ratio ``r`` and write bandwidth
``v_w`` (all bytes/s), compress-then-write wins on *time* iff

    1/v_c + 1/(r·v_w)  <  1/v_w      ⇔      v_w < v_c · (1 − 1/r)

and on *energy* iff the same inequality holds with each term weighted
by its stage power. Fast links favour raw writes; contention (many
clients sharing an NFS) pushes per-client bandwidth below the threshold
and flips the verdict — the crossover the cluster study exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.hardware.cpu import CpuSpec
from repro.hardware.powercurves import CalibratedPowerCurve, PowerCurve
from repro.hardware.workload import (
    REFERENCE_THROUGHPUT_MBPS,
    WorkloadKind,
    error_bound_work_factor,
)
from repro.iosim.nfs import NfsTarget
from repro.utils.validation import check_positive

__all__ = [
    "StrategyOutcome",
    "compare_strategies",
    "breakeven_bandwidth_bps",
    "breakeven_clients",
]


@dataclass(frozen=True)
class StrategyOutcome:
    """Deterministic time/energy of one dumping strategy."""

    strategy: str
    time_s: float
    energy_j: float


def _compression_rate_bps(kind: WorkloadKind, error_bound: float, cpu: CpuSpec) -> float:
    """Single-core compression throughput at *cpu*'s base clock, B/s."""
    base = REFERENCE_THROUGHPUT_MBPS[kind] * 1e6 / error_bound_work_factor(error_bound)
    # Cross-CPU conversion mirrors Workload.runtime_s at base clock
    # with the codec sensitivity ~0.5 split.
    core_speed = cpu.perf_ghz_factor * cpu.fmax_ghz / 2.0
    s = 0.5
    return base / ((1 - s) + s / core_speed)


def compare_strategies(
    cpu: CpuSpec,
    kind: WorkloadKind,
    ratio: float,
    error_bound: float,
    nbytes: int,
    nfs: Optional[NfsTarget] = None,
    concurrent_clients: int = 1,
    power_curve: Optional[PowerCurve] = None,
) -> Dict[str, StrategyOutcome]:
    """Raw write vs compress-then-write, noise-free, at base clock."""
    check_positive(ratio, "ratio")
    check_positive(nbytes, "nbytes")
    if not kind.is_compression:
        raise ValueError(f"{kind} is not a compression workload kind")
    nfs = nfs if nfs is not None else NfsTarget()
    curve = power_curve if power_curve is not None else CalibratedPowerCurve()

    v_w = nfs.effective_bandwidth_bps(concurrent_clients)
    v_c = _compression_rate_bps(kind, error_bound, cpu)
    p_w = curve.power_watts(cpu, cpu.fmax_ghz, WorkloadKind.WRITE)
    p_c = curve.power_watts(cpu, cpu.fmax_ghz, kind)

    t_raw = nbytes / v_w
    raw = StrategyOutcome("raw-write", t_raw, t_raw * p_w)

    t_c = nbytes / v_c
    t_cw = nbytes / (ratio * v_w)
    compressed = StrategyOutcome(
        "compress-then-write", t_c + t_cw, t_c * p_c + t_cw * p_w
    )
    return {"raw": raw, "compressed": compressed}


def breakeven_bandwidth_bps(
    cpu: CpuSpec,
    kind: WorkloadKind,
    ratio: float,
    error_bound: float,
    criterion: str = "time",
    power_curve: Optional[PowerCurve] = None,
) -> float:
    """Write bandwidth below which compress-then-write wins.

    ``criterion="time"`` solves ``v_w < v_c (1 - 1/r)``;
    ``criterion="energy"`` weights each stage by its power.
    """
    check_positive(ratio, "ratio")
    if ratio <= 1.0:
        return 0.0  # compression that doesn't shrink never wins
    v_c = _compression_rate_bps(kind, error_bound, cpu)
    if criterion == "time":
        return v_c * (1.0 - 1.0 / ratio)
    if criterion == "energy":
        curve = power_curve if power_curve is not None else CalibratedPowerCurve()
        p_w = curve.power_watts(cpu, cpu.fmax_ghz, WorkloadKind.WRITE)
        p_c = curve.power_watts(cpu, cpu.fmax_ghz, kind)
        # E_comp < E_raw ⇔ p_c/v_c < p_w (1 - 1/r) / v_w ⇔ v_w < ...
        return v_c * (p_w / p_c) * (1.0 - 1.0 / ratio)
    raise ValueError(f"criterion must be 'time' or 'energy', got {criterion!r}")


def breakeven_clients(
    cpu: CpuSpec,
    kind: WorkloadKind,
    ratio: float,
    error_bound: float,
    nfs: Optional[NfsTarget] = None,
    criterion: str = "time",
    max_clients: int = 4096,
) -> Optional[int]:
    """Smallest client count at which compression starts winning.

    Returns ``None`` if even *max_clients* contenders leave raw writes
    ahead (e.g. a ratio barely above 1 against a fat link).
    """
    nfs = nfs if nfs is not None else NfsTarget()
    threshold = breakeven_bandwidth_bps(cpu, kind, ratio, error_bound, criterion)
    for n in range(1, max_clients + 1):
        if nfs.effective_bandwidth_bps(n) < threshold:
            return n
    return None
