"""Unit tests for fault plans, specs and recovery policies."""

import numpy as np
import pytest

from repro.hardware.cpu import get_cpu
from repro.hardware.node import SimulatedNode
from repro.hardware.workload import write_workload
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    RecoveryPolicy,
    RetryPolicy,
    example_plan,
    retune_write_frequency,
)


class TestFaultSpec:
    def test_kind_coerced_from_string(self):
        spec = FaultSpec(kind="nfs-stall")
        assert spec.kind is FaultKind.NFS_STALL

    def test_probability_bounds(self):
        FaultSpec(FaultKind.NFS_STALL, probability=0.0)
        FaultSpec(FaultKind.NFS_STALL, probability=1.0)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.NFS_STALL, probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.NFS_STALL, probability=-0.1)

    def test_factor_kinds_need_strict_severity(self):
        # A slowdown/throttle severity of 0 or 1 is degenerate.
        for kind in (FaultKind.NFS_SLOWDOWN, FaultKind.DVFS_THROTTLE):
            with pytest.raises(ValueError):
                FaultSpec(kind, severity=1.0)
            with pytest.raises(ValueError):
                FaultSpec(kind, severity=0.0)
            FaultSpec(kind, severity=0.5)
        # Transient errors may waste the whole write (severity=1).
        FaultSpec(FaultKind.NFS_TRANSIENT_ERROR, severity=1.0)

    def test_attempts_validation(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(FaultKind.NFS_STALL, attempts=0)

    def test_negative_indices_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(FaultKind.WORKER_CRASH, targets=(-1,))
        with pytest.raises(FaultPlanError):
            FaultSpec(FaultKind.NFS_STALL, snapshots=(0, -2))

    def test_applies_to_gating(self):
        spec = FaultSpec(FaultKind.NFS_TRANSIENT_ERROR, snapshots=(1, 3),
                         attempts=2)
        assert spec.applies_to(1, 1)
        assert spec.applies_to(3, 2)
        assert not spec.applies_to(2, 1)   # wrong snapshot
        assert not spec.applies_to(1, 3)   # attempt past the limit

    def test_dict_round_trip(self):
        spec = FaultSpec(FaultKind.NFS_STALL, probability=0.5,
                         snapshots=(0, 2), attempts=2, stall_s=7.5)
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultPlanError, match="unknown fault fields"):
            FaultSpec.from_dict({"kind": "nfs-stall", "chaos": True})

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec.from_dict({"kind": "meteor-strike"})

    def test_kind_taxonomy(self):
        assert FaultKind.NFS_HARD_FAILURE.fails_attempt
        assert FaultKind.NFS_TRANSIENT_ERROR.fails_attempt
        assert not FaultKind.NFS_STALL.fails_attempt
        assert FaultKind.WORKER_CRASH.is_compress_fault
        assert not FaultKind.WORKER_CRASH.is_write_fault
        assert FaultKind.DVFS_THROTTLE.is_write_fault
        assert FaultKind.DVFS_THROTTLE.is_compress_fault


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = example_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = example_plan()
        plan.to_file(path)
        assert FaultPlan.from_file(path) == plan

    def test_is_empty(self):
        assert FaultPlan().is_empty
        assert FaultPlan(specs=(
            FaultSpec(FaultKind.NFS_STALL, probability=0.0),
        )).is_empty
        assert not FaultPlan(specs=(
            FaultSpec(FaultKind.NFS_STALL, probability=0.1),
        )).is_empty

    def test_kinds_sorted_unique(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.NFS_STALL),
            FaultSpec(FaultKind.BIT_FLIP),
            FaultSpec(FaultKind.NFS_STALL, probability=0.5),
        ))
        assert plan.kinds() == ("bit-flip", "nfs-stall")

    def test_malformed_json_raises_plan_error(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{broken")

    def test_non_object_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"faults": "oops"})

    def test_unknown_top_level_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown top-level"):
            FaultPlan.from_dict({"seeds": 3})

    def test_specs_must_be_fault_specs(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(specs=({"kind": "nfs-stall"},))

    def test_plan_error_is_value_error(self):
        # The CLI's error handler catches ValueError; plan errors must
        # flow through it rather than crash with a traceback.
        assert issubclass(FaultPlanError, ValueError)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(FaultPlanError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_backoff_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=4.0, jitter=0.1)
        values = [policy.backoff_s(a, seed=3, snapshot=0) for a in (1, 2, 3, 4, 5)]
        again = [policy.backoff_s(a, seed=3, snapshot=0) for a in (1, 2, 3, 4, 5)]
        assert values == again
        # Exponential growth up to the cap, within the jitter envelope.
        for attempt, value in enumerate(values, start=1):
            raw = min(4.0, 2.0 ** (attempt - 1))
            assert raw * 0.9 <= value <= raw * 1.1

    def test_backoff_varies_with_seed_and_snapshot(self):
        policy = RetryPolicy(jitter=0.5)
        a = policy.backoff_s(1, seed=0, snapshot=0)
        b = policy.backoff_s(1, seed=1, snapshot=0)
        c = policy.backoff_s(1, seed=0, snapshot=1)
        assert len({a, b, c}) == 3

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base_s=2.0, backoff_cap_s=100.0, jitter=0.0)
        assert policy.backoff_s(3, seed=9, snapshot=9) == 8.0

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0, seed=0, snapshot=0)

    def test_dict_round_trip(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=0.5,
                             backoff_cap_s=8.0, jitter=0.25)
        assert RetryPolicy.from_dict(policy.as_dict()) == policy

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(FaultPlanError, match="unknown retry fields"):
            RetryPolicy.from_dict({"max_retries": 3})


class TestRecoveryPolicy:
    def test_defaults_from_none(self):
        assert RecoveryPolicy.from_dict(None) == RecoveryPolicy()

    def test_dict_round_trip(self):
        policy = RecoveryPolicy(
            retry=RetryPolicy(max_attempts=2), failover=False,
            degraded_retune=False, skip_on_exhaustion=False,
        )
        assert RecoveryPolicy.from_dict(policy.as_dict()) == policy

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown policy fields"):
            RecoveryPolicy.from_dict({"fail_over": True})
        with pytest.raises(FaultPlanError):
            RecoveryPolicy.from_dict("retry hard")

    def test_example_plan_policy_parses(self):
        policy = RecoveryPolicy.from_dict(example_plan().policy_doc)
        assert policy.retry.max_attempts == 4
        assert policy.failover


class TestRetuneWriteFrequency:
    @pytest.fixture(scope="class")
    def node(self):
        return SimulatedNode(get_cpu("skylake"), seed=0)

    def test_returns_grid_frequency(self, node):
        wl = write_workload(10**8, 100e6, name="retune-test")
        freq = retune_write_frequency(node, wl)
        assert freq in np.asarray(node.cpu.available_frequencies())

    def test_cap_is_respected(self, node):
        wl = write_workload(10**8, 100e6, name="retune-test")
        grid = np.asarray(node.cpu.available_frequencies())
        cap = float(np.median(grid))
        freq = retune_write_frequency(node, wl, cap_ghz=cap)
        assert freq <= cap + 1e-9

    def test_minimizes_true_energy(self, node):
        wl = write_workload(10**8, 100e6, name="retune-test")
        freq = retune_write_frequency(node, wl)
        chosen = node.true_power_w(wl, freq) * node.true_runtime_s(wl, freq)
        for f in node.cpu.available_frequencies():
            other = node.true_power_w(wl, f) * node.true_runtime_s(wl, f)
            assert chosen <= other + 1e-9

    def test_cap_below_grid_falls_back_to_lowest(self, node):
        wl = write_workload(10**8, 100e6, name="retune-test")
        grid = np.asarray(node.cpu.available_frequencies())
        freq = retune_write_frequency(node, wl, cap_ghz=float(grid.min()) / 2)
        assert freq == float(grid.min())
