"""Bit-level I/O on top of the pluggable bit-packing kernels.

The Huffman coder and the ZFP bit-plane coder both need a bit stream.
``BitWriter`` accumulates bits in per-call chunks and packs them through
the ``pack_bits`` kernel on flush; ``BitReader`` unpacks once via
``unpack_bits`` and serves slices, which keeps the per-bit Python
overhead low (guides: vectorize, avoid per-element Python loops where
the layout allows it). The kernel imports happen at call time because
:mod:`repro.compressors.kernels` itself depends on this module.

Bit order is MSB-first within each byte, matching ``np.packbits``'s
default ``bitorder='big'``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Append-only bit stream writer.

    Bits are buffered as ``uint8`` values (one per bit) and packed to
    bytes only when :meth:`getvalue` is called.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._nbits = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._nbits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self.write_bits_array(np.array([bit], dtype=np.uint8))

    def write_bits_array(self, bits: Sequence[int]) -> None:
        """Append an array of bits; each element must be 0 or 1."""
        arr = np.asarray(bits, dtype=np.uint8).ravel()
        if arr.size == 0:
            return
        if arr.max(initial=0) > 1:
            raise ValueError("bits must be 0 or 1")
        self._chunks.append(arr)
        self._nbits += arr.size

    def write_uint(self, value: int, nbits: int) -> None:
        """Append *value* as an unsigned big-endian field of *nbits* bits."""
        if nbits <= 0:
            raise ValueError(f"nbits must be positive, got {nbits}")
        value = int(value)
        if value < 0 or value >> nbits:
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        bits = (np.uint64(value) >> shifts) & np.uint64(1)
        self._chunks.append(bits.astype(np.uint8))
        self._nbits += nbits

    def write_uint_array(self, values: Sequence[int], nbits: int) -> None:
        """Append each value in *values* as an *nbits*-bit unsigned field.

        Vectorized across values: one reshape + broadcasted shift.
        """
        vals = np.asarray(values, dtype=np.uint64).ravel()
        if vals.size == 0:
            return
        if nbits <= 0 or nbits > 64:
            raise ValueError(f"nbits must lie in [1, 64], got {nbits}")
        if nbits < 64 and np.any(vals >> np.uint64(nbits)):
            raise ValueError(f"some values do not fit in {nbits} bits")
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        bits = ((vals[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
        self._chunks.append(bits.ravel())
        self._nbits += vals.size * nbits

    def getvalue(self) -> bytes:
        """Pack the stream into bytes (zero-padded to a byte boundary)."""
        if not self._chunks:
            return b""
        from repro.compressors.kernels import pack_bits

        bits = np.concatenate(self._chunks)
        return pack_bits(bits).tobytes()


class BitReader:
    """Sequential reader over a byte string produced by :class:`BitWriter`."""

    def __init__(self, data: bytes, nbits: int | None = None) -> None:
        from repro.compressors.kernels import unpack_bits

        buf = np.frombuffer(bytes(data), dtype=np.uint8)
        self._bits = unpack_bits(buf)
        if nbits is not None:
            if nbits > self._bits.size:
                raise ValueError(
                    f"nbits={nbits} exceeds available {self._bits.size} bits"
                )
            self._bits = self._bits[:nbits]
        self._pos = 0

    def __len__(self) -> int:
        """Total number of bits in the stream."""
        return int(self._bits.size)

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return int(self._bits.size - self._pos)

    def _take(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"cannot read a negative bit count ({n})")
        if self._pos + n > self._bits.size:
            raise EOFError(
                f"bit stream exhausted: wanted {n} bits, {self.remaining} left"
            )
        out = self._bits[self._pos : self._pos + n]
        self._pos += n
        return out

    def read_bit(self) -> int:
        """Read one bit."""
        return int(self._take(1)[0])

    def read_bits_array(self, n: int) -> np.ndarray:
        """Read *n* bits as a ``uint8`` array of 0/1 values."""
        return self._take(n).copy()

    def read_uint(self, nbits: int) -> int:
        """Read an unsigned big-endian field of *nbits* bits."""
        bits = self._take(nbits).astype(np.uint64)
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        return int(np.sum(bits << shifts))

    def read_uint_array(self, count: int, nbits: int) -> np.ndarray:
        """Read *count* unsigned fields of *nbits* bits each (vectorized)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if nbits <= 0 or nbits > 64:
            raise ValueError(f"nbits must lie in [1, 64], got {nbits}")
        bits = self._take(count * nbits).astype(np.uint64).reshape(count, nbits)
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        return np.sum(bits << shifts[None, :], axis=1)
