"""Read-then-decompress restore pipeline (extension of Section VI-B).

The inverse of :class:`~repro.iosim.dumper.DataDumper`: fetch the
compressed bytes from the NFS, then decompress back to the full volume.
Stage order and the per-stage frequency control mirror the dumper so
the same tuning methodology applies to the restore path the paper
leaves to future work.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import Compressor
from repro.hardware.node import SimulatedNode
from repro.hardware.workload import WorkloadKind, decompression_workload, read_workload
from repro.iosim.dumper import DumpReport, StageReport
from repro.iosim.nfs import NfsTarget
from repro.utils.validation import check_positive

__all__ = ["RestoreReport", "DataLoader"]

_DEC_KIND_BY_CODEC = {
    "sz": WorkloadKind.DECOMPRESS_SZ,
    "zfp": WorkloadKind.DECOMPRESS_ZFP,
}


class RestoreReport(DumpReport):
    """Restore outcome; reuses the dump report structure with the
    ``compress`` slot holding the decompression stage and ``write``
    holding the read stage."""

    @property
    def decompress(self) -> StageReport:
        return self.compress

    @property
    def read(self) -> StageReport:
        return self.write


class DataLoader:
    """Runs the read-then-decompress pipeline on a simulated node."""

    def __init__(
        self, node: SimulatedNode, nfs: NfsTarget | None = None, repeats: int = 10
    ) -> None:
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.node = node
        self.nfs = nfs if nfs is not None else NfsTarget()
        self.repeats = int(repeats)

    def _run_stage(self, workload, freq_ghz: float):
        self.node.set_frequency(freq_ghz)
        runs = [self.node.run(workload) for _ in range(self.repeats)]
        runtime = float(np.mean([m.runtime_s for m in runs]))
        energy = float(np.mean([m.energy_j for m in runs]))
        return runs[0].freq_ghz, runtime, energy

    def restore(
        self,
        compressor: Compressor,
        sample_field: np.ndarray,
        error_bound: float,
        target_bytes: int,
        read_freq_ghz: float | None = None,
        decompress_freq_ghz: float | None = None,
    ) -> RestoreReport:
        """Read and decompress *target_bytes* worth of reconstructed data.

        The real codec runs on *sample_field* to obtain the compressed
        size that must be fetched from the NFS.
        """
        check_positive(target_bytes, "target_bytes")
        if compressor.name not in _DEC_KIND_BY_CODEC:
            raise KeyError(f"no workload kind for codec {compressor.name!r}")

        buf = compressor.compress(sample_field, error_bound)
        ratio = buf.ratio
        compressed_bytes = max(1, int(round(target_bytes / ratio)))

        cpu = self.node.cpu
        f_r = cpu.fmax_ghz if read_freq_ghz is None else read_freq_ghz
        f_d = cpu.fmax_ghz if decompress_freq_ghz is None else decompress_freq_ghz

        wl_r = read_workload(compressed_bytes, self.nfs.effective_bandwidth_bps(),
                             name="restore-read")
        fr_snapped, t_r, e_r = self._run_stage(wl_r, f_r)

        wl_d = decompression_workload(
            _DEC_KIND_BY_CODEC[compressor.name], target_bytes, error_bound,
            name=f"{compressor.name}-restore",
        )
        fd_snapped, t_d, e_d = self._run_stage(wl_d, f_d)

        return RestoreReport(
            compress=StageReport(
                stage="decompress",
                freq_ghz=fd_snapped,
                bytes_processed=target_bytes,
                runtime_s=t_d,
                energy_j=e_d,
            ),
            write=StageReport(
                stage="read",
                freq_ghz=fr_snapped,
                bytes_processed=compressed_bytes,
                runtime_s=t_r,
                energy_j=e_r,
            ),
            compression_ratio=ratio,
            error_bound=error_bound,
        )
