"""CLI error paths: bad fault plans, conflicting flags, exit codes.

A CLI that dies with a traceback on a typo'd JSON file is a bug; every
failure here must exit 1 with a single ``error:`` line — and the
observability artifacts the user asked for must still be written, since
a trace of the stages that *did* run is exactly what debugging needs.
"""

import json

import pytest

from repro.cli import main
from repro.resilience import FaultPlan, example_plan

CAMPAIGN_ARGS = ["campaign", "--snapshots", "1", "--snapshot-gb", "1",
                 "--scale", "32"]


@pytest.fixture()
def plan_path(tmp_path):
    path = tmp_path / "plan.json"
    example_plan().to_file(path)
    return path


class TestFaultsSubcommand:
    def test_example_prints_valid_plan(self, capsys):
        assert main(["faults", "example"]) == 0
        doc = capsys.readouterr().out
        plan = FaultPlan.from_json(doc)
        assert plan == example_plan()

    def test_example_writes_file(self, tmp_path, capsys):
        out = tmp_path / "example.json"
        assert main(["faults", "example", "--output", str(out)]) == 0
        assert "written to" in capsys.readouterr().out
        assert FaultPlan.from_file(out) == example_plan()

    def test_validate_accepts_good_plan(self, plan_path, capsys):
        assert main(["faults", "validate", str(plan_path)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "specs" in out and "policy" in out

    def test_validate_rejects_malformed_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["faults", "validate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not valid JSON" in err

    def test_validate_rejects_unknown_fields(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            {"faults": [{"kind": "nfs-stall", "chaos": True}]}
        ))
        assert main(["faults", "validate", str(bad)]) == 1
        assert "unknown fault fields" in capsys.readouterr().err

    def test_validate_rejects_bad_policy(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            {"faults": [], "policy": {"retry": {"max_retries": 3}}}
        ))
        assert main(["faults", "validate", str(bad)]) == 1
        assert "unknown retry fields" in capsys.readouterr().err

    def test_validate_missing_file_is_error(self, tmp_path, capsys):
        assert main(["faults", "validate", str(tmp_path / "nope.json")]) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestBadPlanOnCommands:
    def test_campaign_rejects_malformed_plan(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[not a plan]")
        args = CAMPAIGN_ARGS + ["--fault-plan", str(bad)]
        assert main(args) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_campaign_rejects_missing_plan_file(self, tmp_path, capsys):
        args = CAMPAIGN_ARGS + ["--fault-plan", str(tmp_path / "nope.json")]
        assert main(args) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestConflictingExecutorFlags:
    def test_campaign_serial_with_workers_conflicts(self, capsys):
        args = CAMPAIGN_ARGS + ["--executor", "serial", "--workers", "2"]
        assert main(args) == 1
        assert "--workers conflicts with --executor serial" \
            in capsys.readouterr().err

    def test_campaign_rejects_zero_workers_even_unchunked(self, capsys):
        # Without --chunk-mb the campaign never resolves an executor,
        # so a bad worker count used to be silently ignored.
        args = CAMPAIGN_ARGS + ["--workers", "0"]
        assert main(args) == 1
        assert "workers must be >= 1" in capsys.readouterr().err

    def test_dump_serial_with_workers_conflicts(self, tmp_path, capsys):
        # The conflict is rejected before --models is even opened.
        args = ["dump", "--models", str(tmp_path / "absent.json"),
                "--executor", "serial", "--workers", "2"]
        assert main(args) == 1
        assert "conflicts" in capsys.readouterr().err


class TestGovernSubcommand:
    GOVERN_ARGS = ["govern", "--snapshots", "1", "--snapshot-gb", "1",
                   "--scale", "32"]

    def test_unknown_policy_is_an_error(self, capsys):
        # --governor deliberately has no argparse choices: the governor
        # registry owns the policy set and its error names the options.
        args = self.GOVERN_ARGS + ["--governor", "quantum"]
        assert main(args) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown governor policy" in err
        assert "adaptive" in err

    @pytest.mark.parametrize("window", ["-5", "0", "3"])
    def test_too_small_window_is_an_error(self, capsys, window):
        args = self.GOVERN_ARGS + ["--window", window]
        assert main(args) == 1
        assert "window must be >= 4" in capsys.readouterr().err

    def test_adaptive_conflicts_with_throttle_plan(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "faults": [{"kind": "dvfs-throttle", "probability": 1.0,
                        "severity": 0.5}],
        }))
        args = self.GOVERN_ARGS + ["--governor", "adaptive",
                                   "--fault-plan", str(plan)]
        assert main(args) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "dvfs-throttle" in err

    def test_static_tolerates_throttle_plan(self, tmp_path, capsys):
        # Only the adaptive governor races a throttle for the knob; the
        # static policy under a throttle is a legitimate experiment.
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "faults": [{"kind": "dvfs-throttle", "probability": 1.0,
                        "severity": 0.5}],
        }))
        args = self.GOVERN_ARGS + ["--governor", "static",
                                   "--fault-plan", str(plan)]
        assert main(args) == 0
        assert "static governor" in capsys.readouterr().out

    def test_campaign_adaptive_conflicts_with_throttle_plan(
            self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "faults": [{"kind": "dvfs-throttle", "probability": 1.0,
                        "severity": 0.5}],
        }))
        args = CAMPAIGN_ARGS + ["--governor", "adaptive",
                                "--fault-plan", str(plan)]
        assert main(args) == 1
        assert "dvfs-throttle" in capsys.readouterr().err


class TestCacheSubcommandPaths:
    def test_stats_on_missing_dir_reports_empty_store(self, tmp_path, capsys):
        missing = tmp_path / "never-created"
        assert main(["cache", "stats", "--cache-dir", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "disk entries   : 0" in out
        assert "not created yet" in out
        # Inspecting must not create the directory as a side effect.
        assert not missing.exists()

    def test_clear_on_missing_dir_is_a_noop(self, tmp_path, capsys):
        missing = tmp_path / "never-created"
        assert main(["cache", "clear", "--cache-dir", str(missing)]) == 0
        assert "0 entrie(s) removed" in capsys.readouterr().out
        assert not missing.exists()

    def test_stats_on_file_path_is_an_error(self, tmp_path, capsys):
        not_a_dir = tmp_path / "plain-file"
        not_a_dir.write_text("x")
        assert main(["cache", "stats", "--cache-dir", str(not_a_dir)]) == 1
        err = capsys.readouterr().err
        assert "not a directory" in err
        assert "Traceback" not in err


class TestWorkersSubcommand:
    def test_rejects_malformed_connect_address(self, capsys):
        assert main(["workers", "--connect", "nocolonhere"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "HOST:PORT" in err

    def test_rejects_nonnumeric_port(self, capsys):
        assert main(["workers", "--connect", "localhost:http"]) == 1
        assert "HOST:PORT" in capsys.readouterr().err

    def test_rejects_zero_workers(self, capsys):
        assert main(["workers", "--connect", "127.0.0.1:1",
                     "--workers", "0"]) == 1
        assert "workers must be >= 1" in capsys.readouterr().err

    def test_workers_launcher_does_not_create_cache_dir(self, capsys):
        # --cache-dir on the launcher is forwarded to workers, not
        # installed as this process's cache (which would mkdir).
        assert main(["workers", "--connect", "bad-address",
                     "--cache-dir", "/tmp/nonexistent-fleet-cache"]) == 1
        import os

        assert not os.path.exists("/tmp/nonexistent-fleet-cache")


class TestArtifactsOnFailure:
    def test_artifacts_written_when_command_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        args = CAMPAIGN_ARGS + [
            "--fault-plan", str(bad),
            "--trace-out", str(trace), "--metrics-out", str(metrics),
        ]
        assert main(args) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert trace.exists() and metrics.exists()
        assert "written to" in err


class TestFaultedCampaignEndToEnd:
    def test_hard_failure_plan_reports_resilience(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "faults": [{"kind": "nfs-hard-failure", "probability": 1.0}],
            "seed": 7,
        }))
        metrics = tmp_path / "metrics.prom"
        args = CAMPAIGN_ARGS + ["--fault-plan", str(plan),
                                "--metrics-out", str(metrics)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resilience, base " in out and "resilience, tuned" in out
        assert "0 lost" in out
        body = metrics.read_text()
        assert "repro_faults_injected_total" in body
        assert "repro_failover_total" in body
