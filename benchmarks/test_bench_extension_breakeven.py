"""Extension bench: the compress-or-not crossover.

Maps the boundary the paper's introduction gestures at: raw writes win
on an uncontended fast link; compression wins once per-client bandwidth
drops below ``v_c (1 - 1/r)``. Prints the crossover client count for
each (codec, bound) and checks the analytic threshold against the
strategy simulator.
"""

import numpy as np
from conftest import emit

from repro.compressors import SZCompressor, ZFPCompressor
from repro.core.breakeven import breakeven_clients, compare_strategies
from repro.data import load_field
from repro.hardware.cpu import BROADWELL_D1548
from repro.hardware.workload import WorkloadKind
from repro.workflow.report import render_table

_KINDS = {"sz": WorkloadKind.COMPRESS_SZ, "zfp": WorkloadKind.COMPRESS_ZFP}


def test_bench_extension_breakeven(benchmark, ctx):
    arr = load_field("nyx", "velocity_x", scale=ctx.config.data_scale)

    def run():
        rows = []
        for codec in (SZCompressor(), ZFPCompressor()):
            for eb in (1e-1, 1e-3):
                ratio = codec.compress(arr, eb).ratio
                n_time = breakeven_clients(
                    BROADWELL_D1548, _KINDS[codec.name], ratio, eb,
                    criterion="time",
                )
                n_energy = breakeven_clients(
                    BROADWELL_D1548, _KINDS[codec.name], ratio, eb,
                    criterion="energy",
                )
                rows.append(
                    {
                        "codec": codec.name,
                        "eb": eb,
                        "ratio": ratio,
                        "clients_for_time_win": n_time if n_time else ">4096",
                        "clients_for_energy_win": n_energy if n_energy else ">4096",
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(rows, title="EXTENSION — compress-or-not crossovers (Broadwell)"))

    by = {(r["codec"], r["eb"]): r for r in rows}
    # Coarse bounds (higher ratio, faster codec) cross over earlier.
    sz_coarse = by[("sz", 1e-1)]["clients_for_time_win"]
    sz_fine = by[("sz", 1e-3)]["clients_for_time_win"]
    assert isinstance(sz_coarse, int) and isinstance(sz_fine, int)
    assert sz_coarse <= sz_fine
    # Consistency with the explicit strategy comparison at the crossover.
    ratio = by[("sz", 1e-1)]["ratio"]
    n = sz_coarse
    out = compare_strategies(
        BROADWELL_D1548, WorkloadKind.COMPRESS_SZ, ratio, 1e-1, int(1e9),
        concurrent_clients=n,
    )
    assert out["compressed"].time_s < out["raw"].time_s
