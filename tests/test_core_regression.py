"""Unit + property tests for the a·f^b + c fitter and model selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regression import (
    CANDIDATE_MODELS,
    fit_best_model,
    fit_power_law,
)


def make_curve(a, b, c, n=29, fmin=0.8, fmax=2.2, noise=0.0, seed=0):
    f = np.linspace(fmin, fmax, n)
    y = a * f**b + c
    if noise:
        y = y + np.random.default_rng(seed).normal(0, noise, size=n)
    return f, y


class TestExactRecovery:
    @pytest.mark.parametrize("params", [
        (0.0064, 5.315, 0.7429),     # paper's Broadwell compression
        (2.235e-9, 23.31, 0.7941),   # paper's Skylake compression
        (0.0261, 3.395, 0.7097),     # paper's Broadwell transit
        (0.05, 1.5, 0.2),
    ])
    def test_recovers_paper_parameters_noise_free(self, params):
        a, b, c = params
        f, y = make_curve(a, b, c)
        fit = fit_power_law(f, y)
        assert np.allclose(fit.predict(f), y, atol=1e-6)
        assert fit.gof.rmse < 1e-6

    def test_recovers_under_noise(self):
        f, y = make_curve(0.0064, 5.315, 0.7429, noise=0.01, seed=1)
        fit = fit_power_law(f, y)
        # Prediction error comparable to the injected noise.
        clean = 0.0064 * f**5.315 + 0.7429
        assert np.max(np.abs(fit.predict(f) - clean)) < 0.03

    def test_flat_data_degenerates_gracefully(self):
        f = np.linspace(0.8, 2.0, 25)
        y = np.full(25, 0.9)
        fit = fit_power_law(f, y)
        assert np.allclose(fit.predict(f), 0.9, atol=1e-9)

    def test_decreasing_data_flat_fallback(self):
        # Negative slope with nonnegative_a: falls back near-flat rather
        # than exploding.
        f = np.linspace(0.8, 2.0, 25)
        y = 2.0 - 0.5 * f
        fit = fit_power_law(f, y)
        assert np.all(np.isfinite(fit.predict(f)))

    def test_negative_a_allowed_when_requested(self):
        f, y = make_curve(-0.05, 2.0, 1.5)
        fit = fit_power_law(f, y, nonnegative_a=False)
        assert fit.gof.rmse < 1e-6
        assert fit.a < 0


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least 4"):
            fit_power_law([1, 2, 3], [1, 2, 3])

    def test_nonpositive_frequency(self):
        with pytest.raises(ValueError, match="positive"):
            fit_power_law([-1, 1, 2, 3], [1, 1, 1, 1])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            fit_power_law([1, 2, 3, 4], [1, np.nan, 1, 1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3, 4], [1, 2, 3])

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3, 4], [1, 2, 3, 4], b_bounds=(2.0, 1.0))


class TestEquationString:
    def test_format(self):
        f, y = make_curve(0.01, 3.0, 0.7)
        fit = fit_power_law(f, y)
        eq = fit.equation()
        assert "f^" in eq and "+" in eq


class TestModelSelection:
    def test_powerlaw_wins_on_powerlaw_data(self):
        f, y = make_curve(2e-9, 23.0, 0.79, noise=0.002, seed=2)
        best = fit_best_model(f, y)
        assert best.family == "powerlaw"

    def test_line_fits_linear_data(self):
        f = np.linspace(0.8, 2.2, 29)
        y = 2.0 * f + 1.0
        best = fit_best_model(f, y)
        # powerlaw with b=1 also fits; either is acceptable, RMSE ~ 0.
        assert best.gof.rmse < 1e-6

    def test_family_subset(self):
        f, y = make_curve(0.01, 3.0, 0.7)
        best = fit_best_model(f, y, families=["poly1", "poly2"])
        assert best.family in ("poly1", "poly2")

    def test_unknown_family(self):
        f, y = make_curve(0.01, 3.0, 0.7)
        with pytest.raises(KeyError, match="unknown model"):
            fit_best_model(f, y, families=["spline"])

    def test_all_candidates_run(self):
        f, y = make_curve(0.01, 3.0, 0.7, noise=0.01)
        for name, fitter in CANDIDATE_MODELS.items():
            m = fitter(*_xy(f, y))
            assert np.all(np.isfinite(m.predict(f))), name


def _xy(f, y):
    return np.asarray(f, dtype=np.float64), np.asarray(y, dtype=np.float64)


class TestPropertyRecovery:
    @given(
        st.floats(1e-4, 0.1),
        st.floats(1.0, 12.0),
        st.floats(0.1, 2.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_noise_free_recovery_property(self, a, b, c):
        f, y = make_curve(a, b, c)
        fit = fit_power_law(f, y)
        assert fit.gof.rmse < 1e-4 * max(1.0, np.max(np.abs(y)))
