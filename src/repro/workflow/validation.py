"""Cross-validation of the power models.

Fig. 5 validates the Broadwell model on one held-out dataset. This
module generalizes that into leave-one-dataset-out cross-validation:
for each Table I dataset, fit the per-partition models *without* it and
score them on it. The resulting matrix quantifies how much of each
model's quality is dataset-specific vs. architectural — a sharper
version of the paper's "hardware dominates" conclusion.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.partitions import COMPRESSION_PARTITIONS, fit_partition_models
from repro.core.samples import SampleSet

__all__ = ["leave_one_dataset_out", "loocv_rows"]


def leave_one_dataset_out(
    samples: SampleSet,
    partitions=COMPRESSION_PARTITIONS,
    value_key: str = "scaled_power_w",
) -> Dict[Tuple[str, str], float]:
    """RMSE of each partition model on each held-out dataset.

    Returns ``{(partition name, held-out dataset): rmse}``. Requires at
    least two datasets in *samples* (otherwise there is nothing to hold
    out).
    """
    datasets = samples.unique("dataset")
    if len(datasets) < 2:
        raise ValueError(
            f"cross-validation needs >= 2 datasets, got {list(datasets)}"
        )
    out: Dict[Tuple[str, str], float] = {}
    for held_out in datasets:
        train = samples.filter(lambda r: r["dataset"] != held_out)
        test = samples.filter(dataset=held_out)
        models = fit_partition_models(train, partitions, value_key=value_key)
        for name, model in models.items():
            # Score per-architecture models only on their own arch.
            subset = test
            if name in ("Broadwell", "Skylake", "Cascadelake"):
                subset = test.filter(cpu=name.lower())
            if len(subset) == 0:
                continue
            out[(name, held_out)] = model.evaluate(subset, value_key).rmse
    return out


def loocv_rows(results: Dict[Tuple[str, str], float]) -> List[Dict[str, object]]:
    """Pivot cross-validation results into render-ready rows."""
    partitions = sorted({k[0] for k in results})
    datasets = sorted({k[1] for k in results})
    rows = []
    for part in partitions:
        row: Dict[str, object] = {"model": part}
        for ds in datasets:
            key = (part, ds)
            row[f"rmse_wo_{ds}"] = results.get(key, float("nan"))
        rows.append(row)
    return rows
