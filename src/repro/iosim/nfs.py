"""Network file system model.

Single-core NFS writes are bottlenecked by the slowest of three stages:
the network link (10 Gbps Ethernet in the paper), the server's disk
array, and the client CPU's ability to drive the protocol + copy path.
Only the CPU stage scales with core frequency; the workload layer
(:func:`repro.hardware.workload.write_workload`) turns the resulting
base-clock effective bandwidth into a DVFS-sensitive runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.observability import get_registry
from repro.utils.validation import check_in_range, check_nonnegative, check_positive

__all__ = ["NfsTarget"]


@dataclass(frozen=True)
class NfsTarget:
    """An NFS mount reachable over a network link.

    Attributes
    ----------
    network_gbps:
        Link speed in Gbit/s (paper: 10 Gbps Ethernet).
    disk_mbps:
        Server-side sustained write rate in MB/s.
    cpu_copy_mbps:
        Client-side single-core copy/protocol throughput at the
        reference (Broadwell base) clock, MB/s.
    per_op_latency_ms:
        Fixed per-write-call overhead (RPC round trip + commit).
    op_size_mb:
        Size of each write call (NFS wsize aggregation), MB.
    """

    network_gbps: float = 10.0
    disk_mbps: float = 1200.0
    cpu_copy_mbps: float = 700.0
    per_op_latency_ms: float = 0.35
    op_size_mb: float = 1.0

    def __post_init__(self):
        check_positive(self.network_gbps, "network_gbps")
        check_positive(self.disk_mbps, "disk_mbps")
        check_positive(self.cpu_copy_mbps, "cpu_copy_mbps")
        check_nonnegative(self.per_op_latency_ms, "per_op_latency_ms")
        check_positive(self.op_size_mb, "op_size_mb")

    @property
    def network_mbps(self) -> float:
        """Link speed converted to MB/s (1 MB = 1e6 B)."""
        return self.network_gbps * 1e3 / 8.0

    @property
    def shared_capacity_mbps(self) -> float:
        """Server-side capacity all clients contend for (network ∧ disk)."""
        return min(self.network_mbps, self.disk_mbps)

    def client_rate_mbps(self, concurrent_clients: int = 1) -> float:
        """Per-client sustainable rate with *concurrent_clients* writers.

        Each client is limited by its own CPU copy path and by an equal
        share of the server capacity; the per-op latency derate applies
        to whichever is smaller.
        """
        if concurrent_clients < 1:
            raise ValueError(
                f"concurrent_clients must be >= 1, got {concurrent_clients}"
            )
        pipeline_mbps = min(
            self.cpu_copy_mbps, self.shared_capacity_mbps / concurrent_clients
        )
        seconds_per_mb = 1.0 / pipeline_mbps + (
            self.per_op_latency_ms / 1e3 / self.op_size_mb
        )
        return 1e6 / seconds_per_mb / 1e6

    def effective_bandwidth_bps(self, concurrent_clients: int = 1) -> float:
        """Sustained single-core write bandwidth at reference clock, B/s."""
        return self.client_rate_mbps(concurrent_clients) * 1e6

    def cpu_bound_fraction(self, concurrent_clients: int = 1) -> float:
        """How much of the write path the client CPU limits, in [0, 1].

        1 when the client copy path is the bottleneck (frequency fully
        matters), shrinking toward 0 as the shared server capacity
        saturates (frequency stops mattering). Used to derate the write
        workload's DVFS sensitivity under contention.
        """
        if concurrent_clients < 1:
            raise ValueError(
                f"concurrent_clients must be >= 1, got {concurrent_clients}"
            )
        share = self.shared_capacity_mbps / concurrent_clients
        return float(min(1.0, share / self.cpu_copy_mbps))

    def degraded(self, bandwidth_factor: float) -> "NfsTarget":
        """A copy with the server path degraded to *bandwidth_factor*.

        Models a contended/failing server or link: network and disk
        rates scale down together (the client CPU copy path is local
        and unaffected). Used by the resilience engine's NFS-slowdown
        fault; ``factor=1`` returns ``self`` unchanged so a no-op
        degradation stays bit-identical.
        """
        if bandwidth_factor == 1.0:
            return self
        check_in_range(bandwidth_factor, 0.0, 1.0, "bandwidth_factor",
                       inclusive=False)
        return replace(
            self,
            network_gbps=self.network_gbps * bandwidth_factor,
            disk_mbps=self.disk_mbps * bandwidth_factor,
        )

    def write_time_s(self, nbytes: int) -> float:
        """Reference-clock wall time to write *nbytes*."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        seconds = nbytes / self.effective_bandwidth_bps()
        registry = get_registry()
        registry.counter(
            "repro_nfs_write_bytes_total",
            help="bytes pushed through the modeled NFS write path",
        ).inc(nbytes)
        registry.counter(
            "repro_nfs_write_seconds_total",
            help="modeled reference-clock seconds spent in NFS writes",
        ).inc(seconds)
        return seconds
