"""Throughput benchmarks of the real SZ/ZFP codecs.

These are genuine performance benchmarks (the other benches time the
experiment harness): encode/decode throughput on a NYX field at the
paper's middle error bound, plus ratio bookkeeping in ``extra_info``.
"""

import numpy as np
import pytest
from conftest import emit

from repro.compressors import SZCompressor, ZFPCompressor
from repro.data import load_field


@pytest.fixture(scope="module")
def field():
    return load_field("nyx", "velocity_x", scale=12)  # ~43³ float32


@pytest.mark.parametrize("codec_cls", [SZCompressor, ZFPCompressor],
                         ids=["sz", "zfp"])
def test_bench_compress(benchmark, codec_cls, field):
    codec = codec_cls()
    buf = benchmark(codec.compress, field, 1e-2)
    benchmark.extra_info["ratio"] = buf.ratio
    benchmark.extra_info["mb"] = field.nbytes / 1e6
    assert buf.ratio > 1.5


@pytest.mark.parametrize("codec_cls", [SZCompressor, ZFPCompressor],
                         ids=["sz", "zfp"])
def test_bench_decompress(benchmark, codec_cls, field):
    codec = codec_cls()
    buf = codec.compress(field, 1e-2)
    rec = benchmark(codec.decompress, buf)
    err = float(np.max(np.abs(field.astype(np.float64) - rec.astype(np.float64))))
    benchmark.extra_info["max_error"] = err
    assert err <= 1e-2


def test_bench_sz_error_bound_scaling(benchmark, field):
    """SZ cost across the paper's bounds (one call covers all four)."""
    codec = SZCompressor()

    def run_all():
        return [codec.compress(field, eb).ratio for eb in (1e-1, 1e-2, 1e-3, 1e-4)]

    ratios = benchmark.pedantic(run_all, rounds=2, iterations=1)
    emit(f"SZ ratios across bounds 1e-1..1e-4: {[round(r, 2) for r in ratios]}")
    assert ratios == sorted(ratios, reverse=True)
