"""Bench: regenerate Fig. 2 (compression scaled runtime characteristics)."""

import numpy as np
from conftest import emit

from repro.experiments.characteristics import characteristic_bands
from repro.workflow.report import render_series


def test_bench_figure2(benchmark, ctx):
    samples = ctx.outcome.compression_samples

    bands = benchmark.pedantic(
        characteristic_bands, args=(samples, ("cpu", "compressor"), "runtime"),
        rounds=3, iterations=1,
    )
    for (cpu, comp), band in sorted(bands.items()):
        emit(render_series(
            band.x,
            {"scaled_runtime": band.mean, "ci_low": band.lower, "ci_high": band.upper},
            title=f"FIG. 2 — compression scaled runtime: {cpu}/{comp}",
        ))

    for (cpu, comp), band in bands.items():
        # Best runtime at the highest clock; monotone decrease.
        assert band.mean[-1] == min(band.mean)
        assert np.all(np.diff(band.mean) <= 0.01)

    # Paper: SZ and ZFP trends overlap.
    for cpu in ("broadwell", "skylake"):
        sz = bands[(cpu, "sz")].mean
        zfp = bands[(cpu, "zfp")].mean
        assert np.max(np.abs(sz - zfp)) < 0.05

    # Paper: +7.5 % runtime at a 12.5 % frequency cut (average).
    slow = []
    for band in bands.values():
        fmax = band.x[-1]
        idx = int(np.argmin(np.abs(band.x - 0.875 * fmax)))
        slow.append(band.mean[idx] / band.mean[-1] - 1.0)
    avg = float(np.mean(slow))
    emit(f"Average compression slowdown at 0.875*fmax: {avg * 100:.1f} % (paper: 7.5 %)")
    assert 0.04 < avg < 0.12
