"""Fig. 3 — data transit scaled power characteristics.

One trend per CPU (sizes pooled — the paper found no size dependence
after scaling). Expected shape: same critical power slope as Fig. 1 but
with a higher floor (~0.85-0.9) because writing loads the core harder;
the Skylake trend spans a narrower range than the Broadwell one.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.characteristics import characteristic_bands
from repro.experiments.context import ExperimentContext
from repro.utils.stats import ConfidenceBand
from repro.workflow.report import render_series

__all__ = ["run", "main"]


def run(ctx: Optional[ExperimentContext] = None) -> Dict[Tuple, ConfidenceBand]:
    """Bands keyed by (cpu,)."""
    ctx = ctx if ctx is not None else ExperimentContext()
    return characteristic_bands(
        ctx.outcome.transit_samples, ("cpu",), value="power"
    )


def main(ctx: Optional[ExperimentContext] = None) -> str:
    """Render every trend of Fig. 3 as a subsampled series table."""
    bands = run(ctx)
    chunks = []
    for gkey, band in sorted(bands.items()):
        chunks.append(
            render_series(
                band.x,
                {"scaled_power": band.mean, "ci_low": band.lower, "ci_high": band.upper},
                title=f"FIG. 3 — data transit scaled power: {gkey[0]}",
            )
        )
    text = "\n\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":
    main()
