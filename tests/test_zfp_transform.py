"""Unit + property tests for the ZFP lifting transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.zfp.transform import (
    forward_transform,
    inverse_transform,
    sequency_order,
)

#: Empirically measured round-trip slop bounds per dimensionality (the
#: lifting drops one bit per shift); see DESIGN.md §6 and the property
#: test below that enforces them with margin.
MAX_ROUNDTRIP_SLOP = {1: 4, 2: 12, 3: 32, 4: 96}


class TestForwardTransform:
    def test_constant_block_concentrates_energy(self):
        blocks = np.full((1, 16), 1024, dtype=np.int64)
        coeffs = forward_transform(blocks, 2)
        # DC coefficient carries everything; AC coefficients vanish.
        assert coeffs[0, 0] != 0
        assert np.abs(coeffs[0, 1:]).max() <= 1

    def test_smooth_ramp_decorrelates(self):
        ramp = np.arange(16, dtype=np.int64) * 1000
        coeffs = forward_transform(ramp.reshape(1, 16), 2)
        # Transform compacts energy: few coefficients dominate.
        mags = np.sort(np.abs(coeffs[0]))[::-1]
        assert mags[4:].sum() < mags[:4].sum()

    def test_growth_bounded(self):
        rng = np.random.default_rng(0)
        for ndim in (1, 2, 3):
            blocks = rng.integers(-(2**30), 2**30, size=(100, 4**ndim))
            coeffs = forward_transform(blocks, ndim)
            assert np.max(np.abs(coeffs)) < 2 ** (30 + ndim + 1)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            forward_transform(np.zeros((2, 15), dtype=np.int64), 2)


class TestInverseTransform:
    @pytest.mark.parametrize("ndim", [1, 2, 3, 4])
    def test_roundtrip_slop_bounded(self, ndim):
        rng = np.random.default_rng(1)
        blocks = rng.integers(-(2**30), 2**30, size=(500, 4**ndim))
        back = inverse_transform(forward_transform(blocks, ndim), ndim)
        slop = np.max(np.abs(back - blocks))
        assert slop <= MAX_ROUNDTRIP_SLOP[ndim]

    def test_zero_preserved_exactly(self):
        blocks = np.zeros((3, 64), dtype=np.int64)
        assert np.array_equal(
            inverse_transform(forward_transform(blocks, 3), 3), blocks
        )

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        ndim = data.draw(st.integers(1, 3))
        vals = data.draw(
            st.lists(
                st.integers(-(2**30), 2**30),
                min_size=4**ndim,
                max_size=4**ndim,
            )
        )
        blocks = np.array(vals, dtype=np.int64).reshape(1, -1)
        back = inverse_transform(forward_transform(blocks, ndim), ndim)
        assert np.max(np.abs(back - blocks)) <= MAX_ROUNDTRIP_SLOP[ndim]

    def test_error_amplification_bounded(self):
        # Perturbing every coefficient by ±1 must perturb the
        # reconstruction by at most the budget assumed by the codec.
        rng = np.random.default_rng(2)
        for ndim in (1, 2, 3):
            base = rng.integers(-(2**30), 2**30, size=(200, 4**ndim))
            coeffs = forward_transform(base, ndim)
            noise = rng.integers(-1, 2, size=coeffs.shape)
            diff = inverse_transform(coeffs + noise, ndim) - inverse_transform(
                coeffs, ndim
            )
            # The codec reserves 2^(2 + 2d) for amplified truncation
            # error; unit-coefficient perturbations must stay within it.
            assert np.max(np.abs(diff)) <= 2 ** (2 + 2 * ndim)


class TestSequencyOrder:
    @pytest.mark.parametrize("ndim", [1, 2, 3, 4])
    def test_is_permutation(self, ndim):
        order = sequency_order(ndim)
        assert sorted(order.tolist()) == list(range(4**ndim))

    def test_dc_first(self):
        for ndim in (1, 2, 3):
            assert sequency_order(ndim)[0] == 0

    def test_2d_order_by_total_index(self):
        order = sequency_order(2)
        idx = np.indices((4, 4)).reshape(2, -1)
        totals = idx.sum(axis=0)[order]
        assert np.all(np.diff(totals) >= 0)

    def test_invalid_ndim(self):
        with pytest.raises(ValueError):
            sequency_order(0)
        with pytest.raises(ValueError):
            sequency_order(5)
