"""Canonical Huffman coding with vectorized encode *and* decode.

SZ's entropy stage Huffman-codes quantization codes for arrays with
millions of elements, so a per-symbol Python loop is not an option
(guides: no per-element Python loops on hot paths). Encoding flattens a
masked bit matrix; decoding precomputes the code length at every bit
position through a 2^L lookup table and extracts the symbol chain with
:func:`repro.utils.chains.follow_chain` pointer doubling.

Codes are canonical (assigned in (length, symbol) order), so only the
symbol table and code lengths need to be serialized.
"""

from __future__ import annotations

import heapq
from typing import Dict, Sequence

import numpy as np

from repro.utils.bitio import BitReader, BitWriter
from repro.utils.chains import follow_chain

__all__ = ["HuffmanCodec", "build_code_lengths"]

_ENCODE_CHUNK = 1 << 20


def build_code_lengths(
    frequencies: Dict[int, int], max_code_length: int = 16
) -> Dict[int, int]:
    """Huffman code lengths for a frequency table, limited to *max_code_length*.

    Uses the classic heap construction; if the resulting tree is deeper
    than the limit, frequencies are repeatedly halved (floored at 1) and
    the tree rebuilt — a standard practical length-limiting scheme that
    converges to near-uniform lengths.
    """
    if not frequencies:
        raise ValueError("frequency table must be non-empty")
    if any(f <= 0 for f in frequencies.values()):
        raise ValueError("frequencies must be positive")
    nsym = len(frequencies)
    if nsym > (1 << max_code_length):
        raise ValueError(
            f"{nsym} symbols cannot be coded within {max_code_length}-bit codes"
        )
    if nsym == 1:
        return {next(iter(frequencies)): 1}

    freqs = dict(frequencies)
    while True:
        # Heap items: (freq, tiebreak, {symbol: depth}).
        heap = [(f, i, {s: 0}) for i, (s, f) in enumerate(sorted(freqs.items()))]
        heapq.heapify(heap)
        counter = len(heap)
        while len(heap) > 1:
            f1, _, d1 = heapq.heappop(heap)
            f2, _, d2 = heapq.heappop(heap)
            merged = {s: d + 1 for s, d in d1.items()}
            merged.update({s: d + 1 for s, d in d2.items()})
            heapq.heappush(heap, (f1 + f2, counter, merged))
            counter += 1
        lengths = heap[0][2]
        if max(lengths.values()) <= max_code_length:
            return lengths
        freqs = {s: max(1, f // 2) for s, f in freqs.items()}


class HuffmanCodec:
    """Canonical Huffman codec over an ``int64`` symbol alphabet."""

    def __init__(self, symbols: Sequence[int], lengths: Sequence[int]) -> None:
        """Build the canonical code from per-symbol code lengths.

        *symbols* and *lengths* are parallel sequences; symbols must be
        distinct. Kraft completeness is validated (a single-symbol
        alphabet, whose code is the 1-bit string ``0``, is the one
        permitted incomplete code).
        """
        syms = np.asarray(symbols, dtype=np.int64).ravel()
        lens = np.asarray(lengths, dtype=np.int64).ravel()
        if syms.size == 0:
            raise ValueError("alphabet must be non-empty")
        if syms.size != lens.size:
            raise ValueError("symbols and lengths must be parallel")
        if np.unique(syms).size != syms.size:
            raise ValueError("symbols must be distinct")
        if np.any(lens <= 0) or np.any(lens > 32):
            raise ValueError("code lengths must lie in [1, 32]")

        kraft = float(np.sum(2.0 ** (-lens.astype(np.float64))))
        if syms.size > 1 and abs(kraft - 1.0) > 1e-9:
            raise ValueError(f"code lengths violate Kraft equality (sum={kraft})")

        # Canonical assignment: sort by (length, symbol), codes count up.
        order = np.lexsort((syms, lens))
        syms, lens = syms[order], lens[order]
        max_len = int(lens.max())
        codes = np.zeros(syms.size, dtype=np.int64)
        code = 0
        prev_len = int(lens[0])
        for i in range(syms.size):
            code <<= int(lens[i]) - prev_len
            codes[i] = code
            prev_len = int(lens[i])
            code += 1

        self._max_len = max_len
        # Encoder view: sorted by symbol for searchsorted mapping.
        sym_order = np.argsort(syms)
        self._symbols_sorted = syms[sym_order]
        self._enc_lengths = lens[sym_order]
        self._enc_codes = codes[sym_order]
        # Decoder view: full prefix table of 2^max_len entries.
        starts = codes << (max_len - lens)
        counts = np.int64(1) << (max_len - lens)
        self._dec_symbol = np.repeat(syms, counts)
        self._dec_length = np.repeat(lens, counts)
        if syms.size == 1:
            # Incomplete single-symbol code: pad the table's second half.
            pad = (1 << max_len) - self._dec_symbol.size
            self._dec_symbol = np.concatenate(
                [self._dec_symbol, np.full(pad, syms[0], dtype=np.int64)]
            )
            self._dec_length = np.concatenate(
                [self._dec_length, np.full(pad, lens[0], dtype=np.int64)]
            )
        if self._dec_symbol.size != (1 << max_len):
            raise ValueError("internal error: prefix table incomplete")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_frequencies(
        cls, frequencies: Dict[int, int], max_code_length: int = 16
    ) -> "HuffmanCodec":
        """Build from a ``{symbol: count}`` table."""
        lengths = build_code_lengths(frequencies, max_code_length)
        syms = list(lengths)
        return cls(syms, [lengths[s] for s in syms])

    @classmethod
    def from_data(cls, data, max_code_length: int = 16) -> "HuffmanCodec":
        """Build from observed symbols (the codec's training data)."""
        arr = np.asarray(data, dtype=np.int64).ravel()
        if arr.size == 0:
            raise ValueError("data must be non-empty")
        values, counts = np.unique(arr, return_counts=True)
        return cls.from_frequencies(
            dict(zip(values.tolist(), counts.tolist())), max_code_length
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def alphabet(self) -> np.ndarray:
        """Symbols the codec can encode, sorted ascending."""
        return self._symbols_sorted.copy()

    @property
    def max_code_length(self) -> int:
        """Longest code length in bits."""
        return self._max_len

    def code_length(self, symbol: int) -> int:
        """Length in bits of *symbol*'s code."""
        idx = self._lookup(np.array([symbol], dtype=np.int64))
        return int(self._enc_lengths[idx[0]])

    def encoded_bit_length(self, data) -> int:
        """Exact number of bits :meth:`encode_to` would emit for *data*."""
        arr = np.asarray(data, dtype=np.int64).ravel()
        if arr.size == 0:
            return 0
        total = 0
        for lo in range(0, arr.size, _ENCODE_CHUNK):
            idx = self._lookup(arr[lo : lo + _ENCODE_CHUNK])
            total += int(self._enc_lengths[idx].sum())
        return total

    def _lookup(self, arr: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self._symbols_sorted, arr)
        bad = (idx >= self._symbols_sorted.size) | (
            self._symbols_sorted[np.minimum(idx, self._symbols_sorted.size - 1)] != arr
        )
        if np.any(bad):
            missing = arr[bad][0]
            raise KeyError(f"symbol {int(missing)} is not in the codec alphabet")
        return idx

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    def encode_to(self, writer: BitWriter, data) -> int:
        """Append the code bits of *data* to *writer*; returns bit count.

        Vectorized: per chunk, codes are left-aligned into a
        ``(n, max_len)`` bit matrix and flattened through a length mask,
        which preserves symbol order row by row.
        """
        arr = np.asarray(data, dtype=np.int64).ravel()
        if arr.size == 0:
            return 0
        total_bits = 0
        max_len = self._max_len
        col = np.arange(max_len, dtype=np.int64)
        for lo in range(0, arr.size, _ENCODE_CHUNK):
            chunk = arr[lo : lo + _ENCODE_CHUNK]
            idx = self._lookup(chunk)
            lens = self._enc_lengths[idx]
            codes = self._enc_codes[idx]
            aligned = codes << (max_len - lens)
            bits = ((aligned[:, None] >> (max_len - 1 - col)[None, :]) & 1).astype(
                np.uint8
            )
            mask = col[None, :] < lens[:, None]
            writer.write_bits_array(bits[mask])
            total_bits += int(lens.sum())
        return total_bits

    def decode(self, bits: np.ndarray, count: int) -> np.ndarray:
        """Decode *count* symbols from a 0/1 bit array.

        The bit array must contain exactly the encoded stream (no
        trailing payload); byte-padding zeros past the last code are
        fine because the chain never visits them.
        """
        if count == 0:
            return np.empty(0, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        nbits = bits.size
        if nbits == 0:
            raise ValueError("empty bit stream but count > 0")
        max_len = self._max_len
        padded = np.concatenate([bits, np.zeros(max_len, dtype=np.uint8)])
        # w[i] = integer value of the max_len-bit window starting at i.
        w = np.zeros(nbits, dtype=np.int64)
        for j in range(max_len):
            w |= padded[j : j + nbits].astype(np.int64) << (max_len - 1 - j)
        lengths_at = self._dec_length[w]
        jumps = np.arange(nbits, dtype=np.int64) + lengths_at
        chain = follow_chain(jumps, 0, count)
        return self._dec_symbol[w[chain]]

    def decode_from(self, reader: BitReader, nbits: int, count: int) -> np.ndarray:
        """Consume *nbits* bits from *reader* and decode *count* symbols."""
        bits = reader.read_bits_array(nbits)
        return self.decode(bits, count)

    # ------------------------------------------------------------------
    # Codebook serialization
    # ------------------------------------------------------------------

    def serialize_to(self, writer: BitWriter) -> None:
        """Write the codebook (symbol values + code lengths)."""
        n = self._symbols_sorted.size
        writer.write_uint(n, 32)
        # Symbols stored zigzag so negative quantization codes fit uint64.
        zz = (self._symbols_sorted << 1) ^ (self._symbols_sorted >> 63)
        writer.write_uint_array(zz.astype(np.uint64), 64)
        writer.write_uint_array(self._enc_lengths.astype(np.uint64), 8)

    @classmethod
    def deserialize_from(cls, reader: BitReader) -> "HuffmanCodec":
        """Read a codebook written by :meth:`serialize_to`."""
        n = reader.read_uint(32)
        if n == 0:
            raise ValueError("serialized codebook is empty")
        zz = reader.read_uint_array(n, 64).astype(np.int64)
        syms = (zz >> 1) ^ -(zz & 1)
        lens = reader.read_uint_array(n, 8).astype(np.int64)
        return cls(syms, lens)
