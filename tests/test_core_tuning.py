"""Unit tests for the tuning policies and optimizers."""

import numpy as np
import pytest

from repro.core.power_model import PowerModel
from repro.core.runtime_model import RuntimeModel
from repro.core.tuning import (
    PAPER_POLICY,
    TuningPolicy,
    energy_curve,
    optimal_energy_frequency,
    recommend_from_models,
)
from repro.hardware.cpu import BROADWELL_D1548, SKYLAKE_4114
from repro.hardware.workload import WorkloadKind
from repro.utils.stats import GoodnessOfFit

GOF = GoodnessOfFit(0.0, 0.0, 1.0)
BW_POWER = PowerModel("Broadwell", 0.0064, 5.315, 0.7429, 0.8, 2.0, GOF)
BW_RUNTIME = RuntimeModel("compress-broadwell", 0.55, 2.0, GOF)


class TestPaperPolicy:
    def test_eqn3_factors(self):
        assert PAPER_POLICY.compress_factor == 0.875
        assert PAPER_POLICY.write_factor == 0.85

    def test_factor_for_kind(self):
        assert PAPER_POLICY.factor_for(WorkloadKind.COMPRESS_SZ) == 0.875
        assert PAPER_POLICY.factor_for(WorkloadKind.COMPRESS_ZFP) == 0.875
        assert PAPER_POLICY.factor_for(WorkloadKind.WRITE) == 0.85

    def test_frequency_snapped_to_grid(self):
        f = PAPER_POLICY.frequency_for(BROADWELL_D1548, WorkloadKind.COMPRESS_SZ)
        assert f == pytest.approx(1.75)  # 0.875 * 2.0
        f = PAPER_POLICY.frequency_for(SKYLAKE_4114, WorkloadKind.WRITE)
        assert f == pytest.approx(1.85)  # 0.85 * 2.2 = 1.87 → snap 1.85

    @pytest.mark.parametrize("factor", [0.0, 1.0, -0.5, 1.5])
    def test_invalid_factors(self, factor):
        with pytest.raises(ValueError):
            TuningPolicy(compress_factor=factor, write_factor=0.85)


class TestEnergyCurve:
    def test_product_of_models(self):
        f = np.array([1.0, 1.5, 2.0])
        e = energy_curve(BW_POWER, BW_RUNTIME, f)
        assert np.allclose(e, BW_POWER.predict(f) * BW_RUNTIME.predict(f))

    def test_energy_below_one_in_sweet_spot(self):
        # Somewhere below fmax, scaled energy dips under 1.
        grid = BROADWELL_D1548.available_frequencies()
        e = energy_curve(BW_POWER, BW_RUNTIME, grid)
        ref = energy_curve(BW_POWER, BW_RUNTIME, np.array([2.0]))[0]
        assert e.min() < ref


class TestOptimalEnergyFrequency:
    def test_interior_optimum(self):
        f = optimal_energy_frequency(BW_POWER, BW_RUNTIME, BROADWELL_D1548)
        assert 0.8 < f < 2.0  # neither endpoint

    def test_memory_bound_workload_prefers_lower_frequency(self):
        # With near-flat runtime the optimum sits well below the base
        # clock (though not necessarily at fmin: the power plateau makes
        # mid-range frequencies equally cheap while still finishing
        # slightly sooner).
        flat_runtime = RuntimeModel("w", 0.05, 2.0, GOF)
        f_flat = optimal_energy_frequency(BW_POWER, flat_runtime, BROADWELL_D1548)
        f_steep = optimal_energy_frequency(
            BW_POWER, RuntimeModel("w", 0.9, 2.0, GOF), BROADWELL_D1548
        )
        assert f_flat < 0.75 * 2.0
        assert f_flat <= f_steep

    def test_fully_io_bound_zero_sensitivity_prefers_fmin(self):
        frozen_runtime = RuntimeModel("w", 0.0, 2.0, GOF)
        f = optimal_energy_frequency(BW_POWER, frozen_runtime, BROADWELL_D1548)
        assert f == pytest.approx(0.8)

    def test_compute_bound_workload_prefers_higher_frequency(self):
        steep_runtime = RuntimeModel("w", 1.0, 2.0, GOF)
        f_steep = optimal_energy_frequency(BW_POWER, steep_runtime, BROADWELL_D1548)
        f_mild = optimal_energy_frequency(BW_POWER, BW_RUNTIME, BROADWELL_D1548)
        assert f_steep >= f_mild

    def test_slowdown_cap_respected(self):
        f = optimal_energy_frequency(
            BW_POWER, BW_RUNTIME, BROADWELL_D1548, max_slowdown=0.05
        )
        assert BW_RUNTIME.predict(f) <= 1.05 + 1e-9

    def test_impossible_cap_raises(self):
        steep = RuntimeModel("w", 1.0, 2.0, GOF)
        with pytest.raises(ValueError, match="no frequency satisfies"):
            optimal_energy_frequency(
                BW_POWER, steep, BROADWELL_D1548, max_slowdown=-0.5
            )


class TestRecommendFromModels:
    def test_policy_recommendation(self):
        rec = recommend_from_models(
            BROADWELL_D1548, "compress", BW_POWER, BW_RUNTIME, PAPER_POLICY
        )
        assert rec.freq_ghz == pytest.approx(1.75)
        assert rec.freq_factor == pytest.approx(0.875)
        # Paper's Broadwell compression numbers: ~13 % power, ~7.9 % slow.
        assert rec.predicted_power_saving == pytest.approx(0.13, abs=0.02)
        assert rec.predicted_slowdown == pytest.approx(0.079, abs=0.01)
        assert rec.predicted_energy_saving > 0

    def test_model_optimal_recommendation(self):
        rec = recommend_from_models(
            BROADWELL_D1548, "compress", BW_POWER, BW_RUNTIME, policy=None
        )
        # Must do at least as well as Eqn. 3 on modeled energy.
        eqn3 = recommend_from_models(
            BROADWELL_D1548, "compress", BW_POWER, BW_RUNTIME, PAPER_POLICY
        )
        assert rec.predicted_energy_saving >= eqn3.predicted_energy_saving - 1e-12

    def test_invalid_stage(self):
        with pytest.raises(ValueError, match="stage"):
            recommend_from_models(BROADWELL_D1548, "decompress", BW_POWER, BW_RUNTIME)
