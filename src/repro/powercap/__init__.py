"""Cluster-level power capping: split a fleet watt budget across nodes.

The paper tunes one node's DVFS frequency per I/O phase; exascale
operation adds a constraint above that — a fleet-wide power budget
shared by N compute nodes and the NFS server. This package closes the
measure -> allocate -> actuate loop at that layer:

* :mod:`repro.powercap.allocation` — the budget-splitting policies
  (uniform, proportional-to-demand, makespan-argmin water-filling)
  over discrete per-node frequency/power models;
* :mod:`repro.powercap.controller` — :class:`ClusterCapController`,
  which subscribes to the telemetry bus, inverts each node's fitted
  ``P(f)`` curve into a ``cap_ghz``, re-allocates on phase-change and
  node join/leave epochs, and seals a sha256-receipted decision trace;
* :mod:`repro.powercap.runtime` — the observational per-worker cap
  state that distributed ``powercap`` wire frames update.

Consumers: ``iosim.cluster.SimulatedCluster`` (capped cluster dumps),
``workflow.campaign`` (``power_budget_w`` on campaign points), the
distributed coordinator (cap broadcast + dead-node redistribution),
``service.http`` (``POST /v1/powercap``) and the ``repro powercap``
CLI. See ``docs/POWERCAP.md``.
"""

from repro.powercap.allocation import (
    ALLOCATION_POLICIES,
    DEFAULT_CAP_HYSTERESIS,
    NodePowerModel,
    allocate_budget,
    allocation_makespan,
    apply_hysteresis,
    check_budget_w,
    proportional_allocation,
    uniform_allocation,
    waterfill_allocation,
)
from repro.powercap.controller import (
    DEFAULT_NFS_RESERVE_W,
    POWERCAP_PHASES,
    ClusterCapController,
    NodeCap,
    PowercapReport,
    cap_ghz_for_watts,
    node_power_model,
    phase_caps_for_budget,
)

__all__ = [
    "ALLOCATION_POLICIES",
    "DEFAULT_CAP_HYSTERESIS",
    "DEFAULT_NFS_RESERVE_W",
    "POWERCAP_PHASES",
    "ClusterCapController",
    "NodeCap",
    "NodePowerModel",
    "PowercapReport",
    "allocate_budget",
    "allocation_makespan",
    "apply_hysteresis",
    "cap_ghz_for_watts",
    "check_budget_w",
    "node_power_model",
    "phase_caps_for_budget",
    "proportional_allocation",
    "uniform_allocation",
    "waterfill_allocation",
]
