#!/usr/bin/env python
"""Exascale dump study: Section VI-B at several target sizes.

Sweeps the 512 GB NYX dump experiment across error bounds *and* target
sizes (128 GB - 2 TB), comparing base-clock and Eqn. 3-tuned energy,
plus a model-optimal policy for contrast.

    python examples/exascale_dump_study.py
"""

import numpy as np

from repro import (
    PAPER_POLICY,
    SweepConfig,
    TunedIOPipeline,
    default_nodes,
)
from repro.core.tuning import optimal_energy_frequency
from repro.workflow.report import render_table


def main() -> None:
    pipe = TunedIOPipeline(default_nodes())
    outcome = pipe.recommend(pipe.characterize(SweepConfig()), PAPER_POLICY)

    rows = []
    for arch in ("broadwell", "skylake"):
        for target_gb in (128, 512, 2048):
            for eb in (1e-1, 1e-3):
                report = pipe.apply(
                    outcome,
                    arch=arch,
                    error_bound=eb,
                    target_bytes=int(target_gb * 1e9),
                )
                rows.append(
                    {
                        "arch": arch,
                        "target_gb": target_gb,
                        "eb": eb,
                        "ratio": report.compression_ratio,
                        "base_kj": report.baseline_energy_j / 1e3,
                        "tuned_kj": report.tuned_energy_j / 1e3,
                        "saved_kj": report.energy_saved_j / 1e3,
                        "saved_pct": report.energy_saving_fraction * 100,
                    }
                )
    print(render_table(rows, title="Compress-and-dump energy, base clock vs Eqn. 3"))

    # Savings should scale ~linearly with the data volume.
    for arch in ("broadwell", "skylake"):
        sub = [r for r in rows if r["arch"] == arch and r["eb"] == 1e-1]
        sub.sort(key=lambda r: r["target_gb"])
        per_gb = [r["saved_kj"] / r["target_gb"] for r in sub]
        spread = (max(per_gb) - min(per_gb)) / np.mean(per_gb)
        print(f"{arch}: savings per GB spread across sizes: {spread * 100:.1f} % "
              "(≈ linear in volume)")

    # Contrast Eqn. 3 with the model-optimal frequency per architecture.
    print()
    for node in pipe.nodes:
        arch = node.cpu.arch
        f_opt = optimal_energy_frequency(
            outcome.compression_models[arch.capitalize()],
            outcome.compression_runtime[arch],
            node.cpu,
        )
        f_eqn3 = 0.875 * node.cpu.fmax_ghz
        print(f"{arch}: Eqn. 3 pins compression at {f_eqn3:.3f} GHz; "
              f"model-optimal energy frequency is {f_opt:.3f} GHz")


if __name__ == "__main__":
    main()
