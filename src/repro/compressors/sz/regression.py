"""SZ2-style regression predictor on the quantization grid.

SZ2 ([5], [6] in the paper) complements the Lorenzo predictor with a
per-block linear regression: each 6^d block is approximated by a fitted
hyperplane and only the residuals are coded — a large win on smooth
fields where Lorenzo's point-to-point differences stay noisy.

This implementation fits the planes to the integer *grid indices* (so
the error bound remains a property of the grid, untouched by predictor
choice) and stores the coefficients in fixed point so encoder and
decoder evaluate bit-identical predictions. All steps are vectorized
across blocks: one pseudo-inverse (shared by every block) turns the fit
into a single matrix multiply.

Deviation from SZ2 noted in DESIGN.md §6: predictor selection here is
per-array, not per-block, which keeps decoding free of cross-block
dependencies; the codec picks whichever predictor's residual stream has
lower empirical entropy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "BLOCK_EDGE",
    "COEFF_FRACTION_BITS",
    "fit_block_planes",
    "predict_from_planes",
    "pack_coefficients",
    "unpack_coefficients",
]

#: SZ2 uses 6x6(x6) regression blocks.
BLOCK_EDGE = 6

#: Fixed-point fractional bits for stored plane coefficients.
COEFF_FRACTION_BITS = 10

_COEFF_SCALE = float(1 << COEFF_FRACTION_BITS)


def _padded_shape(shape: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(s + (-s) % BLOCK_EDGE for s in shape)


def _block_matrix(data: np.ndarray) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Edge-replicated padding + reshape to ``(nblocks, BLOCK_EDGE**d)``."""
    pad = [(0, (-s) % BLOCK_EDGE) for s in data.shape]
    padded = np.pad(data, pad, mode="edge")
    d = data.ndim
    split = []
    for s in padded.shape:
        split.extend([s // BLOCK_EDGE, BLOCK_EDGE])
    work = padded.reshape(split)
    order = list(range(0, 2 * d, 2)) + list(range(1, 2 * d, 2))
    blocks = np.ascontiguousarray(work.transpose(order)).reshape(
        -1, BLOCK_EDGE**d
    )
    return blocks, padded.shape


def _design_pinv(ndim: int) -> Tuple[np.ndarray, np.ndarray]:
    """Design matrix (1, x1..xd per cell) and its pseudo-inverse."""
    coords = np.indices((BLOCK_EDGE,) * ndim).reshape(ndim, -1).T.astype(np.float64)
    design = np.column_stack([np.ones(coords.shape[0]), coords])
    return design, np.linalg.pinv(design)


def fit_block_planes(grid_indices: np.ndarray) -> np.ndarray:
    """Fixed-point plane coefficients per block, shape ``(nblocks, ndim+1)``.

    Coefficients are least-squares fits of each block's grid indices,
    rounded to :data:`COEFF_FRACTION_BITS` fractional bits (the decoder
    sees exactly these rounded values, so predictions agree).
    """
    g = np.asarray(grid_indices, dtype=np.float64)
    if g.ndim < 1 or g.ndim > 4:
        raise ValueError(f"grid index array must be 1-D to 4-D, got {g.ndim}-D")
    blocks, _ = _block_matrix(g)
    _, pinv = _design_pinv(g.ndim)
    coeffs = blocks @ pinv.T
    return np.rint(coeffs * _COEFF_SCALE).astype(np.int64)


def predict_from_planes(
    coeffs_fixed: np.ndarray, shape: Tuple[int, ...]
) -> np.ndarray:
    """Integer grid-index predictions for an array of *shape*.

    Inverse of the blocking in :func:`fit_block_planes`: evaluate each
    block's plane on the block-local coordinates, un-block, and crop the
    padding. Deterministic for given fixed-point coefficients.
    """
    shape = tuple(int(s) for s in shape)
    ndim = len(shape)
    design, _ = _design_pinv(ndim)
    coeffs = np.asarray(coeffs_fixed, dtype=np.float64) / _COEFF_SCALE
    padded_shape = _padded_shape(shape)
    blocks_per_axis = tuple(s // BLOCK_EDGE for s in padded_shape)
    nblocks = int(np.prod(blocks_per_axis))
    if coeffs.shape != (nblocks, ndim + 1):
        raise ValueError(
            f"coefficients shape {coeffs.shape} does not match "
            f"({nblocks}, {ndim + 1}) for shape {shape}"
        )
    pred_blocks = np.rint(coeffs @ design.T).astype(np.int64)
    work = pred_blocks.reshape(blocks_per_axis + (BLOCK_EDGE,) * ndim)
    order = []
    for i in range(ndim):
        order.extend([i, ndim + i])
    padded = work.transpose(order).reshape(padded_shape)
    return np.ascontiguousarray(padded[tuple(slice(0, s) for s in shape)])


def pack_coefficients(coeffs_fixed: np.ndarray) -> np.ndarray:
    """Delta-encode coefficients across blocks (they vary smoothly)."""
    flat = np.asarray(coeffs_fixed, dtype=np.int64)
    out = flat.copy()
    out[1:] -= flat[:-1]
    return out.ravel()


def unpack_coefficients(packed: np.ndarray, nblocks: int, ndim: int) -> np.ndarray:
    """Invert :func:`pack_coefficients`."""
    arr = np.asarray(packed, dtype=np.int64).reshape(nblocks, ndim + 1)
    return np.cumsum(arr, axis=0)
