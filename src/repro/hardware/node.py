"""A simulated single-socket node executing workloads under DVFS.

Ties the substrate together: a :class:`~repro.hardware.cpu.CpuSpec`
pinned by a :class:`~repro.hardware.dvfs.FrequencyScaler`, a
deterministic :class:`~repro.hardware.powercurves.PowerCurve` ground
truth, a wrapping :class:`~repro.hardware.rapl.RaplCounter`, and a
seeded noise model standing in for real measurement scatter (run-to-run
thermal/OS variance ~1.5 % on power, ~1 % on runtime — the magnitude
needed for the paper's 95 % confidence shading to be visible).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.cpu import CpuSpec
from repro.hardware.dvfs import FrequencyScaler
from repro.hardware.powercurves import CalibratedPowerCurve, PowerCurve
from repro.hardware.rapl import RaplCounter
from repro.hardware.workload import Workload

__all__ = ["Measurement", "SimulatedNode"]


@dataclass(frozen=True)
class Measurement:
    """One observed workload execution."""

    workload: str
    cpu: str
    freq_ghz: float
    runtime_s: float
    energy_j: float

    @property
    def power_w(self) -> float:
        """Average power over the run (Eqn. 1 rearranged)."""
        return self.energy_j / self.runtime_s


class SimulatedNode:
    """Single-core experiment node with RAPL-observed energy."""

    def __init__(
        self,
        cpu: CpuSpec,
        power_curve: PowerCurve | None = None,
        seed: int = 0,
        power_noise: float = 0.025,
        runtime_noise: float = 0.01,
    ) -> None:
        if not 0 <= power_noise < 0.5 or not 0 <= runtime_noise < 0.5:
            raise ValueError("noise fractions must lie in [0, 0.5)")
        self.cpu = cpu
        self.power_curve = power_curve if power_curve is not None else CalibratedPowerCurve()
        self.scaler = FrequencyScaler(cpu)
        self.rapl = RaplCounter()
        self.power_noise = float(power_noise)
        self.runtime_noise = float(runtime_noise)
        self._rng = np.random.default_rng(seed)

    @property
    def frequency_ghz(self) -> float:
        """Currently pinned core frequency."""
        return self.scaler.current_ghz

    def set_frequency(self, freq_ghz: float) -> float:
        """Pin the cores (``cpufreq-set`` emulation); returns snapped value."""
        return self.scaler.cpufreq_set(freq_ghz)

    def true_power_w(
        self,
        workload: Workload,
        freq_ghz: float | None = None,
        cores: int = 1,
    ) -> float:
        """Noise-free ground-truth power for *workload* (model target)."""
        f = self.frequency_ghz if freq_ghz is None else self.cpu.snap_frequency(freq_ghz)
        if cores == 1:
            return self.power_curve.power_watts(
                self.cpu, f, workload.kind, dynamic_factor=workload.dynamic_power_factor
            )
        return self.power_curve.multicore_power_watts(
            self.cpu, f, workload.kind, cores,
            dynamic_factor=workload.dynamic_power_factor,
        )

    def true_runtime_s(
        self,
        workload: Workload,
        freq_ghz: float | None = None,
        cores: int = 1,
    ) -> float:
        """Noise-free ground-truth runtime for *workload*."""
        f = self.frequency_ghz if freq_ghz is None else self.cpu.snap_frequency(freq_ghz)
        if cores == 1:
            return workload.runtime_s(self.cpu, f)
        return workload.multicore_runtime_s(self.cpu, f, cores)

    def run(self, workload: Workload, cores: int = 1) -> Measurement:
        """Execute *workload* at the pinned frequency; observe via RAPL.

        Runtime and power each receive independent multiplicative
        Gaussian noise; energy is pushed through the wrapping counter
        and recovered with a wrap-aware delta, exactly as ``perf``
        observes it. *cores* > 1 runs the workload's parallel portion
        across that many cores (extension study).
        """
        f = self.frequency_ghz
        runtime = self.true_runtime_s(workload, cores=cores) * self._jitter(
            self.runtime_noise
        )
        power = self.true_power_w(workload, cores=cores) * self._jitter(
            self.power_noise
        )
        # Poll the counter in slices well under half a wrap (~65.5 kJ),
        # the way perf's interval reads keep long runs wrap-safe.
        energy = 0.0
        remaining = power * runtime
        poll_slice = 16e3  # joules per poll
        while True:
            chunk = min(remaining, poll_slice)
            before = self.rapl.read()
            self.rapl.accumulate(chunk)
            after = self.rapl.read()
            energy += self.rapl.delta_joules(before, after)
            remaining -= chunk
            if remaining <= 0:
                break
        return Measurement(
            workload=workload.name,
            cpu=self.cpu.arch,
            freq_ghz=f,
            runtime_s=runtime,
            energy_j=energy,
        )

    def _jitter(self, sigma: float) -> float:
        if sigma == 0.0:
            return 1.0
        # Clip at 4 sigma so a pathological draw cannot make runtime or
        # power non-positive.
        return float(1.0 + np.clip(self._rng.normal(0.0, sigma), -4 * sigma, 4 * sigma))
