"""Unit + property tests for the SZ2-style regression predictor."""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import SZCompressor
from repro.compressors.sz.regression import (
    BLOCK_EDGE,
    fit_block_planes,
    pack_coefficients,
    predict_from_planes,
    unpack_coefficients,
)
from repro.data import load_field


class TestPlaneFit:
    def test_exact_on_linear_field(self):
        # A field that IS a plane per block predicts (almost) exactly.
        x = np.arange(12, dtype=np.int64)
        g = np.add.outer(3 * x, 5 * x)
        coeffs = fit_block_planes(g)
        pred = predict_from_planes(coeffs, g.shape)
        assert np.max(np.abs(pred - g)) <= 1  # fixed-point rounding only

    def test_coefficient_shape(self):
        g = np.zeros((13, 7), dtype=np.int64)
        coeffs = fit_block_planes(g)
        # ceil(13/6)=3, ceil(7/6)=2 blocks; ndim+1=3 coefficients each.
        assert coeffs.shape == (6, 3)

    def test_constant_field_zero_slopes(self):
        g = np.full((6, 6), 42, dtype=np.int64)
        coeffs = fit_block_planes(g)
        scale = 1 << 10
        assert coeffs[0, 0] == 42 * scale
        assert coeffs[0, 1] == 0 and coeffs[0, 2] == 0

    def test_5d_rejected(self):
        with pytest.raises(ValueError):
            fit_block_planes(np.zeros((2,) * 5, dtype=np.int64))

    def test_predict_shape_validation(self):
        g = np.zeros((6, 6), dtype=np.int64)
        coeffs = fit_block_planes(g)
        with pytest.raises(ValueError, match="does not match"):
            predict_from_planes(coeffs, (12, 12))

    @pytest.mark.parametrize("shape", [(6, 6), (7, 11), (6, 6, 6), (5, 9, 13)])
    def test_residuals_smaller_than_values_on_smooth_fields(self, shape):
        rng = np.random.default_rng(3)
        # Smooth integer field: cumulative sums of small steps.
        g = np.cumsum(rng.integers(-3, 4, size=shape), axis=0).astype(np.int64) * 10
        coeffs = fit_block_planes(g)
        pred = predict_from_planes(coeffs, shape)
        assert np.abs(g - pred).mean() < np.abs(g).mean()


class TestCoefficientPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        coeffs = rng.integers(-(2**20), 2**20, size=(17, 4))
        packed = pack_coefficients(coeffs)
        assert np.array_equal(unpack_coefficients(packed, 17, 3), coeffs)

    def test_delta_shrinks_smooth_coefficients(self):
        base = np.arange(50, dtype=np.int64)[:, None] * np.array([100, 1, 1, 1])
        packed = pack_coefficients(base)
        assert np.abs(packed[4:]).max() <= 100

    @given(st.integers(1, 30), st.integers(1, 4), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, nblocks, ndim, seed):
        rng = np.random.default_rng(seed)
        coeffs = rng.integers(-(2**30), 2**30, size=(nblocks, ndim + 1))
        packed = pack_coefficients(coeffs)
        assert np.array_equal(unpack_coefficients(packed, nblocks, ndim), coeffs)


class TestCodecIntegration:
    def test_forced_predictors_both_respect_bound(self):
        arr = load_field("cesm-atm", "T", scale=24)
        for predictor in ("lorenzo", "regression", "auto"):
            codec = SZCompressor(predictor=predictor)
            buf, rec = codec.roundtrip(arr, 1e-3)
            err = np.max(np.abs(arr.astype(float) - rec.astype(float)))
            assert err <= 1e-3, predictor

    def test_auto_never_worse_than_either(self):
        # Exact selection: auto keeps the smaller encoding.
        for ds, fl in (("cesm-atm", "T"), ("nyx", "velocity_x")):
            arr = load_field(ds, fl, scale=24)
            sizes = {
                p: SZCompressor(predictor=p).compress(arr, 1e-2).nbytes
                for p in ("lorenzo", "regression", "auto")
            }
            assert sizes["auto"] <= min(sizes["lorenzo"], sizes["regression"])

    def test_regression_wins_on_planar_data(self):
        # A piecewise-planar field is regression's best case.
        x = np.linspace(0, 50, 60)
        arr = (np.add.outer(x, 2 * x)).astype(np.float32)
        lorenzo = SZCompressor(predictor="lorenzo").compress(arr, 1e-3)
        regression = SZCompressor(predictor="regression").compress(arr, 1e-3)
        assert regression.nbytes <= lorenzo.nbytes * 1.05

    def test_1d_falls_back_to_lorenzo(self):
        arr = np.cumsum(np.random.default_rng(0).normal(size=500)).astype(np.float32)
        codec = SZCompressor(predictor="regression")  # not viable in 1-D
        buf, rec = codec.roundtrip(arr, 1e-2)
        assert np.max(np.abs(arr - rec)) <= 1e-2

    def test_invalid_predictor(self):
        with pytest.raises(ValueError, match="predictor"):
            SZCompressor(predictor="spline")

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_regression_mode_bound_property(self, data):
        shape = (data.draw(st.integers(6, 14)), data.draw(st.integers(6, 14)))
        n = shape[0] * shape[1]
        values = data.draw(
            st.lists(st.floats(-100, 100, width=32), min_size=n, max_size=n)
        )
        arr = np.array(values, dtype=np.float32).reshape(shape)
        codec = SZCompressor(predictor="regression")
        _, rec = codec.roundtrip(arr, 1e-2)
        err = np.max(np.abs(arr.astype(np.float64) - rec.astype(np.float64)))
        assert err <= 1e-2 * (1 + 1e-9)


class TestCrossProcessDeterminism:
    def test_load_field_stable_across_processes(self):
        # Guards against PYTHONHASHSEED-dependent data generation (a
        # real bug: seed mixing once used the salted builtin hash()).
        snippet = (
            "from repro.data import load_field; import numpy as np; "
            "print(float(np.sum(load_field('cesm-atm','T',scale=32).astype('f8'))))"
        )
        outs = {
            subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(outs) == 1
