"""Unit tests for the sweep orchestration."""

import math

import numpy as np
import pytest

from repro.core.samples import SampleSet
from repro.workflow.sweep import (
    SweepConfig,
    compression_sweep,
    default_nodes,
    transit_sweep,
)

FAST = SweepConfig(
    compressors=("sz",),
    datasets=(("nyx", "velocity_x"),),
    error_bounds=(1e-2,),
    transit_sizes_gb=(1.0,),
    repeats=2,
    data_scale=32,
    frequency_stride=4,
)


class TestSweepConfig:
    def test_defaults_match_paper(self):
        cfg = SweepConfig()
        assert cfg.error_bounds == (1e-1, 1e-2, 1e-3, 1e-4)
        assert cfg.repeats == 10
        assert cfg.transit_sizes_gb == (1.0, 2.0, 4.0, 8.0, 16.0)
        assert cfg.compressors == ("sz", "zfp")

    @pytest.mark.parametrize("kwargs", [
        {"repeats": 0},
        {"frequency_stride": 0},
        {"compressors": ()},
        {"error_bounds": ()},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SweepConfig(**kwargs)


class TestDefaultNodes:
    def test_two_archs(self):
        nodes = default_nodes()
        assert [n.cpu.arch for n in nodes] == ["broadwell", "skylake"]

    def test_decorrelated_noise(self):
        a, b = default_nodes(seed=0)
        assert a._rng.bit_generator.state != b._rng.bit_generator.state


class TestCompressionSweep:
    @pytest.fixture(scope="class")
    def samples(self):
        return compression_sweep(default_nodes(), FAST)

    def test_record_schema(self, samples):
        required = {
            "cpu", "compressor", "dataset", "field", "error_bound",
            "freq_ghz", "power_w", "runtime_s", "energy_j",
            "power_samples", "runtime_samples", "ratio",
        }
        assert required <= set(samples[0])

    def test_grid_endpoints_present(self, samples):
        bw = samples.filter(cpu="broadwell")
        freqs = set(bw.column("freq_ghz").tolist())
        assert 0.8 in freqs and 2.0 in freqs

    def test_ratio_recorded(self, samples):
        assert all(r["ratio"] > 1.0 for r in samples)

    def test_ratio_skipped_when_disabled(self):
        cfg = SweepConfig(
            compressors=("sz",), datasets=(("nyx", "velocity_x"),),
            error_bounds=(1e-2,), repeats=1, data_scale=32,
            frequency_stride=8, measure_ratios=False,
        )
        samples = compression_sweep(default_nodes()[:1], cfg)
        assert all(math.isnan(r["ratio"]) for r in samples)

    def test_repeat_vectors_length(self, samples):
        assert all(len(r["power_samples"]) == 2 for r in samples)

    def test_returns_sampleset(self, samples):
        assert isinstance(samples, SampleSet)


class TestTransitSweep:
    def test_record_schema(self):
        samples = transit_sweep(default_nodes()[:1], FAST)
        required = {"cpu", "size_gb", "freq_ghz", "power_w", "runtime_s", "energy_j"}
        assert required <= set(samples[0])
        assert "compressor" not in samples[0]

    def test_one_series_per_size(self):
        cfg = SweepConfig(
            compressors=("sz",), datasets=(("nyx", "velocity_x"),),
            transit_sizes_gb=(1.0, 2.0), repeats=1, data_scale=32,
            frequency_stride=8,
        )
        samples = transit_sweep(default_nodes()[:1], cfg)
        assert samples.unique("size_gb") == (1.0, 2.0)
