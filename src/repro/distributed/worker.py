"""Worker process: executes shards shipped by a coordinator.

A worker is one OS process with one TCP connection. Its life is a
loop: receive a ``task`` frame, run the map function over the shard's
items, send back one ``result`` (or ``task_error``) frame, repeat. A
background thread emits ``heartbeat`` frames on a fixed cadence so the
coordinator can tell a slow worker from a dead one.

Workers are deliberately stateless between tasks except for one cached
map function: the coordinator ships the (pickled) function once per
``map_id`` per worker and later tasks reference it by id, so a sweep
over hundreds of points serializes its closure (which may embed a
sample field array) once per worker instead of once per shard.

Run directly (the ``repro-tool workers`` subcommand and the
coordinator's self-spawn path both use this entry point)::

    python -m repro.distributed.worker --connect 127.0.0.1:47001
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
from typing import Any, Optional, Sequence

from repro.distributed.wire import (
    WireError,
    pack_blob,
    recv_frame,
    send_frame,
    unpack_blob,
)

__all__ = ["WorkerSession", "run_worker", "main"]

#: Seconds between heartbeat frames unless the coordinator overrides.
DEFAULT_HEARTBEAT_S = 0.5


class WorkerSession:
    """One worker's connection, send lock and cached map function."""

    def __init__(self, sock: socket.socket, heartbeat_s: float) -> None:
        self.sock = sock
        self.heartbeat_s = float(heartbeat_s)
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._map_id: Optional[str] = None
        self._fn = None

    # -- plumbing ------------------------------------------------------

    def send(self, doc: Any) -> None:
        """Frame-send under the lock shared with the heartbeat thread."""
        with self._send_lock:
            send_frame(self.sock, doc)

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            try:
                self.send({"type": "heartbeat", "pid": os.getpid()})
            except OSError:
                return  # connection is gone; the main loop will notice

    @staticmethod
    def _apply_powercap(msg: dict) -> None:
        """Store the coordinator's cap frame in the process-global slot.

        Observational only: shard results are a pure function of the
        shard inputs, so applying (or dropping) a cap frame can never
        change what this worker computes — stale-epoch frames are
        ignored by :func:`repro.powercap.runtime.set_node_cap`.
        """
        from repro.powercap.runtime import set_node_cap

        try:
            set_node_cap(
                msg.get("cap_w"),
                msg.get("cap_ghz"),
                int(msg.get("epoch", 0)),
                node_id=msg.get("node_id"),
            )
        except (TypeError, ValueError):
            pass  # malformed frame from a newer coordinator; ignore

    # -- task execution ------------------------------------------------

    def _resolve_fn(self, msg: dict):
        """The map function for this task, unpickling at most once per map."""
        map_id = msg["map_id"]
        if map_id != self._map_id:
            if "fn" not in msg:
                raise WireError(
                    f"task references unknown map {map_id!r} and carries "
                    "no function"
                )
            self._fn = unpack_blob(msg["fn"])
            self._map_id = map_id
        return self._fn

    def _run_task(self, msg: dict) -> None:
        fn = self._resolve_fn(msg)
        items = unpack_blob(msg["items"])
        indices: Sequence[int] = msg["item_indices"]
        # Mirror every telemetry-bus publish made while running this
        # shard, so governed workloads ship their samples fleet-ward.
        from repro.governor.telemetry import drain_capture, start_capture

        start_capture()
        results = []
        try:
            for global_index, item in zip(indices, items):
                try:
                    results.append(fn(item))
                except BaseException as exc:  # noqa: BLE001 - shipped to the coordinator
                    self._send_telemetry(msg, drain_capture())
                    self.send(
                        {
                            "type": "task_error",
                            "map_id": msg["map_id"],
                            "shard_index": msg["shard_index"],
                            "item_index": int(global_index),
                            "error": pack_blob(exc),
                            "pid": os.getpid(),
                        }
                    )
                    return
        finally:
            samples = drain_capture()
        # Telemetry goes first so the coordinator has the shard's
        # samples by the time its result commits.
        self._send_telemetry(msg, samples)
        self.send(
            {
                "type": "result",
                "map_id": msg["map_id"],
                "shard_index": msg["shard_index"],
                "shard_id": msg["shard_id"],
                "results": pack_blob(results),
                "pid": os.getpid(),
            }
        )

    def _send_telemetry(self, msg: dict, samples: list) -> None:
        if not samples:
            return
        self.send(
            {
                "type": "telemetry",
                "map_id": msg["map_id"],
                "shard_index": msg["shard_index"],
                "samples": samples,
                "pid": os.getpid(),
            }
        )

    # -- main loop -----------------------------------------------------

    def run(self) -> int:
        self.send({"type": "hello", "pid": os.getpid()})
        beat = threading.Thread(
            target=self._heartbeat_loop, name="repro-dist-heartbeat", daemon=True
        )
        beat.start()
        try:
            while True:
                msg = recv_frame(self.sock)
                if msg is None or msg.get("type") == "shutdown":
                    return 0
                if msg.get("type") == "task":
                    self._run_task(msg)
                elif msg.get("type") == "powercap":
                    self._apply_powercap(msg)
                # Unknown message types are ignored: a newer coordinator
                # may speak a superset of this protocol.
        finally:
            self._stop.set()


def run_worker(
    host: str,
    port: int,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    cache_dir: Optional[str] = None,
) -> int:
    """Connect to a coordinator and serve tasks until told to stop.

    With *cache_dir*, the worker's process-global result cache gets a
    disk tier on that directory — the coordinator passes its own cache
    directory here so every worker in the fleet shares one
    content-addressed store and warm sub-results short-circuit.
    """
    if cache_dir:
        from repro.cache import configure_cache

        configure_cache(disk_dir=cache_dir)
    try:
        sock = socket.create_connection((host, port), timeout=30.0)
    except OSError as exc:
        # A coordinator that shut down between spawning us and our
        # connect is routine fleet teardown, not a crash.
        print(
            f"repro-dist-worker: cannot reach coordinator at "
            f"{host}:{port}: {exc}",
            file=sys.stderr,
        )
        return 1
    try:
        sock.settimeout(None)
        return WorkerSession(sock, heartbeat_s).run()
    except (WireError, OSError):
        # A dying coordinator is not the worker's error to report.
        return 0
    finally:
        try:
            sock.close()
        except OSError:
            pass


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-dist-worker",
        description="Worker process for the distributed executor fleet.",
    )
    ap.add_argument("--connect", required=True, metavar="HOST:PORT",
                    help="coordinator address to join")
    ap.add_argument("--heartbeat", type=float, default=DEFAULT_HEARTBEAT_S,
                    help="seconds between liveness heartbeats")
    ap.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="shared on-disk result cache directory")
    args = ap.parse_args(argv)
    host, sep, port = args.connect.rpartition(":")
    if not sep or not port.isdigit():
        ap.error(f"--connect must be HOST:PORT, got {args.connect!r}")
    return run_worker(host, int(port), args.heartbeat, args.cache_dir)


if __name__ == "__main__":
    sys.exit(main())
