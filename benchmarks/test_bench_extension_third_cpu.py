"""Extension bench: do the paper's trends hold on a third CPU?

The paper's closing question. We run the same sweep → scale → fit →
tune loop on the extension Cascade Lake node (whose ground-truth curve
is an independent intermediate shape, not a paper fit) and check every
headline trend.
"""

import numpy as np
from conftest import emit

from repro.core.power_model import PowerModel
from repro.core.runtime_model import fit_runtime_model
from repro.core.scaling import add_scaled_columns
from repro.core.tuning import optimal_energy_frequency
from repro.hardware.cpu import CASCADELAKE_6230
from repro.hardware.node import SimulatedNode
from repro.workflow.report import render_table
from repro.workflow.sweep import SweepConfig, compression_sweep


def test_bench_extension_third_cpu(benchmark):
    def run():
        node = SimulatedNode(CASCADELAKE_6230, seed=5)
        cfg = SweepConfig(repeats=10, data_scale=16, measure_ratios=False)
        samples = add_scaled_columns(compression_sweep([node], cfg))
        power = PowerModel.fit("Cascadelake", samples)
        runtime = fit_runtime_model("compress-cascadelake", samples)
        return node, samples, power, runtime

    node, samples, power, runtime = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [power.as_table_row()]
    emit(render_table(rows, title="EXTENSION — third-CPU compression power model"))

    cpu = node.cpu
    f_eqn3 = cpu.snap_frequency(0.875 * cpu.fmax_ghz)
    p_saving = power.savings_at(f_eqn3)
    slow = runtime.slowdown_at(f_eqn3)
    energy_saving = 1 - (1 - p_saving) * (1 + slow)
    f_opt = optimal_energy_frequency(power, runtime, cpu)
    emit(f"Eqn. 3 on cascadelake: {p_saving:.1%} power saving, "
         f"+{slow:.1%} runtime, {energy_saving:.1%} energy saving; "
         f"model-optimal frequency {f_opt} GHz")

    # The paper's trends, checked on the unseen architecture:
    # 1. critical power slope (tight per-arch fit, floor ~0.75-0.85);
    assert power.gof.r2 > 0.85
    assert 0.70 < power.c < 0.88
    # 2. power minimized at fmin, runtime at fmax (model forms);
    grid = cpu.available_frequencies()
    p = power.predict(grid)
    assert p[0] == min(p) and p[-1] == max(p)
    # 3. Eqn. 3 still trades a small slowdown for net energy savings;
    assert 0.0 < slow < 0.12
    assert energy_saving > 0.02
    # 4. a model-driven optimum exists strictly inside the DVFS range.
    assert grid[0] < f_opt <= grid[-1]

    benchmark.extra_info["equation"] = power.equation()
    benchmark.extra_info["eqn3_energy_saving"] = energy_saving
