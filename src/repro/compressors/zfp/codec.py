"""The ZFP compressor: blocks + transform + truncated bit planes.

Stream layout (bit-packed payload):

======  ==============================================================
field   contents
======  ==============================================================
mode    2 bits: 0 = raw fallback, 2 = block-transform coded
e[]     per-block exponents, biased uint16 (mode 2)
groups  plane groups from :func:`repro.compressors.zfp.embedded`
======  ==============================================================

Fixed-accuracy tolerance handling: each block keeps bit planes down to

    p_b = floor(log2(tol)) + q - e_b - 2 - 2*d

(planes below p_b are dropped). Truncation error per coefficient is
< 2**p_b; the inverse transform amplifies it by < 4**d; in real units
that lands at tol/4, leaving the rest of the budget for fixed-point
rounding and the lifting's one-ulp slop — so max |x - x'| <= tol, which
the property-test suite checks exhaustively.
"""

from __future__ import annotations

import math
import zlib
from typing import Tuple

import numpy as np

from repro.compressors.base import Compressor, CorruptStreamError, register_compressor
from repro.compressors.zfp import fixedpoint as fp
from repro.observability import get_tracer
from repro.compressors.zfp.blocks import BlockGrid, partition, unpartition
from repro.compressors.zfp.embedded import (
    decode_planes,
    encode_planes,
    int_to_negabinary,
    negabinary_to_int,
)
from repro.compressors.zfp.transform import (
    forward_transform,
    inverse_transform,
    sequency_order,
)
from repro.utils.bitio import BitReader, BitWriter

__all__ = ["ZFPCompressor"]

_MODE_RAW = 0
_MODE_BLOCK = 2
_MODE_UNIFORM_PLANES = 3  # fixed-precision / fixed-rate coding
_EXP_BIAS = 1 << 14
_ZLIB_LEVEL = 1


def _tolerance_log2(tolerance: float) -> int:
    """``floor(log2(tolerance))`` computed deterministically via frexp."""
    mant, exp = math.frexp(tolerance)  # tolerance = mant * 2**exp, mant in [0.5, 1)
    return exp - 1


@register_compressor
class ZFPCompressor(Compressor):
    """ZFP-style fixed-accuracy compressor (see module docs)."""

    name = "zfp"

    def __init__(self, zlib_level: int = _ZLIB_LEVEL):
        if not 0 <= zlib_level <= 9:
            raise ValueError(f"zlib_level must be in [0, 9], got {zlib_level}")
        self.zlib_level = int(zlib_level)

    # ------------------------------------------------------------------
    # Plane budget shared by encoder and decoder
    # ------------------------------------------------------------------

    @staticmethod
    def _kept_planes(
        exponents: np.ndarray, tolerance: float, precision: int, ndim: int
    ) -> Tuple[np.ndarray, int]:
        """Per-block kept plane count and the top plane index.

        Deterministic integer arithmetic on both sides of the stream.
        """
        top_plane = precision + ndim + 1  # growth < 2**(ndim+1), +negabinary bit
        tl = _tolerance_log2(tolerance)
        # Cut plane: bits with weight below 2**p_b are dropped.
        p = tl + precision - exponents - 2 - 2 * ndim
        kept = np.clip(top_plane + 1 - p, 0, top_plane + 1).astype(np.int64)
        kept[exponents == fp.ZERO_EXPONENT] = 0
        return kept, top_plane

    def _fallback_needed(self, data: np.ndarray, tolerance: float) -> bool:
        """True when the tolerance sits below the fixed-point error floor."""
        maxabs = float(np.max(np.abs(data)))
        if maxabs == 0.0:
            return False
        q = fp.precision_for(data.dtype)
        _, e_max = math.frexp(maxabs)
        return _tolerance_log2(tolerance) < e_max - q + 8

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def _encode(self, data: np.ndarray, error_bound: float) -> bytes:
        writer = BitWriter()
        if self._fallback_needed(data, error_bound):
            writer.write_uint(_MODE_RAW, 2)
            flat = np.ascontiguousarray(data).tobytes()
            writer.write_bits_array(np.unpackbits(np.frombuffer(flat, dtype=np.uint8)))
        else:
            self._encode_blocks(writer, data, error_bound)
        packed = writer.getvalue()
        header = len(writer).to_bytes(8, "little")
        with get_tracer().span("zfp.lossless", bytes_in=len(packed) + 8) as sp:
            out = zlib.compress(header + packed, self.zlib_level)
            sp.set(bytes_out=len(out))
        return out

    def _encode_blocks(
        self, writer: BitWriter, data: np.ndarray, tolerance: float
    ) -> None:
        writer.write_uint(_MODE_BLOCK, 2)
        precision = fp.precision_for(data.dtype)
        tracer = get_tracer()
        with tracer.span("zfp.transform", bytes_in=data.nbytes) as sp:
            blocks, grid = partition(np.asarray(data, dtype=np.float64))
            exponents = fp.block_exponents(blocks)

            fixed = fp.to_fixed_point(blocks, exponents, precision)
            coeffs = forward_transform(fixed, grid.ndim)
            order = sequency_order(grid.ndim)
            nb = int_to_negabinary(coeffs[:, order])
            sp.set(blocks=int(grid.nblocks))

        with tracer.span("zfp.planes", blocks=int(grid.nblocks)):
            kept, top_plane = self._kept_planes(
                exponents, tolerance, precision, grid.ndim
            )
            biased = (exponents - fp.ZERO_EXPONENT).astype(np.uint64)
            if np.any(biased >= (1 << 16)):
                raise ValueError("block exponent out of the 16-bit storage range")
            writer.write_uint_array(biased, 16)
            encode_planes(writer, nb, kept, top_plane)

    # ------------------------------------------------------------------
    # Fixed-precision / fixed-rate modes (real ZFP's other two modes)
    # ------------------------------------------------------------------

    def compress_fixed_precision(self, data, planes: int):
        """Keep exactly *planes* bit planes per block (ZFP fixed-precision).

        No absolute error guarantee — quality scales with the per-block
        exponent; the returned buffer records ``error_bound = inf``.
        """
        from repro.compressors.base import CompressedBuffer
        from repro.utils.validation import as_float_array

        arr = as_float_array(data, "data")
        if arr.ndim > 4:
            raise ValueError(f"arrays above 4-D are unsupported, got {arr.ndim}-D")
        if not np.all(np.isfinite(arr)):
            raise ValueError("data must be finite (no NaN/inf)")
        precision = fp.precision_for(arr.dtype)
        top_plane = precision + arr.ndim + 1
        if not 1 <= planes <= top_plane + 1:
            raise ValueError(f"planes must lie in [1, {top_plane + 1}], got {planes}")

        writer = BitWriter()
        writer.write_uint(_MODE_UNIFORM_PLANES, 2)
        writer.write_uint(planes, 8)
        blocks, grid = partition(np.asarray(arr, dtype=np.float64))
        exponents = fp.block_exponents(blocks)
        fixed = fp.to_fixed_point(blocks, exponents, precision)
        coeffs = forward_transform(fixed, grid.ndim)
        order = sequency_order(grid.ndim)
        nb = int_to_negabinary(coeffs[:, order])
        kept = np.full(grid.nblocks, planes, dtype=np.int64)
        kept[exponents == fp.ZERO_EXPONENT] = 0
        biased = (exponents - fp.ZERO_EXPONENT).astype(np.uint64)
        writer.write_uint_array(biased, 16)
        encode_planes(writer, nb, kept, top_plane)

        packed = writer.getvalue()
        header = len(writer).to_bytes(8, "little")
        payload = zlib.compress(header + packed, self.zlib_level)
        return CompressedBuffer(
            codec=self.name, payload=payload, shape=arr.shape,
            dtype=arr.dtype, error_bound=float("inf"),
        )

    def compress_fixed_rate(self, data, bits_per_value: float):
        """Budget ~*bits_per_value* coded bits per element (ZFP fixed rate).

        The uniform plane count is derived from the budget: each kept
        plane of a 4^d block costs at most ``1 + 4^d`` bits plus the
        16-bit exponent header.
        """
        from repro.utils.validation import as_float_array

        arr = as_float_array(data, "data")
        if bits_per_value <= 0:
            raise ValueError(f"bits_per_value must be positive, got {bits_per_value}")
        block_size = 4**arr.ndim
        budget = bits_per_value * block_size - 16  # per-block bits after header
        planes = int(budget // (1 + block_size))
        precision = fp.precision_for(arr.dtype)
        top_plane = precision + arr.ndim + 1
        planes = int(np.clip(planes, 1, top_plane + 1))
        return self.compress_fixed_precision(arr, planes)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def _decode(
        self, payload: bytes, shape: Tuple[int, ...], dtype: np.dtype, error_bound: float
    ) -> np.ndarray:
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise CorruptStreamError(f"zlib stage failed: {exc}") from exc
        if len(raw) < 8:
            raise CorruptStreamError("payload shorter than bit-count header")
        nbits = int.from_bytes(raw[:8], "little")
        reader = BitReader(raw[8:], nbits=nbits)
        count = int(np.prod(shape, dtype=np.int64))

        mode = reader.read_uint(2)
        if mode == _MODE_RAW:
            bits = reader.read_bits_array(count * dtype.itemsize * 8)
            return np.frombuffer(np.packbits(bits).tobytes(), dtype=dtype).copy()
        if mode not in (_MODE_BLOCK, _MODE_UNIFORM_PLANES):
            raise CorruptStreamError(f"unknown ZFP mode {mode}")

        precision = fp.precision_for(dtype)
        grid = BlockGrid(
            original_shape=shape,
            padded_shape=tuple(s + (-s) % 4 for s in shape),
        )
        uniform_planes = reader.read_uint(8) if mode == _MODE_UNIFORM_PLANES else None
        exponents = (
            reader.read_uint_array(grid.nblocks, 16).astype(np.int64) + fp.ZERO_EXPONENT
        )
        if uniform_planes is not None:
            top_plane = precision + grid.ndim + 1
            kept = np.full(grid.nblocks, uniform_planes, dtype=np.int64)
            kept[exponents == fp.ZERO_EXPONENT] = 0
        else:
            kept, top_plane = self._kept_planes(
                exponents, error_bound, precision, grid.ndim
            )
        nb = decode_planes(reader, kept, top_plane, grid.block_size)

        order = sequency_order(grid.ndim)
        coeffs = np.empty_like(nb, dtype=np.int64)
        coeffs[:, order] = negabinary_to_int(nb)
        fixed = inverse_transform(coeffs, grid.ndim)
        blocks = fp.from_fixed_point(fixed, exponents, precision)
        return unpartition(blocks, grid).astype(dtype, copy=False)
