"""Table III — model partitions produced for tuning."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.partitions import table3_rows
from repro.workflow.report import render_table

__all__ = ["run", "main"]


def run() -> Tuple[Dict[str, str], ...]:
    """Rows of Table III (model data, compressors, CPUs)."""
    return table3_rows()


def main() -> str:
    """Render Table III as the paper prints it."""
    text = render_table(run(), title="TABLE III — MODELS PRODUCED FOR TUNING")
    print(text)
    return text


if __name__ == "__main__":
    main()
