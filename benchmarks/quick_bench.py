#!/usr/bin/env python
"""Quick deterministic codec benchmark with regression gating.

Runs a small, fixed SZ and ZFP compress/decompress workload and writes
a JSON report of wall times and compression ratios. Wall times are
*normalized* by a calibration kernel (a fixed numpy workload timed on
the same machine) so a committed baseline transfers across runners of
different speeds: the gated quantity is ``codec seconds / calibration
seconds``, not raw seconds.

CI usage (see ``bench-regression`` in ``.github/workflows/ci.yml``)::

    PYTHONPATH=src python benchmarks/quick_bench.py \
        --output BENCH_ci.json \
        --baseline benchmarks/BENCH_baseline.json \
        --trace-out bench_trace.jsonl

Exit status is 1 when any codec's normalized compress or decompress
time regresses more than ``--tolerance`` (default 25%) over the
baseline, or its compression ratio drops more than 2%. Refresh the
baseline by running with ``--output benchmarks/BENCH_baseline.json``
and no ``--baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.cache import ResultCache, set_cache
from repro.compressors import SZCompressor, ZFPCompressor, kernels
from repro.data import load_field
from repro.hardware.cpu import SKYLAKE_4114
from repro.observability import Tracer, use_tracer, write_spans_jsonl
from repro.workflow.campaign import CheckpointCampaign, run_campaign_sweep

CODECS = {"sz": SZCompressor, "zfp": ZFPCompressor}

#: Compression-ratio drops beyond this fraction fail the gate. Ratios
#: are deterministic for a fixed input, so the margin only absorbs
#: platform float differences.
RATIO_TOLERANCE = 0.02


def build_field(edge: int = 96, seed: int = 7) -> np.ndarray:
    """Smooth-plus-noise field, compressible like the paper's datasets."""
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(size=(edge, edge)), axis=0)
    return (base / np.sqrt(np.arange(1, edge + 1))[:, None]).astype(
        np.float64
    )


def calibration_seconds(repeats: int = 5) -> float:
    """Best-of-N timing of a fixed numpy kernel.

    The kernel mixes elementwise math, a sort and a Python-level loop —
    all single-threaded — so it tracks the single-core throughput the
    pure-Python codec loops depend on. Deliberately no matmul: BLAS may
    multithread it and would make fast many-core runners look
    disproportionately fast relative to the codecs.
    """
    rng = np.random.default_rng(0)
    a = rng.normal(size=(448, 448))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        b = np.sort(np.abs(a), axis=1)
        float(np.log1p(b).sum())
        acc = 0.0
        for v in b[0].tolist() * 8:
            acc += v * 0.5
        best = min(best, time.perf_counter() - t0)
    return best


def bench_codec(name, data, error_bound=1e-3, repeats=3):
    """Best-of-N compress/decompress wall times plus the ratio."""
    codec = CODECS[name]()
    compress_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        blob = codec.compress(data, error_bound)
        compress_s = min(compress_s, time.perf_counter() - t0)
    decompress_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = codec.decompress(blob)
        decompress_s = min(decompress_s, time.perf_counter() - t0)
    assert np.max(np.abs(out.reshape(data.shape) - data)) <= error_bound * 1.01
    return {
        "compress_s": compress_s,
        "decompress_s": decompress_s,
        "ratio": data.nbytes / blob.nbytes,
    }


def bench_kernel_speedup(data, error_bound=1e-3, repeats=3):
    """Vectorized-vs-scalar codec throughput on the same inputs.

    Runs each codec end to end under both kernel backends
    (``repro.compressors.kernels``), asserts the payloads are
    byte-identical — the backends' core contract — and reports the
    compress/decompress speedup of the vector backend. The scalar
    reference runs once (it is the slow side by construction); the
    vector side keeps best-of-N.
    """
    out = {}
    for name, cls in CODECS.items():
        codec = cls()
        times = {}
        payloads = {}
        for backend in ("vector", "scalar"):
            reps = repeats if backend == "vector" else 1
            with kernels.use_backend(backend):
                compress_s = float("inf")
                for _ in range(reps):
                    t0 = time.perf_counter()
                    blob = codec.compress(data, error_bound)
                    compress_s = min(compress_s, time.perf_counter() - t0)
                decompress_s = float("inf")
                for _ in range(reps):
                    t0 = time.perf_counter()
                    codec.decompress(blob)
                    decompress_s = min(decompress_s, time.perf_counter() - t0)
            times[backend] = (compress_s, decompress_s)
            payloads[backend] = blob.payload
        assert payloads["vector"] == payloads["scalar"], (
            f"{name}: kernel backends produced different bytes"
        )
        out[name] = {
            "scalar_compress_s": times["scalar"][0],
            "scalar_decompress_s": times["scalar"][1],
            "vector_compress_s": times["vector"][0],
            "vector_decompress_s": times["vector"][1],
            "compress_speedup": times["scalar"][0] / times["vector"][0],
            "decompress_speedup": times["scalar"][1] / times["vector"][1],
            "speedup": (times["scalar"][0] + times["scalar"][1])
            / (times["vector"][0] + times["vector"][1]),
        }
    return out


def bench_cache():
    """Cold+warm campaign sweep through a scratch result cache.

    The hit ratio is *deterministic*: the cold pass misses every sweep
    point, the warm pass hits every one — exactly 0.5. Any drop means a
    keying regression (something nondeterministic leaked into the
    fingerprint, or a store stopped landing) and fails the gate; the
    wall-time speedup is reported but gated separately by
    ``cache_speedup.py``, since it is machine-dependent.
    """
    campaign = CheckpointCampaign(
        snapshot_bytes=int(4e9), n_snapshots=2, compute_interval_s=600.0
    )
    sample = load_field("nyx", "velocity_x", scale=64)
    points = (1e-1, 1e-2)
    cache = ResultCache()
    previous = set_cache(cache)
    try:
        t0 = time.perf_counter()
        run_campaign_sweep(SKYLAKE_4114, "sz", sample, points, campaign,
                           repeats=1, executor="serial")
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_campaign_sweep(SKYLAKE_4114, "sz", sample, points, campaign,
                           repeats=1, executor="serial")
        warm_s = time.perf_counter() - t0
    finally:
        set_cache(previous)
    stats = cache.stats()
    return {
        "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_ratio": cache.hit_ratio,
        "cold_s": cold_s,
        "warm_s": warm_s,
    }


def compare(current, baseline, tolerance):
    """Return a list of human-readable regression messages (empty = pass)."""
    failures = []
    for codec, cur in current["codecs"].items():
        base = baseline.get("codecs", {}).get(codec)
        if base is None:
            continue
        for key in ("compress_norm", "decompress_norm"):
            allowed = base[key] * (1.0 + tolerance)
            if cur[key] > allowed:
                failures.append(
                    f"{codec} {key} regressed: {cur[key]:.3f} > "
                    f"{base[key]:.3f} * (1 + {tolerance:.0%}) = {allowed:.3f}"
                )
        floor = base["ratio"] * (1.0 - RATIO_TOLERANCE)
        if cur["ratio"] < floor:
            failures.append(
                f"{codec} ratio dropped: {cur['ratio']:.3f} < "
                f"{base['ratio']:.3f} * (1 - {RATIO_TOLERANCE:.0%})"
            )
    base_cache = baseline.get("cache")
    cur_cache = current.get("cache")
    if base_cache is not None and cur_cache is not None:
        # Deterministic, so no tolerance: every warm lookup must hit.
        if cur_cache["hit_ratio"] < base_cache["hit_ratio"]:
            failures.append(
                f"cache hit_ratio dropped: {cur_cache['hit_ratio']:.3f} < "
                f"{base_cache['hit_ratio']:.3f} (keying regression?)"
            )
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--edge", type=int, default=96,
                    help="field edge length (edge x edge float64)")
    ap.add_argument("--error-bound", type=float, default=1e-3)
    ap.add_argument("--repeats", type=int, default=5,
                    help="best-of-N timing repeats")
    ap.add_argument("--output", default=None,
                    help="write the JSON report here")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline JSON to gate against")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional wall-time regression")
    ap.add_argument("--trace-out", default=None,
                    help="write a span-tree JSONL of the benchmark run")
    ap.add_argument("--min-kernel-speedup", type=float, default=3.0,
                    help="fail unless the vector kernel backend beats the "
                         "scalar reference by this factor per codec "
                         "(0 disables the gate)")
    args = ap.parse_args(argv)

    data = build_field(args.edge)
    calib = calibration_seconds(args.repeats)
    print(f"field: {data.shape} float64, {data.nbytes / 1e3:.0f} kB; "
          f"calibration kernel: {calib * 1e3:.2f} ms")

    tracer = Tracer()
    report = {"edge": args.edge, "error_bound": args.error_bound,
              "codecs": {}}
    with use_tracer(tracer):
        for name in CODECS:
            with tracer.span(f"bench.{name}", bytes_in=data.nbytes):
                res = bench_codec(
                    name, data, args.error_bound, args.repeats
                )
            report["codecs"][name] = res
    # Re-measure the calibration kernel after the codec runs and keep
    # the overall best: both sides of the ratio then reflect the same
    # "machine at its least loaded" moment, which is what best-of-N
    # codec timing measures too.
    calib = min(calib, calibration_seconds(args.repeats))
    report["calibration_s"] = calib
    for name, res in report["codecs"].items():
        res["compress_norm"] = res["compress_s"] / calib
        res["decompress_norm"] = res["decompress_s"] / calib
        print(f"{name}: compress {res['compress_s'] * 1e3:7.1f} ms "
              f"({res['compress_norm']:6.1f}x calib), "
              f"decompress {res['decompress_s'] * 1e3:7.1f} ms "
              f"({res['decompress_norm']:6.1f}x calib), "
              f"ratio {res['ratio']:.2f}x")

    kernel_res = bench_kernel_speedup(data, args.error_bound, args.repeats)
    report["kernel_speedup"] = kernel_res
    for name, res in kernel_res.items():
        print(f"{name} kernels: vector vs scalar "
              f"compress {res['compress_speedup']:6.1f}x, "
              f"decompress {res['decompress_speedup']:6.1f}x, "
              f"overall {res['speedup']:6.1f}x")

    cache_res = bench_cache()
    report["cache"] = cache_res
    print(f"cache: hit ratio {cache_res['hit_ratio']:.2f} "
          f"({cache_res['hits']} hits / {cache_res['misses']} misses), "
          f"cold {cache_res['cold_s'] * 1e3:.1f} ms, "
          f"warm {cache_res['warm_s'] * 1e3:.1f} ms")

    if args.trace_out:
        write_spans_jsonl(args.trace_out, tracer.spans)
        print(f"trace written to {args.trace_out}")
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.output}")

    if args.min_kernel_speedup > 0:
        # In-run floor, not a baseline comparison: both sides are
        # measured in the same process on the same inputs, so the ratio
        # is machine-independent enough for a hard gate.
        too_slow = [
            f"{name} vector backend only {res['speedup']:.2f}x over scalar "
            f"(< {args.min_kernel_speedup:g}x floor)"
            for name, res in kernel_res.items()
            if res["speedup"] < args.min_kernel_speedup
        ]
        if too_slow:
            for msg in too_slow:
                print(f"FAIL: {msg}", file=sys.stderr)
            return 1

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = compare(report, baseline, args.tolerance)
        if failures:
            for msg in failures:
                print(f"FAIL: {msg}", file=sys.stderr)
            return 1
        print(f"within {args.tolerance:.0%} of baseline "
              f"{args.baseline}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
