"""Governor interface and the non-adaptive policies behind it.

Every governor answers the same two calls:

* :meth:`Governor.decide` — "what frequency should this phase run at
  next?" (consulted at phase boundaries by the dump pipeline), and
* :meth:`Governor.observe` — "here is what that stage measured"
  (power, runtime, bytes at the actually-pinned frequency).

Three implementations share it: :class:`StaticGovernor` wraps the
paper's open-loop Eqn. 3 rule, :class:`OracleGovernor` reads the
simulation's ground-truth curves (the regret benchmark's lower bound),
and :class:`~repro.governor.controller.AdaptiveGovernor` learns from
the telemetry stream. All of them log a decision *trace* — the
determinism contract is that a fixed seed makes the adaptive trace
byte-identical across runs, which only works if every decision is
recorded the same way.

The selection objective lives here in :func:`choose_frequency` so the
oracle and the adaptive controller provably optimize the *same* thing:
minimize modeled energy ``P(f)·t(f)`` over the DVFS grid subject to a
per-phase slowdown budget, preferring the lowest feasible frequency
(max power saving) unless a faster point improves energy by more than
the hysteresis margin. On the calibrated Broadwell curves this lands
exactly on Eqn. 3's grid points (1.75 / 1.70 GHz), which is what makes
the "converges to the static optimum without being told it" acceptance
test meaningful.
"""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.tuning import PAPER_POLICY, TuningPolicy
from repro.governor.phases import Phase
from repro.governor.telemetry import TelemetryBus, TelemetrySample
from repro.hardware.cpu import CpuSpec
from repro.hardware.workload import FREQUENCY_SENSITIVITY, WorkloadKind

__all__ = [
    "DEFAULT_SLOWDOWN_BUDGETS",
    "DEFAULT_HYSTERESIS",
    "choose_frequency",
    "GovernorReport",
    "Governor",
    "StaticGovernor",
    "OracleGovernor",
]

#: Per-phase runtime-increase caps the objective honours. Calibrated so
#: the feasible set's floor sits on the paper's Eqn. 3 grid points for
#: Broadwell (compress: 1.75 GHz at +7.9 %, write: 1.70 GHz at +13.2 %)
#: with roughly a grid step of margin against estimation noise on
#: either side.
DEFAULT_SLOWDOWN_BUDGETS: Dict[Phase, float] = {
    Phase.COMPRESS: 0.0875,
    Phase.WRITE: 0.145,
    Phase.IDLE: 1.0,
}

#: Relative energy improvement a non-floor frequency must show before
#: the objective abandons the lowest feasible clock. Soaks up the
#: sub-percent energy flatness of the calibrated write curve so fit
#: noise cannot bounce the decision around.
DEFAULT_HYSTERESIS = 0.02

#: Workload kind each phase is modeled as (SZ is the paper's headline
#: codec; pure I/O phases behave like writes).
PHASE_KIND: Dict[Phase, WorkloadKind] = {
    Phase.COMPRESS: WorkloadKind.COMPRESS_SZ,
    Phase.WRITE: WorkloadKind.WRITE,
    Phase.IDLE: WorkloadKind.WRITE,
}


def choose_frequency(
    grid: Sequence[float],
    power_ratio: Callable[[float], float],
    slowdown: Callable[[float], float],
    budget: float,
    hysteresis: float = DEFAULT_HYSTERESIS,
) -> float:
    """Pick the grid frequency minimizing modeled energy under a budget.

    *power_ratio(f)* is modeled power scaled to the max clock,
    *slowdown(f)* the modeled runtime increase over the max clock.
    Frequencies whose slowdown exceeds *budget* are infeasible; if none
    is feasible the max clock wins (never slow down more than asked).
    Among feasible points the lowest frequency is preferred — it buys
    the largest power saving — unless the energy-minimizing point beats
    it by more than *hysteresis* relative energy, in which case energy
    wins (this is what lets a governor race back to the max clock when
    a perturbed curve makes slowing down counterproductive).
    """
    grid = [float(f) for f in grid]
    if not grid:
        raise ValueError("grid must be non-empty")
    feasible = [f for f in grid if slowdown(f) <= budget + 1e-12]
    if not feasible:
        return float(max(grid))
    energy = {f: power_ratio(f) * (1.0 + slowdown(f)) for f in feasible}
    floor = min(feasible)
    best = min(feasible, key=lambda f: (energy[f], f))
    if energy[floor] - energy[best] > hysteresis * energy[floor]:
        return float(best)
    return float(floor)


@dataclass(frozen=True)
class GovernorReport:
    """Summary of a governor's run, attached to campaign results.

    Everything is plain tuples/scalars so reports pickle across process
    pools and fingerprint cleanly.
    """

    policy: str
    #: Final per-phase frequency, GHz: ((phase, freq), ...).
    frequencies: Tuple[Tuple[str, float], ...]
    #: Per-phase convergence flags: ((phase, converged), ...).
    converged: Tuple[Tuple[str, bool], ...]
    #: Every decision taken: (step, phase, freq_ghz, mode).
    decisions: Tuple[Tuple[int, str, float, str], ...]
    #: Model refits performed (0 for non-adaptive policies).
    refits: int
    #: SHA-256 of the canonical trace JSON (the determinism contract:
    #: equal seeds => equal digests).
    trace_sha256: str


class Governor(abc.ABC):
    """Common trace/telemetry machinery behind every policy."""

    name = "governor"

    def __init__(
        self,
        cpu: CpuSpec,
        telemetry: Optional[TelemetryBus] = None,
    ) -> None:
        self.cpu = cpu
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()
        #: Ordered decision log; entries are plain dicts so the trace
        #: serializes canonically.
        self.trace: list = []
        self.refits = 0
        self._step = 0
        self._last_freq: Dict[Phase, float] = {}

    # -- the two-call control surface ----------------------------------

    @abc.abstractmethod
    def _decide(self, phase: Phase) -> Tuple[float, str]:
        """Policy core: (frequency before clamping, decision mode)."""

    def decide(self, phase, cap_ghz: Optional[float] = None) -> float:
        """Frequency for the next run of *phase*, snapped and clamped.

        *cap_ghz* is a hard ceiling from the resilience layer (a DVFS
        throttle fault); the governor must never command a clock above
        it, whatever the policy wants.
        """
        from repro.observability import get_registry, get_tracer

        phase = _as_phase(phase)
        infeasible_cap = cap_ghz is not None and cap_ghz < self.cpu.fmin_ghz
        with get_tracer().span("governor.decide", phase=phase.value) as sp:
            freq, mode = self._decide(phase)
            freq = min(max(freq, self.cpu.fmin_ghz), self.cpu.fmax_ghz)
            if cap_ghz is not None and freq > cap_ghz:
                freq = max(cap_ghz, self.cpu.fmin_ghz)
                mode = f"{mode}+capped"
            freq = self.cpu.snap_frequency(freq)
            sp.set(freq_ghz=freq, mode=mode)
            if infeasible_cap:
                sp.set(capped_below_fmin=True)
        entry = {
            "step": self._step,
            "phase": phase.value,
            "freq_ghz": round(freq, 6),
            "mode": mode,
            "converged": self.is_converged(phase),
        }
        if infeasible_cap:
            # The cap asked for less than the DVFS floor can deliver; we
            # pin fmin, but make the infeasibility observable instead of
            # silently under-delivering on the watt budget.
            entry["capped_below_fmin"] = True
            get_registry().counter(
                "repro_governor_infeasible_caps_total",
                {"phase": phase.value, "policy": self.name},
                help="decide() calls whose cap_ghz lay below the DVFS floor",
            ).inc()
        self.trace.append(entry)
        self._step += 1
        if self._last_freq.get(phase) != freq:
            get_registry().counter(
                "repro_governor_adjustments_total",
                {"phase": phase.value, "policy": self.name},
                help="frequency changes commanded by I/O governors",
            ).inc()
        self._last_freq[phase] = freq
        return freq

    def observe(
        self,
        phase,
        freq_ghz: float,
        power_w: float,
        runtime_s: float,
        bytes_processed: int,
    ) -> TelemetrySample:
        """Feed back one stage's measurement; lands on the telemetry bus."""
        sample = self.telemetry.publish(
            _as_phase(phase), freq_ghz, power_w, runtime_s, bytes_processed
        )
        self._observed(sample)
        return sample

    def _observed(self, sample: TelemetrySample) -> None:
        """Hook for adaptive policies; static ones ignore feedback."""

    # -- introspection -------------------------------------------------

    def is_converged(self, phase) -> bool:
        """Static policies are converged by construction."""
        return True

    def frequencies(self) -> Dict[str, float]:
        """Most recently decided frequency per phase."""
        return {p.value: f for p, f in sorted(
            self._last_freq.items(), key=lambda kv: kv[0].value
        )}

    def trace_json(self) -> str:
        """Canonical JSON of the decision trace (byte-stable per seed)."""
        return json.dumps(
            self.trace, sort_keys=True, separators=(",", ":")
        )

    def report(self) -> GovernorReport:
        phases = sorted(self._last_freq, key=lambda p: p.value)
        return GovernorReport(
            policy=self.name,
            frequencies=tuple((p.value, self._last_freq[p]) for p in phases),
            converged=tuple((p.value, self.is_converged(p)) for p in phases),
            decisions=tuple(
                (e["step"], e["phase"], e["freq_ghz"], e["mode"])
                for e in self.trace
            ),
            refits=self.refits,
            trace_sha256=hashlib.sha256(
                self.trace_json().encode("utf-8")
            ).hexdigest(),
        )


def _as_phase(phase) -> Phase:
    if isinstance(phase, Phase):
        return phase
    return Phase(str(phase))


class StaticGovernor(Governor):
    """The paper's Eqn. 3 rule behind the Governor interface.

    Open loop: observations land on the telemetry bus (so static runs
    are just as observable) but never change a decision.
    """

    name = "static"

    def __init__(
        self,
        cpu: CpuSpec,
        policy: TuningPolicy = PAPER_POLICY,
        telemetry: Optional[TelemetryBus] = None,
    ) -> None:
        super().__init__(cpu, telemetry)
        self.policy = policy

    def _decide(self, phase: Phase) -> Tuple[float, str]:
        kind = PHASE_KIND[phase]
        return self.policy.frequency_for(self.cpu, kind), "static"


class OracleGovernor(Governor):
    """Optimizes the objective on the simulation's *true* curves.

    The regret benchmark's lower bound: no estimation error, no
    exploration cost. Requires the ground-truth
    :class:`~repro.hardware.powercurves.PowerCurve` the node runs on —
    which is exactly why it cannot exist outside the simulation.
    """

    name = "oracle"

    def __init__(
        self,
        cpu: CpuSpec,
        power_curve,
        budgets: Optional[Dict[Phase, float]] = None,
        hysteresis: float = DEFAULT_HYSTERESIS,
        telemetry: Optional[TelemetryBus] = None,
    ) -> None:
        super().__init__(cpu, telemetry)
        self.power_curve = power_curve
        self.budgets = dict(DEFAULT_SLOWDOWN_BUDGETS)
        if budgets:
            self.budgets.update(budgets)
        self.hysteresis = float(hysteresis)
        self._choices: Dict[Phase, float] = {}

    def _decide(self, phase: Phase) -> Tuple[float, str]:
        choice = self._choices.get(phase)
        if choice is None:
            kind = PHASE_KIND[phase]
            fmax = self.cpu.fmax_ghz
            p_ref = self.power_curve.power_watts(self.cpu, fmax, kind)
            sens = FREQUENCY_SENSITIVITY[(kind, self.cpu.arch)]
            choice = choose_frequency(
                self.cpu.available_frequencies(),
                lambda f: self.power_curve.power_watts(self.cpu, f, kind) / p_ref,
                lambda f: sens * (fmax / f - 1.0),
                self.budgets[phase],
                self.hysteresis,
            )
            self._choices[phase] = choice
        return choice, "oracle"
