#!/usr/bin/env python
"""Checkpoint campaign: the paper's HACC-style motivating scenario.

A long simulation dumps compressed snapshots every hour. Compute phases
need the full clock (the paper's premise); only the dump pipeline is
tuned. Shows the asymmetry the paper's argument rests on: campaign-level
I/O energy drops by the full tuning margin while the wall-clock penalty
is diluted to a fraction of a percent.

    python examples/checkpoint_campaign.py
"""

from repro import SZCompressor, default_nodes, load_field
from repro.workflow.campaign import CheckpointCampaign, run_campaign
from repro.workflow.report import render_table


def main() -> None:
    arr = load_field("nyx", "velocity_x", scale=16)
    campaign = CheckpointCampaign(
        snapshot_bytes=int(128e9),      # 128 GB per snapshot
        n_snapshots=12,                 # half-day run, hourly dumps
        compute_interval_s=3600.0,
    )
    rows = []
    for node in default_nodes():
        cpu = node.cpu
        base = run_campaign(node, SZCompressor(), arr, 1e-2, campaign)
        tuned = run_campaign(
            node, SZCompressor(), arr, 1e-2, campaign,
            compress_freq_ghz=cpu.snap_frequency(0.875 * cpu.fmax_ghz),
            write_freq_ghz=cpu.snap_frequency(0.85 * cpu.fmax_ghz),
        )
        rows.append(
            {
                "arch": cpu.arch,
                "io_share_pct": base.io_time_fraction * 100,
                "io_base_kj": base.io_energy_j / 1e3,
                "io_saved_pct": (1 - tuned.io_energy_j / base.io_energy_j) * 100,
                "io_saved_kj": (base.io_energy_j - tuned.io_energy_j) / 1e3,
                "wall_penalty_pct": (tuned.total_wall_s / base.total_wall_s - 1) * 100,
            }
        )
    print(render_table(rows, title="12-snapshot campaign (128 GB each, SZ eb=1e-2)"))

    for r in rows:
        assert r["io_saved_pct"] > 3.0
        assert r["wall_penalty_pct"] < 1.5
    print("\nI/O energy savings carry through to the campaign level while "
          "the wall-clock penalty stays under 1.5 % — compression and I/O "
          "'can afford a longer runtime' exactly as the paper argues.")


if __name__ == "__main__":
    main()
