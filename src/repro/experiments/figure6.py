"""Fig. 6 — energy dissipation for data dumping (the headline use case).

Compress and transmit a 512 GB NYX velocity-x field with SZ over error
bounds 1e-1..1e-4, at base clock vs. Eqn. 3-tuned frequencies, and
record total energy. Paper result: tuning always reduces energy, saving
6.5 kJ (13 %) on average across the bounds.

The paper does not state which node ran this experiment; we run both
and report per-architecture savings (the Skylake node lands closest to
the paper's 13 %).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.energy import SavingsReport
from repro.experiments.context import ExperimentContext
from repro.workflow.report import render_table

__all__ = ["run", "main", "PAPER_AVG_SAVED_KJ", "PAPER_AVG_SAVING_FRACTION"]

PAPER_AVG_SAVED_KJ = 6.5
PAPER_AVG_SAVING_FRACTION = 0.13

ERROR_BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4)
TARGET_BYTES = int(512e9)


def run(
    ctx: Optional[ExperimentContext] = None,
    archs: Sequence[str] = ("broadwell", "skylake"),
    error_bounds: Sequence[float] = ERROR_BOUNDS,
    target_bytes: int = TARGET_BYTES,
) -> Dict[str, Tuple[SavingsReport, ...]]:
    """Per-architecture savings reports, one per error bound."""
    ctx = ctx if ctx is not None else ExperimentContext()
    out: Dict[str, Tuple[SavingsReport, ...]] = {}
    for arch in archs:
        reports = tuple(
            ctx.pipeline.apply(
                ctx.outcome,
                arch=arch,
                compressor="sz",
                dataset="nyx",
                field_name="velocity_x",
                error_bound=eb,
                target_bytes=target_bytes,
                data_scale=ctx.config.data_scale,
                seed=ctx.config.seed,
            )
            for eb in error_bounds
        )
        out[arch] = reports
    return out


def main(ctx: Optional[ExperimentContext] = None) -> str:
    """Render the Fig. 6 bars as a table plus average savings."""
    results = run(ctx)
    chunks = []
    for arch, reports in results.items():
        rows = [
            {
                "error_bound": r.error_bound,
                "base_clock_kj": r.baseline_energy_j / 1e3,
                "tuned_kj": r.tuned_energy_j / 1e3,
                "saved_kj": r.energy_saved_j / 1e3,
                "saving_pct": r.energy_saving_fraction * 100,
                "ratio": r.compression_ratio,
            }
            for r in reports
        ]
        avg_kj = float(np.mean([r.energy_saved_j for r in reports])) / 1e3
        avg_pct = float(np.mean([r.energy_saving_fraction for r in reports])) * 100
        chunks.append(
            render_table(
                rows,
                title=f"FIG. 6 — 512 GB NYX dump energy on {arch} "
                f"(avg saved {avg_kj:.2f} kJ, {avg_pct:.1f} %)",
            )
        )
    chunks.append(
        f"Paper: avg {PAPER_AVG_SAVED_KJ} kJ saved "
        f"({PAPER_AVG_SAVING_FRACTION * 100:.0f} %) over the same bounds."
    )
    text = "\n\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":
    main()
