"""Ablation bench #2: Eqn. 3 static rule vs model-driven optimum.

Compares applied (not just predicted) 512 GB dump savings under the
paper's fixed factors and under per-architecture energy-optimal
frequencies, including a slowdown-capped variant.
"""

import numpy as np
from conftest import emit

from repro.core.tuning import optimal_energy_frequency
from repro.workflow.report import render_table


def test_bench_ablation_tuning(benchmark, ctx):
    pipe = ctx.pipeline
    outcome = ctx.outcome  # recommended with PAPER_POLICY

    def applied_savings():
        rows = []
        for arch in ("broadwell", "skylake"):
            node = ctx.node(arch)
            comp_model = outcome.compression_models[arch.capitalize()]
            tran_model = outcome.transit_models[arch.capitalize()]
            comp_rt = outcome.compression_runtime[arch]
            tran_rt = outcome.transit_runtime[arch]

            f_opt_c = optimal_energy_frequency(comp_model, comp_rt, node.cpu)
            f_opt_w = optimal_energy_frequency(tran_model, tran_rt, node.cpu)
            f_cap_c = optimal_energy_frequency(comp_model, comp_rt, node.cpu,
                                               max_slowdown=0.10)

            from repro.iosim.dumper import DataDumper
            from repro.compressors import SZCompressor
            from repro.data import load_field

            dumper = DataDumper(node, ctx.pipeline.nfs)
            arr = load_field("nyx", "velocity_x", scale=ctx.config.data_scale)
            base = dumper.dump(SZCompressor(), arr, 1e-2, int(512e9))
            for name, fc, fw in (
                ("eqn3", 0.875 * node.cpu.fmax_ghz, 0.85 * node.cpu.fmax_ghz),
                ("model-optimal", f_opt_c, f_opt_w),
                ("optimal<=10%slow", f_cap_c, f_opt_w),
            ):
                tuned = dumper.dump(SZCompressor(), arr, 1e-2, int(512e9),
                                    compress_freq_ghz=fc, write_freq_ghz=fw)
                rows.append(
                    {
                        "arch": arch,
                        "policy": name,
                        "f_compress": tuned.compress.freq_ghz,
                        "f_write": tuned.write.freq_ghz,
                        "saved_kj": (base.total_energy_j - tuned.total_energy_j) / 1e3,
                        "saving_pct": (1 - tuned.total_energy_j / base.total_energy_j) * 100,
                        "slowdown_pct": (tuned.total_runtime_s / base.total_runtime_s - 1) * 100,
                    }
                )
        return rows

    rows = benchmark.pedantic(applied_savings, rounds=1, iterations=1)
    emit(render_table(rows, title="ABLATION — Eqn. 3 vs model-driven frequency selection"))

    by = {(r["arch"], r["policy"]): r for r in rows}
    for arch in ("broadwell", "skylake"):
        # Every policy saves energy under the calibrated ground truth.
        for policy in ("eqn3", "model-optimal", "optimal<=10%slow"):
            assert by[(arch, policy)]["saved_kj"] > 0
        # Model-optimal matches or beats the static rule (within the
        # couple-of-percent measurement noise of a single application).
        assert (by[(arch, "model-optimal")]["saving_pct"]
                >= by[(arch, "eqn3")]["saving_pct"] - 2.0)
