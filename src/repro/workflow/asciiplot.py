"""ASCII line charts for the characteristic curves.

The benchmark harness is terminal-only, so the figures render as
character rasters: one mark per series, shared axes, left-side y ticks.
Good enough to see the critical power slope without matplotlib.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["ascii_chart"]

_MARKS = "*o+x#@%&"


def ascii_chart(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render line series as an ASCII chart.

    Each series gets one mark character; overlapping points show the
    later series' mark. Axes are annotated with min/max ticks.
    """
    if width < 16 or height < 4:
        raise ValueError("chart must be at least 16x4 characters")
    if not series:
        raise ValueError("at least one series is required")
    x = np.asarray(list(x), dtype=np.float64)
    if x.size < 2:
        raise ValueError("need at least 2 x values")
    cols = {}
    for name, vals in series.items():
        v = np.asarray(list(vals), dtype=np.float64)
        if v.shape != x.shape:
            raise ValueError(f"series {name!r} length {v.size} != x length {x.size}")
        cols[name] = v

    all_y = np.concatenate(list(cols.values()))
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x.min()), float(x.max())

    grid = [[" "] * width for _ in range(height)]
    for si, (name, v) in enumerate(cols.items()):
        mark = _MARKS[si % len(_MARKS)]
        px = np.round((x - x_min) / (x_max - x_min) * (width - 1)).astype(int)
        py = np.round((v - y_min) / (y_max - y_min) * (height - 1)).astype(int)
        # Connect consecutive points with linear interpolation.
        for i in range(x.size - 1):
            steps = max(abs(px[i + 1] - px[i]), abs(py[i + 1] - py[i]), 1)
            for t in range(steps + 1):
                cx = px[i] + (px[i + 1] - px[i]) * t // steps
                cy = py[i] + (py[i + 1] - py[i]) * t // steps
                grid[height - 1 - cy][cx] = mark

    y_tick_w = max(len(f"{y_max:.3g}"), len(f"{y_min:.3g}"))
    lines = []
    if title:
        lines.append(title)
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            tick = f"{y_max:.3g}".rjust(y_tick_w)
        elif row_idx == height - 1:
            tick = f"{y_min:.3g}".rjust(y_tick_w)
        else:
            tick = " " * y_tick_w
        lines.append(f"{tick} |" + "".join(row))
    lines.append(" " * y_tick_w + " +" + "-" * width)
    x_axis = f"{x_min:.3g}".ljust(width - len(f"{x_max:.3g}")) + f"{x_max:.3g}"
    lines.append(" " * (y_tick_w + 2) + x_axis)
    if x_label:
        lines.append(" " * (y_tick_w + 2) + x_label.center(width))
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(cols)
    )
    lines.append((y_label + "  " if y_label else "") + legend)
    return "\n".join(lines)
