"""Unit tests for per-block fixed-point conversion."""

import numpy as np
import pytest

from repro.compressors.zfp.fixedpoint import (
    PRECISION_F32,
    PRECISION_F64,
    ZERO_EXPONENT,
    block_exponents,
    from_fixed_point,
    precision_for,
    to_fixed_point,
)


class TestPrecisionFor:
    def test_known_dtypes(self):
        assert precision_for(np.float32) == PRECISION_F32
        assert precision_for(np.float64) == PRECISION_F64

    def test_unsupported(self):
        with pytest.raises(ValueError):
            precision_for(np.int32)


class TestBlockExponents:
    def test_exponent_bounds_magnitude(self):
        blocks = np.array([[0.3, -0.9, 0.1, 0.2]])
        e = block_exponents(blocks)
        assert np.max(np.abs(blocks)) < 2.0 ** e[0]
        assert np.max(np.abs(blocks)) >= 2.0 ** (e[0] - 1)

    def test_power_of_two_boundary(self):
        e = block_exponents(np.array([[1.0, 0.0, 0.0, 0.0]]))
        assert 1.0 < 2.0 ** e[0]  # strict bound holds at exact powers

    def test_zero_block_sentinel(self):
        e = block_exponents(np.zeros((3, 4)))
        assert np.all(e == ZERO_EXPONENT)

    def test_per_block_independent(self):
        blocks = np.array([[1e-6, 0, 0, 0], [1e6, 0, 0, 0]])
        e = block_exponents(blocks)
        assert e[0] < e[1]

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            block_exponents(np.zeros(4))


class TestFixedPointRoundtrip:
    @pytest.mark.parametrize("precision", [PRECISION_F32, PRECISION_F64])
    def test_roundtrip_error_below_half_ulp(self, precision):
        rng = np.random.default_rng(0)
        blocks = rng.normal(size=(50, 16)) * 10.0 ** rng.integers(-6, 6, size=(50, 1))
        e = block_exponents(blocks)
        fixed = to_fixed_point(blocks, e, precision)
        back = from_fixed_point(fixed, e, precision)
        # Error per value <= 0.5 integer ulp = 2^(e - precision - 1).
        tol = 2.0 ** (e.astype(float) - precision - 1)[:, None]
        assert np.all(np.abs(back - blocks) <= tol * (1 + 1e-12))

    def test_values_fit_precision(self):
        rng = np.random.default_rng(1)
        blocks = rng.normal(size=(20, 16))
        e = block_exponents(blocks)
        fixed = to_fixed_point(blocks, e, 30)
        assert np.max(np.abs(fixed)) <= 2**30

    def test_zero_blocks_stay_zero(self):
        blocks = np.zeros((2, 16))
        e = block_exponents(blocks)
        fixed = to_fixed_point(blocks, e, 30)
        assert np.all(fixed == 0)
        assert np.all(from_fixed_point(fixed, e, 30) == 0.0)
