"""Content-addressed result caching with incremental recomputation.

Campaign sweeps, model fits and service queries are pure functions of
their (hardware spec, workload, calibration, codec config, seed)
inputs — which makes their results content-addressable. This package
keys every result on a canonical SHA-256 fingerprint of those inputs
plus the library :data:`~repro.core.persistence.SCHEMA_VERSION`, stores
it in an in-memory LRU tier with an optional on-disk JSON store, and
verifies a digest on every read so a hit is byte-identical to a cold
run or an error — never silently stale. See ``docs/CACHING.md``.
"""

from repro.cache.core import (
    CacheCorruptionError,
    ResultCache,
    configure_cache,
    get_cache,
    set_cache,
    use_cache,
)
from repro.cache.fingerprint import (
    canonical_json,
    canonicalize,
    describe_node,
    fingerprint,
)
from repro.cache.serialization import decode_value, encode_value
from repro.cache.store import DiskStore, MemoryLRU, text_digest

__all__ = [
    "ResultCache",
    "CacheCorruptionError",
    "get_cache",
    "set_cache",
    "configure_cache",
    "use_cache",
    "fingerprint",
    "canonicalize",
    "canonical_json",
    "describe_node",
    "encode_value",
    "decode_value",
    "MemoryLRU",
    "DiskStore",
    "text_digest",
]
