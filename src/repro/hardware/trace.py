"""Time-resolved power traces of pipeline executions.

``perf`` reports one energy total per run; power analysts usually look
at the *trace* — package power sampled at a fixed interval — to see
phase structure (the compression plateau, the write plateau, frequency
steps between them). :class:`TraceRecorder` replays a sequence of
(workload, frequency) stages on a node's ground-truth curves and emits
the sampled trace, with the same multiplicative noise model applied per
sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.hardware.node import SimulatedNode
from repro.hardware.workload import Workload
from repro.utils.validation import check_positive

__all__ = ["PowerTrace", "TraceRecorder"]


@dataclass(frozen=True)
class PowerTrace:
    """Sampled package power over a multi-stage execution."""

    times_s: np.ndarray
    power_w: np.ndarray
    #: Per-sample stage label indices into :attr:`stages`.
    stage_ids: np.ndarray
    stages: Tuple[str, ...]
    interval_s: float

    def __post_init__(self):
        if not (self.times_s.shape == self.power_w.shape == self.stage_ids.shape):
            raise ValueError("trace arrays must share a shape")

    @property
    def duration_s(self) -> float:
        return float(self.times_s[-1] + self.interval_s) if self.times_s.size else 0.0

    def energy_j(self) -> float:
        """Left-Riemann integral of the trace (what a poller would report)."""
        return float(self.power_w.sum() * self.interval_s)

    def stage_energy_j(self, stage: str) -> float:
        """Energy attributed to one named stage."""
        if stage not in self.stages:
            raise KeyError(f"unknown stage {stage!r}; stages: {self.stages}")
        sid = self.stages.index(stage)
        mask = self.stage_ids == sid
        return float(self.power_w[mask].sum() * self.interval_s)

    def mean_power_w(self, stage: str | None = None) -> float:
        """Average power, optionally restricted to one stage."""
        if stage is None:
            return float(self.power_w.mean())
        sid = self.stages.index(stage)
        return float(self.power_w[self.stage_ids == sid].mean())


class TraceRecorder:
    """Samples ground-truth power through a staged execution."""

    def __init__(self, node: SimulatedNode, interval_s: float = 0.5) -> None:
        check_positive(interval_s, "interval_s")
        self.node = node
        self.interval_s = float(interval_s)

    def record(
        self, stages: Sequence[Tuple[str, Workload, float]]
    ) -> PowerTrace:
        """Replay ``(label, workload, freq_ghz)`` stages back to back.

        Each stage runs for its ground-truth runtime at its pinned
        frequency; every sample gets independent power noise (the
        node's own noise model).
        """
        if not stages:
            raise ValueError("at least one stage is required")
        labels: List[str] = []
        times: List[np.ndarray] = []
        powers: List[np.ndarray] = []
        ids: List[np.ndarray] = []
        t0 = 0.0
        for idx, (label, workload, freq_ghz) in enumerate(stages):
            labels.append(label)
            runtime = self.node.true_runtime_s(workload, freq_ghz)
            true_power = self.node.true_power_w(workload, freq_ghz)
            n = max(1, int(round(runtime / self.interval_s)))
            ts = t0 + self.interval_s * np.arange(n)
            noise = np.array([self.node._jitter(self.node.power_noise) for _ in range(n)])
            times.append(ts)
            powers.append(true_power * noise)
            ids.append(np.full(n, idx, dtype=np.int64))
            t0 = float(ts[-1] + self.interval_s)
        return PowerTrace(
            times_s=np.concatenate(times),
            power_w=np.concatenate(powers),
            stage_ids=np.concatenate(ids),
            stages=tuple(labels),
            interval_s=self.interval_s,
        )
