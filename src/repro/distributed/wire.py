"""Length-prefixed JSON wire protocol with per-message CRC.

Every message between the coordinator and its workers is one *frame*::

    magic   4 bytes  b"RPDW"
    length  4 bytes  big-endian payload byte count
    crc32   4 bytes  big-endian CRC-32 of exactly the payload bytes
    payload N bytes  UTF-8 canonical JSON

The framing is deliberately dumb: no compression, no negotiation, no
streaming state. What it buys is *verifiability* — a frame either
decodes to exactly the object that was sent, or it raises. Truncation
at any byte raises :class:`WireTruncatedError`; a flipped bit anywhere
(header or payload) raises :class:`WireCorruptionError` via the magic,
length or CRC check before the JSON parser ever runs. Decoding is a
pure function of the buffer, so a malformed peer can never hang the
reader — socket reads are bounded by the declared length and by the
socket timeout the caller configured.

Python objects that JSON cannot carry (task callables, NumPy arrays,
report dataclasses) travel as pickle blobs wrapped by
:func:`pack_blob`/:func:`unpack_blob` — base64 text inside the JSON
payload, so the frame stays a single self-verifying unit. Workers are
trusted peers spawned from this codebase (the fleet is a local process
tree, not a public endpoint), which is the standard trust model for
``multiprocessing``-style pickled task shipping.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
import zlib
from typing import Any, Optional, Tuple

__all__ = [
    "MAGIC",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "WireError",
    "WireTruncatedError",
    "WireCorruptionError",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "recv_frame",
    "pack_blob",
    "unpack_blob",
]

MAGIC = b"RPDW"
_HEADER = struct.Struct(">4sII")
HEADER_BYTES = _HEADER.size  # 12

#: Hard frame-size ceiling. Campaign points and reports are kilobytes;
#: pickled sample fields a few megabytes. Anything past this is a
#: corrupted length field, not a real message.
MAX_FRAME_BYTES = 256 << 20


class WireError(ValueError):
    """Base class for every framing failure."""


class WireTruncatedError(WireError):
    """The buffer/stream ended before the declared frame did."""


class WireCorruptionError(WireError):
    """Magic, length or CRC verification failed; the frame is damaged."""


def encode_frame(doc: Any) -> bytes:
    """Serialize *doc* (a JSON-able object) into one framed message."""
    payload = json.dumps(
        doc, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def decode_frame(buf: bytes) -> Tuple[Any, int]:
    """Decode one frame from the head of *buf*.

    Returns ``(doc, consumed_bytes)``. Raises
    :class:`WireTruncatedError` when *buf* holds only a prefix of the
    frame (read more and retry) and :class:`WireCorruptionError` when
    any verification fails. Pure: never blocks, never loops.
    """
    buf = bytes(buf)
    if len(buf) < HEADER_BYTES:
        raise WireTruncatedError(
            f"need {HEADER_BYTES} header bytes, have {len(buf)}"
        )
    magic, length, crc = _HEADER.unpack_from(buf)
    if magic != MAGIC:
        raise WireCorruptionError(
            f"bad frame magic {magic!r} (expected {MAGIC!r})"
        )
    if length > MAX_FRAME_BYTES:
        raise WireCorruptionError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling; length field is corrupt"
        )
    end = HEADER_BYTES + length
    if len(buf) < end:
        raise WireTruncatedError(
            f"frame declares {length} payload bytes, have {len(buf) - HEADER_BYTES}"
        )
    payload = buf[HEADER_BYTES:end]
    if zlib.crc32(payload) != crc:
        raise WireCorruptionError(
            f"payload CRC mismatch on {length}-byte frame; "
            "the message is damaged"
        )
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # CRC passed but the JSON is bad: the *sender* framed garbage.
        raise WireCorruptionError(f"frame payload is not valid JSON: {exc}") from exc
    return doc, end


def send_frame(sock: socket.socket, doc: Any) -> int:
    """Frame and send *doc*; returns the bytes put on the wire."""
    frame = encode_frame(doc)
    sock.sendall(frame)
    return len(frame)


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> Optional[bytes]:
    """Read exactly *n* bytes, or ``None`` on clean EOF at a boundary.

    EOF anywhere *inside* a frame raises :class:`WireTruncatedError` —
    a peer that dies mid-message must surface as an error, never as a
    silently short read.
    """
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if at_boundary and got == 0:
                return None
            raise WireTruncatedError(
                f"connection closed {got}/{n} bytes into a frame"
            )
        chunks.append(chunk)
        got += len(chunk)
        at_boundary = False
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Any]:
    """Receive one frame; ``None`` on clean EOF between frames.

    Blocking is bounded by the socket's own timeout (``socket.timeout``
    propagates to the caller) and by the declared payload length — the
    reader never waits for more bytes than the verified header names.
    """
    header = _recv_exact(sock, HEADER_BYTES, at_boundary=True)
    if header is None:
        return None
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireCorruptionError(
            f"bad frame magic {magic!r} (expected {MAGIC!r})"
        )
    if length > MAX_FRAME_BYTES:
        raise WireCorruptionError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling; length field is corrupt"
        )
    payload = _recv_exact(sock, length, at_boundary=False) if length else b""
    if zlib.crc32(payload) != crc:
        raise WireCorruptionError(
            f"payload CRC mismatch on {length}-byte frame; "
            "the message is damaged"
        )
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireCorruptionError(f"frame payload is not valid JSON: {exc}") from exc


def pack_blob(obj: Any) -> str:
    """Pickle *obj* into base64 text safe to embed in a JSON payload."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_blob(text: str) -> Any:
    """Inverse of :func:`pack_blob`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))
