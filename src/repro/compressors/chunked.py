"""Chunked compression: bounded-memory processing of huge arrays.

The paper's 512 GB experiment concatenates NYX snapshots; a real tool
cannot hold that in RAM. :class:`ChunkedCompressor` wraps any registered
codec and streams an array through it in slabs along axis 0, producing
an independent :class:`~repro.compressors.base.CompressedBuffer` per
slab inside a simple container. Each slab honours the same absolute
error bound, so the container does too.

Slab independence also buys random access (decode one slab without the
rest) and is how parallel compression would shard the work.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.compressors.base import (
    CompressedBuffer,
    Compressor,
    CorruptStreamError,
    get_compressor,
)
from repro.utils.validation import as_float_array, check_positive

__all__ = ["ChunkedBuffer", "ChunkedCompressor"]

_MAGIC = b"RPCK"


@dataclass(frozen=True)
class ChunkedBuffer:
    """Container of per-slab compressed buffers."""

    chunks: Tuple[CompressedBuffer, ...]
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return len(self.to_bytes())

    @property
    def original_nbytes(self) -> int:
        return sum(c.original_nbytes for c in self.chunks)

    @property
    def ratio(self) -> float:
        return self.original_nbytes / max(self.nbytes, 1)

    def to_bytes(self) -> bytes:
        """Container layout: magic, ndim+shape, chunk count, then
        length-prefixed chunk buffers."""
        parts = [
            _MAGIC,
            struct.pack("<B", len(self.shape)),
            struct.pack(f"<{len(self.shape)}q", *self.shape),
            struct.pack("<I", len(self.chunks)),
        ]
        for chunk in self.chunks:
            blob = chunk.to_bytes()
            parts.append(struct.pack("<Q", len(blob)))
            parts.append(blob)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ChunkedBuffer":
        if data[:4] != _MAGIC:
            raise CorruptStreamError("bad chunked-container magic")
        off = 4
        try:
            (ndim,) = struct.unpack_from("<B", data, off)
            off += 1
            shape = struct.unpack_from(f"<{ndim}q", data, off)
            off += 8 * ndim
            (count,) = struct.unpack_from("<I", data, off)
            off += 4
        except struct.error as exc:
            raise CorruptStreamError(f"container truncated in header: {exc}") from exc
        chunks: List[CompressedBuffer] = []
        for _ in range(count):
            if off + 8 > len(data):
                raise CorruptStreamError("container truncated in chunk table")
            (size,) = struct.unpack_from("<Q", data, off)
            off += 8
            if off + size > len(data):
                raise CorruptStreamError("container truncated in chunk body")
            chunks.append(CompressedBuffer.from_bytes(data[off : off + size]))
            off += size
        return cls(chunks=tuple(chunks), shape=tuple(int(s) for s in shape))


class ChunkedCompressor:
    """Stream arrays through a codec in bounded-memory slabs."""

    def __init__(self, codec: "Compressor | str" = "sz", max_chunk_bytes: int = 1 << 26):
        check_positive(max_chunk_bytes, "max_chunk_bytes")
        self.codec = get_compressor(codec) if isinstance(codec, str) else codec
        self.max_chunk_bytes = int(max_chunk_bytes)

    def _slabs(self, arr: np.ndarray) -> Iterator[np.ndarray]:
        row_bytes = arr.nbytes // arr.shape[0] if arr.shape[0] else arr.nbytes
        rows = max(1, self.max_chunk_bytes // max(row_bytes, 1))
        for lo in range(0, arr.shape[0], rows):
            yield arr[lo : lo + rows]

    def compress(self, data, error_bound: float) -> ChunkedBuffer:
        """Compress slab by slab; each slab satisfies the bound."""
        arr = as_float_array(data, "data")
        chunks = tuple(
            self.codec.compress(slab, error_bound) for slab in self._slabs(arr)
        )
        return ChunkedBuffer(chunks=chunks, shape=arr.shape)

    def decompress(self, container: ChunkedBuffer) -> np.ndarray:
        """Reassemble the full array from its slabs."""
        if not container.chunks:
            raise CorruptStreamError("container holds no chunks")
        parts = [self.codec.decompress(c) for c in container.chunks]
        out = np.concatenate(parts, axis=0)
        if out.shape != container.shape:
            raise CorruptStreamError(
                f"reassembled shape {out.shape} != container shape {container.shape}"
            )
        return out

    def decompress_chunk(self, container: ChunkedBuffer, index: int) -> np.ndarray:
        """Random access: decode a single slab."""
        if not 0 <= index < len(container.chunks):
            raise IndexError(
                f"chunk index {index} out of range [0, {len(container.chunks)})"
            )
        return self.codec.decompress(container.chunks[index])
