"""Unit tests for the cpufreq emulation."""

import pytest

from repro.hardware.cpu import BROADWELL_D1548
from repro.hardware.dvfs import FrequencyError, FrequencyScaler, Governor


@pytest.fixture
def scaler():
    return FrequencyScaler(BROADWELL_D1548)


class TestDefaults:
    def test_boots_at_performance_fmax(self, scaler):
        assert scaler.governor is Governor.PERFORMANCE
        assert scaler.current_ghz == 2.0


class TestCpufreqSet:
    def test_pins_and_switches_governor(self, scaler):
        applied = scaler.cpufreq_set(1.5)
        assert applied == 1.5
        assert scaler.current_ghz == 1.5
        assert scaler.governor is Governor.USERSPACE

    def test_snaps_to_grid(self, scaler):
        assert scaler.cpufreq_set(1.512) == pytest.approx(1.5)

    def test_out_of_range_raises_frequency_error(self, scaler):
        with pytest.raises(FrequencyError):
            scaler.cpufreq_set(3.0)
        # State unchanged after a failed set.
        assert scaler.current_ghz == 2.0

    def test_nan_is_rejected(self, scaler):
        # Regression: NaN compares false against every grid bound, so
        # snapping used to pin an arbitrary frequency instead of failing.
        with pytest.raises(FrequencyError, match="finite"):
            scaler.cpufreq_set(float("nan"))
        assert scaler.current_ghz == 2.0
        assert scaler.governor is Governor.PERFORMANCE

    @pytest.mark.parametrize("bad", [float("inf"), float("-inf")])
    def test_infinities_are_rejected(self, scaler, bad):
        with pytest.raises(FrequencyError, match="finite"):
            scaler.cpufreq_set(bad)
        assert scaler.current_ghz == 2.0

    @pytest.mark.parametrize("bad", ["1.5", None, [1.5]])
    def test_non_numeric_is_rejected(self, scaler, bad):
        with pytest.raises(FrequencyError, match="finite"):
            scaler.cpufreq_set(bad)
        assert scaler.current_ghz == 2.0


class TestGovernors:
    def test_powersave_pins_fmin(self, scaler):
        assert scaler.set_governor(Governor.POWERSAVE) == 0.8
        assert scaler.current_ghz == 0.8

    def test_performance_pins_fmax(self, scaler):
        scaler.cpufreq_set(1.0)
        assert scaler.set_governor(Governor.PERFORMANCE) == 2.0

    def test_userspace_keeps_current(self, scaler):
        scaler.cpufreq_set(1.2)
        assert scaler.set_governor(Governor.USERSPACE) == pytest.approx(1.2)

    def test_invalid_governor(self, scaler):
        with pytest.raises(FrequencyError):
            scaler.set_governor("turbo")

    def test_reset(self, scaler):
        scaler.cpufreq_set(0.9)
        assert scaler.reset() == 2.0
        assert scaler.governor is Governor.PERFORMANCE
