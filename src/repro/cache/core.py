"""The content-addressed result cache.

:class:`ResultCache` composes the two storage tiers behind one
verified, observable interface:

* **lookup/store** — values travel as canonical JSON text plus a
  SHA-256 digest of that text; every hit re-verifies the digest and
  decodes a fresh object (see :mod:`repro.cache.serialization`), so a
  hit is byte-identical to the cold computation or it raises
  :class:`~repro.cache.store.CacheCorruptionError` — never silently
  stale.
* **single-flight** — :meth:`get_or_compute` elects one leader per key;
  concurrent identical requests wait and then read the stored entry
  instead of recomputing. Failures release the waiters, one of which
  becomes the next leader (errors are never cached).
* **observability** — ``repro_cache_{hits,misses}_total`` counters are
  labelled by call-site context, plus eviction/byte counters and
  ``cache.lookup``/``cache.store`` spans.

A process-wide default instance (:func:`get_cache`) is what the hot
paths consult; :func:`configure_cache` swaps it (CLI flags do this),
and tests install scratch instances via :func:`set_cache`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Dict, Optional, Tuple

from repro.cache.serialization import decode_value, encode_value
from repro.cache.store import (
    CacheCorruptionError,
    DiskStore,
    MemoryLRU,
    text_digest,
)
from repro.observability.metrics import get_registry as get_metrics_registry
from repro.observability.tracer import get_tracer

__all__ = [
    "ResultCache",
    "CacheCorruptionError",
    "get_cache",
    "set_cache",
    "configure_cache",
    "use_cache",
]


class ResultCache:
    """Two-tier verified result cache with single-flight deduplication."""

    def __init__(
        self,
        max_entries: int = 256,
        disk_dir=None,
        enabled: bool = True,
    ) -> None:
        self.enabled = bool(enabled)
        self._memory = MemoryLRU(max_entries, on_evict=self._on_evict)
        self._disk = DiskStore(disk_dir) if disk_dir is not None else None
        self._stats_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._stored_bytes = 0
        self._sf_lock = threading.Lock()
        self._inflight: Dict[str, threading.Event] = {}

    # -- metrics plumbing ----------------------------------------------

    def _on_evict(self, key: str) -> None:
        with self._stats_lock:
            self._evictions += 1
        get_metrics_registry().counter(
            "repro_cache_evictions_total",
            help="Entries evicted from the in-memory LRU tier",
        ).inc()

    def _record_hit(self, context: str) -> None:
        with self._stats_lock:
            self._hits += 1
        get_metrics_registry().counter(
            "repro_cache_hits_total",
            labels={"context": context},
            help="Cache lookups served from a verified entry",
        ).inc()

    def _record_miss(self, context: str) -> None:
        with self._stats_lock:
            self._misses += 1
        get_metrics_registry().counter(
            "repro_cache_misses_total",
            labels={"context": context},
            help="Cache lookups that fell through to computation",
        ).inc()

    # -- lookup / store ------------------------------------------------

    def lookup(
        self, key: str, context: str = "generic", record_miss: bool = True
    ) -> Tuple[bool, Any]:
        """``(True, value)`` on a verified hit, else ``(False, None)``.

        *record_miss* lets advisory pre-checks (the service scheduler's
        submit-time probe) skip the miss counter, so hit/miss totals
        stay exact: one miss per computation, one hit per served entry.
        """
        if not self.enabled:
            return False, None
        with get_tracer().span("cache.lookup", context=context) as sp:
            tier = "memory"
            entry = self._memory.get(key)
            if entry is None and self._disk is not None:
                tier = "disk"
                entry = self._disk.get(key)
                if entry is not None:
                    self._memory.put(key, entry[0], entry[1])
            if entry is None:
                sp.set(hit=False)
                if record_miss:
                    self._record_miss(context)
                return False, None
            text, digest = entry
            if text_digest(text) != digest:
                raise CacheCorruptionError(
                    f"cache entry {key[:12]} failed digest verification; "
                    "refusing to serve a possibly-stale result"
                )
            sp.set(hit=True, tier=tier)
            self._record_hit(context)
            return True, decode_value(text)

    def store(self, key: str, value: Any, context: str = "generic") -> None:
        """Serialize and persist *value* under *key* in both tiers."""
        if not self.enabled:
            return
        text = encode_value(value)
        digest = text_digest(text)
        with get_tracer().span(
            "cache.store", context=context, nbytes=len(text)
        ):
            self._memory.put(key, text, digest)
            if self._disk is not None:
                self._disk.put(key, text, digest)
        with self._stats_lock:
            self._stored_bytes += len(text)
        get_metrics_registry().counter(
            "repro_cache_bytes_total",
            labels={"context": context},
            help="Canonical bytes written into the cache",
        ).inc(len(text))

    def get_or_compute(
        self, key: str, compute: Callable[[], Any], context: str = "generic"
    ) -> Any:
        """Serve *key* from cache or compute-and-store it exactly once.

        Concurrent callers with the same key single-flight: one leader
        runs *compute* (counted as the sole miss) while the rest wait
        and then read the stored entry (each counted as a hit). A
        failed leader releases the waiters uncached; the next caller
        retries, so errors never stick.
        """
        if not self.enabled:
            return compute()
        while True:
            hit, value = self.lookup(key, context, record_miss=False)
            if hit:
                return value
            with self._sf_lock:
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    break
            event.wait()
        try:
            self._record_miss(context)
            value = compute()
            self.store(key, value, context)
            return value
        finally:
            with self._sf_lock:
                event = self._inflight.pop(key, None)
            if event is not None:
                event.set()

    # -- maintenance ---------------------------------------------------

    def invalidate(self, key: str) -> bool:
        """Drop one entry from every tier; ``True`` if anything existed."""
        dropped = self._memory.delete(key)
        if self._disk is not None:
            dropped = self._disk.delete(key) or dropped
        return dropped

    def clear(self) -> int:
        """Empty every tier; returns how many entries were removed."""
        removed = self._memory.clear()
        if self._disk is not None:
            removed += self._disk.clear()
        return removed

    def stats(self) -> Dict[str, Any]:
        """Session counters plus per-tier occupancy."""
        with self._stats_lock:
            out: Dict[str, Any] = {
                "enabled": self.enabled,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "stored_bytes": self._stored_bytes,
            }
        out["memory_entries"] = len(self._memory)
        out["memory_bytes"] = self._memory.nbytes()
        if self._disk is not None:
            out["disk_dir"] = self._disk.directory
            out["disk_entries"] = len(self._disk.keys())
            out["disk_bytes"] = self._disk.nbytes()
        return out

    @property
    def disk_directory(self) -> Optional[str]:
        """The disk tier's directory, or ``None`` when memory-only.

        The distributed coordinator forwards this to spawned workers so
        the whole fleet shares one content-addressed store.
        """
        return self._disk.directory if self._disk is not None else None

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups this session (0.0 before any lookup)."""
        with self._stats_lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0


_GLOBAL_LOCK = threading.Lock()
_CACHE: Optional[ResultCache] = None


def get_cache() -> ResultCache:
    """The process-wide cache the hot paths consult."""
    global _CACHE
    with _GLOBAL_LOCK:
        if _CACHE is None:
            _CACHE = ResultCache()
        return _CACHE


def set_cache(cache: ResultCache) -> Optional[ResultCache]:
    """Install *cache* as the process-wide instance; returns the old one."""
    global _CACHE
    with _GLOBAL_LOCK:
        previous = _CACHE
        _CACHE = cache
        return previous


def configure_cache(
    max_entries: int = 256, disk_dir=None, enabled: bool = True
) -> ResultCache:
    """Build and install a fresh process-wide cache (CLI flags use this)."""
    cache = ResultCache(
        max_entries=max_entries, disk_dir=disk_dir, enabled=enabled
    )
    set_cache(cache)
    return cache


@contextlib.contextmanager
def use_cache(cache: ResultCache):
    """Temporarily install *cache* (tests); restores the previous one."""
    previous = set_cache(cache)
    try:
        yield cache
    finally:
        set_cache(previous if previous is not None else ResultCache())
