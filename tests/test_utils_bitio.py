"""Unit + property tests for repro.utils.bitio."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_empty_stream(self):
        w = BitWriter()
        assert len(w) == 0
        assert w.getvalue() == b""

    def test_single_bits_pack_msb_first(self):
        w = BitWriter()
        for b in (1, 0, 1, 0, 0, 0, 0, 0):
            w.write_bit(b)
        assert w.getvalue() == bytes([0b10100000])

    def test_pads_to_byte_boundary(self):
        w = BitWriter()
        w.write_bit(1)
        assert w.getvalue() == bytes([0b10000000])
        assert len(w) == 1

    def test_rejects_non_binary(self):
        w = BitWriter()
        with pytest.raises(ValueError, match="0 or 1"):
            w.write_bits_array([0, 2])

    def test_write_uint_roundtrip(self):
        w = BitWriter()
        w.write_uint(0xDEADBEEF, 32)
        r = BitReader(w.getvalue())
        assert r.read_uint(32) == 0xDEADBEEF

    def test_write_uint_overflow(self):
        w = BitWriter()
        with pytest.raises(ValueError, match="fit"):
            w.write_uint(256, 8)

    def test_write_uint_negative(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_uint(-1, 8)

    def test_write_uint_bad_width(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_uint(0, 0)

    def test_write_uint_array_matches_scalar(self):
        values = [0, 1, 255, 1000, 65535]
        w1, w2 = BitWriter(), BitWriter()
        w1.write_uint_array(values, 16)
        for v in values:
            w2.write_uint(v, 16)
        assert w1.getvalue() == w2.getvalue()

    def test_write_uint_array_overflow(self):
        w = BitWriter()
        with pytest.raises(ValueError, match="fit"):
            w.write_uint_array([7, 8], 3)

    def test_write_uint_array_64bit_max(self):
        w = BitWriter()
        w.write_uint_array([2**64 - 1], 64)
        assert BitReader(w.getvalue()).read_uint(64) == 2**64 - 1


class TestBitReader:
    def test_read_past_end_raises(self):
        w = BitWriter()
        w.write_uint(3, 2)
        r = BitReader(w.getvalue(), nbits=2)
        r.read_bits_array(2)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_nbits_limits_stream(self):
        r = BitReader(b"\xff", nbits=3)
        assert len(r) == 3
        assert r.remaining == 3

    def test_nbits_exceeding_data_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            BitReader(b"\xff", nbits=9)

    def test_read_uint_array_matches_scalars(self):
        w = BitWriter()
        w.write_uint_array([5, 10, 1023], 10)
        r1 = BitReader(w.getvalue())
        r2 = BitReader(w.getvalue())
        arr = r1.read_uint_array(3, 10)
        singles = [r2.read_uint(10) for _ in range(3)]
        assert arr.tolist() == singles

    def test_negative_read_rejected(self):
        r = BitReader(b"\x00")
        with pytest.raises(ValueError):
            r.read_bits_array(-1)

    def test_remaining_tracks_position(self):
        r = BitReader(b"\x00\x00")
        r.read_bits_array(5)
        assert r.remaining == 11


class TestRoundTripProperties:
    @given(st.lists(st.integers(0, 1), min_size=0, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_bits_roundtrip(self, bits):
        w = BitWriter()
        w.write_bits_array(bits)
        r = BitReader(w.getvalue(), nbits=len(bits))
        assert r.read_bits_array(len(bits)).tolist() == bits

    @given(
        st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=50),
        st.integers(32, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_uint_array_roundtrip(self, values, nbits):
        w = BitWriter()
        w.write_uint_array(values, nbits)
        r = BitReader(w.getvalue())
        assert r.read_uint_array(len(values), nbits).tolist() == values

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_mixed_stream_roundtrip(self, data):
        ops = data.draw(
            st.lists(
                st.tuples(st.integers(1, 24), st.integers(0, 2**24 - 1)),
                min_size=1,
                max_size=20,
            )
        )
        w = BitWriter()
        expect = []
        for nbits, value in ops:
            value &= (1 << nbits) - 1
            w.write_uint(value, nbits)
            expect.append((nbits, value))
        r = BitReader(w.getvalue())
        for nbits, value in expect:
            assert r.read_uint(nbits) == value
