"""Bench: regenerate Fig. 6 (energy dissipation for 512 GB data dumping).

Paper: SZ-compressing and transmitting 512 GB of NYX data with Eqn. 3
tuning always reduces energy, saving 6.5 kJ (13 %) averaged over error
bounds 1e-1..1e-4.
"""

import numpy as np
from conftest import emit

from repro.experiments import figure6
from repro.workflow.report import render_table


def test_bench_figure6(benchmark, ctx):
    results = benchmark.pedantic(figure6.run, args=(ctx,), rounds=1, iterations=1)

    all_fracs = []
    for arch, reports in results.items():
        rows = [
            {
                "error_bound": r.error_bound,
                "base_clock_kj": r.baseline_energy_j / 1e3,
                "tuned_kj": r.tuned_energy_j / 1e3,
                "saved_kj": r.energy_saved_j / 1e3,
                "saving_pct": r.energy_saving_fraction * 100,
                "ratio": r.compression_ratio,
            }
            for r in reports
        ]
        emit(render_table(rows, title=f"FIG. 6 — 512 GB NYX dump energy ({arch})"))

        # Shape claims: tuning always wins; finer bounds cost more energy.
        for r in reports:
            assert r.energy_saved_j > 0, f"{arch} eb={r.error_bound}"
        base = [r.baseline_energy_j for r in reports]
        assert base == sorted(base)  # eb 1e-1 → 1e-4 grows
        all_fracs.extend(r.energy_saving_fraction for r in reports)

        avg_kj = float(np.mean([r.energy_saved_j for r in reports])) / 1e3
        benchmark.extra_info[f"{arch}_avg_saved_kj"] = avg_kj

    avg_frac = float(np.mean(all_fracs))
    avg_kj = float(np.mean([r.energy_saved_j
                            for reports in results.values() for r in reports])) / 1e3
    emit(f"Average over archs/bounds: {avg_kj:.2f} kJ saved, "
         f"{avg_frac * 100:.1f} % (paper: 6.5 kJ, 13 %)")
    # Same savings band as the paper.
    assert 2.0 < avg_kj < 15.0
    assert 0.05 < avg_frac < 0.22
