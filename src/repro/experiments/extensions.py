"""Extension experiments, packaged like the paper's tables/figures.

Each ``run_*`` returns structured rows; :func:`main` renders the chosen
study. Wired into ``repro-tool experiment ext-*`` so the extension
results regenerate the same way the paper's do.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.compressors import SZCompressor
from repro.core.breakeven import breakeven_clients
from repro.core.multicore import optimal_configuration
from repro.data.registry import load_field
from repro.experiments.context import ExperimentContext
from repro.hardware.cpu import BROADWELL_D1548, SKYLAKE_4114
from repro.hardware.node import SimulatedNode
from repro.hardware.workload import WorkloadKind, compression_workload
from repro.iosim.cluster import Cluster
from repro.iosim.dumper import DataDumper
from repro.iosim.loader import DataLoader
from repro.iosim.nfs import NfsTarget
from repro.workflow.report import render_table

__all__ = [
    "run_restore",
    "run_cluster",
    "run_breakeven",
    "run_multicore",
    "main",
    "EXTENSION_STUDIES",
]


def run_restore(ctx: Optional[ExperimentContext] = None) -> List[Dict[str, object]]:
    """Dump-vs-restore tuning comparison (both archs, two bounds)."""
    ctx = ctx if ctx is not None else ExperimentContext()
    arr = load_field("nyx", "velocity_x", scale=ctx.config.data_scale)
    rows = []
    for arch in ("broadwell", "skylake"):
        node = ctx.node(arch)
        cpu = node.cpu
        f_codec = cpu.snap_frequency(0.875 * cpu.fmax_ghz)
        f_io = cpu.snap_frequency(0.85 * cpu.fmax_ghz)
        dumper, loader = DataDumper(node), DataLoader(node)
        for eb in (1e-1, 1e-3):
            dump_base = dumper.dump(SZCompressor(), arr, eb, int(512e9))
            dump_tuned = dumper.dump(SZCompressor(), arr, eb, int(512e9),
                                     compress_freq_ghz=f_codec, write_freq_ghz=f_io)
            rest_base = loader.restore(SZCompressor(), arr, eb, int(512e9))
            rest_tuned = loader.restore(SZCompressor(), arr, eb, int(512e9),
                                        read_freq_ghz=f_io,
                                        decompress_freq_ghz=f_codec)
            rows.append(
                {
                    "arch": arch,
                    "eb": eb,
                    "dump_saved_pct": (1 - dump_tuned.total_energy_j
                                       / dump_base.total_energy_j) * 100,
                    "restore_saved_pct": (1 - rest_tuned.total_energy_j
                                          / rest_base.total_energy_j) * 100,
                    "restore_vs_dump_energy": rest_base.total_energy_j
                    / dump_base.total_energy_j,
                }
            )
    return rows


def run_cluster(ctx: Optional[ExperimentContext] = None) -> List[Dict[str, object]]:
    """Shared-NFS contention scaling (Skylake, Eqn. 3)."""
    ctx = ctx if ctx is not None else ExperimentContext()
    arr = load_field("nyx", "velocity_x", scale=ctx.config.data_scale)
    nfs = NfsTarget()
    cpu = SKYLAKE_4114
    rows = []
    for n in (1, 4, 16):
        cluster = Cluster(cpu, n_nodes=n, nfs=nfs, seed=7, repeats=3)
        base = cluster.dump_all(SZCompressor(), arr, 1e-2, int(64e9))
        tuned = cluster.dump_all(
            SZCompressor(), arr, 1e-2, int(64e9),
            compress_freq_ghz=cpu.snap_frequency(0.875 * cpu.fmax_ghz),
            write_freq_ghz=cpu.snap_frequency(0.85 * cpu.fmax_ghz),
        )
        rows.append(
            {
                "nodes": n,
                "cpu_bound_frac": base.cpu_bound_fraction,
                "agg_write_mb_s": base.aggregate_write_bandwidth_bps / 1e6,
                "saved_pct": (1 - tuned.total_energy_j / base.total_energy_j) * 100,
            }
        )
    return rows


def run_breakeven(ctx: Optional[ExperimentContext] = None) -> List[Dict[str, object]]:
    """Compress-or-not crossover client counts per (codec, bound)."""
    ctx = ctx if ctx is not None else ExperimentContext()
    arr = load_field("nyx", "velocity_x", scale=ctx.config.data_scale)
    rows = []
    for eb in (1e-1, 1e-2, 1e-3):
        ratio = SZCompressor().compress(arr, eb).ratio
        n = breakeven_clients(BROADWELL_D1548, WorkloadKind.COMPRESS_SZ, ratio, eb)
        rows.append(
            {
                "eb": eb,
                "ratio": ratio,
                "clients_for_compress_win": n if n is not None else ">4096",
            }
        )
    return rows


def run_multicore(ctx: Optional[ExperimentContext] = None) -> List[Dict[str, object]]:
    """(cores × frequency) co-tuning optimum vs Eqn. 3 single core."""
    wl = compression_workload(WorkloadKind.COMPRESS_SZ, int(64e9), 1e-2)
    rows = []
    for cpu in (BROADWELL_D1548, SKYLAKE_4114):
        node = SimulatedNode(cpu, power_noise=0.0, runtime_noise=0.0)
        f_eqn3 = cpu.snap_frequency(0.875 * cpu.fmax_ghz)
        e_eqn3 = node.true_runtime_s(wl, f_eqn3) * node.true_power_w(wl, f_eqn3)
        best = optimal_configuration(node, wl)
        rows.append(
            {
                "arch": cpu.arch,
                "eqn3_energy_kj": e_eqn3 / 1e3,
                "opt_cores": best.cores,
                "opt_freq_ghz": best.freq_ghz,
                "opt_energy_kj": best.energy_j / 1e3,
                "energy_factor": e_eqn3 / best.energy_j,
            }
        )
    return rows


EXTENSION_STUDIES = {
    "ext-restore": (run_restore, "EXT — restore-path tuning"),
    "ext-cluster": (run_cluster, "EXT — shared-NFS cluster scaling"),
    "ext-breakeven": (run_breakeven, "EXT — compress-or-not crossover"),
    "ext-multicore": (run_multicore, "EXT — (cores x frequency) co-tuning"),
}


def main(name: str, ctx: Optional[ExperimentContext] = None) -> str:
    """Run one named extension study and print its rows."""
    if name not in EXTENSION_STUDIES:
        raise KeyError(
            f"unknown extension study {name!r}; available: {sorted(EXTENSION_STUDIES)}"
        )
    fn, title = EXTENSION_STUDIES[name]
    text = render_table(fn(ctx), title=title)
    print(text)
    return text
