#!/usr/bin/env python
"""Error-bound advisor: pick eb from a storage budget or quality target.

Profiles SZ on a NYX field across a log grid of bounds, then answers
the two questions users actually ask — "what bound gives me 8x?" and
"what bound keeps 60 dB PSNR?" — and feeds the chosen bound straight
into the tuned dump pipeline.

    python examples/error_bound_advisor.py
"""

from repro import SZCompressor, default_nodes, load_field
from repro.core.advisor import ErrorBoundAdvisor
from repro.iosim import DataDumper
from repro.workflow.report import render_table


def main() -> None:
    arr = load_field("nyx", "velocity_x", scale=16)
    advisor = ErrorBoundAdvisor(SZCompressor(), arr)
    print(render_table(advisor.table(), title="SZ profile on nyx/velocity_x"))

    eb_storage = advisor.bound_for_ratio(8.0)
    eb_quality = advisor.bound_for_psnr(60.0)
    print(f"\nFor an 8x storage budget : eb = {eb_storage:.2e}")
    print(f"For a 60 dB PSNR target  : eb = {eb_quality:.2e}")

    # Apply the storage-driven bound in a tuned 512 GB dump.
    node = next(n for n in default_nodes() if n.cpu.arch == "skylake")
    dumper = DataDumper(node)
    cpu = node.cpu
    base = dumper.dump(SZCompressor(), arr, eb_storage, int(512e9))
    tuned = dumper.dump(
        SZCompressor(), arr, eb_storage, int(512e9),
        compress_freq_ghz=cpu.snap_frequency(0.875 * cpu.fmax_ghz),
        write_freq_ghz=cpu.snap_frequency(0.85 * cpu.fmax_ghz),
    )
    saved = base.total_energy_j - tuned.total_energy_j
    print(f"\n512 GB dump at the advised bound: ratio {base.compression_ratio:.1f}x, "
          f"saved {saved / 1e3:.1f} kJ "
          f"({saved / base.total_energy_j:.1%}) with Eqn. 3 tuning.")
    assert 6.0 < base.compression_ratio < 11.0  # the advisor hit its target
    assert saved > 0


if __name__ == "__main__":
    main()
