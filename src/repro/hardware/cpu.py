"""CPU specifications for the paper's two CloudLab node types (Table II)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "CpuSpec",
    "BROADWELL_D1548",
    "SKYLAKE_4114",
    "CASCADELAKE_6230",
    "KNOWN_CPUS",
    "get_cpu",
    "table2_rows",
]


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a DVFS-capable CPU.

    Attributes
    ----------
    model:
        Marketing name, e.g. ``"Intel Xeon D-1548"``.
    arch:
        Microarchitecture key used to select power-curve parameters
        (``"broadwell"`` or ``"skylake"``).
    cloudlab_type:
        CloudLab node type the paper used (``m510`` / ``c220g5``).
    fmin_ghz / fmax_ghz:
        DVFS range: minimum clock to *base* clock (the paper does not
        use turbo frequencies).
    step_ghz:
        ``cpufreq`` step granularity (the paper sweeps at 50 MHz).
    tdp_watts:
        Thermal design power of the package.
    cores:
        Physical core count (experiments are single-core; TDP scaling
        for single-core power uses this).
    perf_ghz_factor:
        Single-core work per cycle relative to Broadwell = 1.0 (Skylake
        retires slightly more per cycle).
    """

    model: str
    arch: str
    cloudlab_type: str
    fmin_ghz: float
    fmax_ghz: float
    step_ghz: float
    tdp_watts: float
    cores: int
    perf_ghz_factor: float = 1.0

    def __post_init__(self):
        if not 0 < self.fmin_ghz < self.fmax_ghz:
            raise ValueError(
                f"invalid frequency range [{self.fmin_ghz}, {self.fmax_ghz}] GHz"
            )
        if self.step_ghz <= 0:
            raise ValueError(f"step_ghz must be positive, got {self.step_ghz}")
        if self.tdp_watts <= 0 or self.cores <= 0:
            raise ValueError("tdp_watts and cores must be positive")

    def available_frequencies(self) -> np.ndarray:
        """The DVFS grid from fmin to fmax inclusive, in GHz.

        Mirrors the paper's sweep: ``fmin, fmin+step, ..., fmax`` (the
        base clock is always included even when the span is not an
        exact multiple of the step).
        """
        n = int(round((self.fmax_ghz - self.fmin_ghz) / self.step_ghz))
        grid = self.fmin_ghz + self.step_ghz * np.arange(n + 1)
        grid = grid[grid <= self.fmax_ghz + 1e-9]
        if abs(grid[-1] - self.fmax_ghz) > 1e-9:
            grid = np.append(grid, self.fmax_ghz)
        return np.round(grid, 6)

    def snap_frequency(self, freq_ghz: float) -> float:
        """Closest grid frequency; raises if outside the DVFS range."""
        if not self.fmin_ghz - 1e-9 <= freq_ghz <= self.fmax_ghz + 1e-9:
            raise ValueError(
                f"{freq_ghz} GHz outside [{self.fmin_ghz}, {self.fmax_ghz}] GHz "
                f"for {self.model}"
            )
        grid = self.available_frequencies()
        return float(grid[np.argmin(np.abs(grid - freq_ghz))])

    @property
    def frequency_span(self) -> float:
        """fmax - fmin in GHz."""
        return self.fmax_ghz - self.fmin_ghz


BROADWELL_D1548 = CpuSpec(
    model="Intel Xeon D-1548",
    arch="broadwell",
    cloudlab_type="m510",
    fmin_ghz=0.8,
    fmax_ghz=2.0,
    step_ghz=0.05,
    tdp_watts=45.0,
    cores=8,
    perf_ghz_factor=1.0,
)

SKYLAKE_4114 = CpuSpec(
    model="Intel Xeon Silver 4114",
    arch="skylake",
    cloudlab_type="c220g5",
    fmin_ghz=0.8,
    fmax_ghz=2.2,
    step_ghz=0.05,
    tdp_watts=85.0,
    cores=10,
    perf_ghz_factor=1.12,
)

#: Extension CPU (not in the paper): used by the "do the trends hold on
#: different CPUs?" study the paper defers to future work. Xeon Gold
#: 6230 figures (Cascade Lake, 2.1 GHz base, 20 cores, 125 W TDP).
CASCADELAKE_6230 = CpuSpec(
    model="Intel Xeon Gold 6230",
    arch="cascadelake",
    cloudlab_type="extension",
    fmin_ghz=0.8,
    fmax_ghz=2.1,
    step_ghz=0.05,
    tdp_watts=125.0,
    cores=20,
    perf_ghz_factor=1.18,
)

KNOWN_CPUS: Dict[str, CpuSpec] = {
    "broadwell": BROADWELL_D1548,
    "skylake": SKYLAKE_4114,
    "cascadelake": CASCADELAKE_6230,
    "m510": BROADWELL_D1548,
    "c220g5": SKYLAKE_4114,
}


def get_cpu(name: str) -> CpuSpec:
    """Look up a CPU by architecture or CloudLab node type."""
    key = name.lower()
    if key not in KNOWN_CPUS:
        raise KeyError(f"unknown CPU {name!r}; known: {sorted(set(KNOWN_CPUS))}")
    return KNOWN_CPUS[key]


def table2_rows() -> Tuple[Dict[str, object], ...]:
    """Rows of Table II (hardware utilized)."""
    rows = []
    for spec in (BROADWELL_D1548, SKYLAKE_4114):
        rows.append(
            {
                "cloudlab": spec.cloudlab_type,
                "cpu": spec.model,
                "clock_range_ghz": f"{spec.fmin_ghz}GHz - {spec.fmax_ghz}GHz",
                "series": spec.arch.capitalize(),
            }
        )
    return tuple(rows)
