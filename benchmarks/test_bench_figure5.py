"""Bench: regenerate Fig. 5 (Broadwell model validated on Hurricane-ISABEL)."""

import numpy as np
from conftest import emit

from repro.experiments import figure5
from repro.workflow.report import render_series


def test_bench_figure5(benchmark, ctx):
    result = benchmark.pedantic(figure5.run, args=(ctx,), rounds=1, iterations=1)

    f, obs, pred = result.curve()
    uniq = np.unique(f)
    emit(render_series(
        uniq,
        {
            "observed": np.array([obs[f == u].mean() for u in uniq]),
            "model": np.array([pred[f == u].mean() for u in uniq]),
        },
        title="FIG. 5 — Broadwell model on held-out Hurricane-ISABEL",
    ))
    emit(f"GF: SSE={result.gof.sse:.4f} RMSE={result.gof.rmse:.4f} "
         f"(paper: SSE={figure5.PAPER_SSE}, RMSE={figure5.PAPER_RMSE})")

    # Paper's claim: the model generalizes to unseen data with little
    # error. Same order of magnitude as their SSE=0.1463 / RMSE=0.0256.
    assert result.gof.rmse < 0.05
    assert result.gof.sse < 0.5
    # Observed and modeled curves agree pointwise within a few percent.
    assert np.max(np.abs(obs - pred)) < 0.12

    benchmark.extra_info["validation_sse"] = result.gof.sse
    benchmark.extra_info["validation_rmse"] = result.gof.rmse
