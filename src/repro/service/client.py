"""Python client for the tuning service.

A thin stdlib (``urllib``) client that speaks the service's JSON
protocol and re-raises its typed errors
(:mod:`repro.service.errors`), so remote callers handle the same
exceptions as in-process embedders.

Transient failures — connection refused/reset, 429 admission rejects,
503 drains — are retried with the resilience layer's
:class:`~repro.resilience.policies.RetryPolicy`: capped exponential
backoff whose jitter is *deterministic* (seeded), so client fleets
don't synchronize their retries yet tests replay exact schedules.
Non-retryable errors (400/404/500/504) surface immediately.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Optional

from repro.core.persistence import ModelBundle
from repro.resilience.policies import RetryPolicy
from repro.service.errors import ServiceError, error_for_status

__all__ = ["ServiceClient", "ConnectionFailed"]


class ConnectionFailed(ServiceError):
    """Could not reach the service at all (after retries)."""

    status = 503
    code = "connection_failed"
    retryable = True


class ServiceClient:
    """Typed access to one tuning-service endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8023"``.
    retry:
        Backoff schedule for retryable failures. ``max_attempts=1``
        disables retries.
    timeout_s:
        Per-HTTP-call socket timeout.
    retry_seed:
        Seed for the policy's deterministic jitter; give each client
        of a fleet its rank so backoffs decorrelate.
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    def __init__(
        self,
        base_url: str,
        retry: Optional[RetryPolicy] = None,
        timeout_s: float = 10.0,
        retry_seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, backoff_base_s=0.05, backoff_cap_s=2.0
        )
        self.timeout_s = float(timeout_s)
        self.retry_seed = int(retry_seed)
        self._sleep = sleep
        self._request_counter = 0

    # -- transport -----------------------------------------------------

    def _once(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                payload = resp.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(detail).get("message", detail)
            except (json.JSONDecodeError, AttributeError):
                message = detail or exc.reason
            raise error_for_status(exc.code, str(message)) from None
        except (urllib.error.URLError, socket.timeout, ConnectionError) as exc:
            raise ConnectionFailed(f"{method} {path}: {exc}") from None
        try:
            return json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConnectionFailed(
                f"{method} {path}: non-JSON response ({exc})"
            ) from None

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        self._request_counter += 1
        request_id = self._request_counter
        last: Optional[ServiceError] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                return self._once(method, path, body)
            except ServiceError as exc:
                if not exc.retryable:
                    raise
                last = exc
                if attempt < self.retry.max_attempts:
                    self._sleep(self.retry.backoff_s(
                        attempt, seed=self.retry_seed, snapshot=request_id
                    ))
        assert last is not None
        raise last

    # -- raw text endpoints --------------------------------------------

    def _get_text(self, path: str) -> str:
        try:
            with urllib.request.urlopen(
                self.base_url + path, timeout=self.timeout_s
            ) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise error_for_status(
                exc.code, exc.read().decode("utf-8", errors="replace")
            ) from None
        except (urllib.error.URLError, socket.timeout, ConnectionError) as exc:
            raise ConnectionFailed(f"GET {path}: {exc}") from None

    # -- API surface ---------------------------------------------------

    def healthz(self) -> bool:
        return self._request("GET", "/healthz").get("status") == "ok"

    def readyz(self) -> bool:
        """True when the service accepts work (no retries: a drain is
        not an error to wait out)."""
        try:
            return self._once("GET", "/readyz").get("status") == "ready"
        except ServiceError:
            return False

    def metrics_text(self) -> str:
        """The raw Prometheus exposition body."""
        return self._get_text("/metrics")

    def register_model(self, name: str, bundle: ModelBundle) -> Dict[str, Any]:
        """Idempotently register *bundle* as a version of *name*."""
        doc = json.loads(bundle.to_json())
        return self._request("PUT", f"/v1/models/{name}", doc)

    def models(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/models")

    def model_entry(self, name: str,
                    version: Optional[int] = None) -> Dict[str, Any]:
        suffix = f"?version={version}" if version is not None else ""
        return self._request("GET", f"/v1/models/{name}{suffix}")

    def tune(self, model: str, arch: str, stage: str, *,
             version: Optional[int] = None,
             policy: str = "optimal",
             objective: str = "energy",
             max_slowdown: Optional[float] = None,
             deadline_s: Optional[float] = None) -> Dict[str, Any]:
        """Objective-aware frequency recommendation for one stage."""
        body: Dict[str, Any] = {
            "model": model, "arch": arch, "stage": stage,
            "policy": policy, "objective": objective,
        }
        if version is not None:
            body["version"] = version
        if max_slowdown is not None:
            body["max_slowdown"] = max_slowdown
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self._request("POST", "/v1/tune", body)

    def decide(self, arch: str, ratio: float, error_bound: float,
               nbytes: int, *,
               codec: str = "sz",
               clients: int = 1,
               criterion: str = "time",
               deadline_s: Optional[float] = None) -> Dict[str, Any]:
        """Compress-vs-raw break-even verdict for one write."""
        body: Dict[str, Any] = {
            "arch": arch, "ratio": ratio, "error_bound": error_bound,
            "nbytes": nbytes, "codec": codec, "clients": clients,
            "criterion": criterion,
        }
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self._request("POST", "/v1/decide", body)

    def characterize(self, model: str, **spec: Any) -> str:
        """Start an async characterization; returns the job id."""
        body = {"model": model, **spec}
        return str(self._request("POST", "/v1/characterize", body)["job_id"])

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait_job(self, job_id: str, timeout_s: float = 300.0,
                 poll_s: float = 0.25) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its doc."""
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.job(job_id)
            if doc.get("state") in ("succeeded", "failed"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc.get('state')!r} "
                    f"after {timeout_s:g}s"
                )
            self._sleep(poll_s)
