"""RAPL-style energy counter emulation.

Intel RAPL exposes package energy as a monotonically increasing counter
in fixed µJ units that wraps around a 32-bit register. ``perf stat -e
energy-pkg`` reads it before/after a run and subtracts modulo the wrap.
:class:`RaplCounter` reproduces those semantics — unit quantization,
wraparound, and wrap-aware deltas — so the measurement layer exercises
the same failure modes real tooling has to handle.
"""

from __future__ import annotations

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["RaplCounter"]

#: Energy status unit: 2**-16 J, the common RAPL ESU (≈15.3 µJ).
DEFAULT_UNIT_JOULES = 2.0**-16

#: The MSR counter is 32 bits wide in energy-status units.
COUNTER_WRAP = 2**32


class RaplCounter:
    """Monotone, wrapping, quantized energy accumulator."""

    def __init__(self, unit_joules: float = DEFAULT_UNIT_JOULES) -> None:
        check_positive(unit_joules, "unit_joules")
        self.unit_joules = float(unit_joules)
        self._raw = 0  # unbounded internal tally, in units
        self._residual = 0.0  # sub-unit energy not yet counted

    def accumulate(self, energy_joules: float) -> None:
        """Add dissipated energy (quantized to counter units)."""
        check_nonnegative(energy_joules, "energy_joules")
        total = self._residual + energy_joules / self.unit_joules
        ticks = int(total)
        self._residual = total - ticks
        self._raw += ticks

    def read(self) -> int:
        """Current 32-bit register value, in energy-status units."""
        return self._raw % COUNTER_WRAP

    def read_joules(self) -> float:
        """Register value converted to joules (wraps like the register!)."""
        return self.read() * self.unit_joules

    def delta_joules(self, before: int, after: int) -> float:
        """Energy between two :meth:`read` values, handling one wrap.

        Like real tooling, this is only correct if less than one full
        wrap (~65.5 kJ at the default unit) elapsed between reads.
        """
        for reading, name in ((before, "before"), (after, "after")):
            if not 0 <= reading < COUNTER_WRAP:
                raise ValueError(f"{name} reading {reading} outside register range")
        return ((after - before) % COUNTER_WRAP) * self.unit_joules

    @property
    def wraps(self) -> int:
        """Number of times the 32-bit register has wrapped so far."""
        return self._raw // COUNTER_WRAP
