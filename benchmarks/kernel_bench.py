#!/usr/bin/env python
"""Per-kernel codec throughput benchmark with regression gating.

Times each codec kernel (Huffman encode/decode, bit packing, ZFP plane
encode/decode, negabinary map, SZ quantize/reconstruct) in isolation on
deterministic synthetic workloads and reports throughput in MB/s of
*uncompressed element payload*. Like ``quick_bench.py``, wall times are
normalized by a fixed calibration kernel so a committed baseline
transfers across runners of different speeds: the gated quantity is
``kernel seconds / calibration seconds``.

CI usage (the ``kernels`` job in ``.github/workflows/ci.yml``)::

    PYTHONPATH=src python benchmarks/kernel_bench.py \
        --output BENCH_kernels_ci.json \
        --baseline benchmarks/BENCH_kernels.json

Exit status is 1 when any kernel's normalized time regresses more than
``--tolerance`` (default 25%) over the baseline. Refresh the baseline
with ``--output benchmarks/BENCH_kernels.json`` and no ``--baseline``.

``--backend scalar`` benches the pure-Python reference backend (at a
reduced default scale — it is orders of magnitude slower); scalar runs
are for inspection and are never gated against the vector baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.compressors import kernels
from repro.compressors.huffman import HuffmanCodec

#: Baselines are only comparable within one backend; the gate refuses
#: to compare a scalar run against a vector baseline (and vice versa).
GATED_KEYS = ("norm",)


def calibration_seconds(repeats: int = 5) -> float:
    """Best-of-N timing of the same fixed numpy kernel quick_bench uses.

    Kept in lockstep with ``quick_bench.calibration_seconds`` (mixed
    elementwise math, a sort, a Python-level loop; deliberately no
    matmul so BLAS threading cannot skew the ratio).
    """
    rng = np.random.default_rng(0)
    a = rng.normal(size=(448, 448))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        b = np.sort(np.abs(a), axis=1)
        float(np.log1p(b).sum())
        acc = 0.0
        for v in b[0].tolist() * 8:
            acc += v * 0.5
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Deterministic workloads
# ----------------------------------------------------------------------


def huffman_workload(n: int, seed: int = 11):
    """Laplacian-ish residual symbols (the SZ entropy stage's diet)."""
    rng = np.random.default_rng(seed)
    sym = np.rint(rng.laplace(scale=12.0, size=n)).astype(np.int64)
    codec = HuffmanCodec.from_data(sym)
    return codec, sym


def zfp_workload(nblocks: int, seed: int = 12):
    """Negabinary rows with geometrically decaying plane occupancy."""
    rng = np.random.default_rng(seed)
    block_size = 16  # 2-D 4x4 blocks
    mag = rng.exponential(scale=2.0 ** 20, size=(nblocks, block_size))
    signed = np.rint(mag * rng.choice([-1.0, 1.0], size=mag.shape)).astype(np.int64)
    rows = kernels.negabinary_encode(signed)
    kv = 30
    top = int(np.max([1, int(np.ceil(np.log2(float(mag.max()) + 2)))])) + 1
    planes = np.arange(top, top - kv, -1, dtype=np.int64)
    planes = planes[planes >= 0]
    return rows, planes, block_size


def sz_workload(n: int, seed: int = 13) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=n)) * 1e-2


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def build_cases(scale: float):
    """(name, payload_bytes, callable) per kernel; *scale* shrinks the
    element counts (scalar backend runs use a much smaller diet)."""
    n_huff = max(1024, int(500_000 * scale))
    n_blocks = max(64, int(10_000 * scale))
    n_sz = max(1024, int(2_000_000 * scale))

    codec, sym = huffman_workload(n_huff)
    idx = np.searchsorted(codec.alphabet, sym)
    enc_codes = codec._enc_codes[idx]
    enc_lens = codec._enc_lengths[idx]
    bits = kernels.huffman_encode_bits(enc_codes, enc_lens, codec.max_code_length)

    rows, planes, block_size = zfp_workload(n_blocks)
    group_bits = kernels.zfp_encode_plane_group(rows, planes)
    nchunks = rows.shape[0] * planes.size
    signed = kernels.negabinary_decode(rows)

    field = sz_workload(n_sz)
    bin_width = 2e-3
    origin = float(field.min())
    indices = kernels.sz_quantize(field, origin, bin_width)

    packed = kernels.pack_bits(bits)

    return [
        ("huffman_encode", sym.nbytes,
         lambda: kernels.huffman_encode_bits(
             enc_codes, enc_lens, codec.max_code_length)),
        ("huffman_decode", sym.nbytes,
         lambda: kernels.huffman_decode_symbols(
             bits, codec._dec_symbol, codec._dec_length,
             sym.size, codec.max_code_length)),
        ("pack_bits", bits.nbytes,
         lambda: kernels.pack_bits(bits)),
        ("unpack_bits", bits.nbytes,
         lambda: kernels.unpack_bits(packed)),
        ("zfp_encode_planes", rows.nbytes,
         lambda: kernels.zfp_encode_plane_group(rows, planes)),
        ("zfp_decode_planes", rows.nbytes,
         lambda: kernels.zfp_decode_plane_group(group_bits, nchunks, block_size)),
        ("negabinary_encode", signed.nbytes,
         lambda: kernels.negabinary_encode(signed)),
        ("negabinary_decode", rows.nbytes,
         lambda: kernels.negabinary_decode(rows)),
        ("sz_quantize", field.nbytes,
         lambda: kernels.sz_quantize(field, origin, bin_width)),
        ("sz_reconstruct", indices.nbytes,
         lambda: kernels.sz_reconstruct(indices, origin, bin_width)),
    ]


def compare(current, baseline, tolerance):
    """Human-readable regression messages (empty list = pass)."""
    failures = []
    if baseline.get("backend") != current.get("backend"):
        failures.append(
            f"baseline backend {baseline.get('backend')!r} does not match "
            f"run backend {current.get('backend')!r}; not comparable"
        )
        return failures
    for name, cur in current["kernels"].items():
        base = baseline.get("kernels", {}).get(name)
        if base is None:
            continue
        allowed = base["norm"] * (1.0 + tolerance)
        if cur["norm"] > allowed:
            failures.append(
                f"{name} regressed: norm {cur['norm']:.4f} > "
                f"{base['norm']:.4f} * (1 + {tolerance:.0%}) = {allowed:.4f}"
            )
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--backend", choices=kernels.backend_names(), default=None,
                    help="kernel backend to bench (default: active backend)")
    ap.add_argument("--scale", type=float, default=None,
                    help="workload scale factor (default 1.0 vector, "
                         "0.02 scalar)")
    ap.add_argument("--repeats", type=int, default=5,
                    help="best-of-N timing repeats")
    ap.add_argument("--output", default="BENCH_kernels.json",
                    help="write the JSON report here")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline JSON to gate against")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional normalized-time regression")
    args = ap.parse_args(argv)

    backend = args.backend or kernels.active_backend()
    scale = args.scale
    if scale is None:
        scale = 1.0 if backend == "vector" else 0.02

    calib = calibration_seconds(args.repeats)
    report = {"backend": backend, "scale": scale, "kernels": {}}
    with kernels.use_backend(backend):
        cases = build_cases(scale)
        print(f"backend={backend} scale={scale} "
              f"calibration kernel: {calib * 1e3:.2f} ms")
        for name, nbytes, fn in cases:
            seconds = _best_of(fn, args.repeats)
            report["kernels"][name] = {
                "seconds": seconds,
                "mbytes": nbytes / 1e6,
                "mb_per_s": (nbytes / 1e6) / seconds,
                "norm": seconds / calib,
            }
    calib = min(calib, calibration_seconds(args.repeats))
    report["calibration_s"] = calib
    for name, res in report["kernels"].items():
        res["norm"] = res["seconds"] / calib
        res["mb_per_s"] = res["mbytes"] / res["seconds"]
        print(f"{name:18s} {res['seconds'] * 1e3:9.2f} ms  "
              f"{res['mb_per_s']:9.1f} MB/s  norm {res['norm']:8.3f}")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.output}")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = compare(report, baseline, args.tolerance)
        if failures:
            for msg in failures:
                print(f"FAIL: {msg}", file=sys.stderr)
            return 1
        print(f"within {args.tolerance:.0%} of baseline {args.baseline}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
