"""POST /v1/powercap: sessions, membership, caps, error taxonomy."""

import pytest

from repro.service.http import ServiceConfig, TuningServer
from tests.test_service_http import request_json


@pytest.fixture
def server():
    srv = TuningServer(ServiceConfig(port=0, workers=2, queue_size=16))
    with srv:
        yield srv


def post(server, body):
    return request_json(server.url + "/v1/powercap", method="POST",
                        body=body)


class TestPowercapSessions:
    def test_join_allocate_round_trip(self, server):
        status, doc = post(server, {
            "budget_w": 120.0,
            "nodes": [{"id": "a"}, {"id": "b", "work": 2.0}],
        })
        assert status == 200
        assert doc["policy"] == "waterfill"
        assert set(doc["caps"]) == {"a", "b"}
        assert doc["epoch"] == 2
        total = sum(c["cap_w"] for c in doc["caps"].values())
        assert total <= 120.0 - doc["nfs_reserve_w"] + 1e-6
        assert len(doc["trace_sha256"]) == 64

    def test_sessions_accumulate_membership(self, server):
        post(server, {"budget_w": 120.0, "session": "s",
                      "nodes": [{"id": "a"}]})
        status, doc = post(server, {"budget_w": 120.0, "session": "s",
                                    "nodes": [{"id": "b"}]})
        assert status == 200
        assert set(doc["caps"]) == {"a", "b"}

    def test_leave_redistributes(self, server):
        _, before = post(server, {"budget_w": 75.0, "session": "s",
                                  "nodes": [{"id": "a"}, {"id": "b"}]})
        status, after = post(server, {"budget_w": 75.0, "session": "s",
                                      "leave": ["b"]})
        assert status == 200
        assert set(after["caps"]) == {"a"}
        assert (after["caps"]["a"]["cap_w"]
                >= before["caps"]["a"]["cap_w"] - 1e-9)

    def test_distinct_sessions_do_not_share(self, server):
        post(server, {"budget_w": 120.0, "session": "x",
                      "nodes": [{"id": "a"}]})
        status, doc = post(server, {"budget_w": 120.0, "session": "y",
                                    "nodes": [{"id": "b"}]})
        assert status == 200
        assert set(doc["caps"]) == {"b"}

    def test_demands_trigger_a_reallocation(self, server):
        _, first = post(server, {
            "budget_w": 120.0, "session": "s", "policy": "proportional",
            "nodes": [{"id": "a"}, {"id": "b"}],
        })
        status, doc = post(server, {
            "budget_w": 120.0, "session": "s", "policy": "proportional",
            "demands": {"a": 21.0, "b": 16.0},
        })
        assert status == 200
        assert doc["epoch"] > first["epoch"]

    def test_phase_boundary_is_an_epoch(self, server):
        _, first = post(server, {"budget_w": 120.0, "session": "s",
                                 "nodes": [{"id": "a"}]})
        _, doc = post(server, {"budget_w": 120.0, "session": "s",
                               "phase": "write"})
        assert doc["phase"] == "write"
        assert doc["epoch"] == first["epoch"] + 1

    def test_infeasible_caps_are_flagged(self, server):
        status, doc = post(server, {
            "budget_w": 68.0,
            "nodes": [{"id": "a"}, {"id": "b"}],
        })
        assert status == 200
        assert any(c["infeasible"] for c in doc["caps"].values())


class TestPowercapBadRequests:
    @pytest.mark.parametrize("body,needle", [
        ({}, "budget_w"),
        ({"budget_w": "lots"}, "must be a number"),
        ({"budget_w": 100.0, "policy": "greedy"}, "unknown allocation"),
        ({"budget_w": 100.0, "nodes": "a,b"}, "must be a list"),
        ({"budget_w": 100.0, "nodes": [{"work": 1.0}]}, "'id' field"),
        ({"budget_w": 100.0, "nodes": [{"id": "a", "arch": "quantum"}]},
         "quantum"),
        ({"budget_w": 100.0}, "no nodes"),
        ({"budget_w": 100.0, "nodes": [{"id": "a"}],
          "leave": ["ghost"]}, "ghost"),
        ({"budget_w": 100.0, "nodes": [{"id": "a"}],
          "demands": {"a": "hot"}}, "invalid demand"),
        ({"budget_w": 30.0, "nfs_reserve_w": 40.0,
          "nodes": [{"id": "a"}]}, "leaves no budget"),
    ])
    def test_taxonomy(self, server, body, needle):
        status, doc = post(server, body)
        assert status == 400
        assert doc["error"] == "bad_request"
        assert needle in doc["message"]

    def test_get_is_not_allowed(self, server):
        status, _ = request_json(server.url + "/v1/powercap")
        assert status in (404, 405)
