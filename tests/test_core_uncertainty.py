"""Unit tests for bootstrap parameter uncertainty."""

import numpy as np
import pytest

from repro.core.samples import SampleSet
from repro.core.uncertainty import bootstrap_power_fit


def make_samples(a=0.0064, b=5.315, c=0.7429, noise=0.01, n_per_freq=4, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    for f in np.arange(0.8, 2.0 + 1e-9, 0.1):
        for _ in range(n_per_freq):
            records.append(
                {
                    "freq_ghz": float(f),
                    "scaled_power_w": float(a * f**b + c + rng.normal(0, noise)),
                }
            )
    return SampleSet(records)


class TestBootstrap:
    def test_intervals_cover_truth(self):
        res = bootstrap_power_fit(make_samples(), n_boot=100, seed=1)
        assert res.c.contains(0.7429)
        # The exponent is weakly identified; a generous interval should
        # still bracket the truth.
        assert res.b.lower < 5.315 < res.b.upper

    def test_estimate_inside_own_interval(self):
        res = bootstrap_power_fit(make_samples(), n_boot=60, seed=2)
        for p in (res.a, res.b, res.c):
            assert p.lower <= p.estimate <= p.upper or p.width < 1e-12

    def test_more_noise_wider_intervals(self):
        quiet = bootstrap_power_fit(make_samples(noise=0.003, seed=3), n_boot=60)
        loud = bootstrap_power_fit(make_samples(noise=0.03, seed=3), n_boot=60)
        assert loud.b.width > quiet.b.width

    def test_band_brackets_mean_curve(self):
        res = bootstrap_power_fit(make_samples(), n_boot=60, seed=4)
        truth = 0.0064 * res.band_freqs**5.315 + 0.7429
        inside = (res.band_lower - 0.01 <= truth) & (truth <= res.band_upper + 0.01)
        assert inside.mean() > 0.9

    def test_band_shapes(self):
        res = bootstrap_power_fit(make_samples(), n_boot=30, seed=5)
        assert res.band_freqs.shape == res.band_lower.shape == res.band_upper.shape
        assert np.all(res.band_lower <= res.band_upper)

    def test_deterministic_for_seed(self):
        a = bootstrap_power_fit(make_samples(), n_boot=30, seed=6)
        b = bootstrap_power_fit(make_samples(), n_boot=30, seed=6)
        assert a.b.lower == b.b.lower and a.b.upper == b.b.upper

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_power_fit(make_samples(), n_boot=5)
        with pytest.raises(ValueError):
            bootstrap_power_fit(make_samples(), confidence=1.0)
        tiny = SampleSet([
            {"freq_ghz": 1.0 + 0.1 * i, "scaled_power_w": 1.0} for i in range(4)
        ])
        with pytest.raises(ValueError, match="at least 8"):
            bootstrap_power_fit(tiny)


class TestParameterInterval:
    def test_contains(self):
        from repro.core.uncertainty import ParameterInterval

        p = ParameterInterval(estimate=1.0, lower=0.5, upper=1.5)
        assert p.contains(1.0) and p.contains(0.5)
        assert not p.contains(1.6)
        assert p.width == 1.0
