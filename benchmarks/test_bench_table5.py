"""Bench: regenerate Table V (data-transit power models + GF)."""

from conftest import emit

from repro.core.partitions import TRANSIT_PARTITIONS, fit_partition_models
from repro.experiments import table5
from repro.workflow.report import render_table


def test_bench_table5(benchmark, ctx):
    samples = ctx.outcome.transit_samples

    models = benchmark.pedantic(
        fit_partition_models, args=(samples, TRANSIT_PARTITIONS),
        rounds=3, iterations=1,
    )
    rows = tuple(m.as_table_row() for m in models.values())
    emit(render_table(rows, title="TABLE V — MODELS AND GF DATA TRANSIT (reproduced)"))
    emit(render_table(table5.PAPER_ROWS, title="Paper reference values"))

    by = {r["model"]: r for r in rows}
    assert by["Broadwell"]["rmse"] < by["Total"]["rmse"]
    assert by["Skylake"]["rmse"] < by["Total"]["rmse"]
    # Transit exponents: Broadwell ~3.4, Skylake ~21 (paper bands).
    assert 2.0 < models["Broadwell"].b < 5.0
    assert 15.0 < models["Skylake"].b < 28.0
    # Skylake's write floor sits higher (paper: c = 0.888).
    assert models["Skylake"].c > models["Broadwell"].c

    benchmark.extra_info["broadwell_equation"] = models["Broadwell"].equation()
    benchmark.extra_info["skylake_equation"] = models["Skylake"].equation()
