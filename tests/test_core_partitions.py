"""Unit tests for Table III model partitions."""

import numpy as np
import pytest

from repro.core.partitions import (
    COMPRESSION_PARTITIONS,
    TRANSIT_PARTITIONS,
    Partition,
    fit_partition_models,
    table3_rows,
)
from repro.core.samples import SampleSet


def make_samples():
    records = []
    rng = np.random.default_rng(0)
    for cpu, fmax, (a, b, c) in (
        ("broadwell", 2.0, (0.0064, 5.315, 0.7429)),
        ("skylake", 2.2, (2.235e-9, 23.31, 0.7941)),
    ):
        for comp in ("sz", "zfp"):
            for f in np.arange(0.8, fmax + 1e-9, 0.1):
                records.append(
                    {
                        "cpu": cpu,
                        "compressor": comp,
                        "freq_ghz": float(f),
                        "scaled_power_w": float(a * f**b + c + rng.normal(0, 0.002)),
                    }
                )
    return SampleSet(records)


class TestPartitionSelect:
    def test_total_selects_all(self):
        s = make_samples()
        assert len(Partition("Total").select(s)) == len(s)

    def test_compressor_partition(self):
        s = make_samples()
        sz = Partition("SZ", compressor="sz").select(s)
        assert len(sz) == len(s) // 2
        assert all(r["compressor"] == "sz" for r in sz)

    def test_cpu_partition(self):
        s = make_samples()
        bw = Partition("Broadwell", cpu="broadwell").select(s)
        assert all(r["cpu"] == "broadwell" for r in bw)

    def test_combined_filters(self):
        s = make_samples()
        part = Partition("x", compressor="zfp", cpu="skylake")
        sel = part.select(s)
        assert all(r["compressor"] == "zfp" and r["cpu"] == "skylake" for r in sel)


class TestTable3:
    def test_five_compression_partitions(self):
        names = [p.name for p in COMPRESSION_PARTITIONS]
        assert names == ["Total", "SZ", "ZFP", "Broadwell", "Skylake"]

    def test_three_transit_partitions(self):
        names = [p.name for p in TRANSIT_PARTITIONS]
        assert names == ["Total", "Broadwell", "Skylake"]

    def test_rows_format(self):
        rows = table3_rows()
        assert rows[0] == {
            "model_data": "Total",
            "compressors": "SZ, ZFP",
            "cpus": "Broadwell, Skylake",
        }
        assert rows[3]["cpus"] == "Broadwell"


class TestFitPartitionModels:
    def test_fits_all_partitions(self):
        models = fit_partition_models(make_samples())
        assert set(models) == {"Total", "SZ", "ZFP", "Broadwell", "Skylake"}

    def test_per_arch_fits_better_than_pooled(self):
        # The paper's central observation (Table IV).
        models = fit_partition_models(make_samples())
        assert models["Broadwell"].gof.rmse < models["Total"].gof.rmse
        assert models["Skylake"].gof.rmse < models["Total"].gof.rmse

    def test_recovered_exponents_match_ground_truth(self):
        models = fit_partition_models(make_samples())
        assert models["Broadwell"].b == pytest.approx(5.315, rel=0.15)
        assert models["Skylake"].b == pytest.approx(23.31, rel=0.15)

    def test_empty_partition_rejected(self):
        s = make_samples().filter(cpu="broadwell")
        with pytest.raises(ValueError, match="selected no samples"):
            fit_partition_models(s)
