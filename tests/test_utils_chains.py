"""Unit + property tests for the pointer-doubling chain extractor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.chains import follow_chain


def naive_chain(jumps, start, count):
    out, pos = [], start
    for _ in range(count):
        out.append(pos)
        pos = jumps[pos] if pos < len(jumps) else len(jumps)
    return out


class TestFollowChain:
    def test_empty_count(self):
        assert follow_chain(np.array([1, 2, 3]), 0, 0).size == 0

    def test_unit_steps(self):
        jumps = np.arange(1, 11)
        assert follow_chain(jumps, 0, 10).tolist() == list(range(10))

    def test_variable_steps(self):
        jumps = np.array([2, 99, 3, 7, 99, 99, 99, 8])
        assert follow_chain(jumps, 0, 4).tolist() == [0, 2, 3, 7]

    def test_start_offset(self):
        jumps = np.arange(1, 11)
        assert follow_chain(jumps, 4, 3).tolist() == [4, 5, 6]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            follow_chain(np.array([1]), 0, -1)

    def test_start_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            follow_chain(np.array([1, 2]), 5, 1)

    def test_chain_escaping_raises(self):
        # Position 1 jumps past the end; asking for 3 entries must fail.
        jumps = np.array([1, 50, 3])
        with pytest.raises(ValueError, match="corrupt"):
            follow_chain(jumps, 0, 3)

    def test_negative_jump_treated_as_corrupt(self):
        jumps = np.array([1, -5, 3])
        with pytest.raises(ValueError, match="corrupt"):
            follow_chain(jumps, 0, 3)

    def test_count_power_of_two_boundaries(self):
        # Exercises the doubling rounds at exact powers of two.
        n = 64
        jumps = np.arange(1, n + 1)
        for count in (1, 2, 3, 4, 7, 8, 9, 31, 32, 33, 64):
            assert follow_chain(jumps, 0, count).tolist() == list(range(count))

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_walk(self, data):
        n = data.draw(st.integers(2, 200))
        steps = data.draw(
            st.lists(st.integers(1, 5), min_size=n, max_size=n)
        )
        jumps = np.arange(n) + np.array(steps)
        jumps = np.minimum(jumps, n)
        start = data.draw(st.integers(0, n - 1))
        # Longest valid chain from start:
        max_count = len(naive_chain_until_end(jumps.tolist(), start, n))
        count = data.draw(st.integers(1, max_count))
        assert follow_chain(jumps, start, count).tolist() == naive_chain(
            jumps.tolist(), start, count
        )


def naive_chain_until_end(jumps, start, n):
    out, pos = [], start
    while pos < n:
        out.append(pos)
        pos = jumps[pos]
    return out
