"""Lossless baseline compressor.

The paper motivates lossy compression by its advantage over lossless
codecs on floating-point data (Section I). This gzip-style baseline
implements the same :class:`~repro.compressors.base.Compressor`
interface — the error bound is accepted but the reconstruction is
bit-exact — so comparisons like ``examples/baseline_comparison.py`` can
quantify the gap on the same fields.

A byte-transpose (shuffle) filter is applied before zlib: grouping the
k-th byte of every float together exposes the slowly-varying exponent
bytes to the LZ77 stage, the standard trick (HDF5 shuffle / blosc) that
makes general-purpose codecs workable on scientific arrays.
"""

from __future__ import annotations

import zlib
from typing import Tuple

import numpy as np

from repro.compressors.base import Compressor, CorruptStreamError, register_compressor

__all__ = ["LosslessCompressor"]


@register_compressor
class LosslessCompressor(Compressor):
    """zlib + byte-shuffle lossless baseline (error bound: exactly 0)."""

    name = "gzip"

    def __init__(self, zlib_level: int = 6, shuffle: bool = True):
        if not 0 <= zlib_level <= 9:
            raise ValueError(f"zlib_level must be in [0, 9], got {zlib_level}")
        self.zlib_level = int(zlib_level)
        self.shuffle = bool(shuffle)

    def _encode(self, data: np.ndarray, error_bound: float) -> bytes:
        flat = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        itemsize = data.dtype.itemsize
        if self.shuffle:
            flat = np.ascontiguousarray(
                flat.reshape(-1, itemsize).T
            ).reshape(-1)
        mode = b"S" if self.shuffle else b"R"
        return mode + zlib.compress(flat.tobytes(), self.zlib_level)

    def _decode(
        self, payload: bytes, shape: Tuple[int, ...], dtype: np.dtype, error_bound: float
    ) -> np.ndarray:
        if len(payload) < 1:
            raise CorruptStreamError("empty lossless payload")
        mode, body = payload[:1], payload[1:]
        if mode not in (b"S", b"R"):
            raise CorruptStreamError(f"unknown lossless mode {mode!r}")
        try:
            raw = zlib.decompress(body)
        except zlib.error as exc:
            raise CorruptStreamError(f"zlib stage failed: {exc}") from exc
        count = int(np.prod(shape, dtype=np.int64))
        itemsize = dtype.itemsize
        if len(raw) != count * itemsize:
            raise CorruptStreamError(
                f"payload decodes to {len(raw)} bytes, expected {count * itemsize}"
            )
        flat = np.frombuffer(raw, dtype=np.uint8)
        if mode == b"S":
            flat = np.ascontiguousarray(
                flat.reshape(itemsize, -1).T
            ).reshape(-1)
        return flat.view(dtype).copy()
