"""Golden-format tests for the JSON-lines and Prometheus exporters."""

import json

import pytest

from repro.observability import (
    MetricsRegistry,
    Span,
    Tracer,
    prometheus_text,
    span_records,
    spans_to_jsonl,
    trace_summary,
    write_metrics_prom,
    write_spans_jsonl,
)


def _sample_spans():
    root = Span(name="dump", start_s=0.0, end_s=1.0, attrs={"codec": "sz"})
    child = Span(
        name="dump.ratio", start_s=0.125, end_s=0.625,
        attrs={"bytes_in": 4096, "ratio": 2.0},
    )
    failed = Span(
        name="dump.write", start_s=0.75, end_s=0.875, status="error",
        attrs={"error": "OSError: disk full"},
    )
    root.children.extend([child, failed])
    return (root,)


def test_jsonl_golden():
    text = spans_to_jsonl(_sample_spans())
    assert text == (
        '{"attrs": {"codec": "sz"}, "dur_s": 1.0, "id": 0, "name": "dump", '
        '"parent": null, "start_s": 0.0, "status": "ok"}\n'
        '{"attrs": {"bytes_in": 4096, "ratio": 2.0}, "dur_s": 0.5, "id": 1, '
        '"name": "dump.ratio", "parent": 0, "start_s": 0.125, "status": "ok"}\n'
        '{"attrs": {"error": "OSError: disk full"}, "dur_s": 0.125, "id": 2, '
        '"name": "dump.write", "parent": 0, "start_s": 0.75, "status": "error"}\n'
    )


def test_jsonl_lines_parse_and_link():
    lines = spans_to_jsonl(_sample_spans()).splitlines()
    records = [json.loads(line) for line in lines]
    assert len(records) == 3
    by_id = {r["id"]: r for r in records}
    assert by_id[1]["parent"] == 0
    assert by_id[2]["parent"] == 0
    assert by_id[0]["parent"] is None
    # Tree invariant: children start after and end before the parent.
    for r in records[1:]:
        parent = by_id[r["parent"]]
        assert r["start_s"] >= parent["start_s"]
        assert r["start_s"] + r["dur_s"] <= parent["start_s"] + parent["dur_s"]


def test_jsonl_ids_are_preorder_across_roots():
    roots = (_sample_spans()[0], Span(name="second", start_s=2.0, end_s=3.0))
    ids = [r["id"] for r in span_records(roots)]
    names = [r["name"] for r in span_records(roots)]
    assert ids == [0, 1, 2, 3]
    assert names == ["dump", "dump.ratio", "dump.write", "second"]


def test_jsonl_empty():
    assert spans_to_jsonl(()) == ""


def test_write_spans_jsonl_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_spans_jsonl(str(path), _sample_spans())
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["name"] for r in records] == ["dump", "dump.ratio", "dump.write"]


def _sample_registry():
    reg = MetricsRegistry()
    reg.counter(
        "repro_bytes_total", {"codec": "sz"}, help="bytes processed"
    ).inc(2048)
    reg.counter("repro_bytes_total", {"codec": "zfp"}).inc(1024)
    reg.gauge("repro_ratio").set(3.25)
    hist = reg.histogram("repro_slab_seconds", buckets=(0.01, 0.1))
    hist.observe(0.005)
    hist.observe(0.05)
    hist.observe(7.0)
    return reg


def test_prometheus_golden():
    assert prometheus_text(_sample_registry()) == (
        "# HELP repro_bytes_total bytes processed\n"
        "# TYPE repro_bytes_total counter\n"
        'repro_bytes_total{codec="sz"} 2048\n'
        'repro_bytes_total{codec="zfp"} 1024\n'
        "# TYPE repro_ratio gauge\n"
        "repro_ratio 3.25\n"
        "# TYPE repro_slab_seconds histogram\n"
        'repro_slab_seconds_bucket{le="0.01"} 1\n'
        'repro_slab_seconds_bucket{le="0.1"} 2\n'
        'repro_slab_seconds_bucket{le="+Inf"} 3\n'
        "repro_slab_seconds_sum 7.055\n"
        "repro_slab_seconds_count 3\n"
    )


def test_prometheus_parseable_line_shapes():
    """Every non-comment line is `name{labels} value` or `name value`."""
    import re

    sample_re = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
        r"(\{[a-zA-Z_][a-zA-Z0-9_]*="          # optional label block
        r'"[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
        r" [^ ]+$"                              # single value
    )
    for line in prometheus_text(_sample_registry()).splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
        else:
            assert sample_re.match(line), line


def test_prometheus_empty_registry():
    assert prometheus_text(MetricsRegistry()) == ""


def test_write_metrics_prom(tmp_path):
    path = tmp_path / "metrics.prom"
    write_metrics_prom(str(path), _sample_registry())
    assert path.read_text().endswith("repro_slab_seconds_count 3\n")


def test_trace_summary_aggregates_and_orders():
    text = trace_summary(_sample_spans())
    lines = text.splitlines()
    assert lines[0] == "trace summary"
    assert lines[1].split() == [
        "span", "calls", "total_s", "mb_in", "errors", "share_of_run",
    ]
    # Sorted by total seconds, root first; the failed span shows errors=1.
    assert lines[3].startswith("dump ")
    body = "\n".join(lines[3:])
    assert "dump.write" in body
    row = next(line for line in lines if line.startswith("dump.write"))
    assert row.split()[4] == "1"  # errors column
    assert "#" in row and "%" in row


def test_trace_summary_empty():
    assert trace_summary(()) == "(no spans recorded)"


def test_trace_summary_from_live_tracer():
    tracer = Tracer()
    with tracer.span("root", bytes_in=10 * 1000 * 1000):
        with tracer.span("leaf"):
            pass
    text = trace_summary(tracer.spans)
    row = next(line for line in text.splitlines() if line.startswith("root"))
    assert row.split()[3] == "10.0"  # mb_in column
