"""Unit tests for the compressor interface and buffer serialization."""

import numpy as np
import pytest

from repro.compressors.base import (
    CompressedBuffer,
    CompressionError,
    Compressor,
    CorruptStreamError,
    available_compressors,
    get_compressor,
)


class TestRegistry:
    def test_both_codecs_registered(self):
        assert set(available_compressors()) >= {"sz", "zfp"}

    def test_get_compressor_case_insensitive(self):
        assert get_compressor("SZ").name == "sz"

    def test_unknown_codec(self):
        with pytest.raises(KeyError, match="unknown compressor"):
            get_compressor("lz4")


class TestCompressedBuffer:
    def _buf(self, **overrides):
        defaults = dict(
            codec="sz",
            payload=b"\x01\x02\x03",
            shape=(4, 5),
            dtype=np.dtype(np.float32),
            error_bound=1e-3,
        )
        defaults.update(overrides)
        return CompressedBuffer(**defaults)

    def test_serialization_roundtrip(self):
        buf = self._buf()
        parsed = CompressedBuffer.from_bytes(buf.to_bytes())
        assert parsed == buf

    def test_float64_roundtrip(self):
        buf = self._buf(dtype=np.dtype(np.float64), shape=(7,))
        parsed = CompressedBuffer.from_bytes(buf.to_bytes())
        assert parsed.dtype == np.float64
        assert parsed.shape == (7,)

    def test_original_nbytes(self):
        assert self._buf().original_nbytes == 4 * 5 * 4

    def test_ratio(self):
        buf = self._buf()
        assert buf.ratio == pytest.approx(buf.original_nbytes / buf.nbytes)

    def test_bad_magic_rejected(self):
        data = bytearray(self._buf().to_bytes())
        data[0] = 0
        with pytest.raises(CorruptStreamError, match="magic"):
            CompressedBuffer.from_bytes(bytes(data))

    def test_short_buffer_rejected(self):
        with pytest.raises(CorruptStreamError, match="shorter"):
            CompressedBuffer.from_bytes(b"RP")

    def test_truncated_shape_table(self):
        full = self._buf().to_bytes()
        with pytest.raises(CorruptStreamError, match="truncated"):
            CompressedBuffer.from_bytes(full[:24])


class TestCompressorValidation:
    @pytest.fixture(params=["sz", "zfp"])
    def codec(self, request):
        return get_compressor(request.param)

    def test_rejects_nan(self, codec):
        arr = np.ones((8, 8), dtype=np.float32)
        arr[3, 3] = np.nan
        with pytest.raises(CompressionError, match="finite"):
            codec.compress(arr, 1e-2)

    def test_rejects_inf(self, codec):
        arr = np.ones(16, dtype=np.float64)
        arr[0] = np.inf
        with pytest.raises(CompressionError):
            codec.compress(arr, 1e-2)

    def test_rejects_nonpositive_bound(self, codec):
        arr = np.ones(16, dtype=np.float32)
        for eb in (0.0, -1.0):
            with pytest.raises(ValueError):
                codec.compress(arr, eb)

    def test_rejects_empty(self, codec):
        with pytest.raises(ValueError):
            codec.compress(np.empty(0, dtype=np.float32), 1e-2)

    def test_rejects_5d(self, codec):
        with pytest.raises(CompressionError, match="4-D"):
            codec.compress(np.ones((2,) * 5, dtype=np.float32), 1e-2)

    def test_integer_input_promoted(self, codec):
        buf = codec.compress(np.arange(64).reshape(8, 8), 0.5)
        assert buf.dtype == np.float64

    def test_decompress_wrong_codec_rejected(self, codec):
        other = "zfp" if codec.name == "sz" else "sz"
        buf = get_compressor(other).compress(np.ones(16, dtype=np.float32) * 3, 1e-2)
        with pytest.raises(CorruptStreamError, match="produced by codec"):
            codec.decompress(buf)

    def test_roundtrip_returns_buffer_and_array(self, codec):
        arr = np.linspace(0, 1, 64, dtype=np.float32).reshape(8, 8)
        buf, rec = codec.roundtrip(arr, 1e-2)
        assert rec.shape == arr.shape
        assert rec.dtype == arr.dtype
        assert buf.codec == codec.name

    def test_buffer_metadata(self, codec):
        arr = np.linspace(-1, 1, 100, dtype=np.float64)
        buf = codec.compress(arr, 1e-3)
        assert buf.shape == (100,)
        assert buf.dtype == np.float64
        assert buf.error_bound == 1e-3
