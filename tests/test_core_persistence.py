"""Unit tests for model-bundle persistence."""

import json

import pytest

from repro.core.persistence import SCHEMA_VERSION, ModelBundle
from repro.core.power_model import PowerModel
from repro.core.runtime_model import RuntimeModel
from repro.utils.stats import GoodnessOfFit

GOF = GoodnessOfFit(0.1, 0.02, 0.9)


def make_bundle():
    return ModelBundle(
        compression_power={
            "Broadwell": PowerModel("Broadwell", 0.0064, 5.315, 0.7429, 0.8, 2.0, GOF),
            "Skylake": PowerModel("Skylake", 2.235e-9, 23.31, 0.7941, 0.8, 2.2, GOF),
        },
        transit_power={
            "Broadwell": PowerModel("Broadwell", 0.0261, 3.395, 0.7097, 0.8, 2.0, GOF),
        },
        compression_runtime={
            "broadwell": RuntimeModel("compress-broadwell", 0.55, 2.0, GOF),
        },
        transit_runtime={
            "broadwell": RuntimeModel("write-broadwell", 0.75, 2.0, GOF),
        },
        metadata={"seed": 0, "curve": "calibrated"},
    )


class TestJsonRoundTrip:
    def test_roundtrip_preserves_models(self):
        bundle = make_bundle()
        restored = ModelBundle.from_json(bundle.to_json())
        assert restored.compression_power["Broadwell"].params == (
            0.0064, 5.315, 0.7429
        )
        assert restored.compression_power["Skylake"].b == 23.31
        assert restored.compression_runtime["broadwell"].sensitivity == 0.55
        assert restored.metadata == {"seed": 0, "curve": "calibrated"}

    def test_gof_preserved(self):
        restored = ModelBundle.from_json(make_bundle().to_json())
        g = restored.transit_power["Broadwell"].gof
        assert (g.sse, g.rmse, g.r2) == (0.1, 0.02, 0.9)

    def test_schema_version_embedded(self):
        doc = json.loads(make_bundle().to_json())
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_unknown_schema_rejected(self):
        doc = json.loads(make_bundle().to_json())
        doc["schema_version"] = 999
        with pytest.raises(ValueError, match="schema"):
            ModelBundle.from_json(json.dumps(doc))

    def test_future_schema_names_newer_build(self):
        doc = json.loads(make_bundle().to_json())
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer build"):
            ModelBundle.from_json(json.dumps(doc))

    def test_missing_schema_version_rejected(self):
        doc = json.loads(make_bundle().to_json())
        del doc["schema_version"]
        with pytest.raises(ValueError, match="schema_version"):
            ModelBundle.from_json(json.dumps(doc))

    def test_non_object_document_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            ModelBundle.from_json("[1, 2, 3]")

    def test_missing_section_is_valueerror_not_keyerror(self):
        doc = json.loads(make_bundle().to_json())
        del doc["transit_runtime"]
        with pytest.raises(ValueError, match="transit_runtime"):
            ModelBundle.from_json(json.dumps(doc))

    def test_malformed_model_entry_is_valueerror(self):
        doc = json.loads(make_bundle().to_json())
        del doc["compression_power"]["Broadwell"]["a"]
        with pytest.raises(ValueError, match="not a valid"):
            ModelBundle.from_json(json.dumps(doc))

    def test_v1_document_roundtrip(self):
        # A frozen v1 document (reformatted whitespace, shuffled keys)
        # must parse, and re-serializing must preserve every value.
        doc = json.loads(make_bundle().to_json())
        assert doc["schema_version"] == 1
        shuffled = json.dumps(doc, sort_keys=False, separators=(", ", ": "))
        restored = ModelBundle.from_json(shuffled)
        assert json.loads(restored.to_json()) == doc

    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="not a valid"):
            ModelBundle.from_json("{nope")


class TestFingerprint:
    def test_stable_across_formatting(self):
        a = make_bundle()
        b = ModelBundle.from_json(a.to_json())
        assert a.fingerprint() == b.fingerprint()
        assert len(a.fingerprint()) == 64
        int(a.fingerprint(), 16)  # hex digest

    def test_equal_bundles_hash_equal(self):
        assert make_bundle().fingerprint() == make_bundle().fingerprint()

    def test_one_field_change_changes_hash(self):
        changed = make_bundle()
        changed.compression_power["Broadwell"] = PowerModel(
            "Broadwell", 0.0064, 5.315, 0.7430, 0.8, 2.0, GOF
        )
        assert changed.fingerprint() != make_bundle().fingerprint()

    def test_metadata_change_changes_hash(self):
        changed = make_bundle()
        changed.metadata["seed"] = 1
        assert changed.fingerprint() != make_bundle().fingerprint()


class TestFileRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "models.json"
        make_bundle().save(path)
        restored = ModelBundle.load(path)
        assert restored.compression_power["Broadwell"].equation() == (
            make_bundle().compression_power["Broadwell"].equation()
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            ModelBundle.load(tmp_path / "absent.json")


class TestFromOutcome:
    def test_captures_pipeline_models(self):
        from repro.core.pipeline import TunedIOPipeline
        from repro.workflow.sweep import SweepConfig, default_nodes

        cfg = SweepConfig(
            datasets=(("nyx", "velocity_x"),), error_bounds=(1e-2,),
            transit_sizes_gb=(1.0,), repeats=2, data_scale=32,
            frequency_stride=5, measure_ratios=False,
        )
        outcome = TunedIOPipeline(default_nodes()).characterize(cfg)
        bundle = ModelBundle.from_outcome(outcome, metadata={"test": True})
        restored = ModelBundle.from_json(bundle.to_json())
        assert set(restored.compression_power) == set(outcome.compression_models)
        for name, model in outcome.compression_models.items():
            assert restored.compression_power[name].params == pytest.approx(
                model.params
            )
