#!/usr/bin/env python
"""Parallel slab-compression scaling benchmark.

Compresses a >=64-slab array through every executor backend, verifies
the containers are byte-identical to the serial reference, and reports
wall time, per-slab time and speedup. On a 4-core runner the process
backend exceeds 1.5x for the ZFP codec (pure-Python encode loops scale
across processes, not threads).

Usage::

    PYTHONPATH=src python benchmarks/parallel_speedup.py
    PYTHONPATH=src python benchmarks/parallel_speedup.py --quick   # CI
    PYTHONPATH=src python benchmarks/parallel_speedup.py \
        --codec zfp --workers 4 --min-speedup 1.5

Exit status is non-zero if any backend's output differs from serial, or
if ``--min-speedup`` is requested and the best backend falls short.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro.compressors import ChunkedCompressor
from repro.parallel import default_workers

BACKENDS = ("serial", "thread", "process")


def build_array(slabs: int, edge: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Smooth field with noise: compressible like the paper's datasets.
    base = np.cumsum(rng.normal(size=(slabs, edge, edge)), axis=0)
    return (base / np.sqrt(np.arange(1, slabs + 1))[:, None, None]).astype(
        np.float32
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--codec", default="zfp", choices=("sz", "zfp"))
    ap.add_argument("--slabs", type=int, default=64)
    ap.add_argument("--edge", type=int, default=256,
                    help="slab edge length (each slab is edge x edge floats)")
    ap.add_argument("--error-bound", type=float, default=1e-3)
    ap.add_argument("--workers", type=int, default=None)
    ap.add_argument("--quick", action="store_true",
                    help="small array: equivalence check only")
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="fail unless some backend reaches this speedup")
    args = ap.parse_args(argv)

    if args.quick:
        args.slabs, args.edge = max(args.slabs, 64), 48
    workers = args.workers if args.workers is not None else default_workers()
    arr = build_array(args.slabs, args.edge)
    slab_bytes = arr.nbytes // args.slabs
    print(f"array: {arr.shape} float32, {arr.nbytes / 1e6:.1f} MB "
          f"in {args.slabs} slabs of {slab_bytes / 1e3:.0f} kB; "
          f"codec={args.codec}, eb={args.error_bound:g}, workers={workers}")
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    if cores < workers:
        print(f"warning: only {cores} usable core(s) for {workers} workers — "
              f"pools cannot beat serial here", file=sys.stderr)

    results = {}
    for backend in BACKENDS:
        cc = ChunkedCompressor(
            args.codec, max_chunk_bytes=slab_bytes,
            executor=backend, workers=workers,
        )
        t0 = time.perf_counter()
        container = cc.compress(arr, args.error_bound)
        wall = time.perf_counter() - t0
        results[backend] = (container.to_bytes(), wall, cc.last_stats)

    ref_blob, ref_wall, _ = results["serial"]
    print(f"\n{'backend':<10} {'wall s':>8} {'task s':>8} "
          f"{'overlap':>8} {'vs serial':>10}  identical")
    ok = True
    best = 1.0
    for backend in BACKENDS:
        blob, wall, stats = results[backend]
        identical = blob == ref_blob
        ok &= identical
        vs_serial = ref_wall / wall
        if backend != "serial":
            best = max(best, vs_serial)
        print(f"{backend:<10} {wall:8.3f} {stats.task_seconds:8.3f} "
              f"{stats.concurrency:8.2f} {vs_serial:9.2f}x  {identical}")

    ratio = len(ref_blob) and arr.nbytes / len(ref_blob)
    print(f"\ncompression ratio {ratio:.2f}x; "
          f"best pool backend: {best:.2f}x vs serial")
    if not ok:
        print("FAIL: pool output differs from the serial reference",
              file=sys.stderr)
        return 1
    if args.min_speedup and best < args.min_speedup:
        print(f"FAIL: best speedup {best:.2f}x < required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
