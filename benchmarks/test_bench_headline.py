"""Bench: regenerate the Section V/VI headline numbers."""

from conftest import emit

from repro.experiments import headline
from repro.workflow.report import render_table


def test_bench_headline(benchmark, ctx):
    nums = benchmark.pedantic(headline.run, args=(ctx,), rounds=1, iterations=1)
    measured = nums.as_dict()
    rows = [
        {"quantity": k, "reproduced_pct": measured[k] * 100,
         "paper_pct": headline.PAPER[k] * 100}
        for k in headline.PAPER
    ]
    emit(render_table(rows, title="HEADLINE NUMBERS (Sections V-VI)"))

    # Orderings and bands the paper claims:
    assert nums.compress_power_saving > nums.write_power_saving  # 19.4 > 11.2
    assert nums.write_slowdown > nums.compress_slowdown          # 9.3 > 7.5
    assert 0.10 < nums.compress_power_saving < 0.25
    assert 0.06 < nums.write_power_saving < 0.18
    assert abs(nums.combined_slowdown - headline.PAPER["combined_slowdown"]) < 0.03
    assert nums.combined_energy_saving > 0.03

    for k, v in measured.items():
        benchmark.extra_info[k] = v
