"""Cluster-scale data dumping with shared-NFS contention.

The paper studies one node; at exascale, many nodes dump snapshots
concurrently through shared storage. This extension models N identical
clients writing to one :class:`~repro.iosim.nfs.NfsTarget`:

* compression is node-local — costs are independent of N;
* writes contend for the server capacity (network ∧ disk). Each client
  sustains ``min(cpu_copy_rate, capacity / N)``; once the shared side
  saturates, the client CPU stops being the bottleneck, so the write
  stage's DVFS sensitivity is derated by
  :meth:`~repro.iosim.nfs.NfsTarget.cpu_bound_fraction`.

The interesting emergent behaviour (see the extension bench): under
contention, lowering the write frequency becomes *free* — runtime is
pinned by the network — so per-node tuning savings grow with N.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.powercap.controller import PowercapReport

from repro.compressors.base import Compressor
from repro.hardware.cpu import CpuSpec
from repro.hardware.node import SimulatedNode
from repro.hardware.workload import (
    WorkloadKind,
    compression_workload,
    write_workload,
)
from repro.iosim.dumper import DumpReport, StageReport
from repro.iosim.nfs import NfsTarget
from repro.utils.validation import check_positive

__all__ = ["ClusterDumpReport", "Cluster", "SimulatedCluster"]

_KIND_BY_CODEC = {
    "sz": WorkloadKind.COMPRESS_SZ,
    "zfp": WorkloadKind.COMPRESS_ZFP,
}


@dataclass(frozen=True)
class ClusterDumpReport:
    """Aggregate outcome of a synchronized cluster dump."""

    per_node: Tuple[DumpReport, ...]
    nodes: int
    cpu_bound_fraction: float
    #: Sealed power-cap receipt when the dump ran under a watt budget
    #: (:class:`SimulatedCluster` with ``power_budget_w``), else None.
    powercap: Optional["PowercapReport"] = None

    @property
    def total_energy_j(self) -> float:
        """Cluster-wide energy (sum over nodes)."""
        return float(sum(r.total_energy_j for r in self.per_node))

    @property
    def makespan_s(self) -> float:
        """Wall time of the synchronized dump (slowest node per phase)."""
        return float(
            max(r.compress.runtime_s for r in self.per_node)
            + max(r.write.runtime_s for r in self.per_node)
        )

    @property
    def aggregate_write_bandwidth_bps(self) -> float:
        """Achieved cluster write bandwidth during the write phase."""
        total_bytes = sum(r.write.bytes_processed for r in self.per_node)
        write_time = max(r.write.runtime_s for r in self.per_node)
        return total_bytes / write_time


class Cluster:
    """N identical simulated nodes sharing one NFS target."""

    def __init__(
        self,
        cpu: CpuSpec,
        n_nodes: int,
        nfs: Optional[NfsTarget] = None,
        seed: int = 0,
        repeats: int = 5,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.nfs = nfs if nfs is not None else NfsTarget()
        self.nodes = tuple(
            SimulatedNode(cpu, seed=seed + i) for i in range(n_nodes)
        )
        self.repeats = int(repeats)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def _run_stage(self, node: SimulatedNode, workload, freq_ghz: float):
        node.set_frequency(freq_ghz)
        runs = [node.run(workload) for _ in range(self.repeats)]
        runtime = float(np.mean([m.runtime_s for m in runs]))
        energy = float(np.mean([m.energy_j for m in runs]))
        return runs[0].freq_ghz, runtime, energy

    def dump_all(
        self,
        compressor: Compressor,
        sample_field: np.ndarray,
        error_bound: float,
        bytes_per_node: int,
        compress_freq_ghz: float | None = None,
        write_freq_ghz: float | None = None,
    ) -> ClusterDumpReport:
        """Every node compresses and writes *bytes_per_node* concurrently.

        Frequencies default to the base clock; the same pinned values
        apply cluster-wide (the realistic deployment: one tuning policy
        rolled out fleet-wide).
        """
        check_positive(bytes_per_node, "bytes_per_node")
        if compressor.name not in _KIND_BY_CODEC:
            raise KeyError(f"no workload kind for codec {compressor.name!r}")

        buf = compressor.compress(sample_field, error_bound)
        ratio = buf.ratio
        compressed_bytes = max(1, int(round(bytes_per_node / ratio)))

        n = self.n_nodes
        bw = self.nfs.effective_bandwidth_bps(concurrent_clients=n)
        cpu_frac = self.nfs.cpu_bound_fraction(concurrent_clients=n)

        reports = []
        for i, node in enumerate(self.nodes):
            cpu = node.cpu
            f_c = cpu.fmax_ghz if compress_freq_ghz is None else compress_freq_ghz
            f_w = cpu.fmax_ghz if write_freq_ghz is None else write_freq_ghz

            wl_c = compression_workload(
                _KIND_BY_CODEC[compressor.name], bytes_per_node, error_bound,
                name=f"{compressor.name}-cluster-dump",
            )
            fc, t_c, e_c = self._run_stage(node, wl_c, f_c)

            wl_w = write_workload(compressed_bytes, bw, name=f"cluster-write/{n}")
            # Contention derates how much the client CPU matters.
            base_s = wl_w.sensitivity(cpu)
            wl_w = replace(wl_w, sensitivity_override=base_s * cpu_frac)
            fw, t_w, e_w = self._run_stage(node, wl_w, f_w)

            reports.append(
                DumpReport(
                    compress=StageReport(
                        stage="compress", freq_ghz=fc,
                        bytes_processed=bytes_per_node,
                        runtime_s=t_c, energy_j=e_c,
                    ),
                    write=StageReport(
                        stage="write", freq_ghz=fw,
                        bytes_processed=compressed_bytes,
                        runtime_s=t_w, energy_j=e_w,
                    ),
                    compression_ratio=ratio,
                    error_bound=error_bound,
                )
            )
        return ClusterDumpReport(
            per_node=tuple(reports), nodes=n, cpu_bound_fraction=cpu_frac
        )


class SimulatedCluster(Cluster):
    """A :class:`Cluster` under an optional fleet-wide watt budget.

    With ``power_budget_w=None`` (and no governor) every call takes
    :class:`Cluster`'s exact code path, so reports are bit-identical to
    the uncapped cluster. With a budget, a
    :class:`~repro.powercap.controller.ClusterCapController` splits
    ``budget - nfs_reserve`` watts across the nodes, re-solving at the
    compress -> write phase boundary from the per-node power telemetry
    recorded during the compress phase, and every stage frequency is
    clamped to its node's ``cap_ghz``. With ``governor`` set (a kind
    from :data:`repro.governor.GOVERNOR_KINDS`), each node runs its own
    governor and the caps flow through ``Governor.decide(cap_ghz=...)``
    — infeasible caps surface as ``capped_below_fmin`` trace tags.
    """

    def __init__(
        self,
        cpu: CpuSpec,
        n_nodes: int,
        nfs: Optional[NfsTarget] = None,
        seed: int = 0,
        repeats: int = 5,
        power_budget_w: Optional[float] = None,
        policy: str = "waterfill",
        nfs_reserve_w: Optional[float] = None,
        hysteresis: Optional[float] = None,
        work_weights: Optional[Sequence[float]] = None,
        governor: Optional[str] = None,
    ) -> None:
        super().__init__(cpu, n_nodes, nfs=nfs, seed=seed, repeats=repeats)
        self.node_ids = tuple(f"node{i:03d}" for i in range(self.n_nodes))
        self.controller = None
        self._governors = None
        if governor is not None:
            from repro.governor import make_governor

            self._governors = tuple(
                make_governor(governor, cpu, seed=seed + i,
                              power_curve=node.power_curve)
                for i, node in enumerate(self.nodes)
            )
        if power_budget_w is not None:
            from repro.powercap import (
                DEFAULT_CAP_HYSTERESIS,
                DEFAULT_NFS_RESERVE_W,
                ClusterCapController,
            )

            weights = (
                (1.0,) * self.n_nodes
                if work_weights is None
                else tuple(float(w) for w in work_weights)
            )
            if len(weights) != self.n_nodes:
                raise ValueError(
                    f"work_weights must have one entry per node, got "
                    f"{len(weights)} for {self.n_nodes} nodes"
                )
            self.controller = ClusterCapController(
                power_budget_w,
                policy=policy,
                nfs_reserve_w=(
                    DEFAULT_NFS_RESERVE_W if nfs_reserve_w is None
                    else nfs_reserve_w
                ),
                hysteresis=(
                    DEFAULT_CAP_HYSTERESIS if hysteresis is None
                    else hysteresis
                ),
            )
            for node_id, node, work in zip(self.node_ids, self.nodes, weights):
                self.controller.join(
                    node_id, node.cpu, node.power_curve, work=work
                )

    def _stage_frequency(
        self,
        index: int,
        phase: str,
        pinned: Optional[float],
        cap,
    ) -> float:
        cpu = self.nodes[index].cpu
        if self._governors is not None:
            cap_ghz = None if cap is None else cap.governor_cap_ghz
            return self._governors[index].decide(phase, cap_ghz=cap_ghz)
        freq = cpu.fmax_ghz if pinned is None else pinned
        if cap is not None:
            # An infeasible cap (governor_cap_ghz == 0.0) still clamps
            # to the DVFS floor — the node cannot clock lower.
            freq = min(freq, max(cap.governor_cap_ghz, cpu.fmin_ghz))
        return freq

    def dump_all(
        self,
        compressor: Compressor,
        sample_field: np.ndarray,
        error_bound: float,
        bytes_per_node: int,
        compress_freq_ghz: float | None = None,
        write_freq_ghz: float | None = None,
    ) -> ClusterDumpReport:
        if self.controller is None and self._governors is None:
            return super().dump_all(
                compressor, sample_field, error_bound, bytes_per_node,
                compress_freq_ghz=compress_freq_ghz,
                write_freq_ghz=write_freq_ghz,
            )
        check_positive(bytes_per_node, "bytes_per_node")
        if compressor.name not in _KIND_BY_CODEC:
            raise KeyError(f"no workload kind for codec {compressor.name!r}")
        if self._governors is not None and (
            compress_freq_ghz is not None or write_freq_ghz is not None
        ):
            raise ValueError(
                "cannot pin stage frequencies and run per-node governors "
                "at the same time"
            )

        buf = compressor.compress(sample_field, error_bound)
        ratio = buf.ratio
        compressed_bytes = max(1, int(round(bytes_per_node / ratio)))

        n = self.n_nodes
        bw = self.nfs.effective_bandwidth_bps(concurrent_clients=n)
        cpu_frac = self.nfs.cpu_bound_fraction(concurrent_clients=n)

        # Compress phase, synchronized across the fleet. (Stages are
        # independent per node, so running them phase-major changes no
        # per-node RNG draws versus the uncapped node-major loop.)
        caps = None
        if self.controller is not None:
            caps = self.controller.begin_phase("compress")
        compress_results = []
        for i, (node_id, node) in enumerate(zip(self.node_ids, self.nodes)):
            f_c = self._stage_frequency(
                i, "compress", compress_freq_ghz,
                None if caps is None else caps[node_id],
            )
            wl_c = compression_workload(
                _KIND_BY_CODEC[compressor.name], bytes_per_node, error_bound,
                name=f"{compressor.name}-cluster-dump",
            )
            fc, t_c, e_c = self._run_stage(node, wl_c, f_c)
            if self._governors is not None:
                self._governors[i].observe(
                    "compress", fc, e_c / t_c, t_c, bytes_per_node
                )
            if self.controller is not None:
                self.controller.record_demand(node_id, e_c / t_c)
            compress_results.append((fc, t_c, e_c))

        # Write phase: the phase boundary is an allocation epoch — the
        # controller re-solves against the write-path power curve and
        # the demand telemetry streamed during compression.
        if self.controller is not None:
            caps = self.controller.begin_phase("write")
        write_results = []
        for i, (node_id, node) in enumerate(zip(self.node_ids, self.nodes)):
            f_w = self._stage_frequency(
                i, "write", write_freq_ghz,
                None if caps is None else caps[node_id],
            )
            wl_w = write_workload(compressed_bytes, bw, name=f"cluster-write/{n}")
            base_s = wl_w.sensitivity(node.cpu)
            wl_w = replace(wl_w, sensitivity_override=base_s * cpu_frac)
            fw, t_w, e_w = self._run_stage(node, wl_w, f_w)
            if self._governors is not None:
                self._governors[i].observe(
                    "write", fw, e_w / t_w, t_w, compressed_bytes
                )
            if self.controller is not None:
                self.controller.record_demand(node_id, e_w / t_w)
            write_results.append((fw, t_w, e_w))

        reports = []
        for (fc, t_c, e_c), (fw, t_w, e_w) in zip(
            compress_results, write_results
        ):
            reports.append(
                DumpReport(
                    compress=StageReport(
                        stage="compress", freq_ghz=fc,
                        bytes_processed=bytes_per_node,
                        runtime_s=t_c, energy_j=e_c,
                    ),
                    write=StageReport(
                        stage="write", freq_ghz=fw,
                        bytes_processed=compressed_bytes,
                        runtime_s=t_w, energy_j=e_w,
                    ),
                    compression_ratio=ratio,
                    error_bound=error_bound,
                )
            )
        return ClusterDumpReport(
            per_node=tuple(reports), nodes=n, cpu_bound_fraction=cpu_frac,
            powercap=(
                None if self.controller is None else self.controller.report()
            ),
        )
