"""Negabinary mapping and vectorized bit-plane coding.

ZFP encodes transform coefficients in negabinary (base −2), whose
sign-free representation makes truncating low bit planes a clean
magnitude cut: zeroing planes below *p* perturbs the value by less than
``2**p``.

The plane coder serializes, for every block, its kept planes from most
to least significant. Each plane is one chunk: a 1-bit "non-zero" flag,
followed by the plane's ``block_size`` raw bits only when the flag is
set — ZFP's group-testing idea reduced to plane granularity, which is
what lets both directions vectorize (encode through a masked bit-matrix
flatten, decode through a :func:`~repro.utils.chains.follow_chain`
jump chain, since a chunk is 1 or ``1 + block_size`` bits).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.bitio import BitReader, BitWriter
from repro.utils.chains import follow_chain

__all__ = [
    "int_to_negabinary",
    "negabinary_to_int",
    "encode_planes",
    "decode_planes",
]

_NB_MASK = np.uint64(0xAAAAAAAAAAAAAAAA)


def int_to_negabinary(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to negabinary uint64 (zfp's ``int2uint``)."""
    v = np.asarray(values, dtype=np.int64).astype(np.uint64)
    return (v + _NB_MASK) ^ _NB_MASK


def negabinary_to_int(values: np.ndarray) -> np.ndarray:
    """Invert :func:`int_to_negabinary` (zfp's ``uint2int``)."""
    v = np.asarray(values, dtype=np.uint64)
    return ((v ^ _NB_MASK) - _NB_MASK).astype(np.int64)


def _plane_bits(nb: np.ndarray, planes: np.ndarray) -> np.ndarray:
    """Bit tensor (nblocks, nplanes, block_size) for the given plane indices.

    ``planes`` lists plane indices from most significant downward.
    """
    shifts = planes.astype(np.uint64)[None, :, None]
    return ((nb[:, None, :] >> shifts) & np.uint64(1)).astype(np.uint8)


def encode_planes(
    writer: BitWriter,
    negabinary: np.ndarray,
    kept_planes: np.ndarray,
    top_plane: int,
) -> None:
    """Serialize per-block kept bit planes of a negabinary matrix.

    Parameters
    ----------
    writer:
        Destination bit stream.
    negabinary:
        ``(nblocks, block_size)`` uint64 matrix.
    kept_planes:
        Per-block number of planes to keep (from *top_plane* downward);
        values in ``[0, top_plane + 1]``.
    top_plane:
        Index of the most significant plane (all planes above it must be
        zero for every block).

    Layout: blocks are grouped by their ``kept_planes`` value (ascending,
    zero-plane blocks emit nothing); a 64-bit substream length precedes
    each group so the decoder can window its jump chain. Group membership
    is *not* stored — the decoder recomputes ``kept_planes`` from block
    exponents exactly as the encoder did.
    """
    nb = np.asarray(negabinary, dtype=np.uint64)
    k = np.asarray(kept_planes, dtype=np.int64)
    if nb.ndim != 2:
        raise ValueError("negabinary must be 2-D (nblocks, block_size)")
    if k.shape != (nb.shape[0],):
        raise ValueError("kept_planes must have one entry per block")
    if np.any(k < 0) or np.any(k > top_plane + 1):
        raise ValueError(f"kept_planes must lie in [0, {top_plane + 1}]")
    block_size = nb.shape[1]

    for kv in np.unique(k):
        kv = int(kv)
        if kv == 0:
            continue
        rows = nb[k == kv]
        planes = np.arange(top_plane, top_plane - kv, -1, dtype=np.int64)
        bits = _plane_bits(rows, planes)  # (g, kv, block_size)
        flags = bits.any(axis=2).astype(np.uint8)  # (g, kv)
        chunks = np.concatenate([flags[:, :, None], bits], axis=2)
        mask = np.ones_like(chunks, dtype=bool)
        mask[:, :, 1:] = flags[:, :, None].astype(bool)
        group_bits = chunks[mask]
        writer.write_uint(group_bits.size, 64)
        writer.write_bits_array(group_bits)


def decode_planes(
    reader: BitReader,
    kept_planes: np.ndarray,
    top_plane: int,
    block_size: int,
) -> np.ndarray:
    """Reconstruct the (truncated) negabinary matrix written by
    :func:`encode_planes`.

    Planes below each block's kept range decode as zero, matching the
    encoder-side truncation.
    """
    k = np.asarray(kept_planes, dtype=np.int64)
    nblocks = k.size
    nb = np.zeros((nblocks, block_size), dtype=np.uint64)

    for kv in np.unique(k):
        kv = int(kv)
        if kv == 0:
            continue
        sel = np.flatnonzero(k == kv)
        nbits = reader.read_uint(64)
        bits = reader.read_bits_array(nbits)
        nchunks = sel.size * kv
        if nchunks:
            if nbits == 0:
                raise ValueError("empty plane group with pending chunks")
            jumps = (
                np.arange(nbits, dtype=np.int64)
                + 1
                + bits.astype(np.int64) * block_size
            )
            chain = follow_chain(jumps, 0, nchunks)
            flags = bits[chain].astype(bool)
            consumed = int(chain[-1]) + 1 + (block_size if flags[-1] else 0)
            if consumed != nbits:
                raise ValueError(
                    f"plane group length mismatch: consumed {consumed} of {nbits} bits"
                )
            # Gather plane payloads for flagged chunks.
            plane_vals = np.zeros((nchunks, block_size), dtype=np.uint64)
            flagged = np.flatnonzero(flags)
            if flagged.size:
                offsets = chain[flagged][:, None] + 1 + np.arange(block_size)[None, :]
                plane_vals[flagged] = bits[offsets].astype(np.uint64)
            planes = np.arange(top_plane, top_plane - kv, -1, dtype=np.int64)
            shifts = planes.astype(np.uint64)  # (kv,)
            vals = plane_vals.reshape(sel.size, kv, block_size)
            contrib = vals << shifts[None, :, None]
            nb[sel] = contrib.sum(axis=1, dtype=np.uint64)
    return nb
