"""Property-based invariants of the fault-injection plane.

Three load-bearing properties, hammered with Hypothesis-generated
fault plans:

1. **Determinism** — the same plan (same seed) replayed on a fresh node
   produces a field-for-field identical campaign report.
2. **Additivity** — for retry-only faults (transient errors and stalls
   that resolve on the NFS path), the faulted campaign's energy is
   exactly the clean campaign's energy plus the reported overhead;
   retries can never make a campaign *cheaper*.
3. **No-op neutrality** — a plan whose faults all have probability zero
   takes the clean code path and produces a report equal to running
   with no plan at all, on every executor backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import SZCompressor
from repro.hardware.cpu import get_cpu
from repro.hardware.node import SimulatedNode
from repro.resilience import FaultKind, FaultPlan, FaultSpec
from repro.workflow.campaign import (
    CampaignPoint,
    CheckpointCampaign,
    run_campaign,
    run_campaign_sweep,
)

CPU = get_cpu("skylake")
FIELD = np.random.default_rng(7).normal(size=(48, 8)).astype(np.float64)
CAMPAIGN = CheckpointCampaign(
    snapshot_bytes=10**9, n_snapshots=2, compute_interval_s=60.0
)

#: Kinds whose recovery stays on the NFS path (no failover, no retune),
#: so the surviving attempt is bit-identical to the clean run's write.
RETRY_ONLY_KINDS = (FaultKind.NFS_TRANSIENT_ERROR, FaultKind.NFS_STALL)

ALL_KINDS = tuple(FaultKind)


def campaign_report(plan):
    node = SimulatedNode(CPU, seed=0)
    return run_campaign(
        node, SZCompressor(), FIELD, 1e-2, CAMPAIGN, repeats=1,
        fault_plan=plan,
    )


@st.composite
def fault_specs(draw, kinds=ALL_KINDS, probabilities=(0.0, 0.4, 1.0),
                max_attempts=None):
    kind = draw(st.sampled_from(kinds))
    severity = draw(st.sampled_from((0.2, 0.5, 0.8)))
    attempts_cap = max_attempts
    if attempts_cap is None:
        attempts = draw(st.one_of(st.none(), st.integers(1, 3)))
    else:
        attempts = draw(st.integers(1, attempts_cap))
    return FaultSpec(
        kind=kind,
        probability=draw(st.sampled_from(probabilities)),
        snapshots=draw(st.one_of(
            st.none(),
            st.sets(st.integers(0, CAMPAIGN.n_snapshots - 1),
                    min_size=1).map(tuple),
        )),
        attempts=attempts,
        severity=severity,
        stall_s=draw(st.sampled_from((0.5, 3.0))),
    )


def fault_plans(kinds=ALL_KINDS, probabilities=(0.0, 0.4, 1.0),
                max_attempts=None):
    return st.builds(
        FaultPlan,
        specs=st.lists(
            fault_specs(kinds=kinds, probabilities=probabilities,
                        max_attempts=max_attempts),
            min_size=0, max_size=3,
        ).map(tuple),
        seed=st.integers(0, 50),
    )


class TestDeterminism:
    @given(plan=fault_plans())
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_report(self, plan):
        assert campaign_report(plan) == campaign_report(plan)

    @given(plan=fault_plans(probabilities=(1.0,)))
    @settings(max_examples=6, deadline=None)
    def test_resilience_records_replay_identically(self, plan):
        first = campaign_report(plan)
        second = campaign_report(plan)
        for a, b in zip(first.snapshots, second.snapshots):
            assert a.resilience == b.resilience


class TestEnergyAdditivity:
    # attempts <= 2 with the default 3-attempt retry budget guarantees
    # every snapshot recovers on the NFS path itself (no failover leg,
    # which writes to a different - cheaper - target).
    @given(plan=fault_plans(kinds=RETRY_ONLY_KINDS, max_attempts=2))
    @settings(max_examples=10, deadline=None)
    def test_faulted_energy_is_clean_plus_overhead(self, plan):
        clean = campaign_report(None)
        faulted = campaign_report(plan)
        overhead = faulted.energy_overhead_j
        assert overhead >= 0.0
        assert faulted.total_energy_j == pytest.approx(
            clean.total_energy_j + overhead, rel=1e-12
        )
        assert faulted.snapshots_lost == 0

    @given(plan=fault_plans(kinds=RETRY_ONLY_KINDS, max_attempts=2))
    @settings(max_examples=10, deadline=None)
    def test_retries_never_decrease_energy_or_time(self, plan):
        clean = campaign_report(None)
        faulted = campaign_report(plan)
        assert faulted.total_energy_j >= clean.total_energy_j
        assert faulted.total_wall_s >= clean.total_wall_s
        assert faulted.attempts >= clean.attempts


class TestZeroFaultNeutrality:
    @given(plan=fault_plans(probabilities=(0.0,)))
    @settings(max_examples=10, deadline=None)
    def test_zero_probability_plan_equals_no_plan(self, plan):
        assert plan.is_empty
        assert campaign_report(plan) == campaign_report(None)

    def test_zero_fault_plan_identical_across_executors(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.NFS_HARD_FAILURE, probability=0.0),
            FaultSpec(FaultKind.WORKER_CRASH, probability=0.0),
        ), seed=13)
        points = (CampaignPoint(error_bound=1e-2),
                  CampaignPoint(error_bound=1e-3))
        baseline = run_campaign_sweep(
            CPU, "sz", FIELD, points, CAMPAIGN, repeats=1, seed=0,
            executor="serial",
        )
        for executor in ("serial", "thread", "process"):
            withplan = run_campaign_sweep(
                CPU, "sz", FIELD, points, CAMPAIGN, repeats=1, seed=0,
                executor=executor, workers=2, fault_plan=plan,
            )
            assert withplan == baseline, executor
