"""Adaptive governor: objective, convergence, determinism, regret.

The acceptance criteria of the governor subsystem live here:

* on the calibrated Broadwell curves the adaptive controller — which
  never sees the fitted models — converges to within 2.5 % of the
  static Eqn. 3 optimum (in fact it lands exactly on 1.75 / 1.70 GHz);
* on a >=10 %-perturbed power curve it beats the (now mistuned) static
  policy outright on total energy;
* a fixed seed makes the decision trace byte-identical.
"""

import json

import pytest

from repro.governor import (
    AdaptiveGovernor,
    GovernorSpec,
    OracleGovernor,
    Phase,
    StaticGovernor,
    choose_frequency,
    make_governor,
    resolve_governor,
    simulate_governed_io,
)
from repro.hardware.cpu import BROADWELL_D1548
from repro.hardware.node import SimulatedNode
from repro.hardware.powercurves import CalibratedPowerCurve, PerturbedPowerCurve
from repro.observability import get_registry

CPU = BROADWELL_D1548
EQN3 = {"compress": 1.75, "write": 1.70}


def run_sim(kind, curve=None, seed=0, snapshots=24, **gov_kw):
    curve = curve if curve is not None else CalibratedPowerCurve()
    node = SimulatedNode(CPU, power_curve=curve, seed=seed)
    governor = make_governor(kind, CPU, seed=seed,
                             power_curve=node.power_curve, **gov_kw)
    return simulate_governed_io(node, governor, snapshots=snapshots), governor


class TestChooseFrequency:
    GRID = [0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0]

    def test_prefers_lowest_feasible_frequency(self):
        # Power falls exactly as runtime grows, so modeled energy is
        # flat; the floor of the feasible set must win.
        f = choose_frequency(self.GRID, lambda f: f / 2.0,
                             lambda f: 2.0 / f - 1.0, budget=0.5)
        assert f == pytest.approx(1.4)

    def test_energy_wins_only_past_the_hysteresis_margin(self):
        slowdown = lambda f: 0.0  # everything feasible

        def mild(f):  # floor barely worse than fmax: stay on the floor
            return 1.0 - 0.005 * (f - 0.8)

        def steep(f):  # floor clearly worse: energy wins
            return 1.0 - 0.2 * (f - 0.8)

        assert choose_frequency(self.GRID, mild, slowdown, 1.0) == 0.8
        assert choose_frequency(self.GRID, steep, slowdown, 1.0) == 2.0

    def test_infeasible_budget_falls_back_to_fmax(self):
        f = choose_frequency(self.GRID, lambda f: 1.0,
                             lambda f: 10.0, budget=0.1)
        assert f == 2.0

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            choose_frequency([], lambda f: 1.0, lambda f: 0.0, 0.1)


class TestStaticAndOracle:
    def test_static_reproduces_eqn3_frequencies(self):
        gov = StaticGovernor(CPU)
        assert gov.decide(Phase.COMPRESS) == pytest.approx(1.75)
        assert gov.decide("write") == pytest.approx(1.70)
        assert gov.is_converged(Phase.COMPRESS)
        assert gov.report().policy == "static"

    def test_oracle_agrees_with_eqn3_on_calibrated_broadwell(self):
        # The shared objective over the true calibrated curves lands on
        # the paper's grid points — the premise of the whole benchmark.
        gov = OracleGovernor(CPU, CalibratedPowerCurve())
        assert gov.decide(Phase.COMPRESS) == pytest.approx(1.75)
        assert gov.decide(Phase.WRITE) == pytest.approx(1.70)

    def test_decide_honours_a_throttle_cap(self):
        gov = StaticGovernor(CPU)
        freq = gov.decide(Phase.COMPRESS, cap_ghz=1.0)
        assert freq == pytest.approx(1.0)
        assert gov.trace[-1]["mode"].endswith("+capped")

    def test_decide_clamps_cap_to_fmin(self):
        gov = StaticGovernor(CPU)
        assert gov.decide(Phase.COMPRESS, cap_ghz=0.1) == CPU.fmin_ghz


class TestAdaptiveValidation:
    def test_window_below_fit_minimum_rejected(self):
        with pytest.raises(ValueError, match="window"):
            AdaptiveGovernor(CPU, window=3)

    @pytest.mark.parametrize("kw", [
        {"explore": 1.5}, {"explore": -0.1},
        {"explore_decay": 0.0}, {"converge_after": 0},
    ])
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(ValueError):
            AdaptiveGovernor(CPU, **kw)

    def test_degenerate_warmup_ladder_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            AdaptiveGovernor(CPU, warmup_fractions=(1.0, 1.0, 1.0))

    def test_spec_validates_like_the_factory(self):
        with pytest.raises(ValueError, match="unknown governor policy"):
            GovernorSpec(kind="quantum")
        with pytest.raises(ValueError, match="window"):
            GovernorSpec(window=2)

    def test_oracle_needs_the_ground_truth_curve(self):
        with pytest.raises(ValueError, match="ground-truth"):
            make_governor("oracle", CPU)

    def test_resolve_governor_forms(self):
        assert resolve_governor(None, CPU) is None
        gov = StaticGovernor(CPU)
        assert resolve_governor(gov, CPU) is gov
        assert resolve_governor("static", CPU).name == "static"
        assert resolve_governor(GovernorSpec(kind="adaptive"), CPU).name \
            == "adaptive"
        with pytest.raises(ValueError):
            resolve_governor(42, CPU)


class TestAdaptiveConvergence:
    def test_converges_to_within_2p5_percent_of_eqn3(self):
        # The controller sees only noisy telemetry — no fitted models —
        # yet must land within 2.5 % of the static optimum per phase.
        result, gov = run_sim("adaptive", seed=0, snapshots=30)
        freqs = dict(gov.report().frequencies)
        for phase, f_star in EQN3.items():
            assert freqs[phase] == pytest.approx(f_star, rel=0.025)
        assert all(c for _, c in gov.report().converged)

    def test_energy_within_2p5_percent_of_static(self):
        adaptive, _ = run_sim("adaptive", seed=0, snapshots=30)
        static, _ = run_sim("static", seed=0, snapshots=30)
        assert adaptive.energy_j <= static.energy_j * 1.025

    def test_learned_model_tracks_the_true_curve_shape(self):
        _, gov = run_sim("adaptive", seed=0, snapshots=30)
        fit = gov.fitted(Phase.COMPRESS)
        assert fit is not None
        # True calibrated compress shape: a=0.0064, b=5.315, c=0.743,
        # sensitivity 0.55. Noisy online fits wander but must keep the
        # same character: a strong superlinear term over a static floor.
        assert 3.0 < fit["b"] < 8.0
        assert 0.5 < fit["c"] < 0.95
        assert 0.3 < fit["sensitivity"] < 0.8
        assert gov.refits > 0

    def test_convergence_stops_exploration(self):
        _, gov = run_sim("adaptive", seed=0, snapshots=30)
        # After the convergence point every decision is a hold.
        modes = [e["mode"] for e in gov.trace]
        first_hold = modes.index("hold")
        assert set(modes[first_hold:]) == {"hold"}


class TestAdaptiveBeatsMistunedStatic:
    CURVE_KW = dict(dynamic_scale=0.2)

    def test_perturbation_is_at_least_10_percent(self):
        base, flat = CalibratedPowerCurve(), PerturbedPowerCurve(**self.CURVE_KW)
        from repro.hardware.workload import WorkloadKind

        for kind in (WorkloadKind.COMPRESS_SZ, WorkloadKind.WRITE):
            p0 = base.power_watts(CPU, CPU.fmax_ghz, kind)
            p1 = flat.power_watts(CPU, CPU.fmax_ghz, kind)
            assert abs(p1 - p0) / p0 >= 0.10

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_strictly_lower_energy_than_static(self, seed):
        # With the dynamic term flattened 5x, slowing down buys almost
        # no power but still costs runtime: Eqn. 3's open-loop pin is
        # now mistuned, and the closed loop must notice and beat it.
        curve_a = PerturbedPowerCurve(**self.CURVE_KW)
        curve_s = PerturbedPowerCurve(**self.CURVE_KW)
        adaptive, _ = run_sim("adaptive", curve=curve_a, seed=seed)
        static, _ = run_sim("static", curve=curve_s, seed=seed)
        assert adaptive.energy_j < static.energy_j

    def test_oracle_is_the_lower_bound(self):
        adaptive, _ = run_sim(
            "adaptive", curve=PerturbedPowerCurve(**self.CURVE_KW), seed=0)
        oracle, _ = run_sim(
            "oracle", curve=PerturbedPowerCurve(**self.CURVE_KW), seed=0)
        assert oracle.energy_j <= adaptive.energy_j + 1e-9


class TestDeterminism:
    def test_fixed_seed_is_byte_identical(self):
        _, a = run_sim("adaptive", seed=7)
        _, b = run_sim("adaptive", seed=7)
        assert a.trace_json() == b.trace_json()
        assert a.report().trace_sha256 == b.report().trace_sha256

    def test_different_seeds_explore_differently(self):
        _, a = run_sim("adaptive", seed=0)
        _, b = run_sim("adaptive", seed=1)
        assert a.trace_json() != b.trace_json()

    def test_trace_json_is_canonical(self):
        _, gov = run_sim("adaptive", seed=0, snapshots=4)
        doc = json.loads(gov.trace_json())
        assert gov.trace_json() == json.dumps(
            doc, sort_keys=True, separators=(",", ":"))


class TestObservability:
    def test_decisions_and_refits_are_counted(self):
        reg = get_registry()

        def total(name):
            return sum(m.value for m in reg.metrics() if m.name == name)

        adjustments0 = total("repro_governor_adjustments_total")
        refits0 = total("repro_governor_refits_total")
        _, gov = run_sim("adaptive", seed=0, snapshots=30)
        assert total("repro_governor_adjustments_total") > adjustments0
        assert total("repro_governor_refits_total") >= refits0 + gov.refits


class TestInfeasibleCapEdge:
    def _total(self):
        return sum(m.value for m in get_registry().metrics()
                   if m.name == "repro_governor_infeasible_caps_total")

    def test_cap_below_fmin_pins_floor_and_tags_the_trace(self):
        gov = StaticGovernor(CPU)
        before = self._total()
        freq = gov.decide(Phase.COMPRESS, cap_ghz=CPU.fmin_ghz / 2)
        assert freq == CPU.fmin_ghz
        assert gov.trace[-1]["capped_below_fmin"] is True
        assert self._total() == before + 1

    def test_feasible_caps_leave_the_trace_unchanged(self):
        gov = StaticGovernor(CPU)
        before = self._total()
        gov.decide(Phase.COMPRESS, cap_ghz=1.2)
        gov.decide(Phase.WRITE)
        assert all("capped_below_fmin" not in e for e in gov.trace)
        assert self._total() == before

    def test_adaptive_governor_tags_too(self):
        gov = make_governor("adaptive", CPU, seed=0,
                            power_curve=CalibratedPowerCurve())
        freq = gov.decide(Phase.WRITE, cap_ghz=0.1)
        assert freq == CPU.fmin_ghz
        assert gov.trace[-1]["capped_below_fmin"] is True

    def test_zero_watt_cluster_cap_reaches_the_governor_tag(self):
        # The cluster controller maps an infeasible watt cap to
        # governor_cap_ghz == 0.0; decide() must both pin fmin and
        # record the infeasibility.
        from repro.powercap.controller import NodeCap

        cap = NodeCap(node_id="a", cap_w=0.0, cap_ghz=CPU.fmin_ghz,
                      infeasible=True)
        gov = StaticGovernor(CPU)
        freq = gov.decide(Phase.COMPRESS, cap_ghz=cap.governor_cap_ghz)
        assert freq == CPU.fmin_ghz
        assert gov.trace[-1]["capped_below_fmin"] is True
