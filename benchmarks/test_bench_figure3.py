"""Bench: regenerate Fig. 3 (data transit scaled power characteristics)."""

import numpy as np
from conftest import emit

from repro.experiments.characteristics import characteristic_bands
from repro.workflow.report import render_series


def test_bench_figure3(benchmark, ctx):
    samples = ctx.outcome.transit_samples

    bands = benchmark.pedantic(
        characteristic_bands, args=(samples, ("cpu",), "power"),
        rounds=3, iterations=1,
    )
    for (cpu,), band in sorted(bands.items()):
        emit(render_series(
            band.x,
            {"scaled_power": band.mean, "ci_low": band.lower, "ci_high": band.upper},
            title=f"FIG. 3 — data transit scaled power: {cpu}",
        ))

    for (cpu,), band in bands.items():
        assert band.mean[-1] == max(band.mean)

    # Paper prose: write floors sit higher (~0.9) than compression
    # floors (~0.8) because data writing loads the core harder. Note
    # the paper's own Table V contradicts this for Broadwell (transit
    # c = 0.7097 < compression c = 0.7429), and our curves inherit its
    # fitted constants — so the floor comparison is asserted where the
    # paper's numbers actually support it: Skylake (0.888 vs 0.794).
    comp_bands = characteristic_bands(
        ctx.outcome.compression_samples, ("cpu",), value="power"
    )
    assert bands[("skylake",)].mean[0] > comp_bands[("skylake",)].mean[0]

    # Skylake's transit range is narrower than Broadwell's (paper note).
    bw_span = bands[("broadwell",)].mean[-1] - bands[("broadwell",)].mean[0]
    sky_span = bands[("skylake",)].mean[-1] - bands[("skylake",)].mean[0]
    emit(f"Scaled power span: broadwell={bw_span:.3f}, skylake={sky_span:.3f}")
    assert sky_span < bw_span

    # Paper: ~11.2 % average power saving at a 15 % frequency cut.
    savings = []
    for band in bands.values():
        fmax = band.x[-1]
        idx = int(np.argmin(np.abs(band.x - 0.85 * fmax)))
        savings.append(1.0 - band.mean[idx] / band.mean[-1])
    avg = float(np.mean(savings))
    emit(f"Average transit power saving at 0.85*fmax: {avg * 100:.1f} % (paper: 11.2 %)")
    assert 0.06 < avg < 0.18
