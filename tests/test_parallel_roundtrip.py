"""Parallel execution layer: executor contract + round-trip properties.

Two families of guarantees:

1. **Executor contract** — ordered results, first-error propagation with
   cancellation of queued work, auto-selection rules.
2. **Round-trip properties** — seeded random arrays over dtype / shape /
   error bound / memory layout (Fortran-ordered and non-contiguous
   included) must reconstruct within ``max|x - x̂| ≤ eb`` for SZ, ZFP
   and ChunkedCompressor under every executor backend, with the chunked
   container byte-identical across backends.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import ChunkedCompressor, SZCompressor, ZFPCompressor
from repro.compressors.base import CompressionError
from repro.parallel import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    choose_backend,
    default_workers,
    get_executor,
    resolve_executor,
)


# Module-level so the process pool can pickle them.
def _square(x):
    return x * x


def _fail_on_negative(x):
    if x < 0:
        raise ValueError(f"negative task {x}")
    return x


@pytest.fixture(scope="module")
def thread_pool():
    with ThreadExecutor(2) as ex:
        yield ex


@pytest.fixture(scope="module")
def process_pool():
    with ProcessExecutor(2) as ex:
        yield ex


class TestExecutorContract:
    def test_results_keep_submission_order(self, thread_pool, process_pool):
        items = list(range(50))
        expected = [x * x for x in items]
        assert SerialExecutor().map(_square, items) == expected
        assert thread_pool.map(_square, items) == expected
        assert process_pool.map(_square, items) == expected

    def test_map_timed_returns_per_task_seconds(self, thread_pool):
        results, times = thread_pool.map_timed(_square, [1, 2, 3])
        assert results == [1, 4, 9]
        assert len(times) == 3
        assert all(t >= 0.0 for t in times)

    def test_empty_and_single_item_maps(self, thread_pool):
        assert thread_pool.map(_square, []) == []
        assert thread_pool.map(_square, [7]) == [49]

    @pytest.mark.parametrize("make", [
        SerialExecutor,
        lambda: ThreadExecutor(2),
        lambda: ProcessExecutor(2),
    ], ids=["serial", "thread", "process"])
    def test_task_error_propagates(self, make):
        with make() as ex:
            with pytest.raises(ValueError, match="negative task"):
                ex.map(_fail_on_negative, [1, -2, 3, 4])

    def test_failure_cancels_queued_tasks(self):
        # One worker: the first task fails while the rest are still
        # queued, so cancellation must prevent (most of) them running.
        ran = []
        lock = threading.Lock()

        def task(i):
            with lock:
                ran.append(i)
            if i == 0:
                raise RuntimeError("boom")
            return i

        with ThreadExecutor(1) as ex:
            with pytest.raises(RuntimeError, match="boom"):
                ex.map(task, list(range(16)))
        assert len(ran) <= 2  # the failing task + at most one in flight

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)
        with pytest.raises(KeyError):
            get_executor("gpu")

    def test_registry(self):
        names = available_executors()
        assert {"serial", "thread", "process", "auto"} <= set(names)


class TestAutoSelection:
    BIG = 64 << 20  # per-task bytes that dwarf any pool overhead

    def test_few_tasks_stay_serial(self):
        assert choose_backend(1, self.BIG, codec_cost=8.0) == "serial"
        assert choose_backend(0) == "serial"

    def test_single_worker_stays_serial(self):
        assert choose_backend(64, self.BIG, codec_cost=8.0, workers=1) == "serial"

    def test_tiny_work_stays_serial(self):
        assert choose_backend(64, task_nbytes=128, codec_cost=8.0, workers=4) == "serial"

    def test_heavy_codec_goes_process(self):
        assert choose_backend(64, self.BIG, codec_cost=8.0, workers=4) == "process"

    def test_gil_releasing_codec_goes_thread(self):
        assert choose_backend(64, self.BIG, codec_cost=1.0, workers=4) == "thread"

    def test_resolve_passes_instances_through_unowned(self):
        mine = SerialExecutor()
        ex, owned = resolve_executor(mine, n_tasks=100)
        assert ex is mine and not owned

    def test_resolve_caps_workers_at_task_count(self):
        ex, owned = resolve_executor("thread", workers=64, n_tasks=3)
        try:
            assert ex.workers == 3 and owned
        finally:
            ex.close()

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestCloseIdempotency:
    """Regression: close() must survive double-close and __del__ races.

    Interpreter shutdown can run ``__del__`` while (or after) an
    explicit ``close()`` ran — historically the second shutdown call
    reached a dead pool. ``close`` now claims the pool handle under a
    lock, so any interleaving of closes shuts the pool down exactly
    once and every later call is a no-op.
    """

    @pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
    def test_double_close_after_use(self, cls):
        ex = cls(2)
        assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
        ex.close()
        ex.close()
        ex.close()

    @pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
    def test_close_without_use(self, cls):
        ex = cls(2)
        ex.close()
        ex.close()

    @pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
    def test_del_interleaved_with_close(self, cls):
        ex = cls(2)
        ex.map(_square, [1, 2, 3])
        ex.close()
        ex.__del__()  # what GC would run; must be silent
        ex.close()

    def test_concurrent_closes_shut_down_once(self):
        # Many threads racing close() on a used pool: no exception, and
        # the pool handle ends cleared.
        ex = ThreadExecutor(2)
        ex.map(_square, list(range(8)))
        errors = []

        def _close():
            try:
                ex.close()
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=_close) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert ex._pool is None

    def test_context_manager_then_explicit_close(self):
        with ThreadExecutor(2) as ex:
            ex.map(_square, [1, 2])
            ex.close()  # early close inside the with-block
        ex.close()  # and once more after __exit__ already closed


def _random_array(draw):
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    ndim = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(3, 10)) for _ in range(ndim))
    seed = draw(st.integers(0, 2**31))
    scale = draw(st.sampled_from([1e-2, 1.0]))
    arr = np.random.default_rng(seed).normal(scale=scale, size=shape).astype(dtype)
    layout = draw(st.sampled_from(["c", "fortran", "strided"]))
    if layout == "fortran":
        arr = np.asfortranarray(arr)
    elif layout == "strided" and arr.shape[0] >= 6:
        arr = arr[::2]  # non-contiguous view along the slab axis
    return arr


arrays = st.composite(_random_array)()
bounds = st.sampled_from([1e-1, 1e-2, 1e-3])


class TestCodecRoundTripProperties:
    @pytest.mark.parametrize("codec", [SZCompressor(), ZFPCompressor()],
                             ids=lambda c: c.name)
    @given(arr=arrays, eb=bounds)
    @settings(max_examples=25, deadline=None)
    def test_bound_holds(self, codec, arr, eb):
        buf, rec = codec.roundtrip(arr, eb)
        assert rec.shape == buf.shape
        assert np.max(np.abs(arr.astype(np.float64) - rec.astype(np.float64))) <= eb


class TestChunkedRoundTripAllBackends:
    @pytest.mark.parametrize("codec", ["sz", "zfp"])
    @given(arr=arrays, eb=bounds)
    @settings(max_examples=15, deadline=None)
    def test_backends_agree_and_hold_bound(self, thread_pool, process_pool,
                                           codec, arr, eb):
        blobs = {}
        for ex in (SerialExecutor(), thread_pool, process_pool):
            cc = ChunkedCompressor(codec, max_chunk_bytes=256, executor=ex)
            container = cc.compress(arr, eb)
            rec = cc.decompress(container)
            assert rec.shape == np.ascontiguousarray(arr).shape
            assert np.max(
                np.abs(arr.astype(np.float64) - rec.astype(np.float64))
            ) <= eb
            blobs[ex.name] = container.to_bytes()
        assert blobs["serial"] == blobs["thread"] == blobs["process"]

    @pytest.mark.parametrize("codec", ["sz", "zfp"])
    def test_64_slab_pool_output_byte_identical_to_serial(
        self, thread_pool, process_pool, codec
    ):
        # Acceptance case: >= 64 slabs, pool output == serial output.
        arr = np.random.default_rng(7).normal(size=(64, 128)).astype(np.float32)
        reference = None
        for ex in (SerialExecutor(), thread_pool, process_pool):
            cc = ChunkedCompressor(codec, max_chunk_bytes=512, executor=ex)
            container = cc.compress(arr, 1e-2)
            assert len(container.chunks) == 64
            blob = container.to_bytes()
            if reference is None:
                reference = blob
            assert blob == reference
            assert cc.last_stats is not None
            assert cc.last_stats.n_tasks == 64
            assert cc.last_stats.bytes_in == arr.nbytes
            rec = cc.decompress(container)
            assert np.max(np.abs(arr - rec)) <= 1e-2

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_slab_error_propagates_from_every_backend(self, executor):
        arr = np.ones((16, 64), dtype=np.float32)
        arr[-1, 0] = np.nan  # poisons only the last slab
        cc = ChunkedCompressor("sz", max_chunk_bytes=256,
                               executor=executor, workers=2)
        with pytest.raises(CompressionError, match="finite"):
            cc.compress(arr, 1e-2)

    def test_instrumentation_records_per_slab_stats(self):
        arr = np.random.default_rng(1).normal(size=(8, 32)).astype(np.float32)
        cc = ChunkedCompressor("sz", max_chunk_bytes=128, executor="serial")
        container = cc.compress(arr, 1e-2)
        stats = cc.last_stats
        assert stats.executor == "serial" and stats.workers == 1
        assert stats.n_tasks == len(container.chunks)
        assert stats.bytes_in == arr.nbytes
        assert stats.bytes_out == sum(c.nbytes for c in container.chunks)
        assert stats.wall_s > 0 and stats.task_seconds > 0
        assert stats.concurrency == pytest.approx(
            stats.task_seconds / stats.wall_s, rel=1e-6
        )
        row = stats.as_row()
        assert row["tasks"] == stats.n_tasks
        assert "concurrency" in stats.summary()
