"""ClusterCapController: epochs, receipts, hysteresis, telemetry, inversion."""

import json

import pytest

from repro.governor.telemetry import TelemetryBus
from repro.hardware.cpu import BROADWELL_D1548, SKYLAKE_4114
from repro.hardware.powercurves import CalibratedPowerCurve
from repro.observability.metrics import get_registry
from repro.powercap import (
    ClusterCapController,
    cap_ghz_for_watts,
    node_power_model,
    phase_caps_for_budget,
)

CPU = BROADWELL_D1548
CURVE = CalibratedPowerCurve()


@pytest.fixture(autouse=True)
def fresh_metrics():
    get_registry().reset()
    yield
    get_registry().reset()


def make_controller(budget=160.0, **kw):
    kw.setdefault("nfs_reserve_w", 40.0)
    return ClusterCapController(budget, **kw)


class TestInversion:
    def test_cap_ghz_snaps_down_onto_the_grid(self):
        grid = CPU.available_frequencies()
        for watts in (16.0, 18.0, 20.0):
            cap_ghz, infeasible = cap_ghz_for_watts(CPU, CURVE, watts,
                                                    "compress")
            assert not infeasible
            assert any(abs(cap_ghz - f) < 1e-9 for f in grid)
            # Snapping down means the granted clock fits the watts.
            assert CURVE.power_watts(CPU, cap_ghz, _kind("compress")) \
                <= watts + 1e-6

    def test_floor_watts_are_infeasible(self):
        floor = CURVE.power_watts(CPU, CPU.fmin_ghz, _kind("compress"))
        cap_ghz, infeasible = cap_ghz_for_watts(CPU, CURVE, floor * 0.5,
                                                "compress")
        assert infeasible
        assert cap_ghz == pytest.approx(CPU.fmin_ghz)

    def test_phase_caps_for_budget_covers_both_phases(self):
        caps = phase_caps_for_budget(CPU, CURVE, 18.0)
        assert set(caps) == {"compress", "write"}
        assert caps["compress"] > 0 and caps["write"] > 0

    def test_phase_caps_mark_infeasible_with_zero(self):
        caps = phase_caps_for_budget(CPU, CURVE, 2.0)
        assert caps == {"compress": 0.0, "write": 0.0}

    def test_node_power_model_matches_the_curve(self):
        model = node_power_model("n0", CPU, CURVE, phase="compress")
        freqs = CPU.available_frequencies()
        assert model.grid == tuple(float(f) for f in freqs)
        assert model.power_w[-1] == pytest.approx(
            CURVE.power_watts(CPU, CPU.fmax_ghz, _kind("compress")))


def _kind(phase):
    from repro.powercap.controller import _PHASE_KIND

    return _PHASE_KIND[phase]


class TestMembershipEpochs:
    def test_each_join_is_an_epoch_rejoin_is_not(self):
        ctl = make_controller()
        ctl.join("a", CPU, CURVE)
        ctl.join("b", CPU, CURVE)
        assert ctl.epoch == 2
        ctl.join("a", CPU, CURVE, work=2.0)  # re-announcement
        assert ctl.epoch == 2
        assert ctl.node_ids() == ("a", "b")

    def test_leave_redistributes_to_survivors(self):
        ctl = make_controller(budget=70.0)
        for nid in ("a", "b", "c"):
            ctl.join(nid, CPU, CURVE)
        before = {nid: c.cap_w for nid, c in ctl.caps().items()}
        ctl.leave("b")
        after = ctl.caps()
        assert set(after) == {"a", "c"}
        # The dead node's watts went back into the pool.
        assert all(after[nid].cap_w >= before[nid] - 1e-9
                   for nid in ("a", "c"))

    def test_leave_unknown_node_raises(self):
        ctl = make_controller()
        with pytest.raises(KeyError):
            ctl.leave("ghost")

    def test_nfs_reserve_never_reaches_the_nodes(self):
        reserve = 40.0
        ctl = make_controller(budget=100.0, nfs_reserve_w=reserve)
        for nid in ("a", "b", "c", "d"):
            ctl.join(nid, CPU, CURVE)
        total = sum(c.cap_w for c in ctl.caps().values())
        assert total <= 100.0 - reserve + 1e-6

    def test_reserve_must_leave_node_budget(self):
        with pytest.raises(ValueError, match="leaves no budget"):
            ClusterCapController(50.0, nfs_reserve_w=50.0)


class TestPhasesAndHysteresis:
    def test_phase_change_is_one_epoch(self):
        ctl = make_controller()
        ctl.join("a", CPU, CURVE)
        e = ctl.epoch
        ctl.begin_phase("write")
        assert ctl.epoch == e + 1 and ctl.phase == "write"
        ctl.begin_phase("write")  # no-op: same phase
        assert ctl.epoch == e + 1

    def test_hysteresis_holds_near_identical_caps(self):
        # Two equal nodes: compress and write solve to slightly
        # different watt splits; a generous hysteresis holds the caps.
        sticky = make_controller(budget=60.0, hysteresis=0.5)
        loose = make_controller(budget=60.0, hysteresis=0.0)
        for ctl in (sticky, loose):
            ctl.join("a", CPU, CURVE)
            ctl.join("b", CPU, CURVE)
            ctl.begin_phase("write")
        held = {n: c.cap_w for n, c in sticky.caps().items()}
        moved = {n: c.cap_w for n, c in loose.caps().items()}
        compress_caps = {
            n: cap["watts"]
            for n, cap in sticky.trace[1]["caps"].items()
        }
        assert held == pytest.approx(compress_caps)  # held across the flip
        assert sum(moved.values()) <= 60.0 - 40.0 + 1e-6

    def test_infeasible_budget_pins_fmin_and_counts(self):
        ctl = make_controller(budget=44.0)  # 4 W for two nodes
        ctl.join("a", CPU, CURVE)
        ctl.join("b", CPU, CURVE)
        caps = ctl.caps()
        assert any(c.infeasible for c in caps.values())
        for cap in caps.values():
            if cap.infeasible:
                assert cap.cap_ghz == pytest.approx(CPU.fmin_ghz)
                assert cap.governor_cap_ghz == 0.0
            else:
                assert cap.governor_cap_ghz == cap.cap_ghz
        metric = get_registry().counter(
            "repro_powercap_infeasible_caps_total",
            {"policy": "waterfill"})
        assert metric.value >= 1


class TestTelemetryIntegration:
    def test_bus_samples_become_demand(self):
        bus = TelemetryBus()
        ctl = make_controller(telemetry=bus)
        ctl.join("node-a", CPU, CURVE)
        bus.publish("compress", 2.0, 21.5, 1.0, 1000, source="node-a")
        bus.publish("compress", 2.0, 22.5, 1.0, 1000, source="node-a")
        bus.publish("compress", 2.0, 99.0, 1.0, 1000, source="stranger")
        assert ctl.demands() == {"node-a": pytest.approx(22.0)}
        ctl.close()

    def test_phase_flip_on_the_bus_triggers_an_epoch(self):
        bus = TelemetryBus()
        ctl = make_controller(telemetry=bus)
        ctl.join("node-a", CPU, CURVE)
        e = ctl.epoch
        bus.publish("write", 1.7, 23.0, 1.0, 1000, source="node-a")
        assert ctl.phase == "write"
        assert ctl.epoch == e + 1
        ctl.close()

    def test_close_detaches_from_the_bus(self):
        bus = TelemetryBus()
        ctl = make_controller(telemetry=bus)
        ctl.join("node-a", CPU, CURVE)
        ctl.close()
        bus.publish("write", 1.7, 23.0, 1.0, 1000, source="node-a")
        assert ctl.phase == "compress"
        assert ctl.demands() == {}

    def test_context_manager_closes(self):
        bus = TelemetryBus()
        with make_controller(telemetry=bus) as ctl:
            ctl.join("node-a", CPU, CURVE)
        bus.publish("write", 1.7, 23.0, 1.0, 1000, source="node-a")
        assert ctl.phase == "compress"

    def test_record_demand_validates(self):
        ctl = make_controller()
        ctl.join("a", CPU, CURVE)
        with pytest.raises(KeyError):
            ctl.record_demand("ghost", 20.0)
        with pytest.raises(ValueError):
            ctl.record_demand("a", float("nan"))


class TestReceipts:
    def _drive(self, **kw):
        ctl = make_controller(**kw)
        ctl.join("a", CPU, CURVE)
        ctl.join("b", SKYLAKE_4114, CURVE, work=2.0)
        ctl.record_demand("a", 20.0)
        ctl.begin_phase("write")
        ctl.reallocate()
        ctl.leave("a")
        return ctl

    def test_trace_is_canonical_json(self):
        ctl = self._drive()
        text = ctl.trace_json()
        assert json.loads(text) == ctl.trace
        assert " " not in text.split('"event"')[0]  # compact separators

    def test_identical_runs_share_a_receipt(self):
        a, b = self._drive(), self._drive()
        assert a.report().trace_sha256 == b.report().trace_sha256

    def test_different_policies_diverge(self):
        a = self._drive(policy="waterfill")
        b = self._drive(policy="uniform")
        assert a.report().trace_sha256 != b.report().trace_sha256

    def test_report_summarizes_the_run(self):
        ctl = self._drive()
        rep = ctl.report()
        assert rep.epochs == ctl.epoch == 5
        assert rep.phase == "write"
        assert [nid for nid, _, _ in rep.caps] == ["b"]
        assert rep.makespan == pytest.approx(ctl.last_makespan)
        assert len(rep.trace_sha256) == 64

    def test_epoch_counter_increments(self):
        self._drive()
        joins = get_registry().counter(
            "repro_powercap_epochs_total",
            {"policy": "waterfill", "event": "join"})
        assert joins.value == 2
