"""Unit tests for the compress-then-write dumper."""

import numpy as np
import pytest

from repro.compressors import SZCompressor, ZFPCompressor
from repro.data import load_field
from repro.hardware.cpu import BROADWELL_D1548
from repro.hardware.node import SimulatedNode
from repro.iosim.dumper import DataDumper


@pytest.fixture(scope="module")
def sample():
    return load_field("nyx", "velocity_x", scale=32)


@pytest.fixture
def dumper():
    node = SimulatedNode(BROADWELL_D1548, power_noise=0.0, runtime_noise=0.0, seed=0)
    return DataDumper(node, repeats=1)


class TestDump:
    def test_report_structure(self, dumper, sample):
        rep = dumper.dump(SZCompressor(), sample, 1e-2, int(100e9))
        assert rep.compress.stage == "compress"
        assert rep.write.stage == "write"
        assert rep.compression_ratio > 1.0
        assert rep.total_energy_j == pytest.approx(
            rep.compress.energy_j + rep.write.energy_j
        )
        assert rep.total_runtime_s == pytest.approx(
            rep.compress.runtime_s + rep.write.runtime_s
        )

    def test_write_bytes_reduced_by_ratio(self, dumper, sample):
        rep = dumper.dump(SZCompressor(), sample, 1e-1, int(100e9))
        assert rep.write.bytes_processed == pytest.approx(
            100e9 / rep.compression_ratio, rel=0.01
        )

    def test_default_frequencies_are_base_clock(self, dumper, sample):
        rep = dumper.dump(SZCompressor(), sample, 1e-2, int(10e9))
        assert rep.compress.freq_ghz == 2.0
        assert rep.write.freq_ghz == 2.0

    def test_per_stage_frequencies_applied(self, dumper, sample):
        rep = dumper.dump(
            SZCompressor(), sample, 1e-2, int(10e9),
            compress_freq_ghz=1.75, write_freq_ghz=1.7,
        )
        assert rep.compress.freq_ghz == pytest.approx(1.75)
        assert rep.write.freq_ghz == pytest.approx(1.7)

    def test_tuning_reduces_energy_noise_free(self, dumper, sample):
        base = dumper.dump(SZCompressor(), sample, 1e-2, int(100e9))
        tuned = dumper.dump(
            SZCompressor(), sample, 1e-2, int(100e9),
            compress_freq_ghz=1.75, write_freq_ghz=1.7,
        )
        assert tuned.total_energy_j < base.total_energy_j
        assert tuned.total_runtime_s > base.total_runtime_s

    def test_finer_bound_more_total_energy(self, dumper, sample):
        coarse = dumper.dump(SZCompressor(), sample, 1e-1, int(100e9))
        fine = dumper.dump(SZCompressor(), sample, 1e-4, int(100e9))
        assert fine.total_energy_j > coarse.total_energy_j
        assert fine.compression_ratio < coarse.compression_ratio

    def test_zfp_supported(self, dumper, sample):
        rep = dumper.dump(ZFPCompressor(), sample, 1e-2, int(10e9))
        assert rep.compression_ratio > 1.0

    def test_energy_scales_with_target(self, dumper, sample):
        small = dumper.dump(SZCompressor(), sample, 1e-2, int(50e9))
        large = dumper.dump(SZCompressor(), sample, 1e-2, int(200e9))
        assert large.total_energy_j == pytest.approx(4 * small.total_energy_j, rel=0.01)

    def test_invalid_target(self, dumper, sample):
        with pytest.raises(ValueError):
            dumper.dump(SZCompressor(), sample, 1e-2, 0)

    def test_invalid_repeats(self):
        node = SimulatedNode(BROADWELL_D1548)
        with pytest.raises(ValueError):
            DataDumper(node, repeats=0)


class TestChunkedDump:
    def _dumper(self, **kwargs):
        node = SimulatedNode(
            BROADWELL_D1548, power_noise=0.0, runtime_noise=0.0, seed=0
        )
        return DataDumper(node, repeats=1, **kwargs)

    def test_monolithic_report_has_no_parallel_stats(self, sample):
        rep = self._dumper().dump(SZCompressor(), sample, 1e-2, int(10e9))
        assert rep.parallel is None

    def test_chunked_dump_records_slab_stats(self, sample):
        dumper = self._dumper(chunk_bytes=1 << 12, executor="serial")
        rep = dumper.dump(SZCompressor(), sample, 1e-2, int(10e9))
        assert rep.parallel is not None
        assert rep.parallel.executor == "serial"
        assert rep.parallel.n_tasks > 1
        assert rep.parallel.bytes_in == sample.nbytes
        assert rep.compression_ratio > 1.0

    def test_chunked_energy_matches_monolithic_closely(self, sample):
        # Slab headers shave a little off the ratio but the energy
        # pipeline must stay consistent with the monolithic path.
        mono = self._dumper().dump(SZCompressor(), sample, 1e-2, int(10e9))
        chunked = self._dumper(chunk_bytes=1 << 14, executor="thread",
                               workers=2).dump(SZCompressor(), sample, 1e-2,
                                               int(10e9))
        assert chunked.compression_ratio == pytest.approx(
            mono.compression_ratio, rel=0.25
        )
        assert chunked.compress.energy_j == pytest.approx(
            mono.compress.energy_j, rel=0.05
        )

    def test_invalid_chunk_bytes(self):
        node = SimulatedNode(BROADWELL_D1548)
        with pytest.raises(ValueError):
            DataDumper(node, chunk_bytes=0)
