"""Shared machinery for the characteristic plots (Figs. 1-4).

Each figure shows scaled power or runtime vs. frequency, one trend per
(CPU, compressor) or per CPU, with 95 % confidence shading pooled over
datasets / error bounds / sizes and measurement repeats.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.samples import SampleSet
from repro.utils.stats import ConfidenceBand, confidence_band

__all__ = ["characteristic_bands", "bands_to_series"]

_VALUE_FIELDS = {
    "power": ("power_samples", "power_w", "scaled_power_w"),
    "runtime": ("runtime_samples", "runtime_s", "scaled_runtime_s"),
}


def characteristic_bands(
    samples: SampleSet,
    group_keys: Sequence[str] = ("cpu", "compressor"),
    value: str = "power",
    confidence: float = 0.95,
) -> Dict[Tuple, ConfidenceBand]:
    """Scaled characteristic curves with confidence bands.

    Per-repeat raw values are rescaled by each measurement series' own
    max-clock reference (recovered from the mean and scaled-mean
    fields), then pooled per (group, frequency).
    """
    if value not in _VALUE_FIELDS:
        raise KeyError(f"value must be one of {sorted(_VALUE_FIELDS)}, got {value!r}")
    samples_key, mean_key, scaled_key = _VALUE_FIELDS[value]

    bands: Dict[Tuple, ConfidenceBand] = {}
    for gkey, group in samples.group_by(*group_keys).items():
        pooled: Dict[float, list] = {}
        for rec in group:
            scaled_mean = rec[scaled_key]
            ref = rec[mean_key] / scaled_mean if scaled_mean else float("nan")
            raw = rec.get(samples_key) or (rec[mean_key],)
            pooled.setdefault(rec["freq_ghz"], []).extend(v / ref for v in raw)
        freqs = np.array(sorted(pooled))
        bands[gkey] = confidence_band(
            freqs, [pooled[f] for f in freqs], confidence=confidence
        )
    return bands


def bands_to_series(
    bands: Dict[Tuple, ConfidenceBand]
) -> Dict[str, Dict[str, np.ndarray]]:
    """Flatten bands into name → {x, mean, lower, upper} for rendering."""
    out = {}
    for gkey, band in bands.items():
        name = "/".join(str(k) for k in (gkey if isinstance(gkey, tuple) else (gkey,)))
        out[name] = {
            "x": band.x,
            "mean": band.mean,
            "lower": band.lower,
            "upper": band.upper,
        }
    return out
