"""Table V — power models and goodness of fit for data transit.

Paper reference values (scaled power, f in GHz):

=========  ==========================  =======  =======  ======
Model      P_Data(f)                   SSE      RMSE     R²
=========  ==========================  =======  =======  ======
Total      0.0133 f^3.379 + 0.7985     0.8446   0.05631  0.4361
Broadwell  0.0261 f^3.395 + 0.7097     0.03423  0.01675  0.9578
Skylake    9.095e-9 f^20.9 + 0.888     0.07875  0.02355  0.5992
=========  ==========================  =======  =======  ======
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.context import ExperimentContext
from repro.workflow.report import render_table

__all__ = ["run", "main", "PAPER_ROWS"]

PAPER_ROWS = (
    {"model": "Total", "a": 0.0133, "b": 3.379, "c": 0.7985, "sse": 0.8446, "rmse": 0.05631, "r2": 0.4361},
    {"model": "Broadwell", "a": 0.0261, "b": 3.395, "c": 0.7097, "sse": 0.03423, "rmse": 0.01675, "r2": 0.9578},
    {"model": "Skylake", "a": 9.095e-9, "b": 20.9, "c": 0.888, "sse": 0.07875, "rmse": 0.02355, "r2": 0.5992},
)


def run(ctx: Optional[ExperimentContext] = None) -> Tuple[Dict[str, object], ...]:
    """Reproduced Table V rows (measured on the simulated campaign)."""
    ctx = ctx if ctx is not None else ExperimentContext()
    return ctx.outcome.model_table("transit")


def main(ctx: Optional[ExperimentContext] = None) -> str:
    """Render reproduced vs. paper rows side by side."""
    rows = run(ctx)
    text = render_table(rows, title="TABLE V — MODELS AND GF DATA TRANSIT (reproduced)")
    text += "\n\n" + render_table(PAPER_ROWS, title="Paper reference values")
    print(text)
    return text


if __name__ == "__main__":
    main()
