"""HTTP API tests: routing, status codes, jobs, drain semantics."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.observability.metrics import get_registry as get_metrics_registry
from repro.service.handlers import RequestHandlers
from repro.service.http import ServiceConfig, TuningServer
from repro.service.registry import ModelRegistry
from repro.service.scheduler import Scheduler
from tests.service_helpers import make_bundle


@pytest.fixture(autouse=True)
def fresh_metrics():
    get_metrics_registry().reset()
    yield
    get_metrics_registry().reset()


@pytest.fixture
def server():
    srv = TuningServer(ServiceConfig(port=0, workers=2, queue_size=16))
    srv.registry.put("prod", make_bundle())
    with srv:
        yield srv


def request_json(url, method="GET", body=None):
    """Raw HTTP helper returning (status, parsed_json)."""
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=10.0) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode()
        return exc.code, (json.loads(detail) if detail else {})


class TestHealthAndMetrics:
    def test_healthz(self, server):
        status, doc = request_json(server.url + "/healthz")
        assert (status, doc) == (200, {"status": "ok"})

    def test_readyz_ready(self, server):
        status, doc = request_json(server.url + "/readyz")
        assert (status, doc["status"]) == (200, "ready")

    def test_metrics_is_prometheus_text(self, server):
        request_json(server.url + "/v1/tune", "POST", {
            "model": "prod", "arch": "broadwell", "stage": "compress",
        })
        with urllib.request.urlopen(server.url + "/metrics", timeout=10.0) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            body = resp.read().decode()
        assert "# TYPE repro_service_requests_total counter" in body
        assert (
            'repro_service_requests_total{endpoint="tune",status="ok"} 1'
            in body
        )

    def test_unknown_route_404(self, server):
        status, doc = request_json(server.url + "/v2/nothing")
        assert (status, doc["error"]) == (404, "not_found")


class TestModels:
    def test_list_and_get(self, server):
        status, doc = request_json(server.url + "/v1/models")
        assert status == 200
        assert [m["name"] for m in doc["models"]] == ["prod"]
        status, entry = request_json(server.url + "/v1/models/prod")
        assert (status, entry["version"]) == (200, 1)
        status, entry = request_json(server.url + "/v1/models/prod?version=1")
        assert status == 200

    def test_put_registers_new_version(self, server):
        doc = json.loads(make_bundle(a=0.009).to_json())
        status, entry = request_json(
            server.url + "/v1/models/prod", "PUT", doc
        )
        assert (status, entry["version"]) == (200, 2)

    def test_put_invalid_bundle_400(self, server):
        status, doc = request_json(
            server.url + "/v1/models/prod", "PUT", {"schema_version": 99}
        )
        assert (status, doc["error"]) == (400, "bad_request")

    def test_unknown_model_404(self, server):
        status, doc = request_json(server.url + "/v1/models/ghost")
        assert (status, doc["error"]) == (404, "not_found")


class TestTune:
    def test_tune_optimal(self, server):
        status, doc = request_json(server.url + "/v1/tune", "POST", {
            "model": "prod", "arch": "broadwell", "stage": "compress",
            "objective": "energy",
        })
        assert status == 200
        assert doc["model"] == "prod" and doc["version"] == 1
        assert 0.8 <= doc["freq_ghz"] <= 2.0
        assert doc["objective"] == "energy"

    def test_tune_eqn3(self, server):
        status, doc = request_json(server.url + "/v1/tune", "POST", {
            "model": "prod", "arch": "broadwell", "stage": "compress",
            "policy": "eqn3",
        })
        assert status == 200
        assert doc["freq_ghz"] == 1.75  # 0.875 * 2.0 GHz snapped

    def test_bad_json_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/tune", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10.0)
        assert err.value.code == 400

    def test_unknown_field_400(self, server):
        status, doc = request_json(server.url + "/v1/tune", "POST", {
            "model": "prod", "arch": "broadwell", "stage": "compress",
            "objectiv": "energy",
        })
        assert (status, doc["error"]) == (400, "bad_request")
        assert "objectiv" in doc["message"]

    def test_unknown_model_404(self, server):
        status, doc = request_json(server.url + "/v1/tune", "POST", {
            "model": "ghost", "arch": "broadwell", "stage": "compress",
        })
        assert (status, doc["error"]) == (404, "not_found")

    def test_unknown_arch_404(self, server):
        status, doc = request_json(server.url + "/v1/tune", "POST", {
            "model": "prod", "arch": "zen4", "stage": "compress",
        })
        assert status == 404

    def test_bad_stage_400(self, server):
        status, doc = request_json(server.url + "/v1/tune", "POST", {
            "model": "prod", "arch": "broadwell", "stage": "transmogrify",
        })
        assert status == 400


class TestDecide:
    def test_decide_contended_write_compresses(self, server):
        status, doc = request_json(server.url + "/v1/decide", "POST", {
            "arch": "skylake", "ratio": 4.0, "error_bound": 1e-3,
            "nbytes": 10**9, "clients": 64, "criterion": "time",
        })
        assert status == 200
        assert doc["decision"] == "compress"
        assert doc["compressed"]["time_s"] < doc["raw"]["time_s"]
        assert doc["breakeven_bandwidth_bps"] > 0

    def test_decide_fat_link_writes_raw(self, server):
        status, doc = request_json(server.url + "/v1/decide", "POST", {
            "arch": "skylake", "ratio": 1.05, "error_bound": 1e-6,
            "nbytes": 10**9, "clients": 1,
        })
        assert status == 200
        assert doc["decision"] == "raw-write"

    def test_bad_ratio_400(self, server):
        status, doc = request_json(server.url + "/v1/decide", "POST", {
            "arch": "skylake", "ratio": -1.0, "error_bound": 1e-3,
            "nbytes": 100,
        })
        assert status == 400


class TestAdmissionOverHttp:
    def test_full_queue_answers_429_with_retry_after(self):
        gate = threading.Event()
        registry = ModelRegistry()
        real = RequestHandlers(registry)

        def stalling(kind, payload):
            if payload.get("_stall"):
                gate.wait(15.0)
                return {"stalled": True}
            return real(kind, payload)

        server = TuningServer(
            ServiceConfig(port=0, workers=1, queue_size=1, batch_max=1),
            registry=registry,
            scheduler=Scheduler(stalling, queue_size=1, workers=1, batch_max=1),
        )
        server.registry.put("prod", make_bundle())
        with server:
            results = {}

            def post(tag, body):
                results[tag] = request_json(
                    server.url + "/v1/tune", "POST", body
                )

            stall_thread = threading.Thread(
                target=post, args=("stall", {"_stall": True})
            )
            stall_thread.start()
            time.sleep(0.2)  # dispatcher now stuck; queue empty
            fill_thread = threading.Thread(
                target=post,
                args=("fill", {"model": "prod", "arch": "broadwell",
                               "stage": "compress"}),
            )
            fill_thread.start()
            time.sleep(0.2)  # queue now holds the fill request
            req = urllib.request.Request(
                server.url + "/v1/tune",
                data=json.dumps({"model": "prod", "arch": "broadwell",
                                 "stage": "write"}).encode(),
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=10.0)
            assert err.value.code == 429
            assert err.value.headers["Retry-After"] is not None
            body = json.loads(err.value.read().decode())
            assert body["error"] == "queue_full"
            gate.set()
            stall_thread.join(15.0)
            fill_thread.join(15.0)
            # The accepted requests were served despite the reject.
            assert results["stall"][0] == 200
            assert results["fill"][0] == 200


class TestJobs:
    def test_characterize_job_lifecycle(self, server):
        status, doc = request_json(server.url + "/v1/characterize", "POST", {
            "model": "fitted", "repeats": 1, "stride": 8, "scale": 64,
        })
        assert status == 202
        job_id = doc["job_id"]
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status, job = request_json(server.url + f"/v1/jobs/{job_id}")
            assert status == 200
            if job["state"] in ("succeeded", "failed"):
                break
            time.sleep(0.1)
        assert job["state"] == "succeeded", job
        assert job["result"]["name"] == "fitted"
        assert job["result"]["version"] == 1
        # The fitted bundle is immediately servable.
        status, doc = request_json(server.url + "/v1/tune", "POST", {
            "model": "fitted", "arch": "broadwell", "stage": "compress",
        })
        assert status == 200

    def test_bad_characterize_fails_before_202(self, server):
        status, doc = request_json(server.url + "/v1/characterize", "POST", {
            "model": "x", "curve": "imaginary",
        })
        assert (status, doc["error"]) == (400, "bad_request")

    def test_unknown_job_404(self, server):
        status, doc = request_json(server.url + "/v1/jobs/deadbeef")
        assert (status, doc["error"]) == (404, "not_found")


class TestDrain:
    def test_drain_flips_readyz_and_refuses_new_work(self):
        server = TuningServer(ServiceConfig(port=0, workers=2))
        server.registry.put("prod", make_bundle())
        server.start()
        assert request_json(server.url + "/healthz")[0] == 200
        assert server.drain(30.0)
        # The listener is closed; nothing should answer any more.
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(server.url + "/readyz", timeout=2.0)

    def test_drain_completes_accepted_job(self):
        server = TuningServer(ServiceConfig(port=0, workers=2))
        started = threading.Event()
        done = threading.Event()

        def slow_job():
            started.set()
            time.sleep(0.3)
            done.set()
            return {"ok": True}

        with server:
            job = server.jobs.submit("test", slow_job)
            started.wait(5.0)
            assert server.drain(30.0)
        assert done.is_set()
        assert server.jobs.get(job.id).state == "succeeded"
