"""Unit tests for the synthetic field generators."""

import numpy as np
import pytest

from repro.data.fields import (
    gaussian_random_field,
    lognormal_density_field,
    particle_coordinates,
    smooth_layered_field,
    vortex_velocity_field,
)


class TestGaussianRandomField:
    def test_shape_and_dtype(self):
        f = gaussian_random_field((8, 16), seed=0)
        assert f.shape == (8, 16)
        assert f.dtype == np.float32

    def test_normalized(self):
        f = gaussian_random_field((64, 64), seed=1).astype(np.float64)
        assert abs(f.mean()) < 1e-5
        assert f.std() == pytest.approx(1.0, rel=1e-4)

    def test_deterministic_per_seed(self):
        a = gaussian_random_field((16, 16), seed=42)
        b = gaussian_random_field((16, 16), seed=42)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = gaussian_random_field((16, 16), seed=1)
        b = gaussian_random_field((16, 16), seed=2)
        assert not np.array_equal(a, b)

    def test_steeper_slope_is_smoother(self):
        rough = gaussian_random_field((256,), spectral_slope=0.5, seed=3).astype(float)
        smooth = gaussian_random_field((256,), spectral_slope=4.0, seed=3).astype(float)
        # Mean squared first difference measures roughness.
        assert np.mean(np.diff(smooth) ** 2) < np.mean(np.diff(rough) ** 2)

    @pytest.mark.parametrize("ndim", [1, 2, 3, 4])
    def test_all_dims_supported(self, ndim):
        f = gaussian_random_field((6,) * ndim, seed=0)
        assert f.ndim == ndim

    def test_5d_rejected(self):
        with pytest.raises(ValueError):
            gaussian_random_field((2,) * 5)

    def test_finite(self):
        assert np.all(np.isfinite(gaussian_random_field((32, 32), seed=0)))


class TestSmoothLayeredField:
    def test_layer_trend_applied(self):
        f = smooth_layered_field((8, 32, 32), layer_trend=10.0, seed=0).astype(float)
        level_means = f.mean(axis=(1, 2))
        # Trend should dominate: level means increase with altitude.
        assert np.all(np.diff(level_means) > 0)

    def test_2d_supported(self):
        assert smooth_layered_field((8, 32), seed=0).shape == (8, 32)

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            smooth_layered_field((32,))


class TestLognormalDensityField:
    def test_positive_everywhere(self):
        f = lognormal_density_field((16, 16, 16), seed=0)
        assert np.all(f > 0)

    def test_unit_mean(self):
        f = lognormal_density_field((32, 32), seed=1).astype(np.float64)
        assert f.mean() == pytest.approx(1.0, rel=1e-3)

    def test_higher_contrast_spikier(self):
        lo = lognormal_density_field((64, 64), contrast=0.5, seed=2).astype(float)
        hi = lognormal_density_field((64, 64), contrast=2.5, seed=2).astype(float)
        assert hi.max() > lo.max()

    def test_contrast_must_be_positive(self):
        with pytest.raises(ValueError):
            lognormal_density_field((8, 8), contrast=0.0)


class TestParticleCoordinates:
    def test_count_and_sorted(self):
        x = particle_coordinates(1000, seed=0)
        assert x.shape == (1000,)
        assert np.all(np.diff(x) >= 0)

    def test_within_box(self):
        x = particle_coordinates(500, box_size=100.0, seed=1)
        assert x.min() >= 0 and x.max() <= 100.0

    def test_clustering_reduces_spacing_entropy(self):
        uniform = particle_coordinates(5000, cluster_fraction=0.0, seed=2).astype(float)
        clustered = particle_coordinates(5000, cluster_fraction=0.9, seed=2).astype(float)
        # Clustered particles have many near-zero gaps.
        assert np.median(np.diff(clustered)) < np.median(np.diff(uniform))

    @pytest.mark.parametrize("kwargs", [
        {"count": 0},
        {"count": 10, "cluster_fraction": 1.5},
        {"count": 10, "box_size": 0.0},
        {"count": 10, "n_clusters": 0},
    ])
    def test_invalid_args(self, kwargs):
        with pytest.raises(ValueError):
            particle_coordinates(**kwargs)


class TestVortexVelocityField:
    def test_components_shapes(self):
        for comp in (0, 1, 2):
            f = vortex_velocity_field((8, 32, 32), component=comp, seed=0)
            assert f.shape == (8, 32, 32)

    def test_swirl_antisymmetry(self):
        # U component is odd in y: flipping y flips the swirl's sign.
        u = vortex_velocity_field((64, 64), component=0, swirl=5.0,
                                  spectral_slope=3.0, seed=0).astype(float)
        mean_top = u[: 28].mean()
        mean_bottom = u[36:].mean()
        assert np.sign(mean_top) != np.sign(mean_bottom)

    def test_invalid_component(self):
        with pytest.raises(ValueError, match="component"):
            vortex_velocity_field((8, 8), component=3)

    def test_w_component_weaker(self):
        w = vortex_velocity_field((64, 64), component=2, seed=1).astype(float)
        u = vortex_velocity_field((64, 64), component=0, seed=1).astype(float)
        assert np.abs(w).mean() < np.abs(u).mean()
