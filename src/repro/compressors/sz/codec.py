"""The SZ compressor: prediction + quantization + Huffman + lossless.

Stream layout (inside the zlib-compressed payload, bit-packed):

======  =====================================================
field   contents
======  =====================================================
mode    2 bits: 0 = raw (lossless fallback), 1 = constant,
        2 = grid-quantized
...     mode-specific body (see ``_encode_*`` below)
======  =====================================================

Grid mode carries a predictor selector (SZ2's two predictors): Lorenzo
differencing, or the per-block regression hyperplanes of
:mod:`repro.compressors.sz.regression`. The encoder computes both
residual streams and keeps whichever has lower empirical entropy —
smooth fields favour regression, rough ones Lorenzo.

The raw fallback keeps the error-bound guarantee trivially true for
inputs where grid quantization would be numerically unsafe (see
:meth:`~repro.compressors.sz.quantizer.GridQuantizer.plan`).
"""

from __future__ import annotations

import zlib
from typing import Tuple

import numpy as np

from repro.compressors import kernels
from repro.compressors.base import Compressor, CorruptStreamError, register_compressor
from repro.compressors.huffman import HuffmanCodec
from repro.observability import get_tracer
from repro.compressors.sz import regression as _regression
from repro.compressors.sz.predictor import lorenzo_reconstruct, lorenzo_residual
from repro.compressors.sz.quantizer import GridQuantizer
from repro.utils.bitio import BitReader, BitWriter

__all__ = ["SZCompressor"]

_MODE_RAW = 0
_MODE_CONST = 1
_MODE_GRID = 2

_PREDICTOR_LORENZO = 0
_PREDICTOR_REGRESSION = 1

#: Escape symbol replacing residuals outside the Huffman alphabet.
#: Residual magnitudes are bounded by 2^ndim * 2^46 < 2^51 (quantization
#: plan + Lorenzo), and 2^52 still zigzag-encodes without int64 overflow.
_ESCAPE = np.int64(1) << 52

#: Largest literal alphabet before rare residuals are escaped. SZ2 uses
#: a configurable number of quantization intervals (default 65536); we
#: keep the table small enough for 16-bit-limited canonical codes.
_MAX_ALPHABET = 4096

_ZLIB_LEVEL = 1  # entropy coding already happened; zlib mops up structure


def _internal_bound(error_bound: float) -> float:
    """Grid bound with headroom for the final dtype cast.

    Grid reconstruction happens in float64; casting to the original
    dtype adds up to half an ulp. The quantization plan guarantees
    ``eb >= 4 ulp``, so shrinking the grid bound to ``0.85 * eb`` keeps
    the end-to-end error within eb: ``0.85·eb + eb/8 < eb``.
    """
    return 0.85 * error_bound


@register_compressor
class SZCompressor(Compressor):
    """SZ-style absolute-error-bounded compressor (see module docs)."""

    name = "sz"

    def __init__(
        self,
        max_alphabet: int = _MAX_ALPHABET,
        zlib_level: int = _ZLIB_LEVEL,
        predictor: str = "auto",
    ):
        """Create the codec.

        Parameters
        ----------
        max_alphabet:
            Literal Huffman symbols before rare residuals are escaped.
        zlib_level:
            Final lossless stage compression level.
        predictor:
            ``"auto"`` (entropy-based selection, default), ``"lorenzo"``
            or ``"regression"`` to force one predictor — used by the
            predictor ablation bench.
        """
        if max_alphabet < 2:
            raise ValueError(f"max_alphabet must be >= 2, got {max_alphabet}")
        if not 0 <= zlib_level <= 9:
            raise ValueError(f"zlib_level must be in [0, 9], got {zlib_level}")
        if predictor not in ("auto", "lorenzo", "regression"):
            raise ValueError(
                f"predictor must be 'auto', 'lorenzo' or 'regression', got {predictor!r}"
            )
        self.max_alphabet = int(max_alphabet)
        self.zlib_level = int(zlib_level)
        self.predictor = predictor

    # ------------------------------------------------------------------
    # Generic residual/int stream coding (Huffman + escape channel)
    # ------------------------------------------------------------------

    def _encode_int_stream(self, writer: BitWriter, values: np.ndarray) -> None:
        with get_tracer().span("sz.huffman", symbols=int(np.size(values))):
            self._encode_int_stream_inner(writer, values)

    def _encode_int_stream_inner(self, writer: BitWriter, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.int64).ravel()
        distinct, counts = kernels.huffman_histogram(values)
        if distinct.size > self.max_alphabet - 1:
            keep = np.argsort(counts)[::-1][: self.max_alphabet - 1]
            literal_set = np.sort(distinct[keep])
            pos = np.searchsorted(literal_set, values)
            pos_clip = np.minimum(pos, literal_set.size - 1)
            is_literal = literal_set[pos_clip] == values
        else:
            is_literal = np.ones(values.size, dtype=bool)

        escaped = values[~is_literal]
        stream = np.where(is_literal, values, _ESCAPE)

        codec = HuffmanCodec.from_data(stream)
        codec.serialize_to(writer)
        nbits = codec.encoded_bit_length(stream)
        writer.write_uint(stream.size, 64)
        writer.write_uint(nbits, 64)
        codec.encode_to(writer, stream)

        writer.write_uint(escaped.size, 64)
        if escaped.size:
            zz = (escaped << 1) ^ (escaped >> 63)
            writer.write_uint_array(zz.astype(np.uint64), 64)

    @staticmethod
    def _decode_int_stream(reader: BitReader, expected: int) -> np.ndarray:
        codec = HuffmanCodec.deserialize_from(reader)
        nsym = reader.read_uint(64)
        if nsym != expected:
            raise CorruptStreamError(
                f"stream encodes {nsym} symbols but context implies {expected}"
            )
        stream_bits = reader.read_uint(64)
        stream = codec.decode_from(reader, stream_bits, expected)

        n_escape = reader.read_uint(64)
        escape_mask = stream == _ESCAPE
        if int(escape_mask.sum()) != n_escape:
            raise CorruptStreamError(
                f"escape count mismatch: header says {n_escape}, "
                f"stream has {int(escape_mask.sum())}"
            )
        if n_escape:
            zz = reader.read_uint_array(n_escape, 64).astype(np.int64)
            stream[escape_mask] = (zz >> 1) ^ -(zz & 1)
        return stream

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def _encode(self, data: np.ndarray, error_bound: float) -> bytes:
        quantizer = GridQuantizer(_internal_bound(error_bound))
        lo = float(data.min())
        hi = float(data.max())

        if hi - lo <= error_bound:
            # Near-constant array: its midpoint is within eb of every
            # value even after rounding to the output dtype (the rounded
            # midpoint stays inside [lo, hi]).
            writer = BitWriter()
            writer.write_uint(_MODE_CONST, 2)
            mid = np.float64((lo + hi) / 2.0)
            writer.write_uint(int(mid.view(np.uint64)), 64)
            return self._finish(writer)

        with get_tracer().span("sz.quantize", bytes_in=data.nbytes) as sp:
            plan = quantizer.plan(data)
            sp.set(feasible=plan.feasible)
            indices = quantizer.quantize(data, plan.origin) if plan.feasible else None
        if indices is None:
            writer = BitWriter()
            self._encode_raw(writer, data)
            return self._finish(writer)

        with get_tracer().span(
            "sz.predict", predictor=self.predictor, elements=int(indices.size)
        ):
            candidates = self._grid_candidates(indices)
        payloads = []
        for predictor_id, residuals, coeffs in candidates:
            writer = BitWriter()
            self._encode_grid(writer, plan.origin, predictor_id, residuals, coeffs)
            payloads.append(self._finish(writer))
        # Exact selection: keep the smaller finished payload (an entropy
        # proxy misranks the predictors when the final zlib stage finds
        # structure the zero-order estimate cannot see).
        return min(payloads, key=len)

    def _finish(self, writer: BitWriter) -> bytes:
        packed = writer.getvalue()
        header = len(writer).to_bytes(8, "little")
        with get_tracer().span("sz.lossless", bytes_in=len(packed) + 8) as sp:
            out = zlib.compress(header + packed, self.zlib_level)
            sp.set(bytes_out=len(out))
        return out

    def _encode_raw(self, writer: BitWriter, data: np.ndarray) -> None:
        writer.write_uint(_MODE_RAW, 2)
        flat = np.ascontiguousarray(data).tobytes()
        writer.write_bits_array(np.unpackbits(np.frombuffer(flat, dtype=np.uint8)))

    def _grid_candidates(self, indices: np.ndarray):
        """Candidate (predictor id, residuals, coefficients) encodings."""
        regression_viable = (
            indices.ndim >= 2
            and indices.size >= _regression.BLOCK_EDGE**indices.ndim
            and self.predictor != "lorenzo"
        )
        candidates = []
        if self.predictor != "regression" or not regression_viable:
            candidates.append(
                (_PREDICTOR_LORENZO, lorenzo_residual(indices).ravel(), None)
            )
        if regression_viable:
            coeffs = _regression.fit_block_planes(indices)
            pred = _regression.predict_from_planes(coeffs, indices.shape)
            candidates.append(
                (_PREDICTOR_REGRESSION, (indices - pred).ravel(), coeffs)
            )
        if self.predictor == "lorenzo":
            candidates = candidates[:1]
        if self.predictor == "regression" and regression_viable:
            candidates = [c for c in candidates if c[0] == _PREDICTOR_REGRESSION]
        return candidates

    def _encode_grid(
        self,
        writer: BitWriter,
        origin: float,
        predictor_id: int,
        residuals: np.ndarray,
        coeffs,
    ) -> None:
        writer.write_uint(_MODE_GRID, 2)
        writer.write_uint(int(np.float64(origin).view(np.uint64)), 64)
        writer.write_uint(predictor_id, 1)
        if predictor_id == _PREDICTOR_REGRESSION:
            self._encode_int_stream(writer, _regression.pack_coefficients(coeffs))
        self._encode_int_stream(writer, residuals)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def _decode(
        self, payload: bytes, shape: Tuple[int, ...], dtype: np.dtype, error_bound: float
    ) -> np.ndarray:
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise CorruptStreamError(f"zlib stage failed: {exc}") from exc
        if len(raw) < 8:
            raise CorruptStreamError("payload shorter than bit-count header")
        nbits = int.from_bytes(raw[:8], "little")
        reader = BitReader(raw[8:], nbits=nbits)
        count = int(np.prod(shape, dtype=np.int64))

        mode = reader.read_uint(2)
        if mode == _MODE_CONST:
            value = np.uint64(reader.read_uint(64)).view(np.float64)
            return np.full(count, value, dtype=dtype)
        if mode == _MODE_RAW:
            nbytes = count * dtype.itemsize
            bits = reader.read_bits_array(nbytes * 8)
            return np.frombuffer(np.packbits(bits).tobytes(), dtype=dtype).copy()
        if mode != _MODE_GRID:
            raise CorruptStreamError(f"unknown SZ mode {mode}")

        origin = float(np.uint64(reader.read_uint(64)).view(np.float64))
        predictor_id = reader.read_uint(1)
        if predictor_id == _PREDICTOR_REGRESSION:
            ndim = len(shape)
            padded = tuple(
                s + (-s) % _regression.BLOCK_EDGE for s in shape
            )
            nblocks = int(
                np.prod([s // _regression.BLOCK_EDGE for s in padded])
            )
            packed = self._decode_int_stream(reader, nblocks * (ndim + 1))
            coeffs = _regression.unpack_coefficients(packed, nblocks, ndim)
            pred = _regression.predict_from_planes(coeffs, shape)
            residuals = self._decode_int_stream(reader, count)
            indices = pred + residuals.reshape(shape)
        else:
            residuals = self._decode_int_stream(reader, count)
            indices = lorenzo_reconstruct(residuals.reshape(shape))

        quantizer = GridQuantizer(_internal_bound(error_bound))
        return quantizer.reconstruct(indices, origin).astype(dtype, copy=False)
