"""Frequency scaling: a ``cpufreq-set`` emulation.

The paper pins all cores to one frequency via ``cpufreq-set`` before
each measurement. :class:`FrequencyScaler` reproduces that control
surface: explicit userspace pinning plus the standard governor
shortcuts, with grid snapping and range validation.
"""

from __future__ import annotations

import enum
import math

from repro.hardware.cpu import CpuSpec

__all__ = ["Governor", "FrequencyError", "FrequencyScaler"]


class FrequencyError(ValueError):
    """Raised for out-of-range or otherwise invalid frequency requests."""


class Governor(enum.Enum):
    """Subset of Linux cpufreq governors the experiments use."""

    USERSPACE = "userspace"
    PERFORMANCE = "performance"
    POWERSAVE = "powersave"


class FrequencyScaler:
    """Tracks and validates the pinned core frequency of a CPU."""

    def __init__(self, cpu: CpuSpec) -> None:
        self.cpu = cpu
        self._governor = Governor.PERFORMANCE
        self._freq_ghz = cpu.fmax_ghz

    @property
    def governor(self) -> Governor:
        """Currently active governor."""
        return self._governor

    @property
    def current_ghz(self) -> float:
        """Frequency the cores are pinned to, in GHz."""
        return self._freq_ghz

    def cpufreq_set(self, freq_ghz: float) -> float:
        """Pin all cores to *freq_ghz* (snapped to the DVFS grid).

        Switches the governor to ``userspace``, like the real tool.
        Returns the snapped frequency actually applied. NaN, infinite
        and non-numeric requests are rejected outright — grid snapping
        on them would otherwise pin an arbitrary frequency (NaN
        compares false against every bound) instead of failing loudly.
        """
        try:
            finite = math.isfinite(freq_ghz)
        except TypeError:
            finite = False
        if not finite:
            raise FrequencyError(
                f"frequency must be a finite number, got {freq_ghz!r}"
            )
        try:
            snapped = self.cpu.snap_frequency(freq_ghz)
        except ValueError as exc:
            raise FrequencyError(str(exc)) from exc
        self._governor = Governor.USERSPACE
        self._freq_ghz = snapped
        return snapped

    def set_governor(self, governor: Governor) -> float:
        """Apply a governor; returns the resulting pinned frequency.

        ``performance`` pins fmax, ``powersave`` pins fmin, and
        ``userspace`` keeps the current frequency.
        """
        if not isinstance(governor, Governor):
            raise FrequencyError(f"unknown governor {governor!r}")
        self._governor = governor
        if governor is Governor.PERFORMANCE:
            self._freq_ghz = self.cpu.fmax_ghz
        elif governor is Governor.POWERSAVE:
            self._freq_ghz = self.cpu.fmin_ghz
        return self._freq_ghz

    def reset(self) -> float:
        """Back to the boot default (performance governor at fmax)."""
        return self.set_governor(Governor.PERFORMANCE)
