"""repro — power modeling and DVFS tuning of lossy compressed I/O.

A full reproduction of Wilkins & Calhoun, *"Modeling Power Consumption
of Lossy Compressed I/O for Exascale HPC Systems"* (2022): pure-NumPy
SZ and ZFP codecs, a simulated DVFS/RAPL hardware substrate calibrated
to the paper's two CloudLab nodes, an NFS data-transit model, the
``P(f) = a·f^b + c`` regression pipeline, and the Eqn. 3 frequency
tuning methodology — plus a benchmark harness regenerating every table
and figure of the paper's evaluation.

Quickstart::

    from repro import TunedIOPipeline, default_nodes, PAPER_POLICY
    pipe = TunedIOPipeline(default_nodes())
    outcome = pipe.recommend(pipe.characterize(), PAPER_POLICY)
    report = pipe.apply(outcome, arch="broadwell")
    print(report.energy_saved_j, report.energy_saving_fraction)
"""

from repro.compressors import (
    Compressor,
    CompressedBuffer,
    LosslessCompressor,
    SZCompressor,
    ZFPCompressor,
    available_compressors,
    get_compressor,
)
from repro.core import (
    PAPER_POLICY,
    ModelBundle,
    Objective,
    PipelineOutcome,
    PowerModel,
    RuntimeModel,
    SampleSet,
    SavingsReport,
    TunedIOPipeline,
    TuningPolicy,
    fit_partition_models,
    fit_power_law,
    fit_runtime_model,
    optimal_energy_frequency,
    optimal_frequency,
)
from repro.data import available_datasets, load_dataset, load_field
from repro.hardware import (
    BROADWELL_D1548,
    CASCADELAKE_6230,
    SKYLAKE_4114,
    CalibratedPowerCurve,
    CpuSpec,
    PerfStat,
    PhysicalPowerCurve,
    SimulatedNode,
)
from repro.iosim import DataDumper, DataLoader, NfsTarget
from repro.workflow import SweepConfig, compression_sweep, default_nodes, transit_sweep

__version__ = "1.0.0"

__all__ = [
    "Compressor",
    "CompressedBuffer",
    "LosslessCompressor",
    "SZCompressor",
    "ZFPCompressor",
    "available_compressors",
    "get_compressor",
    "PAPER_POLICY",
    "ModelBundle",
    "Objective",
    "optimal_frequency",
    "CASCADELAKE_6230",
    "DataLoader",
    "PipelineOutcome",
    "PowerModel",
    "RuntimeModel",
    "SampleSet",
    "SavingsReport",
    "TunedIOPipeline",
    "TuningPolicy",
    "fit_partition_models",
    "fit_power_law",
    "fit_runtime_model",
    "optimal_energy_frequency",
    "available_datasets",
    "load_dataset",
    "load_field",
    "BROADWELL_D1548",
    "SKYLAKE_4114",
    "CalibratedPowerCurve",
    "CpuSpec",
    "PerfStat",
    "PhysicalPowerCurve",
    "SimulatedNode",
    "DataDumper",
    "NfsTarget",
    "SweepConfig",
    "compression_sweep",
    "default_nodes",
    "transit_sweep",
    "__version__",
]
