"""Unit tests for energy accounting."""

import pytest

from repro.core.energy import (
    SavingsReport,
    compare_reports,
    energy_joules,
    savings_fraction,
)
from repro.iosim.dumper import DumpReport, StageReport


def stage(stage_name, energy, runtime=10.0, freq=2.0):
    return StageReport(
        stage=stage_name,
        freq_ghz=freq,
        bytes_processed=1000,
        runtime_s=runtime,
        energy_j=energy,
    )


def report(comp_e, write_e, eb=1e-2, ratio=4.0, comp_t=10.0, write_t=5.0):
    return DumpReport(
        compress=stage("compress", comp_e, comp_t),
        write=stage("write", write_e, write_t),
        compression_ratio=ratio,
        error_bound=eb,
    )


class TestEnergyJoules:
    def test_eqn1(self):
        assert energy_joules(20.0, 100.0) == 2000.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            energy_joules(0.0, 10.0)
        with pytest.raises(ValueError):
            energy_joules(10.0, -1.0)


class TestSavingsFraction:
    def test_basic(self):
        assert savings_fraction(100.0, 87.0) == pytest.approx(0.13)

    def test_regression_negative(self):
        assert savings_fraction(100.0, 110.0) == pytest.approx(-0.10)

    def test_invalid(self):
        with pytest.raises(ValueError):
            savings_fraction(0.0, 10.0)
        with pytest.raises(ValueError):
            savings_fraction(10.0, -1.0)


class TestCompareReports:
    def test_savings_computed(self):
        base = report(100.0, 20.0)
        tuned = report(90.0, 19.0, comp_t=11.0, write_t=5.5)
        s = compare_reports(base, tuned)
        assert s.energy_saved_j == pytest.approx(11.0)
        assert s.energy_saving_fraction == pytest.approx(11.0 / 120.0)
        assert s.runtime_increase_fraction == pytest.approx(16.5 / 15.0 - 1.0)
        assert s.compression_ratio == 4.0

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(ValueError, match="error bounds differ"):
            compare_reports(report(1, 1, eb=1e-2), report(1, 1, eb=1e-3))


class TestSavingsReport:
    def test_properties(self):
        s = SavingsReport(
            error_bound=1e-3,
            baseline_energy_j=50_000.0,
            tuned_energy_j=43_500.0,
            baseline_runtime_s=100.0,
            tuned_runtime_s=108.4,
            compression_ratio=5.0,
        )
        assert s.energy_saved_j == pytest.approx(6_500.0)
        assert s.energy_saving_fraction == pytest.approx(0.13)
        assert s.runtime_increase_fraction == pytest.approx(0.084)
