"""Unit tests for the checkpoint-campaign simulation."""

import pytest

from repro.compressors import SZCompressor
from repro.data import load_field
from repro.hardware.cpu import SKYLAKE_4114
from repro.hardware.node import SimulatedNode
from repro.workflow.campaign import (
    CampaignPoint,
    CampaignReport,
    CheckpointCampaign,
    run_campaign,
    run_campaign_sweep,
)


@pytest.fixture(scope="module")
def sample():
    return load_field("nyx", "velocity_x", scale=32)


@pytest.fixture
def node():
    return SimulatedNode(SKYLAKE_4114, power_noise=0.0, runtime_noise=0.0, seed=0)


CAMPAIGN = CheckpointCampaign(
    snapshot_bytes=int(32e9), n_snapshots=4, compute_interval_s=1800.0
)


class TestCampaignConfig:
    @pytest.mark.parametrize("kwargs", [
        {"snapshot_bytes": 0, "n_snapshots": 1, "compute_interval_s": 1.0},
        {"snapshot_bytes": 1, "n_snapshots": 0, "compute_interval_s": 1.0},
        {"snapshot_bytes": 1, "n_snapshots": 1, "compute_interval_s": -1.0},
        {"snapshot_bytes": 1, "n_snapshots": 1, "compute_interval_s": 1.0,
         "compute_power_w": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CheckpointCampaign(**kwargs)


class TestRunCampaign:
    def test_totals(self, node, sample):
        rep = run_campaign(node, SZCompressor(), sample, 1e-2, CAMPAIGN, repeats=1)
        assert len(rep.snapshots) == 4
        assert rep.compute_time_s == pytest.approx(4 * 1800.0)
        assert rep.compute_energy_j == pytest.approx(4 * 1800.0 * 38.0)
        assert rep.total_energy_j == pytest.approx(
            rep.io_energy_j + rep.compute_energy_j
        )
        assert 0 < rep.io_time_fraction < 1

    def test_io_fraction_small_for_long_compute(self, node, sample):
        # The paper's premise: I/O is a small share of the campaign, so
        # the tuned runtime penalty is diluted.
        long_compute = CheckpointCampaign(
            snapshot_bytes=int(32e9), n_snapshots=2, compute_interval_s=36000.0
        )
        rep = run_campaign(node, SZCompressor(), sample, 1e-2, long_compute,
                           repeats=1)
        assert rep.io_time_fraction < 0.02

    def test_tuning_saves_io_energy_with_tiny_wall_penalty(self, node, sample):
        base = run_campaign(node, SZCompressor(), sample, 1e-2, CAMPAIGN, repeats=1)
        tuned = run_campaign(
            node, SZCompressor(), sample, 1e-2, CAMPAIGN,
            compress_freq_ghz=1.925, write_freq_ghz=1.85, repeats=1,
        )
        assert tuned.io_energy_j < base.io_energy_j
        wall_penalty = tuned.total_wall_s / base.total_wall_s - 1.0
        io_saving = 1.0 - tuned.io_energy_j / base.io_energy_j
        assert io_saving > 0.10
        assert wall_penalty < 0.02  # diluted by the compute phases

    def test_io_energy_scales_with_snapshots(self, node, sample):
        two = CheckpointCampaign(int(32e9), 2, 100.0)
        six = CheckpointCampaign(int(32e9), 6, 100.0)
        r2 = run_campaign(node, SZCompressor(), sample, 1e-2, two, repeats=1)
        r6 = run_campaign(node, SZCompressor(), sample, 1e-2, six, repeats=1)
        assert r6.io_energy_j == pytest.approx(3 * r2.io_energy_j, rel=0.01)


SWEEP_CAMPAIGN = CheckpointCampaign(
    snapshot_bytes=int(16e9), n_snapshots=2, compute_interval_s=600.0
)


class TestCampaignSweep:
    def test_points_match_fresh_node_runs(self, sample):
        reports = run_campaign_sweep(
            SKYLAKE_4114, "sz", sample, (1e-1, 1e-2), SWEEP_CAMPAIGN,
            repeats=1, executor="serial",
        )
        assert len(reports) == 2
        for eb, rep in zip((1e-1, 1e-2), reports):
            expected = run_campaign(
                SimulatedNode(SKYLAKE_4114, seed=0), SZCompressor(), sample,
                eb, SWEEP_CAMPAIGN, repeats=1,
            )
            assert rep.io_energy_j == pytest.approx(expected.io_energy_j)

    @pytest.mark.parametrize("executor", ["thread", "process", "distributed"])
    def test_pool_backends_reproduce_serial(self, sample, executor):
        kwargs = dict(repeats=1, seed=3)
        serial = run_campaign_sweep(
            SKYLAKE_4114, "sz", sample, (1e-1, 1e-2, 1e-3), SWEEP_CAMPAIGN,
            executor="serial", **kwargs,
        )
        pooled = run_campaign_sweep(
            SKYLAKE_4114, "sz", sample, (1e-1, 1e-2, 1e-3), SWEEP_CAMPAIGN,
            executor=executor, workers=2, **kwargs,
        )
        for a, b in zip(serial, pooled):
            assert a.io_energy_j == b.io_energy_j
            assert a.io_time_s == b.io_time_s

    def test_tuned_points_save_energy(self, sample):
        base = CampaignPoint(error_bound=1e-2)
        tuned = CampaignPoint(
            error_bound=1e-2, compress_freq_ghz=1.925, write_freq_ghz=1.85
        )
        reports = run_campaign_sweep(
            SKYLAKE_4114, SZCompressor(), sample, (base, tuned),
            SWEEP_CAMPAIGN, repeats=1, executor="serial",
        )
        assert reports[1].io_energy_j < reports[0].io_energy_j

    def test_validation(self, sample):
        with pytest.raises(ValueError):
            run_campaign_sweep(SKYLAKE_4114, "sz", sample, (), SWEEP_CAMPAIGN)
        with pytest.raises(KeyError):
            run_campaign_sweep(SKYLAKE_4114, "lz4", sample, (1e-2,),
                               SWEEP_CAMPAIGN)
        with pytest.raises(ValueError):
            CampaignPoint(error_bound=-1.0)
