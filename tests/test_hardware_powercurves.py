"""Unit tests for the power-curve ground truths."""

import numpy as np
import pytest

from repro.hardware.cpu import BROADWELL_D1548, SKYLAKE_4114
from repro.hardware.powercurves import CalibratedPowerCurve, PhysicalPowerCurve
from repro.hardware.workload import WorkloadKind

CPUS = (BROADWELL_D1548, SKYLAKE_4114)
KINDS = (WorkloadKind.COMPRESS_SZ, WorkloadKind.COMPRESS_ZFP, WorkloadKind.WRITE)


@pytest.fixture(params=[CalibratedPowerCurve, PhysicalPowerCurve])
def curve(request):
    return request.param()


class TestCommonProperties:
    def test_positive_everywhere(self, curve):
        for cpu in CPUS:
            for kind in KINDS:
                for f in cpu.available_frequencies():
                    assert curve.power_watts(cpu, float(f), kind) > 0

    def test_monotone_nondecreasing(self, curve):
        for cpu in CPUS:
            for kind in KINDS:
                p = [curve.power_watts(cpu, float(f), kind)
                     for f in cpu.available_frequencies()]
                assert np.all(np.diff(p) >= -1e-9)

    def test_scaled_power_is_one_at_fmax(self, curve):
        for cpu in CPUS:
            for kind in KINDS:
                assert curve.scaled_power(cpu, cpu.fmax_ghz, kind) == pytest.approx(1.0)

    def test_below_tdp(self, curve):
        # Single-core power must stay well under the package TDP.
        for cpu in CPUS:
            for kind in KINDS:
                assert curve.power_watts(cpu, cpu.fmax_ghz, kind) < cpu.tdp_watts

    def test_critical_power_slope_shape(self, curve):
        # The floor (fmin) sits in the 0.6-0.95 scaled band the paper shows.
        for cpu in CPUS:
            for kind in KINDS:
                floor = curve.scaled_power(cpu, cpu.fmin_ghz, kind)
                assert 0.6 < floor < 0.96

    def test_skylake_steeper_near_top(self, curve):
        # Skylake's curve is flat then jumps: the top-10% frequency span
        # contains a larger power rise than on Broadwell.
        def top_rise(cpu):
            f_hi = cpu.fmax_ghz
            f_90 = cpu.snap_frequency(cpu.fmin_ghz + 0.9 * cpu.frequency_span)
            k = WorkloadKind.COMPRESS_SZ
            return curve.scaled_power(cpu, f_hi, k) - curve.scaled_power(cpu, f_90, k)

        assert top_rise(SKYLAKE_4114) > top_rise(BROADWELL_D1548)


class TestCalibratedCurve:
    def test_matches_paper_broadwell_compress(self):
        c = CalibratedPowerCurve()
        # Ground truth = paper Table IV Broadwell row (for unit dynamic
        # factor the sz/zfp modulation averages out; test the midpoint).
        f = 1.6
        sz = c.scaled_power(BROADWELL_D1548, f, WorkloadKind.COMPRESS_SZ)
        paper = 0.0064 * f**5.315 + 0.7429
        paper_at_max = 0.0064 * 2.0**5.315 + 0.7429
        assert sz == pytest.approx(paper / paper_at_max, rel=0.03)

    def test_sz_draws_more_than_zfp(self):
        c = CalibratedPowerCurve()
        f = 1.8
        assert c.power_watts(
            BROADWELL_D1548, f, WorkloadKind.COMPRESS_SZ
        ) > c.power_watts(BROADWELL_D1548, f, WorkloadKind.COMPRESS_ZFP)

    def test_write_draws_more_than_compress(self):
        c = CalibratedPowerCurve()
        for cpu in CPUS:
            assert c.power_watts(cpu, cpu.fmax_ghz, WorkloadKind.WRITE) > c.power_watts(
                cpu, cpu.fmax_ghz, WorkloadKind.COMPRESS_SZ
            )

    def test_dynamic_factor_modulates_only_dynamic_term(self):
        c = CalibratedPowerCurve()
        cpu = BROADWELL_D1548
        k = WorkloadKind.COMPRESS_SZ
        at_min_lo = c.power_watts(cpu, cpu.fmin_ghz, k, dynamic_factor=0.9)
        at_min_hi = c.power_watts(cpu, cpu.fmin_ghz, k, dynamic_factor=1.1)
        at_max_lo = c.power_watts(cpu, cpu.fmax_ghz, k, dynamic_factor=0.9)
        at_max_hi = c.power_watts(cpu, cpu.fmax_ghz, k, dynamic_factor=1.1)
        # Static floor dominates at fmin: difference grows with frequency.
        assert (at_max_hi - at_max_lo) > (at_min_hi - at_min_lo)


class TestPhysicalCurve:
    def test_write_has_higher_floor_than_compress(self):
        c = PhysicalPowerCurve()
        for cpu in CPUS:
            w = c.scaled_power(cpu, cpu.fmin_ghz, WorkloadKind.WRITE)
            z = c.scaled_power(cpu, cpu.fmin_ghz, WorkloadKind.COMPRESS_SZ)
            assert w > z

    def test_differs_from_calibrated(self):
        # The ablation control must not be a re-parameterization of the
        # calibrated curve.
        cal, phys = CalibratedPowerCurve(), PhysicalPowerCurve()
        cpu = BROADWELL_D1548
        k = WorkloadKind.COMPRESS_SZ
        mids = [1.0, 1.3, 1.6]
        diffs = [
            abs(cal.scaled_power(cpu, f, k) - phys.scaled_power(cpu, f, k))
            for f in mids
        ]
        assert max(diffs) > 0.01


class TestFrequencyForPower:
    def test_round_trips_through_power_watts(self, curve):
        for cpu in CPUS:
            for kind in KINDS:
                for f in (cpu.fmin_ghz, 1.2, 1.6, cpu.fmax_ghz):
                    watts = curve.power_watts(cpu, f, kind)
                    back = curve.frequency_for_power(cpu, watts, kind)
                    assert back == pytest.approx(f, abs=1e-6)

    def test_clamps_to_the_frequency_range(self, curve):
        cpu = BROADWELL_D1548
        k = WorkloadKind.COMPRESS_SZ
        floor = curve.power_watts(cpu, cpu.fmin_ghz, k)
        peak = curve.power_watts(cpu, cpu.fmax_ghz, k)
        assert curve.frequency_for_power(cpu, floor * 0.5, k) == cpu.fmin_ghz
        assert curve.frequency_for_power(cpu, peak * 2.0, k) == cpu.fmax_ghz

    def test_monotone_in_watts(self, curve):
        cpu = BROADWELL_D1548
        k = WorkloadKind.WRITE
        watts = np.linspace(1.0, 40.0, 25)
        freqs = [curve.frequency_for_power(cpu, w, k) for w in watts]
        assert np.all(np.diff(freqs) >= -1e-12)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     -float("inf"), 0.0, -3.0, "20", None])
    def test_rejects_non_finite_and_non_positive_watts(self, curve, bad):
        with pytest.raises(ValueError):
            curve.frequency_for_power(
                BROADWELL_D1548, bad, WorkloadKind.COMPRESS_SZ)

    def test_granted_frequency_fits_the_watts(self, curve):
        cpu = SKYLAKE_4114
        k = WorkloadKind.COMPRESS_ZFP
        floor = curve.power_watts(cpu, cpu.fmin_ghz, k)
        peak = curve.power_watts(cpu, cpu.fmax_ghz, k)
        for w in np.linspace(floor + 0.01, peak, 11):
            f = curve.frequency_for_power(cpu, float(w), k)
            assert curve.power_watts(cpu, f, k) <= w + 1e-6
