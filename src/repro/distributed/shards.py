"""Deterministic shard planning for distributed maps.

A *shard* is the unit of assignment, reassignment and result commit: a
contiguous block of item indices small enough that losing a worker
mid-shard wastes little work, large enough that the wire round-trip is
amortized. The planner is a pure function of ``(n_items,
max_shard_items, seed)`` — crucially it never sees the worker count, so
growing or shrinking the fleet (or losing half of it mid-campaign)
cannot move a single item between shards. That is what makes shard ids
usable as cache keys: the same sweep planned for 2 workers or 200
produces byte-identical shards with byte-identical ids.

Shard ids fold the plan seed, the shard ordinal and the exact member
indices into a SHA-256 prefix, so two shards can only collide if they
are the same shard of the same plan.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

__all__ = ["Shard", "ShardPlan", "plan_shards"]


@dataclass(frozen=True)
class Shard:
    """One contiguous block of a distributed map's item indices."""

    index: int
    item_indices: Tuple[int, ...]
    shard_id: str

    def __post_init__(self):
        if self.index < 0:
            raise ValueError(f"shard index must be >= 0, got {self.index}")
        if not self.item_indices:
            raise ValueError("a shard must hold at least one item")

    @property
    def n_items(self) -> int:
        return len(self.item_indices)


@dataclass(frozen=True)
class ShardPlan:
    """A complete, exact-cover partition of ``range(n_items)``."""

    n_items: int
    seed: int
    shards: Tuple[Shard, ...]

    def __post_init__(self):
        covered = [i for s in self.shards for i in s.item_indices]
        if sorted(covered) != list(range(self.n_items)):
            raise ValueError(
                f"shards must cover each of {self.n_items} items exactly once"
            )

    def __len__(self) -> int:
        return len(self.shards)


def _shard_id(seed: int, index: int, item_indices: Tuple[int, ...]) -> str:
    h = hashlib.sha256()
    h.update(f"repro.shard:{seed}:{index}:".encode("ascii"))
    h.update(",".join(str(i) for i in item_indices).encode("ascii"))
    return h.hexdigest()[:24]


def plan_shards(
    n_items: int, max_shard_items: int = 1, seed: int = 0
) -> ShardPlan:
    """Partition ``range(n_items)`` into balanced contiguous shards.

    Shard count is ``ceil(n_items / max_shard_items)``; sizes differ by
    at most one (the remainder spreads over the leading shards instead
    of piling onto a straggler). Deterministic in its arguments and
    independent of any fleet property — see the module docstring for
    why that independence is a contract, not an accident.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if max_shard_items < 1:
        raise ValueError(
            f"max_shard_items must be >= 1, got {max_shard_items}"
        )
    if n_items == 0:
        return ShardPlan(n_items=0, seed=int(seed), shards=())
    n_shards = -(-n_items // max_shard_items)  # ceil
    base, extra = divmod(n_items, n_shards)
    shards = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        indices = tuple(range(start, start + size))
        shards.append(
            Shard(
                index=index,
                item_indices=indices,
                shard_id=_shard_id(int(seed), index, indices),
            )
        )
        start += size
    return ShardPlan(n_items=int(n_items), seed=int(seed), shards=tuple(shards))
