"""Property tests for the cache storage tiers.

The LRU tier must behave like a size-bounded dict with exact
recency-eviction order; the disk tier must round-trip entries through
real files and fail *loudly* — with :class:`CacheCorruptionError` or
the shared schema ``ValueError`` — for every torn, truncated or
bit-flipped file a crash can leave behind. Serving wrong bytes is the
only unacceptable outcome.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CacheCorruptionError,
    DiskStore,
    MemoryLRU,
    ResultCache,
    decode_value,
    encode_value,
    text_digest,
)
from repro.core.persistence import SCHEMA_VERSION

#: What a reader may raise on a damaged entry; anything else is a bug.
#: (CacheCorruptionError subclasses ValueError, matching the repo-wide
#: corruption taxonomy in test_fuzz_corruption.py.)
ALLOWED = (ValueError, EOFError, KeyError, IndexError, OverflowError)


def entry(i):
    text = encode_value({"i": i, "payload": "x" * (i % 7)})
    return f"{i:064x}", text, text_digest(text)


keys_st = st.lists(st.integers(0, 25), min_size=1, max_size=120)


class TestMemoryLRUProperties:
    @given(keys_st, st.integers(1, 12))
    @settings(max_examples=120, deadline=None)
    def test_round_trip_and_capacity(self, ops, max_entries):
        lru = MemoryLRU(max_entries)
        model = {}
        for i in ops:
            key, text, digest = entry(i)
            lru.put(key, text, digest)
            model[key] = (text, digest)
        assert len(lru) <= max_entries
        # Everything still resident reads back exactly what was put.
        for key in lru.keys():
            assert lru.get(key) == model[key]

    @given(keys_st, st.integers(1, 12))
    @settings(max_examples=120, deadline=None)
    def test_eviction_is_exact_lru_order(self, ops, max_entries):
        lru = MemoryLRU(max_entries)
        recency = []  # oldest → newest among live keys
        for i in ops:
            key, text, digest = entry(i)
            if key in recency:
                recency.remove(key)
            elif len(recency) == max_entries:
                recency.pop(0)  # the oldest must be the one evicted
            recency.append(key)
            lru.put(key, text, digest)
            assert list(lru.keys()) == recency
        # A get refreshes recency exactly like a put.
        if len(recency) >= 2:
            oldest = recency[0]
            assert lru.get(oldest) is not None
            assert list(lru.keys()) == recency[1:] + [oldest]

    @given(keys_st, st.integers(1, 12))
    @settings(max_examples=80, deadline=None)
    def test_eviction_callback_fires_once_per_overflow(self, ops, max_entries):
        evicted = []
        lru = MemoryLRU(max_entries, on_evict=evicted.append)
        live, expected = [], []  # reference model: ordered dict + count
        for i in ops:
            key, text, digest = entry(i)
            if key in live:
                live.remove(key)
            elif len(live) == max_entries:
                expected.append(live.pop(0))
            live.append(key)
            lru.put(key, text, digest)
        assert evicted == expected
        assert list(lru.keys()) == live


class TestDiskStoreRoundTrip:
    @given(ids=st.lists(st.integers(0, 40), min_size=1, max_size=40,
                        unique=True))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_many_entries(self, tmp_path_factory, ids):
        store = DiskStore(tmp_path_factory.mktemp("disk"))
        expected = {}
        for i in ids:
            key, text, digest = entry(i)
            store.put(key, text, digest)
            expected[key] = (text, digest)
        assert set(store.keys()) == set(expected)
        for key, pair in expected.items():
            assert store.get(key) == pair

    def test_values_decode_to_equal_objects(self, tmp_path):
        store = DiskStore(tmp_path)
        value = {"a": (1, 2.5), "b": np.arange(4.0)}
        text = encode_value(value)
        store.put("ab" * 32, text, text_digest(text))
        read_text, _ = store.get("ab" * 32)
        decoded = decode_value(read_text)
        assert decoded["a"] == (1, 2.5)
        np.testing.assert_array_equal(decoded["b"], value["b"])

    def test_missing_key_is_none_not_error(self, tmp_path):
        assert DiskStore(tmp_path).get("cd" * 32) is None

    def test_put_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = DiskStore(tmp_path)
        key, text, digest = entry(1)
        for _ in range(3):
            store.put(key, text, digest)
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_foreign_files_are_not_keys(self, tmp_path):
        (tmp_path / "README.json").write_text("{}")
        (tmp_path / "notes.txt").write_text("hi")
        store = DiskStore(tmp_path)
        key, text, digest = entry(2)
        store.put(key, text, digest)
        assert store.keys() == (key,)


class TestDiskStoreCorruption:
    """Byte-level damage, in the spirit of test_fuzz_corruption.py."""

    def _stored(self, tmp_path):
        store = DiskStore(tmp_path)
        key, text, digest = entry(9)
        store.put(key, text, digest)
        return store, key, os.path.join(str(tmp_path), key + ".json")

    def test_truncations_never_serve_bytes(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        raw = open(path, "rb").read()
        for cut in range(0, len(raw), max(1, len(raw) // 23)):
            with open(path, "wb") as fh:
                fh.write(raw[:cut])
            with pytest.raises(ALLOWED):
                store.get(key)
        with open(path, "wb") as fh:
            fh.write(raw)
        assert store.get(key) is not None  # intact again ⇒ served again

    def test_single_bit_flips_never_serve_altered_bytes(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        raw = bytearray(open(path, "rb").read())
        original = store.get(key)
        rng = np.random.default_rng(0)
        for _ in range(60):
            corrupted = bytearray(raw)
            pos = int(rng.integers(0, len(corrupted)))
            corrupted[pos] ^= 1 << int(rng.integers(0, 8))
            with open(path, "wb") as fh:
                fh.write(bytes(corrupted))
            try:
                served = store.get(key)
            except ALLOWED:
                continue
            # A flip that survived every check can only have landed in
            # JSON whitespace/ordering: the served entry must be intact.
            assert served == original

    def test_digest_mismatch_names_staleness(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        doc = json.load(open(path))
        doc["value"] = doc["value"] + " "
        json.dump(doc, open(path, "w"))
        with pytest.raises(CacheCorruptionError, match="stale"):
            store.get(key)

    def test_swapped_entries_are_caught_by_key_check(self, tmp_path):
        # A backup/restore that renames files must not relabel results.
        store = DiskStore(tmp_path)
        k1, t1, d1 = entry(1)
        k2, t2, d2 = entry(2)
        store.put(k1, t1, d1)
        store.put(k2, t2, d2)
        p1 = os.path.join(str(tmp_path), k1 + ".json")
        p2 = os.path.join(str(tmp_path), k2 + ".json")
        tmp = p1 + ".swap"
        os.rename(p1, tmp)
        os.rename(p2, p1)
        os.rename(tmp, p2)
        with pytest.raises(CacheCorruptionError, match="inconsistent"):
            store.get(k1)

    def test_older_and_newer_schema_raise_schema_error(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        for version, hint in ((SCHEMA_VERSION + 1, "newer build"),
                              (SCHEMA_VERSION - 1, "this build reads")):
            doc = json.load(open(path))
            doc["schema_version"] = version
            json.dump(doc, open(path, "w"))
            with pytest.raises(ValueError, match=hint):
                store.get(key)


class TestResultCacheOverCorruptDisk:
    def test_lookup_propagates_corruption(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        key = "ef" * 32
        cache.store(key, [1, 2, 3])
        # Model a fresh process (cold memory tier) over a damaged file.
        path = os.path.join(str(tmp_path), key + ".json")
        with open(path, "r+") as fh:
            body = fh.read()
            fh.seek(0)
            fh.write(body[: len(body) // 2])
            fh.truncate()
        fresh = ResultCache(disk_dir=tmp_path)
        with pytest.raises(CacheCorruptionError):
            fresh.lookup(key)

    def test_invalidate_then_recompute(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        key = "aa" * 32
        calls = []

        def compute():
            calls.append(1)
            return {"n": len(calls)}

        assert cache.get_or_compute(key, compute) == {"n": 1}
        assert cache.get_or_compute(key, compute) == {"n": 1}
        assert cache.invalidate(key)
        assert cache.get_or_compute(key, compute) == {"n": 2}
        assert len(calls) == 2
