"""Lightweight instrumentation for parallel slab execution.

Every executor-driven map records one :class:`TaskStat` per task (wall
time inside the worker, bytes in/out) and rolls them into a
:class:`ParallelStats` summary. The summary's ``concurrency`` is the
ratio of summed in-worker time to observed wall time — 1.0 for a serial
run, approaching the worker count for a perfectly overlapped one. It is
*not* a speedup over the serial path: on an oversubscribed machine the
in-worker clocks also count run-queue wait, so concurrency can look high
while wall time is worse than serial. True speedup needs a serial
baseline; ``benchmarks/parallel_speedup.py`` reports it as "vs serial".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["TaskStat", "ParallelStats"]

#: Wall times below this (seconds) are treated as "instant": the clock
#: resolution makes any ratio against them meaningless.
_MIN_WALL_S = 1e-9


@dataclass(frozen=True)
class TaskStat:
    """Execution record of a single task (one slab, one sweep point...)."""

    index: int
    wall_s: float
    bytes_in: int = 0
    bytes_out: int = 0


@dataclass(frozen=True)
class ParallelStats:
    """Summary of one executor-driven map."""

    executor: str
    workers: int
    wall_s: float
    tasks: Tuple[TaskStat, ...]
    #: Indices of tasks that failed at least once and were re-run
    #: (populated by retry-enabled maps; empty on clean runs).
    retried_tasks: Tuple[int, ...] = ()

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def task_seconds(self) -> float:
        """Total in-worker compute time across all tasks."""
        return float(sum(t.wall_s for t in self.tasks))

    @property
    def concurrency(self) -> float:
        """Summed task time over wall time (1.0 when serial).

        Measures how much work overlapped, not how much faster than a
        serial run: under CPU contention the in-worker clocks include
        time spent waiting for a core. Empty or near-instant maps have
        no meaningful overlap, so they report 0.0 rather than a
        divide-by-zero blow-up.
        """
        if not self.tasks or self.wall_s < _MIN_WALL_S:
            return 0.0
        return self.task_seconds / self.wall_s

    @property
    def bytes_in(self) -> int:
        return sum(t.bytes_in for t in self.tasks)

    @property
    def bytes_out(self) -> int:
        return sum(t.bytes_out for t in self.tasks)

    @property
    def throughput_bps(self) -> float:
        """Input bytes processed per wall-clock second."""
        return self.bytes_in / max(self.wall_s, 1e-12)

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering / CSV export."""
        return {
            "executor": self.executor,
            "workers": self.workers,
            "tasks": self.n_tasks,
            "wall_s": self.wall_s,
            "task_s": self.task_seconds,
            "concurrency": self.concurrency,
            "mb_in": self.bytes_in / 1e6,
            "mb_out": self.bytes_out / 1e6,
            "throughput_mbps": self.throughput_bps / 1e6,
            "retried": len(self.retried_tasks),
        }

    def summary(self) -> str:
        """One-line human-readable summary for CLI/benchmark output."""
        return (
            f"{self.n_tasks} tasks via {self.executor}x{self.workers}: "
            f"{self.wall_s:.3f} s wall, {self.task_seconds:.3f} s task time, "
            f"{self.concurrency:.2f}x concurrency, "
            f"{self.throughput_bps / 1e6:.1f} MB/s"
        )

    def record_spans(self, tracer, name: str = "parallel.task") -> None:
        """Record one span per :class:`TaskStat` on *tracer*.

        The spans attach to whatever span is active on the calling
        thread, so executor-driven maps show up as children of the
        stage that ran them. Task wall times were clocked inside the
        workers; each span ends "now" and stretches back by its task's
        duration, which preserves durations exactly and overlaps the
        tasks the way the pool did. No-op under the default
        :class:`~repro.observability.NullTracer`.
        """
        if not getattr(tracer, "enabled", False):
            return
        for task in self.tasks:
            tracer.record_span(
                name,
                task.wall_s,
                index=task.index,
                executor=self.executor,
                bytes_in=task.bytes_in,
                bytes_out=task.bytes_out,
            )
