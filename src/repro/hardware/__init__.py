"""Simulated DVFS-capable HPC nodes with RAPL-style energy counters.

The paper measures real CloudLab nodes with ``perf``/RAPL; this
container has neither tunable frequencies nor energy counters, so this
package provides the closest synthetic equivalent (DESIGN.md §2): CPU
specifications for the paper's two chips, a ``cpufreq``-style frequency
scaler, frequency-dependent power curves (paper-calibrated by default,
physical CV²f for ablation), a wrapping µJ energy counter, and a
``perf stat``-like repeat-and-average measurement wrapper.
"""

from repro.hardware.cpu import (
    CpuSpec,
    BROADWELL_D1548,
    SKYLAKE_4114,
    CASCADELAKE_6230,
    KNOWN_CPUS,
    get_cpu,
    table2_rows,
)
from repro.hardware.dvfs import FrequencyScaler, Governor, FrequencyError
from repro.hardware.workload import (
    Workload,
    WorkloadKind,
    compression_workload,
    decompression_workload,
    read_workload,
    write_workload,
)
from repro.hardware.powercurves import (
    PowerCurve,
    CalibratedPowerCurve,
    PhysicalPowerCurve,
)
from repro.hardware.rapl import RaplCounter
from repro.hardware.node import SimulatedNode, Measurement
from repro.hardware.perf import PerfStat, PowerSample
from repro.hardware.trace import PowerTrace, TraceRecorder

__all__ = [
    "CpuSpec",
    "BROADWELL_D1548",
    "SKYLAKE_4114",
    "CASCADELAKE_6230",
    "KNOWN_CPUS",
    "get_cpu",
    "table2_rows",
    "FrequencyScaler",
    "Governor",
    "FrequencyError",
    "Workload",
    "WorkloadKind",
    "compression_workload",
    "decompression_workload",
    "read_workload",
    "write_workload",
    "PowerCurve",
    "CalibratedPowerCurve",
    "PhysicalPowerCurve",
    "RaplCounter",
    "SimulatedNode",
    "Measurement",
    "PerfStat",
    "PowerSample",
    "PowerTrace",
    "TraceRecorder",
]
