"""Extension bench: multi-core frequency/width co-tuning.

The paper's single-core framing leaves the second knob — core count —
on the table. This bench quantifies how much: the (cores × frequency)
energy optimum vs the paper's Eqn. 3 single-core rule, per chip.
"""

import numpy as np
from conftest import emit

from repro.core.multicore import optimal_configuration, pareto_front, sweep_configurations
from repro.hardware.node import SimulatedNode
from repro.hardware.cpu import BROADWELL_D1548, SKYLAKE_4114
from repro.hardware.workload import WorkloadKind, compression_workload
from repro.workflow.report import render_table


def test_bench_extension_multicore(benchmark):
    wl = compression_workload(WorkloadKind.COMPRESS_SZ, int(64e9), 1e-2)

    def run():
        rows = []
        for cpu in (BROADWELL_D1548, SKYLAKE_4114):
            node = SimulatedNode(cpu, power_noise=0.0, runtime_noise=0.0)
            f_eqn3 = cpu.snap_frequency(0.875 * cpu.fmax_ghz)
            t_e3 = node.true_runtime_s(wl, f_eqn3, cores=1)
            e_e3 = t_e3 * node.true_power_w(wl, f_eqn3, cores=1)
            best = optimal_configuration(node, wl)
            front = pareto_front(sweep_configurations(node, wl))
            rows.append(
                {
                    "arch": cpu.arch,
                    "eqn3_energy_kj": e_e3 / 1e3,
                    "eqn3_runtime_s": t_e3,
                    "opt_cores": best.cores,
                    "opt_freq_ghz": best.freq_ghz,
                    "opt_energy_kj": best.energy_j / 1e3,
                    "opt_runtime_s": best.runtime_s,
                    "pareto_points": len(front),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(rows, title="EXTENSION — (cores x frequency) co-tuning, 64 GB SZ stage"))

    for r in rows:
        # The wide-and-slow optimum dominates single-core Eqn. 3 on
        # both axes, by a large energy factor.
        assert r["opt_cores"] > 1
        assert r["opt_energy_kj"] < 0.4 * r["eqn3_energy_kj"], r
        assert r["opt_runtime_s"] < r["eqn3_runtime_s"], r
        # The optimum does not run flat-out: frequency still matters.
        cpu = BROADWELL_D1548 if r["arch"] == "broadwell" else SKYLAKE_4114
        assert r["opt_freq_ghz"] < cpu.fmax_ghz

    benchmark.extra_info["broadwell_opt"] = (
        f"{rows[0]['opt_cores']}c @ {rows[0]['opt_freq_ghz']} GHz"
    )
