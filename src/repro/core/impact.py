"""Sustainability impact: joules → carbon, cost, and fleet projections.

The paper's closing argument is green-computing: "applications of these
findings in HPC computing centers will help meet green-computing
initiatives". This module does the last conversion step — energy saved
per dump → CO₂-equivalent and electricity cost at data-center scale —
so the 6.5 kJ headline can be read as an operations number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["GridProfile", "ImpactReport", "impact_of", "US_AVERAGE_GRID"]


@dataclass(frozen=True)
class GridProfile:
    """Electricity supply characteristics of a computing site."""

    #: Carbon intensity, grams CO2-equivalent per kWh.
    gco2e_per_kwh: float
    #: Electricity price, $ per kWh.
    usd_per_kwh: float
    #: Power usage effectiveness of the facility (>= 1; cooling etc.).
    pue: float = 1.4

    def __post_init__(self):
        check_nonnegative(self.gco2e_per_kwh, "gco2e_per_kwh")
        check_nonnegative(self.usd_per_kwh, "usd_per_kwh")
        if self.pue < 1.0:
            raise ValueError(f"pue must be >= 1, got {self.pue}")


#: 2020s-era US grid average: ~390 gCO2e/kWh, ~$0.10/kWh industrial.
US_AVERAGE_GRID = GridProfile(gco2e_per_kwh=390.0, usd_per_kwh=0.10)

_JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class ImpactReport:
    """Converted impact of an amount of IT-side energy."""

    it_energy_j: float
    facility_energy_j: float
    kwh: float
    gco2e: float
    usd: float

    def scaled(self, factor: float) -> "ImpactReport":
        """Project to *factor*× the events (e.g. dumps/year × nodes)."""
        check_nonnegative(factor, "factor")
        return ImpactReport(
            it_energy_j=self.it_energy_j * factor,
            facility_energy_j=self.facility_energy_j * factor,
            kwh=self.kwh * factor,
            gco2e=self.gco2e * factor,
            usd=self.usd * factor,
        )


def impact_of(energy_j: float, grid: GridProfile = US_AVERAGE_GRID) -> ImpactReport:
    """Convert IT-side joules to facility-level kWh, CO₂e and cost."""
    check_nonnegative(energy_j, "energy_j")
    check_positive(grid.pue, "pue")
    facility = energy_j * grid.pue
    kwh = facility / _JOULES_PER_KWH
    return ImpactReport(
        it_energy_j=energy_j,
        facility_energy_j=facility,
        kwh=kwh,
        gco2e=kwh * grid.gco2e_per_kwh,
        usd=kwh * grid.usd_per_kwh,
    )
