"""Governor integration: pipeline, campaigns, cache, fleet, service, CLI.

CI runs this file under the 4-backend ``REPRO_TEST_EXECUTOR`` matrix
(serial / thread / process / distributed): a governed sweep must be
byte-identical whichever backend runs it, and the distributed backend
must additionally ship worker-side telemetry back to the coordinator.
"""

import json
import os

import pytest

from repro.cache import fingerprint
from repro.cli import main
from repro.compressors import SZCompressor
from repro.governor import GovernorSpec, StaticGovernor
from repro.governor.telemetry import TelemetryBus
from repro.hardware.cpu import BROADWELL_D1548
from repro.hardware.node import SimulatedNode
from repro.hardware.workload import WorkloadKind
from repro.iosim.dumper import DataDumper
from repro.workflow.campaign import (
    CampaignPoint,
    CheckpointCampaign,
    run_campaign,
    run_campaign_sweep,
)

EXECUTOR = os.environ.get("REPRO_TEST_EXECUTOR", "serial")
CPU = BROADWELL_D1548
EQN3_COMPRESS = CPU.snap_frequency(0.875 * CPU.fmax_ghz)
EQN3_WRITE = CPU.snap_frequency(0.85 * CPU.fmax_ghz)


@pytest.fixture(scope="module")
def field():
    from repro.data.registry import load_field

    return load_field("nyx", "velocity_x", scale=32)


@pytest.fixture()
def campaign():
    return CheckpointCampaign(
        snapshot_bytes=int(1e9), n_snapshots=2, compute_interval_s=600.0
    )


class TestStaticGovernorIsEqn3:
    def test_governed_dump_matches_pinned_dump(self, field):
        # A static governor steering the dump must be indistinguishable
        # from pinning Eqn. 3's frequencies by hand on an equal node.
        governed = DataDumper(SimulatedNode(CPU, seed=0)).dump(
            SZCompressor(), field, 1e-2, int(2e9),
            governor=StaticGovernor(CPU),
        )
        pinned = DataDumper(SimulatedNode(CPU, seed=0)).dump(
            SZCompressor(), field, 1e-2, int(2e9),
            compress_freq_ghz=EQN3_COMPRESS, write_freq_ghz=EQN3_WRITE,
        )
        assert governed.compress.freq_ghz == pinned.compress.freq_ghz
        assert governed.write.freq_ghz == pinned.write.freq_ghz
        assert governed.total_energy_j == pytest.approx(
            pinned.total_energy_j)

    def test_explicit_frequency_overrides_the_governor(self, field):
        gov = StaticGovernor(CPU)
        rep = DataDumper(SimulatedNode(CPU, seed=0)).dump(
            SZCompressor(), field, 1e-2, int(1e9),
            governor=gov, compress_freq_ghz=1.0,
        )
        assert rep.compress.freq_ghz == pytest.approx(1.0)
        # The governor still steers the stage that was left free.
        assert rep.write.freq_ghz == pytest.approx(EQN3_WRITE)

    def test_dump_feeds_observations_back(self, field):
        bus = TelemetryBus()
        gov = StaticGovernor(CPU, telemetry=bus)
        DataDumper(SimulatedNode(CPU, seed=0)).dump(
            SZCompressor(), field, 1e-2, int(1e9), governor=gov,
        )
        phases = [s.phase for s in bus.samples()]
        assert phases == ["compress", "write"]
        assert all(s.power_w > 0 and s.bytes_processed > 0
                   for s in bus.samples())


class TestCampaignIntegration:
    def test_campaign_records_a_governor_report(self, field, campaign):
        report = run_campaign(
            SimulatedNode(CPU, seed=0), SZCompressor(), field, 1e-2,
            campaign, governor="adaptive",
        )
        gov = report.governor
        assert gov is not None
        assert gov.policy == "adaptive"
        # Two phases per snapshot.
        assert len(gov.decisions) == 2 * campaign.n_snapshots

    def test_ungoverned_campaign_report_is_unchanged(self, field, campaign):
        report = run_campaign(
            SimulatedNode(CPU, seed=0), SZCompressor(), field, 1e-2,
            campaign,
        )
        assert report.governor is None

    def test_point_rejects_governor_plus_pinned_frequencies(self):
        with pytest.raises(ValueError, match="cannot pin"):
            CampaignPoint(
                error_bound=1e-2, compress_freq_ghz=1.75,
                governor=GovernorSpec(kind="adaptive"),
            )

    def test_sweep_spec_fills_only_unpinned_points(self, field, campaign):
        governed, pinned = run_campaign_sweep(
            CPU, SZCompressor(), field,
            (
                CampaignPoint(error_bound=1e-2),
                CampaignPoint(error_bound=1e-2,
                              compress_freq_ghz=EQN3_COMPRESS,
                              write_freq_ghz=EQN3_WRITE),
            ),
            campaign, governor="static",
        )
        assert governed.governor is not None
        assert pinned.governor is None
        # The static spec and the hand-pinned point decide identically.
        assert governed.io_energy_j == pytest.approx(pinned.io_energy_j,
                                                     rel=0.05)


class TestCacheNoAliasing:
    def test_governor_knob_is_part_of_the_point_fingerprint(self):
        def key(point):
            return fingerprint(kind="campaign.point", point=point)

        bare = CampaignPoint(error_bound=1e-2)
        static = CampaignPoint(error_bound=1e-2,
                               governor=GovernorSpec(kind="static"))
        adaptive = CampaignPoint(error_bound=1e-2,
                                 governor=GovernorSpec(kind="adaptive"))
        reseeded = CampaignPoint(error_bound=1e-2,
                                 governor=GovernorSpec(kind="adaptive",
                                                       seed=1))
        keys = [key(p) for p in (bare, static, adaptive, reseeded)]
        assert len(set(keys)) == 4

    def test_governed_report_survives_a_cache_round_trip(
            self, field, campaign):
        from repro.cache.serialization import decode_value, encode_value

        report = run_campaign(
            SimulatedNode(CPU, seed=0), SZCompressor(), field, 1e-2,
            campaign, governor=GovernorSpec(kind="adaptive", seed=3),
        )
        clone = decode_value(encode_value(report))
        assert clone == report
        assert clone.governor.trace_sha256 == report.governor.trace_sha256


class TestExecutorMatrix:
    def test_governed_sweep_is_backend_identical(self, field, campaign):
        # The governed sweep must not depend on which backend runs it:
        # every point re-derives its governor from the picklable spec.
        from repro.cache.serialization import encode_value

        points = (
            CampaignPoint(error_bound=1e-2),
            CampaignPoint(error_bound=1e-2,
                          governor=GovernorSpec(kind="adaptive", seed=0)),
        )
        kw = dict(repeats=1, seed=0)
        baseline = run_campaign_sweep(
            CPU, SZCompressor(), field, points, campaign,
            executor="serial", **kw)
        under_test = run_campaign_sweep(
            CPU, SZCompressor(), field, points, campaign,
            executor=EXECUTOR, **kw)
        assert encode_value(list(under_test)) == encode_value(list(baseline))


def _publish_samples(n):
    """Worker-side map fn: publish *n* samples on a fresh local bus."""
    bus = TelemetryBus()
    for i in range(n):
        bus.publish("compress", 2.0, 20.0 + i, 1.0, 1000 * (i + 1))
    return n


class TestDistributedTelemetry:
    def test_worker_publishes_reach_the_coordinator(self):
        from repro.distributed import DistributedExecutor

        with DistributedExecutor(2, heartbeat_s=0.2,
                                 heartbeat_timeout_s=10.0) as ex:
            assert ex.map(_publish_samples, [2, 3]) == [2, 3]
            frames = ex.drain_telemetry()
        assert len(frames) == 5
        assert all(f["source"] == "distributed" for f in frames)
        assert all(f["worker_pid"] > 0 for f in frames)
        assert {f["phase"] for f in frames} == {"compress"}

    def test_drain_is_empty_after_drain(self):
        from repro.distributed import DistributedExecutor

        with DistributedExecutor(2, heartbeat_s=0.2,
                                 heartbeat_timeout_s=10.0) as ex:
            ex.map(_publish_samples, [1])
            ex.drain_telemetry()
            assert ex.drain_telemetry() == []


class TestGovernOverHttp:
    @pytest.fixture()
    def server(self):
        from repro.service.http import ServiceConfig, TuningServer

        srv = TuningServer(ServiceConfig(port=0, workers=2, queue_size=16))
        with srv:
            yield srv

    @staticmethod
    def _post(server, body):
        from tests.test_service_http import request_json

        return request_json(f"{server.url}/v1/govern", method="POST",
                            body=body)

    def test_observe_then_decide_round_trip(self, server):
        samples = [
            {"phase": "compress", "freq_ghz": 2.0, "power_w": 21.0,
             "runtime_s": 1.0, "bytes_processed": 1000},
            {"phase": "write", "freq_ghz": 2.0, "power_w": 23.0,
             "runtime_s": 0.5, "bytes_processed": 500},
        ]
        status, doc = self._post(server, {
            "arch": "broadwell", "policy": "adaptive", "seed": 0,
            "session": "t1", "samples": samples,
        })
        assert status == 200
        assert doc["policy"] == "adaptive"
        assert set(doc["frequencies"]) == {"compress", "write"}
        assert doc["samples_seen"] == 2

    def test_sessions_accumulate_and_do_not_share(self, server):
        _, first = self._post(server, {"session": "a", "samples": [
            {"phase": "compress", "freq_ghz": 2.0, "power_w": 21.0,
             "runtime_s": 1.0}]})
        _, again = self._post(server, {"session": "a", "samples": []})
        _, other = self._post(server, {"session": "b", "samples": []})
        assert again["samples_seen"] == first["samples_seen"]
        assert other["samples_seen"] == 0

    def test_static_policy_answers_eqn3(self, server):
        status, doc = self._post(server, {"policy": "static",
                                          "arch": "broadwell"})
        assert status == 200
        assert doc["frequencies"]["compress"] == pytest.approx(1.75)
        assert doc["frequencies"]["write"] == pytest.approx(1.70)

    @pytest.mark.parametrize("body,needle", [
        ({"arch": "quantum9000"}, "quantum9000"),
        ({"policy": "oracle"}, "ground truth"),
        ({"policy": "nosuch"}, "unknown governor policy"),
        ({"window": "wide"}, "must be integers"),
        ({"samples": "notalist"}, "must be a list"),
        ({"samples": [{"phase": "compress"}]}, "invalid telemetry sample"),
        ({"samples": [{"phase": "compress", "freq_ghz": -1.0,
                       "power_w": 1.0, "runtime_s": 1.0}]},
         "invalid telemetry sample"),
    ])
    def test_bad_requests_answer_400(self, server, body, needle):
        status, doc = self._post(server, body)
        assert status == 400
        assert doc["error"] == "bad_request"
        assert needle in doc["message"]


class TestCliGovern:
    def test_govern_smoke_writes_telemetry(self, tmp_path, capsys):
        out = tmp_path / "telemetry.jsonl"
        assert main(["govern", "--snapshots", "2", "--snapshot-gb", "1",
                     "--scale", "32", "--governor", "static",
                     "--telemetry-out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "static governor" in text
        assert "compress @ 1.75 GHz" in text
        lines = [json.loads(ln) for ln in out.read_text().splitlines()]
        assert len(lines) == 4  # two phases x two snapshots
        assert {ln["phase"] for ln in lines} == {"compress", "write"}

    def test_campaign_governor_flag_smoke(self, capsys):
        assert main(["campaign", "--arch", "broadwell", "--snapshots", "1",
                     "--snapshot-gb", "1", "--scale", "32",
                     "--governor", "static"]) == 0
        out = capsys.readouterr().out
        assert "static gov." in out
        assert "governor" in out
