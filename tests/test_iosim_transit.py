"""Unit tests for transit experiments."""

import pytest

from repro.hardware.cpu import BROADWELL_D1548
from repro.hardware.node import SimulatedNode
from repro.hardware.workload import WorkloadKind
from repro.iosim.nfs import NfsTarget
from repro.iosim.transit import DEFAULT_TRANSIT_SIZES_GB, TransitExperiment, transit_workload


class TestTransitWorkload:
    def test_kind_is_write(self):
        wl = transit_workload(int(1e9), NfsTarget())
        assert wl.kind is WorkloadKind.WRITE

    def test_runtime_matches_nfs_model(self):
        nfs = NfsTarget()
        wl = transit_workload(int(4e9), nfs)
        assert wl.reference_runtime_s == pytest.approx(nfs.write_time_s(int(4e9)))


class TestTransitExperiment:
    def test_paper_sizes(self):
        assert DEFAULT_TRANSIT_SIZES_GB == (1.0, 2.0, 4.0, 8.0, 16.0)

    def test_run_produces_all_points(self):
        node = SimulatedNode(BROADWELL_D1548, seed=0)
        exp = TransitExperiment(node, repeats=2)
        samples = exp.run(sizes_gb=(1.0, 2.0), frequencies=[0.8, 1.4, 2.0])
        assert len(samples) == 6
        names = {s.workload for s in samples}
        assert names == {"write@1GB", "write@2GB"}

    def test_larger_size_longer_runtime(self):
        node = SimulatedNode(BROADWELL_D1548, power_noise=0.0, runtime_noise=0.0)
        exp = TransitExperiment(node, repeats=1)
        samples = exp.run(sizes_gb=(1.0, 16.0), frequencies=[2.0])
        t1 = next(s for s in samples if s.workload == "write@1GB").runtime_s
        t16 = next(s for s in samples if s.workload == "write@16GB").runtime_s
        assert t16 == pytest.approx(16 * t1, rel=1e-6)

    def test_invalid_size_rejected(self):
        node = SimulatedNode(BROADWELL_D1548)
        with pytest.raises(ValueError):
            TransitExperiment(node).run(sizes_gb=(0.0,), frequencies=[2.0])
