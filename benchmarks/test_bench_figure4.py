"""Bench: regenerate Fig. 4 (data transit scaled runtime characteristics)."""

import numpy as np
from conftest import emit

from repro.experiments.characteristics import characteristic_bands
from repro.workflow.report import render_series


def test_bench_figure4(benchmark, ctx):
    samples = ctx.outcome.transit_samples

    bands = benchmark.pedantic(
        characteristic_bands, args=(samples, ("cpu",), "runtime"),
        rounds=3, iterations=1,
    )
    for (cpu,), band in sorted(bands.items()):
        emit(render_series(
            band.x,
            {"scaled_runtime": band.mean, "ci_low": band.lower, "ci_high": band.upper},
            title=f"FIG. 4 — data transit scaled runtime: {cpu}",
        ))

    for (cpu,), band in bands.items():
        assert band.mean[-1] == min(band.mean)  # lowest runtime at fmax

    # Paper: Skylake write runtime is stagnant vs Broadwell's stretch.
    bw_stretch = bands[("broadwell",)].mean[0]
    sky_stretch = bands[("skylake",)].mean[0]
    emit(f"Runtime stretch at fmin: broadwell={bw_stretch:.3f}x, skylake={sky_stretch:.3f}x")
    assert sky_stretch < bw_stretch
    assert sky_stretch < 1.6  # "stagnant"

    # Paper: +9.3 % average runtime at a 15 % frequency cut.
    slow = []
    for band in bands.values():
        fmax = band.x[-1]
        idx = int(np.argmin(np.abs(band.x - 0.85 * fmax)))
        slow.append(band.mean[idx] / band.mean[-1] - 1.0)
    avg = float(np.mean(slow))
    emit(f"Average transit slowdown at 0.85*fmax: {avg * 100:.1f} % (paper: 9.3 %)")
    assert 0.05 < avg < 0.14
