#!/usr/bin/env python
"""Compressor study: SZ vs ZFP on the paper's scientific datasets.

Exercises the real codecs (not the simulator): compresses one field of
each Table I dataset at the paper's four error bounds, verifies the
absolute error bound holds, and prints ratio / max error / PSNR — the
compressor-side behaviour the power study builds on.

    python examples/compressor_study.py
"""

import time

import numpy as np

from repro import SZCompressor, ZFPCompressor, load_field
from repro.compressors import evaluate
from repro.workflow.report import render_table

FIELDS = (
    ("cesm-atm", "T"),
    ("hacc", "x"),
    ("nyx", "velocity_x"),
)
ERROR_BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4)


def main() -> None:
    rows = []
    for codec in (SZCompressor(), ZFPCompressor()):
        for dataset, field in FIELDS:
            arr = load_field(dataset, field, scale=12)
            for eb in ERROR_BOUNDS:
                t0 = time.perf_counter()
                buf = codec.compress(arr, eb)
                t_enc = time.perf_counter() - t0
                rec = codec.decompress(buf)
                metrics = evaluate(arr, rec, buf)
                assert metrics.bound_respected, (
                    f"{codec.name} violated eb={eb} on {dataset}/{field}: "
                    f"max err {metrics.max_error}"
                )
                rows.append(
                    {
                        "codec": codec.name,
                        "dataset": f"{dataset}/{field}",
                        "shape": "x".join(map(str, arr.shape)),
                        "eb": eb,
                        "ratio": metrics.ratio,
                        "max_err": metrics.max_error,
                        "psnr_db": metrics.psnr_db,
                        "enc_mb_s": arr.nbytes / 1e6 / t_enc,
                    }
                )
    print(render_table(rows, title="SZ vs ZFP on synthetic SDRBench-style fields"))
    print("\nAll reconstructions satisfied their absolute error bounds.")

    # The headline trade-off the paper leans on: finer bounds cost ratio.
    sz_rows = [r for r in rows if r["codec"] == "sz"]
    for ds in {r["dataset"] for r in sz_rows}:
        series = sorted((r for r in sz_rows if r["dataset"] == ds), key=lambda r: -r["eb"])
        ratios = [r["ratio"] for r in series]
        assert ratios == sorted(ratios, reverse=True) or np.allclose(ratios, ratios[0]), (
            f"unexpected: SZ ratio not monotone in error bound on {ds}"
        )


if __name__ == "__main__":
    main()
