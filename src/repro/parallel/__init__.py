"""Parallel execution layer for slab-sharded compression and sweeps.

See :mod:`repro.parallel.executor` for the backend model and the
auto-selection rules, and :mod:`repro.parallel.instrumentation` for the
per-task timing records surfaced in pipeline reports.
"""

from repro.parallel.executor import (
    CODEC_COST,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    choose_backend,
    default_workers,
    get_executor,
    resolve_executor,
)
from repro.parallel.instrumentation import ParallelStats, TaskStat

__all__ = [
    "CODEC_COST",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ParallelStats",
    "TaskStat",
    "available_executors",
    "choose_backend",
    "default_workers",
    "get_executor",
    "resolve_executor",
]
