"""Unit tests for the simulated node."""

import numpy as np
import pytest

from repro.hardware.cpu import BROADWELL_D1548, SKYLAKE_4114
from repro.hardware.node import SimulatedNode
from repro.hardware.powercurves import CalibratedPowerCurve, PhysicalPowerCurve
from repro.hardware.workload import WorkloadKind, compression_workload


def make_node(**kw):
    return SimulatedNode(BROADWELL_D1548, **kw)


def make_workload():
    return compression_workload(WorkloadKind.COMPRESS_SZ, int(1e9), 1e-2)


class TestConstruction:
    def test_defaults(self):
        node = make_node()
        assert node.frequency_ghz == 2.0
        assert isinstance(node.power_curve, CalibratedPowerCurve)

    def test_custom_curve(self):
        node = make_node(power_curve=PhysicalPowerCurve())
        assert isinstance(node.power_curve, PhysicalPowerCurve)

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            make_node(power_noise=0.6)


class TestGroundTruth:
    def test_true_runtime_matches_workload_model(self):
        node = make_node()
        wl = make_workload()
        node.set_frequency(1.5)
        assert node.true_runtime_s(wl) == pytest.approx(
            wl.runtime_s(BROADWELL_D1548, 1.5)
        )

    def test_true_power_includes_dynamic_factor(self):
        node = make_node()
        wl = make_workload()
        raw = node.power_curve.power_watts(
            BROADWELL_D1548, 2.0, wl.kind, dynamic_factor=wl.dynamic_power_factor
        )
        assert node.true_power_w(wl, 2.0) == pytest.approx(raw)


class TestRun:
    def test_measurement_fields(self):
        node = make_node(seed=0)
        m = node.run(make_workload())
        assert m.cpu == "broadwell"
        assert m.freq_ghz == 2.0
        assert m.energy_j > 0 and m.runtime_s > 0
        assert m.power_w == pytest.approx(m.energy_j / m.runtime_s)

    def test_noise_centered_on_truth(self):
        node = make_node(seed=1)
        wl = make_workload()
        runs = [node.run(wl) for _ in range(200)]
        mean_power = np.mean([m.power_w for m in runs])
        assert mean_power == pytest.approx(node.true_power_w(wl), rel=0.01)

    def test_zero_noise_is_deterministic(self):
        node = make_node(power_noise=0.0, runtime_noise=0.0)
        wl = make_workload()
        a, b = node.run(wl), node.run(wl)
        assert a.energy_j == pytest.approx(b.energy_j)
        assert a.runtime_s == b.runtime_s

    def test_seed_reproducibility(self):
        wl = make_workload()
        a = SimulatedNode(BROADWELL_D1548, seed=7).run(wl)
        b = SimulatedNode(BROADWELL_D1548, seed=7).run(wl)
        assert a == b

    def test_lower_frequency_lower_power(self):
        node = make_node(power_noise=0.0, runtime_noise=0.0)
        wl = make_workload()
        node.set_frequency(2.0)
        high = node.run(wl)
        node.set_frequency(0.8)
        low = node.run(wl)
        assert low.power_w < high.power_w
        assert low.runtime_s > high.runtime_s

    def test_long_run_survives_rapl_wrap(self):
        # A >65.5 kJ run must still measure correctly (polling reads).
        node = make_node(power_noise=0.0, runtime_noise=0.0)
        wl = compression_workload(WorkloadKind.COMPRESS_SZ, int(600e9), 1e-4)
        m = node.run(wl)
        expected = node.true_power_w(wl) * node.true_runtime_s(wl)
        assert expected > 66_000.0  # really does cross the wrap
        assert m.energy_j == pytest.approx(expected, rel=1e-6)

    def test_energy_equals_power_times_time(self):
        node = make_node(seed=3)
        m = node.run(make_workload())
        assert m.energy_j == pytest.approx(m.power_w * m.runtime_s, rel=1e-9)


class TestFrequencyControl:
    def test_set_frequency_snaps(self):
        node = make_node()
        assert node.set_frequency(1.512) == pytest.approx(1.5)
        assert node.frequency_ghz == pytest.approx(1.5)

    def test_out_of_range(self):
        node = make_node()
        with pytest.raises(Exception):
            node.set_frequency(9.9)


class TestSkylakeNode:
    def test_skylake_power_jumps_near_base_clock(self):
        # Skylake's "constant region with a sudden jump": backing off
        # just 10 % from the base clock sheds far more power than the
        # same relative backoff does on Broadwell.
        wl = make_workload()
        sky = SimulatedNode(SKYLAKE_4114, power_noise=0.0, runtime_noise=0.0)
        bw = SimulatedNode(BROADWELL_D1548, power_noise=0.0, runtime_noise=0.0)

        def drop_at_90pct(node):
            cpu = node.cpu
            f = cpu.snap_frequency(0.9 * cpu.fmax_ghz)
            base = node.true_power_w(wl, cpu.fmax_ghz)
            return 1.0 - node.true_power_w(wl, f) / base

        assert drop_at_90pct(sky) > drop_at_90pct(bw)
