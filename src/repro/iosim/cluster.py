"""Cluster-scale data dumping with shared-NFS contention.

The paper studies one node; at exascale, many nodes dump snapshots
concurrently through shared storage. This extension models N identical
clients writing to one :class:`~repro.iosim.nfs.NfsTarget`:

* compression is node-local — costs are independent of N;
* writes contend for the server capacity (network ∧ disk). Each client
  sustains ``min(cpu_copy_rate, capacity / N)``; once the shared side
  saturates, the client CPU stops being the bottleneck, so the write
  stage's DVFS sensitivity is derated by
  :meth:`~repro.iosim.nfs.NfsTarget.cpu_bound_fraction`.

The interesting emergent behaviour (see the extension bench): under
contention, lowering the write frequency becomes *free* — runtime is
pinned by the network — so per-node tuning savings grow with N.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.compressors.base import Compressor
from repro.hardware.cpu import CpuSpec
from repro.hardware.node import SimulatedNode
from repro.hardware.workload import (
    WorkloadKind,
    compression_workload,
    write_workload,
)
from repro.iosim.dumper import DumpReport, StageReport
from repro.iosim.nfs import NfsTarget
from repro.utils.validation import check_positive

__all__ = ["ClusterDumpReport", "Cluster"]

_KIND_BY_CODEC = {
    "sz": WorkloadKind.COMPRESS_SZ,
    "zfp": WorkloadKind.COMPRESS_ZFP,
}


@dataclass(frozen=True)
class ClusterDumpReport:
    """Aggregate outcome of a synchronized cluster dump."""

    per_node: Tuple[DumpReport, ...]
    nodes: int
    cpu_bound_fraction: float

    @property
    def total_energy_j(self) -> float:
        """Cluster-wide energy (sum over nodes)."""
        return float(sum(r.total_energy_j for r in self.per_node))

    @property
    def makespan_s(self) -> float:
        """Wall time of the synchronized dump (slowest node per phase)."""
        return float(
            max(r.compress.runtime_s for r in self.per_node)
            + max(r.write.runtime_s for r in self.per_node)
        )

    @property
    def aggregate_write_bandwidth_bps(self) -> float:
        """Achieved cluster write bandwidth during the write phase."""
        total_bytes = sum(r.write.bytes_processed for r in self.per_node)
        write_time = max(r.write.runtime_s for r in self.per_node)
        return total_bytes / write_time


class Cluster:
    """N identical simulated nodes sharing one NFS target."""

    def __init__(
        self,
        cpu: CpuSpec,
        n_nodes: int,
        nfs: Optional[NfsTarget] = None,
        seed: int = 0,
        repeats: int = 5,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.nfs = nfs if nfs is not None else NfsTarget()
        self.nodes = tuple(
            SimulatedNode(cpu, seed=seed + i) for i in range(n_nodes)
        )
        self.repeats = int(repeats)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def _run_stage(self, node: SimulatedNode, workload, freq_ghz: float):
        node.set_frequency(freq_ghz)
        runs = [node.run(workload) for _ in range(self.repeats)]
        runtime = float(np.mean([m.runtime_s for m in runs]))
        energy = float(np.mean([m.energy_j for m in runs]))
        return runs[0].freq_ghz, runtime, energy

    def dump_all(
        self,
        compressor: Compressor,
        sample_field: np.ndarray,
        error_bound: float,
        bytes_per_node: int,
        compress_freq_ghz: float | None = None,
        write_freq_ghz: float | None = None,
    ) -> ClusterDumpReport:
        """Every node compresses and writes *bytes_per_node* concurrently.

        Frequencies default to the base clock; the same pinned values
        apply cluster-wide (the realistic deployment: one tuning policy
        rolled out fleet-wide).
        """
        check_positive(bytes_per_node, "bytes_per_node")
        if compressor.name not in _KIND_BY_CODEC:
            raise KeyError(f"no workload kind for codec {compressor.name!r}")

        buf = compressor.compress(sample_field, error_bound)
        ratio = buf.ratio
        compressed_bytes = max(1, int(round(bytes_per_node / ratio)))

        n = self.n_nodes
        bw = self.nfs.effective_bandwidth_bps(concurrent_clients=n)
        cpu_frac = self.nfs.cpu_bound_fraction(concurrent_clients=n)

        reports = []
        for i, node in enumerate(self.nodes):
            cpu = node.cpu
            f_c = cpu.fmax_ghz if compress_freq_ghz is None else compress_freq_ghz
            f_w = cpu.fmax_ghz if write_freq_ghz is None else write_freq_ghz

            wl_c = compression_workload(
                _KIND_BY_CODEC[compressor.name], bytes_per_node, error_bound,
                name=f"{compressor.name}-cluster-dump",
            )
            fc, t_c, e_c = self._run_stage(node, wl_c, f_c)

            wl_w = write_workload(compressed_bytes, bw, name=f"cluster-write/{n}")
            # Contention derates how much the client CPU matters.
            base_s = wl_w.sensitivity(cpu)
            wl_w = replace(wl_w, sensitivity_override=base_s * cpu_frac)
            fw, t_w, e_w = self._run_stage(node, wl_w, f_w)

            reports.append(
                DumpReport(
                    compress=StageReport(
                        stage="compress", freq_ghz=fc,
                        bytes_processed=bytes_per_node,
                        runtime_s=t_c, energy_j=e_c,
                    ),
                    write=StageReport(
                        stage="write", freq_ghz=fw,
                        bytes_processed=compressed_bytes,
                        runtime_s=t_w, energy_j=e_w,
                    ),
                    compression_ratio=ratio,
                    error_bound=error_bound,
                )
            )
        return ClusterDumpReport(
            per_node=tuple(reports), nodes=n, cpu_bound_fraction=cpu_frac
        )
