"""Unit + property tests for the lossless baseline codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import LosslessCompressor, SZCompressor, available_compressors
from repro.compressors.base import CorruptStreamError, get_compressor
from repro.data import load_field


class TestRegistration:
    def test_registered_as_gzip(self):
        assert "gzip" in available_compressors()
        assert isinstance(get_compressor("gzip"), LosslessCompressor)


class TestExactness:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bit_exact_roundtrip(self, dtype):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(17, 23)).astype(dtype)
        codec = LosslessCompressor()
        buf, rec = codec.roundtrip(arr, 1e-3)  # bound irrelevant
        assert np.array_equal(rec, arr)
        assert rec.dtype == dtype

    def test_preserves_negative_zero_and_denormals(self):
        arr = np.array([-0.0, 5e-324, -5e-324, 1.0], dtype=np.float64)
        codec = LosslessCompressor()
        _, rec = codec.roundtrip(arr, 1.0)
        assert np.array_equal(rec.view(np.uint64), arr.view(np.uint64))

    def test_no_shuffle_variant(self):
        arr = np.linspace(0, 1, 100, dtype=np.float32)
        codec = LosslessCompressor(shuffle=False)
        _, rec = codec.roundtrip(arr, 1e-3)
        assert np.array_equal(rec, arr)

    @given(st.lists(st.floats(-1e6, 1e6, width=32), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.float32)
        _, rec = LosslessCompressor().roundtrip(arr, 1.0)
        assert np.array_equal(rec, arr)


class TestShuffleBenefit:
    def test_shuffle_improves_ratio_on_smooth_data(self):
        arr = load_field("cesm-atm", "T", scale=24)
        with_shuffle = LosslessCompressor(shuffle=True).compress(arr, 1.0)
        without = LosslessCompressor(shuffle=False).compress(arr, 1.0)
        assert with_shuffle.nbytes < without.nbytes


class TestPaperMotivation:
    def test_lossy_beats_lossless_on_scientific_data(self):
        # Section I's premise: lossy compressors achieve far better
        # ratios than lossless ones on floating-point fields.
        arr = load_field("nyx", "velocity_x", scale=24)
        lossless_ratio = LosslessCompressor().compress(arr, 1.0).ratio
        lossy_ratio = SZCompressor().compress(arr, 1e-2).ratio
        assert lossy_ratio > 2 * lossless_ratio


class TestValidation:
    def test_bad_level(self):
        with pytest.raises(ValueError):
            LosslessCompressor(zlib_level=11)

    def test_corrupt_mode_byte(self):
        arr = np.ones(16, dtype=np.float32)
        codec = LosslessCompressor()
        buf = codec.compress(arr, 1.0)
        bad = buf.__class__(codec=buf.codec, payload=b"X" + buf.payload[1:],
                            shape=buf.shape, dtype=buf.dtype,
                            error_bound=buf.error_bound)
        with pytest.raises(CorruptStreamError, match="mode"):
            codec.decompress(bad)

    def test_truncated_payload(self):
        arr = np.random.default_rng(1).normal(size=256).astype(np.float32)
        codec = LosslessCompressor()
        buf = codec.compress(arr, 1.0)
        bad = buf.__class__(codec=buf.codec, payload=buf.payload[: len(buf.payload) // 2],
                            shape=buf.shape, dtype=buf.dtype,
                            error_bound=buf.error_bound)
        with pytest.raises(CorruptStreamError):
            codec.decompress(bad)

    def test_size_mismatch_detected(self):
        arr = np.ones(16, dtype=np.float32)
        codec = LosslessCompressor()
        buf = codec.compress(arr, 1.0)
        bad = buf.__class__(codec=buf.codec, payload=buf.payload,
                            shape=(32,), dtype=buf.dtype,
                            error_bound=buf.error_bound)
        with pytest.raises(CorruptStreamError, match="expected"):
            codec.decompress(bad)
