"""Chaos suite: SIGKILL workers mid-campaign, demand byte-identity.

The distributed executor's core promise is that worker death is
*invisible* in the results: a campaign sweep that loses a worker
mid-flight must produce output byte-identical (via the cache's
canonical encoding) to a serial golden run, with zero lost points and
reassignment counters that account for every requeued shard exactly.

Kills are injected two ways:

* the executor's deterministic ``chaos_kill_after`` knob (SIGKILL one
  busy worker after the Nth shard commit), giving exact counter
  accounting;
* an external ``os.kill(pid, SIGKILL)`` on a pid from
  :meth:`worker_pids`, the way an operator or OOM killer would.

A third family exercises the failure *boundary*: a poison shard that
kills every worker it touches must exhaust its kill budget and fail
the map with :class:`WorkerLostError` instead of respawning forever.
"""

import os
import signal
import threading
import time

import pytest

from repro.cache import ResultCache, encode_value, set_cache
from repro.distributed import DistributedExecutor, WorkerLostError
from repro.hardware.cpu import SKYLAKE_4114
from repro.observability.metrics import get_registry
from repro.workflow.campaign import CheckpointCampaign, run_campaign_sweep


@pytest.fixture(scope="module")
def sample():
    from repro.data import load_field

    return load_field("nyx", "velocity_x", scale=32)


@pytest.fixture(autouse=True)
def fresh_cache():
    # Each test controls its own cache so parent-side campaign lookups
    # can't leak warm entries between tests.
    previous = set_cache(ResultCache())
    yield
    set_cache(previous)


CAMPAIGN = CheckpointCampaign(
    snapshot_bytes=int(16e9), n_snapshots=2, compute_interval_s=600.0
)
BOUNDS = (1e-1, 5e-2, 1e-2, 5e-3, 1e-3, 5e-4)


def _slow_square(x):
    time.sleep(0.15)
    return x * x


def _die_on_poison(x):
    if x == 13:
        os.kill(os.getpid(), signal.SIGKILL)
    return x + 1


def _reassignment_counter():
    return get_registry().counter(
        "repro_dist_reassignments_total",
        help="In-flight shards requeued after a worker died",
    )


class TestChaosKnobCampaign:
    def test_sweep_with_mid_campaign_kill_is_byte_identical(self, sample):
        golden = run_campaign_sweep(
            SKYLAKE_4114, "sz", sample, BOUNDS, CAMPAIGN,
            repeats=1, seed=3, executor="serial",
        )
        # The golden run warmed the parent cache; the distributed run
        # must recompute every point or the chaos never sees work.
        set_cache(ResultCache())
        counter = _reassignment_counter()
        before = counter.value
        ex = DistributedExecutor(
            2, chaos_kill_after=1, heartbeat_s=0.2, heartbeat_timeout_s=5.0
        )
        try:
            chaotic = run_campaign_sweep(
                SKYLAKE_4114, "sz", sample, BOUNDS, CAMPAIGN,
                repeats=1, seed=3, executor=ex, workers=2,
            )
            log = list(ex.reassignment_log)
        finally:
            ex.close()

        # Zero lost points, byte-identical to the golden run.
        assert len(chaotic) == len(BOUNDS)
        assert encode_value(list(chaotic)) == encode_value(list(golden))
        # A busy worker was SIGKILLed holding a shard, so at least one
        # reassignment happened — and the counter accounts for every
        # entry in the executor's reassignment log exactly.
        assert len(log) >= 1
        assert counter.value == before + len(log)

    def test_killed_worker_is_really_gone(self):
        ex = DistributedExecutor(
            2, chaos_kill_after=2, heartbeat_s=0.2, heartbeat_timeout_s=5.0
        )
        try:
            out = ex.map(_slow_square, list(range(12)))
            assert out == [x * x for x in range(12)]
            # The chaos kill fired exactly once (the knob is one-shot).
            assert ex._chaos_done
        finally:
            ex.close()


class TestExternalSigkill:
    def test_external_kill_mid_map_completes_identically(self):
        ex = DistributedExecutor(2, heartbeat_s=0.2, heartbeat_timeout_s=5.0)
        killed = {}

        def killer():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                pids = ex.worker_pids()
                if pids:
                    killed["pid"] = pids[0]
                    os.kill(pids[0], signal.SIGKILL)
                    return
                time.sleep(0.05)

        try:
            thread = threading.Thread(target=killer)
            thread.start()
            out = ex.map(_slow_square, list(range(16)))
            thread.join()
            assert out == [x * x for x in range(16)]
            assert "pid" in killed
            # The victim is no longer in the live fleet.
            assert killed["pid"] not in ex.worker_pids()
        finally:
            ex.close()

    def test_fleet_keeps_working_after_the_kill(self):
        ex = DistributedExecutor(2, heartbeat_s=0.2, heartbeat_timeout_s=5.0)
        try:
            ex.map(_slow_square, [1, 2, 3, 4])
            os.kill(ex.worker_pids()[0], signal.SIGKILL)
            # The next map still completes (respawn or surviving worker).
            assert ex.map(_slow_square, [5, 6, 7]) == [25, 36, 49]
        finally:
            ex.close()


class TestWarmSharedCache:
    def test_partially_warm_disk_cache_stays_byte_identical(
        self, sample, tmp_path
    ):
        golden = run_campaign_sweep(
            SKYLAKE_4114, "sz", sample, BOUNDS, CAMPAIGN,
            repeats=1, seed=3, executor="serial",
        )
        cache_dir = str(tmp_path / "fleet-cache")
        # Warm half the points through the shared store...
        set_cache(ResultCache(disk_dir=cache_dir))
        run_campaign_sweep(
            SKYLAKE_4114, "sz", sample, BOUNDS[:3], CAMPAIGN,
            repeats=1, seed=3, executor="serial",
        )
        # ...then sweep the full set distributed, sharing that store.
        set_cache(ResultCache(disk_dir=cache_dir))
        ex = DistributedExecutor(
            2, chaos_kill_after=1, heartbeat_s=0.2, heartbeat_timeout_s=5.0
        )
        try:
            warm = run_campaign_sweep(
                SKYLAKE_4114, "sz", sample, BOUNDS, CAMPAIGN,
                repeats=1, seed=3, executor=ex, workers=2,
            )
        finally:
            ex.close()
        assert encode_value(list(warm)) == encode_value(list(golden))

    def test_workers_inherit_the_shared_store(self, tmp_path):
        cache_dir = str(tmp_path / "shared")
        set_cache(ResultCache(disk_dir=cache_dir))
        ex = DistributedExecutor(2, heartbeat_s=0.2, heartbeat_timeout_s=5.0)
        try:
            assert ex._resolved_cache_dir() == cache_dir
            assert ex.map(_slow_square, [1, 2, 3]) == [1, 4, 9]
        finally:
            ex.close()


class TestKillBudget:
    def test_poison_shard_exhausts_budget_and_raises(self):
        ex = DistributedExecutor(
            2, shard_kill_budget=2, max_respawns=8,
            heartbeat_s=0.2, heartbeat_timeout_s=5.0,
        )
        try:
            with pytest.raises(WorkerLostError, match="worker deaths"):
                ex.map(_die_on_poison, list(range(20)))
        finally:
            ex.close()

    def test_healthy_items_unaffected_by_budget_knob(self):
        ex = DistributedExecutor(
            2, shard_kill_budget=1, heartbeat_s=0.2, heartbeat_timeout_s=5.0
        )
        try:
            assert ex.map(_slow_square, list(range(6))) == [
                x * x for x in range(6)
            ]
        finally:
            ex.close()
