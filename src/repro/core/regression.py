"""Non-linear regression: the ``a·f^b + c`` fitter and model selection.

The paper fits its power curves with the MATLAB Curve Fitting Toolbox,
minimizing SSE over the power-law-plus-constant family (Eqn. 2). The
equivalent here is a robust two-stage fitter: a coarse grid over the
exponent ``b`` (for each candidate ``b``, the optimal ``a`` and ``c``
solve a 2-parameter *linear* least-squares problem in closed form),
followed by a ``scipy.optimize.least_squares`` polish of all three
parameters. The grid stage makes the fit immune to the poor local
minima that plague raw ``curve_fit`` on exponents spanning 1-30 (the
paper's Skylake fits reach b ≈ 23).

:func:`fit_best_model` reproduces the toolbox's model-selection step:
try several families, keep the lowest RMSE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.utils.stats import GoodnessOfFit, goodness_of_fit

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "FittedModel",
    "fit_best_model",
    "CANDIDATE_MODELS",
]

#: Exponent search bounds; covers the paper's 3.4-23.3 range with room.
_B_MIN, _B_MAX = 0.25, 40.0
_B_GRID_POINTS = 160


def _validate_xy(x, y) -> Tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError(f"x and y must be equal length, got {x.size} vs {y.size}")
    if x.size < 4:
        raise ValueError(f"need at least 4 points to fit, got {x.size}")
    if np.any(~np.isfinite(x)) or np.any(~np.isfinite(y)):
        raise ValueError("x and y must be finite")
    if np.any(x <= 0):
        raise ValueError("frequencies must be positive for the power-law family")
    return x, y


@dataclass(frozen=True)
class PowerLawFit:
    """Fitted ``y = a·x^b + c`` with goodness-of-fit statistics."""

    a: float
    b: float
    c: float
    gof: GoodnessOfFit

    def predict(self, x) -> np.ndarray:
        """Model prediction at *x* (scalar or array)."""
        arr = np.asarray(x, dtype=np.float64)
        return self.a * arr**self.b + self.c

    def equation(self) -> str:
        """Human-readable equation string, Table IV/V style."""
        return f"{self.a:.4g}*f^{self.b:.4g} + {self.c:.4g}"


def _linear_solve_for_b(x: np.ndarray, y: np.ndarray, b: float) -> Tuple[float, float, float]:
    """Best (a, c) for a fixed exponent, plus the resulting SSE."""
    basis = np.column_stack([x**b, np.ones_like(x)])
    coef, *_ = np.linalg.lstsq(basis, y, rcond=None)
    resid = y - basis @ coef
    return float(coef[0]), float(coef[1]), float(resid @ resid)


def fit_power_law(
    x,
    y,
    b_bounds: Tuple[float, float] = (_B_MIN, _B_MAX),
    nonnegative_a: bool = True,
) -> PowerLawFit:
    """Fit ``y = a·x^b + c`` by exponent-grid search + local polish."""
    x, y = _validate_xy(x, y)
    b_lo, b_hi = b_bounds
    if not 0 < b_lo < b_hi:
        raise ValueError(f"invalid exponent bounds {b_bounds}")

    best = None
    for b in np.geomspace(b_lo, b_hi, _B_GRID_POINTS):
        a, c, sse_val = _linear_solve_for_b(x, y, float(b))
        if nonnegative_a and a < 0:
            continue
        if best is None or sse_val < best[3]:
            best = (a, float(b), c, sse_val)
    if best is None:
        # All grid solutions had negative slope; fall back to a flat fit.
        c = float(np.mean(y))
        pred = np.full_like(y, c)
        return PowerLawFit(0.0, 1.0, c, goodness_of_fit(y, pred))

    a0, b0, c0, _ = best

    def residuals(theta):
        a, b, c = theta
        return a * x**b + c - y

    lower = [0.0 if nonnegative_a else -np.inf, b_lo, -np.inf]
    upper = [np.inf, b_hi, np.inf]
    sol = optimize.least_squares(
        residuals,
        x0=[max(a0, 1e-12) if nonnegative_a else a0, b0, c0],
        bounds=(lower, upper),
        method="trf",
        max_nfev=2000,
    )
    a, b, c = (float(v) for v in sol.x)
    fit = PowerLawFit(a, b, c, goodness_of_fit(y, a * x**b + c))
    # Keep the grid solution if the polish diverged.
    grid_fit = PowerLawFit(a0, b0, c0, goodness_of_fit(y, a0 * x**b0 + c0))
    return fit if fit.gof.sse <= grid_fit.gof.sse else grid_fit


@dataclass(frozen=True)
class FittedModel:
    """A fitted candidate from :func:`fit_best_model`."""

    family: str
    params: Tuple[float, ...]
    gof: GoodnessOfFit
    _predict: Callable[[np.ndarray], np.ndarray]

    def predict(self, x) -> np.ndarray:
        return self._predict(np.asarray(x, dtype=np.float64))


def _fit_polynomial(degree: int):
    def fit(x: np.ndarray, y: np.ndarray) -> FittedModel:
        coeffs = np.polyfit(x, y, degree)
        pred = np.polyval(coeffs, x)
        return FittedModel(
            family=f"poly{degree}",
            params=tuple(float(c) for c in coeffs),
            gof=goodness_of_fit(y, pred),
            _predict=lambda xx, c=coeffs: np.polyval(c, xx),
        )

    return fit


def _fit_powerlaw_candidate(x: np.ndarray, y: np.ndarray) -> FittedModel:
    fit = fit_power_law(x, y)
    return FittedModel(
        family="powerlaw",
        params=(fit.a, fit.b, fit.c),
        gof=fit.gof,
        _predict=fit.predict,
    )


def _fit_exponential(x: np.ndarray, y: np.ndarray) -> FittedModel:
    # y = a*exp(b*x) + c, via grid on b + linear solve (same trick).
    best = None
    for b in np.linspace(0.1, 12.0, 80):
        basis = np.column_stack([np.exp(b * x), np.ones_like(x)])
        coef, *_ = np.linalg.lstsq(basis, y, rcond=None)
        resid = y - basis @ coef
        sse_val = float(resid @ resid)
        if best is None or sse_val < best[3]:
            best = (float(coef[0]), float(b), float(coef[1]), sse_val)
    a, b, c, _ = best

    def predict(xx, a=a, b=b, c=c):
        return a * np.exp(b * xx) + c

    return FittedModel(
        family="exponential",
        params=(a, b, c),
        gof=goodness_of_fit(y, predict(x)),
        _predict=predict,
    )


CANDIDATE_MODELS: Dict[str, Callable[[np.ndarray, np.ndarray], FittedModel]] = {
    "powerlaw": _fit_powerlaw_candidate,
    "poly1": _fit_polynomial(1),
    "poly2": _fit_polynomial(2),
    "exponential": _fit_exponential,
}


def fit_best_model(x, y, families: Sequence[str] | None = None) -> FittedModel:
    """Fit several families and keep the lowest-RMSE one.

    This mirrors the paper's use of the Curve Fitting Toolbox, which
    "finds the most optimal model, minimizing SSE and RMSE" — on the
    measured data the winner is the power law of Eqn. 2.
    """
    x, y = _validate_xy(x, y)
    names = list(families) if families is not None else list(CANDIDATE_MODELS)
    unknown = [n for n in names if n not in CANDIDATE_MODELS]
    if unknown:
        raise KeyError(f"unknown model families {unknown}; known: {list(CANDIDATE_MODELS)}")
    fits = [CANDIDATE_MODELS[n](x, y) for n in names]
    return min(fits, key=lambda m: m.gof.rmse)
