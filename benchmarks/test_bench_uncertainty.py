"""Bench: bootstrap uncertainty of the Table IV parameters.

Quantifies what the paper's point estimates hide: the Broadwell
exponent is reasonably identified, while the Skylake exponent's
interval is enormous — which is exactly why its R² is an unreliable
metric there (the paper's own observation about non-linear fits).
"""

import numpy as np
from conftest import emit

from repro.core.uncertainty import bootstrap_power_fit
from repro.workflow.report import render_table


def test_bench_uncertainty(benchmark, ctx):
    samples = ctx.outcome.compression_samples

    def run():
        rows = []
        results = {}
        for arch in ("broadwell", "skylake"):
            res = bootstrap_power_fit(
                samples.filter(cpu=arch), n_boot=120, seed=0
            )
            results[arch] = res
            for pname in ("a", "b", "c"):
                p = getattr(res, pname)
                rows.append(
                    {
                        "arch": arch,
                        "param": pname,
                        "estimate": p.estimate,
                        "ci_low": p.lower,
                        "ci_high": p.upper,
                    }
                )
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(rows, title="BOOTSTRAP — 95 % parameter intervals (compression models)"))

    bw, sky = results["broadwell"], results["skylake"]
    # Ground-truth parameters are inside (or adjacent to) the intervals.
    assert bw.b.contains(5.315) or abs(bw.b.estimate - 5.315) < 0.5
    assert bw.c.contains(0.7429) or abs(bw.c.estimate - 0.7429) < 0.02
    # The a/b trade-off: on Skylake's cliff-shaped curve the scale
    # parameter `a` is wildly unidentified (orders of magnitude wide in
    # relative terms) even when b is pinned — the reason fitted Skylake
    # rows vary so much between papers and runs.
    assert (sky.a.width / sky.a.estimate) > 3 * (bw.a.width / bw.a.estimate)
    # But the *constant* (the power floor) is tight on both chips —
    # the physically meaningful quantity survives the ambiguity.
    assert bw.c.width < 0.05 and sky.c.width < 0.05
    # The prediction band is non-degenerate and brackets its own fit.
    assert np.all(sky.band_lower <= sky.band_upper)

    emit(f"Broadwell b: {bw.b.estimate:.2f} [{bw.b.lower:.2f}, {bw.b.upper:.2f}]  "
         f"Skylake b: {sky.b.estimate:.1f} [{sky.b.lower:.1f}, {sky.b.upper:.1f}]")
