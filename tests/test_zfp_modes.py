"""Unit tests for ZFP's fixed-precision and fixed-rate modes."""

import numpy as np
import pytest

from repro.compressors import ZFPCompressor
from repro.compressors.metrics import psnr
from repro.data import load_field


@pytest.fixture(scope="module")
def field():
    return load_field("nyx", "velocity_x", scale=24)


@pytest.fixture(scope="module")
def zfp():
    return ZFPCompressor()


class TestFixedPrecision:
    def test_roundtrip_shape_and_dtype(self, zfp, field):
        buf = zfp.compress_fixed_precision(field, 20)
        rec = zfp.decompress(buf)
        assert rec.shape == field.shape
        assert rec.dtype == field.dtype
        assert np.isinf(buf.error_bound)

    def test_more_planes_better_quality(self, zfp, field):
        quality = []
        for planes in (8, 16, 24, 32):
            buf = zfp.compress_fixed_precision(field, planes)
            rec = zfp.decompress(buf)
            quality.append(psnr(field, rec))
        assert quality == sorted(quality)

    def test_more_planes_bigger_payload(self, zfp, field):
        sizes = [
            zfp.compress_fixed_precision(field, p).nbytes for p in (8, 16, 24)
        ]
        assert sizes == sorted(sizes)

    def test_full_planes_near_lossless(self, zfp, field):
        precision_planes = 30 + field.ndim + 2  # top_plane + 1 for float32
        buf = zfp.compress_fixed_precision(field, precision_planes)
        rec = zfp.decompress(buf)
        # Error floor: fixed-point + lifting slop only.
        assert np.max(np.abs(field - rec)) < 1e-5

    def test_buffer_serialization_roundtrip(self, zfp, field):
        from repro.compressors.base import CompressedBuffer

        buf = zfp.compress_fixed_precision(field, 16)
        restored = CompressedBuffer.from_bytes(buf.to_bytes())
        rec = zfp.decompress(restored)
        assert rec.shape == field.shape

    def test_planes_validation(self, zfp, field):
        with pytest.raises(ValueError, match="planes"):
            zfp.compress_fixed_precision(field, 0)
        with pytest.raises(ValueError, match="planes"):
            zfp.compress_fixed_precision(field, 99)

    def test_rejects_nan(self, zfp):
        arr = np.ones((8, 8), dtype=np.float32)
        arr[0, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            zfp.compress_fixed_precision(arr, 16)

    def test_zero_blocks_stay_zero(self, zfp):
        arr = np.zeros((8, 8), dtype=np.float32)
        rec = zfp.decompress(zfp.compress_fixed_precision(arr, 16))
        assert np.array_equal(rec, arr)


class TestFixedRate:
    def test_rate_controls_size(self, zfp, field):
        small = zfp.compress_fixed_rate(field, 2.0)
        large = zfp.compress_fixed_rate(field, 12.0)
        assert small.nbytes < large.nbytes

    def test_achieved_rate_near_target(self, zfp, field):
        target = 8.0
        buf = zfp.compress_fixed_rate(field, target)
        # zlib may shave it further; the pre-zlib budget is the bound.
        achieved = buf.nbytes * 8 / field.size
        assert achieved <= target * 1.15

    def test_rate_quality_tradeoff(self, zfp, field):
        lo = zfp.decompress(zfp.compress_fixed_rate(field, 3.0))
        hi = zfp.decompress(zfp.compress_fixed_rate(field, 14.0))
        assert psnr(field, hi) > psnr(field, lo)

    def test_invalid_rate(self, zfp, field):
        with pytest.raises(ValueError):
            zfp.compress_fixed_rate(field, 0.0)

    def test_tiny_budget_clamps_to_one_plane(self, zfp, field):
        buf = zfp.compress_fixed_rate(field, 0.05)
        rec = zfp.decompress(buf)  # still decodes to the right shape
        assert rec.shape == field.shape
