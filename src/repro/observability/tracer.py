"""Hierarchical span tracing for pipeline hot paths.

The paper's contribution is *measurement*: per-stage runtime and power
of compression and NFS writing. This module gives the reproduction the
same visibility into itself — every pipeline stage opens a
:class:`Span` (``with tracer.span("sz.quantize", bytes_in=...)``) and
the finished spans form a tree mirroring the call structure:

    campaign.run
      campaign.snapshot
        dump
          dump.ratio
            chunk.compress
              chunk.slab ...
          dump.compress
          dump.write

Spans carry wall time (``time.perf_counter`` based, relative to the
tracer's epoch), arbitrary attributes (byte counts, modeled energy,
frequencies) and an ``ok``/``error`` status; a span closed by an
exception is still recorded, marked failed, and the exception
propagates unchanged.

The process-wide default is a :class:`NullTracer` whose ``span()``
returns a shared no-op context manager — instrumented code pays one
method call per stage when tracing is off, so the hot paths stay within
noise of their uninstrumented cost. :func:`set_tracer` (or the
:func:`use_tracer` context manager, handy in tests) swaps in a real
:class:`Tracer`.

Per-thread span stacks make the tracer safe under the thread executor:
spans opened on different threads never corrupt each other's nesting;
spans opened on a worker thread with an empty stack become roots.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass
class Span:
    """One timed stage of a run, possibly with child stages.

    Times are seconds relative to the owning tracer's epoch so a span
    dump is self-consistent without wall-clock anchoring.
    """

    name: str
    start_s: float
    end_s: float = 0.0
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to an open (or finished) span; chainable."""
        self.attrs.update(attrs)
        return self

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Pre-order traversal yielding ``(span, depth)`` pairs."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)


class _NullSpan:
    """Shared do-nothing span/context-manager for the disabled tracer."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead default: every span is the same no-op object."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, duration_s: float, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    @property
    def spans(self) -> Tuple[Span, ...]:
        return ()

    def reset(self) -> None:
        pass


class Tracer:
    """Collects a tree of :class:`Span` records per thread of execution."""

    enabled = True

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: List[Span] = []

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _attach(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of whatever span is active on this thread.

        The yielded :class:`Span` accepts late attributes via
        :meth:`Span.set`. An exception inside the block marks the span
        ``error`` (recording the exception type and message) and
        re-raises.
        """
        sp = Span(name=name, start_s=self._now(), attrs=dict(attrs))
        stack = self._stack()
        stack.append(sp)
        try:
            yield sp
        except BaseException as exc:
            sp.status = "error"
            sp.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            sp.end_s = self._now()
            stack.pop()
            self._attach(sp)

    def record_span(self, name: str, duration_s: float, **attrs: Any) -> Span:
        """Record an already-measured stage (e.g. an executor task whose
        wall time was clocked inside a worker) ending now.

        The duration is preserved exactly; the start is back-dated from
        "now", so it is layout-approximate and may precede the parent's
        start when workers overlapped.
        """
        end = self._now()
        sp = Span(
            name=name,
            start_s=end - max(float(duration_s), 0.0),
            end_s=end,
            attrs=dict(attrs),
        )
        self._attach(sp)
        return sp

    @property
    def spans(self) -> Tuple[Span, ...]:
        """Finished root spans, in completion order."""
        with self._lock:
            return tuple(self._roots)

    def reset(self) -> None:
        """Drop all recorded roots (open spans are unaffected)."""
        with self._lock:
            self._roots.clear()


_TRACER: "Tracer | NullTracer" = NullTracer()


def get_tracer() -> "Tracer | NullTracer":
    """The process-wide tracer (a :class:`NullTracer` unless enabled)."""
    return _TRACER


def set_tracer(tracer: "Tracer | NullTracer") -> "Tracer | NullTracer":
    """Install *tracer* as the process-wide tracer; returns the old one."""
    global _TRACER
    old = _TRACER
    _TRACER = tracer
    return old


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer") -> Iterator["Tracer | NullTracer"]:
    """Temporarily install *tracer* (restores the previous on exit)."""
    old = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(old)
