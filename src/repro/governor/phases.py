"""Phase detection: what kind of work is the node doing right now?

The control loop tunes per *phase*, not per process — the paper's whole
point is that compression and data writing want different clocks. A
:class:`Phase` is the governor's unit of state; this module maps the
two naming schemes the rest of the stack already uses onto it:

* workload kinds (:class:`~repro.hardware.workload.WorkloadKind`) from
  the simulation layer, and
* span names (``dump.compress``, ``nfs.write`` …) from the
  observability layer's pipeline/iosim annotations.

:class:`PhaseDetector` adds the stateful view: push/pop span names as
stages begin and end (mirroring the tracer's stack) and read
``current`` to tag telemetry samples emitted mid-stage.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.hardware.workload import WorkloadKind

__all__ = ["Phase", "phase_for_kind", "phase_for_span", "PhaseDetector"]


class Phase(enum.Enum):
    """The governor's three-way classification of node activity."""

    COMPRESS = "compress"
    WRITE = "write"
    IDLE = "idle"


#: Codec stages (either direction) tune like compression; pure data
#: movement tunes like writing. Everything else is idle to the governor.
_PHASE_FOR_KIND = {
    WorkloadKind.COMPRESS_SZ: Phase.COMPRESS,
    WorkloadKind.COMPRESS_ZFP: Phase.COMPRESS,
    WorkloadKind.DECOMPRESS_SZ: Phase.COMPRESS,
    WorkloadKind.DECOMPRESS_ZFP: Phase.COMPRESS,
    WorkloadKind.WRITE: Phase.WRITE,
    WorkloadKind.READ: Phase.WRITE,
}

#: Span-name prefixes from the pipeline/iosim tracers, most specific
#: first — ``dump.compress`` must win over ``dump``.
_SPAN_PREFIXES: Tuple[Tuple[str, Phase], ...] = (
    ("dump.compress", Phase.COMPRESS),
    ("dump.ratio", Phase.COMPRESS),
    ("dump.write", Phase.WRITE),
    ("chunk.", Phase.COMPRESS),
    ("sz.", Phase.COMPRESS),
    ("zfp.", Phase.COMPRESS),
    ("nfs.", Phase.WRITE),
    ("transit.", Phase.WRITE),
)


def phase_for_kind(kind: WorkloadKind) -> Phase:
    """Phase a workload kind executes in (idle for unknown kinds)."""
    return _PHASE_FOR_KIND.get(kind, Phase.IDLE)


def phase_for_span(name: str) -> Optional[Phase]:
    """Phase a span name announces, or ``None`` for neutral spans.

    Neutral spans (``campaign.run``, ``pipeline.fit`` …) neither enter
    nor leave a phase; the detector keeps whatever phase encloses them.
    """
    for prefix, phase in _SPAN_PREFIXES:
        if name == prefix or name.startswith(prefix):
            return phase
    return None


class PhaseDetector:
    """Stack-shaped phase tracker fed by span enter/exit events.

    Mirrors the tracer's per-thread span stack: :meth:`push` on span
    start, :meth:`pop` on span end. Neutral spans push ``None`` so the
    stack stays balanced without disturbing the current phase.
    """

    def __init__(self) -> None:
        self._stack: list = []

    @property
    def current(self) -> Phase:
        """Innermost announced phase; :data:`Phase.IDLE` outside any."""
        for phase in reversed(self._stack):
            if phase is not None:
                return phase
        return Phase.IDLE

    def push(self, span_name: str) -> Phase:
        """Enter a span; returns the phase now current."""
        self._stack.append(phase_for_span(span_name))
        return self.current

    def pop(self) -> Phase:
        """Leave the innermost span; returns the phase now current."""
        if self._stack:
            self._stack.pop()
        return self.current

    @property
    def depth(self) -> int:
        return len(self._stack)
