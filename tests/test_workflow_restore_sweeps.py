"""Unit tests for the restore-path sweeps (decompression + read)."""

import numpy as np
import pytest

from repro.core.partitions import COMPRESSION_PARTITIONS, fit_partition_models
from repro.core.scaling import add_scaled_columns
from repro.workflow.sweep import (
    SweepConfig,
    compression_sweep,
    decompression_sweep,
    default_nodes,
    read_sweep,
)

FAST = SweepConfig(
    compressors=("sz", "zfp"),
    datasets=(("nyx", "velocity_x"),),
    error_bounds=(1e-2,),
    transit_sizes_gb=(1.0,),
    repeats=2,
    data_scale=32,
    frequency_stride=4,
    measure_ratios=False,
)


class TestDecompressionSweep:
    @pytest.fixture(scope="class")
    def samples(self):
        return decompression_sweep(default_nodes(), FAST)

    def test_schema_matches_compression(self, samples):
        comp = compression_sweep(default_nodes(), FAST)
        assert set(samples[0]) | {"ratio"} == set(comp[0])

    def test_decompression_faster_than_compression(self, samples):
        comp = compression_sweep(default_nodes(), FAST)
        for cpu in ("broadwell", "skylake"):
            t_dec = samples.filter(cpu=cpu, compressor="sz").column("runtime_s").mean()
            t_comp = comp.filter(cpu=cpu, compressor="sz").column("runtime_s").mean()
            assert t_dec < t_comp

    def test_partition_models_fit_on_restore_data(self, samples):
        scaled = add_scaled_columns(samples)
        models = fit_partition_models(scaled, COMPRESSION_PARTITIONS)
        # Same structural conclusion on the restore path.
        assert models["Broadwell"].gof.rmse < models["Total"].gof.rmse
        assert models["Skylake"].gof.rmse < models["Total"].gof.rmse

    def test_critical_slope_shape(self, samples):
        scaled = add_scaled_columns(samples)
        bw = scaled.filter(cpu="broadwell").sort_by("freq_ghz")
        p = bw.column("scaled_power_w")
        f = bw.column("freq_ghz")
        assert p[f.argmax()] >= p.max() - 1e-9


class TestReadSweep:
    @pytest.fixture(scope="class")
    def samples(self):
        return read_sweep(default_nodes(), FAST)

    def test_schema(self, samples):
        assert {"cpu", "size_gb", "freq_ghz", "power_w", "runtime_s"} <= set(samples[0])

    def test_skylake_read_runtime_stagnant(self, samples):
        scaled = add_scaled_columns(samples, group_keys=("cpu", "size_gb"))
        sky = scaled.filter(cpu="skylake").sort_by("freq_ghz")
        bw = scaled.filter(cpu="broadwell").sort_by("freq_ghz")
        assert sky.column("scaled_runtime_s").max() < bw.column("scaled_runtime_s").max()

    def test_read_draws_less_power_than_write(self, samples):
        from repro.workflow.sweep import transit_sweep

        writes = transit_sweep(default_nodes(), FAST)
        for cpu in ("broadwell", "skylake"):
            p_read = samples.filter(cpu=cpu).column("power_w").mean()
            p_write = writes.filter(cpu=cpu).column("power_w").mean()
            assert p_read < p_write
