"""ZFP-style fixed-accuracy lossy compressor (pure NumPy).

Pipeline per Lindstrom 2014: partition into 4^d blocks, per-block
common-exponent fixed-point conversion, the ZFP orthogonal lifting
transform applied separably, negabinary mapping, and bit-plane coding
truncated at the plane implied by the absolute tolerance. All stages are
vectorized *across blocks*, so per-block Python overhead is O(#distinct
plane counts), not O(#blocks).
"""

from repro.compressors.zfp.blocks import BlockGrid, partition, unpartition
from repro.compressors.zfp.fixedpoint import (
    block_exponents,
    to_fixed_point,
    from_fixed_point,
)
from repro.compressors.zfp.transform import (
    forward_transform,
    inverse_transform,
    sequency_order,
)
from repro.compressors.zfp.embedded import int_to_negabinary, negabinary_to_int
from repro.compressors.zfp.codec import ZFPCompressor

__all__ = [
    "BlockGrid",
    "partition",
    "unpartition",
    "block_exponents",
    "to_fixed_point",
    "from_fixed_point",
    "forward_transform",
    "inverse_transform",
    "sequency_order",
    "int_to_negabinary",
    "negabinary_to_int",
    "ZFPCompressor",
]
