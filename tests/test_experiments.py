"""Tests for the experiment modules (tables and figures)."""

import numpy as np
import pytest

from repro.experiments import figure1, figure2, figure3, figure4, figure5, figure6
from repro.experiments import headline, table1, table2, table3, table4, table5
from repro.experiments.context import ExperimentContext
from repro.workflow.sweep import SweepConfig

#: One shared fast context for all experiment tests.
FAST = SweepConfig(
    datasets=(("nyx", "velocity_x"), ("cesm-atm", "T"), ("hacc", "x")),
    error_bounds=(1e-1, 1e-3),
    transit_sizes_gb=(1.0, 8.0),
    repeats=4,
    data_scale=32,
    frequency_stride=2,
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(config=FAST)


class TestStaticTables:
    def test_table1_rows(self):
        rows = table1.run()
        assert [r["dataset"] for r in rows] == ["cesm-atm", "hacc", "nyx"]

    def test_table2_rows(self):
        rows = table2.run()
        assert [r["cloudlab"] for r in rows] == ["m510", "c220g5"]

    def test_table3_rows(self):
        rows = table3.run()
        assert len(rows) == 5

    def test_mains_render(self, capsys):
        for mod in (table1, table2, table3):
            text = mod.main()
            assert "TABLE" in text


class TestModelTables:
    def test_table4_five_rows(self, ctx):
        rows = table4.run(ctx)
        assert [r["model"] for r in rows] == ["Total", "SZ", "ZFP", "Broadwell", "Skylake"]

    def test_table4_structure_matches_paper(self, ctx):
        rows = {r["model"]: r for r in table4.run(ctx)}
        # Per-architecture partitions dominate (the paper's conclusion).
        assert rows["Broadwell"]["rmse"] < rows["Total"]["rmse"]
        assert rows["Skylake"]["rmse"] < rows["Total"]["rmse"]
        assert rows["Broadwell"]["r2"] > 0.85
        assert rows["Skylake"]["r2"] > 0.80

    def test_table5_three_rows(self, ctx):
        rows = table5.run(ctx)
        assert [r["model"] for r in rows] == ["Total", "Broadwell", "Skylake"]

    def test_table5_per_arch_dominates(self, ctx):
        rows = {r["model"]: r for r in table5.run(ctx)}
        assert rows["Broadwell"]["rmse"] < rows["Total"]["rmse"]
        assert rows["Skylake"]["rmse"] < rows["Total"]["rmse"]

    def test_paper_reference_rows_exposed(self):
        assert len(table4.PAPER_ROWS) == 5
        assert len(table5.PAPER_ROWS) == 3


class TestCharacteristicFigures:
    def test_figure1_bands(self, ctx):
        bands = figure1.run(ctx)
        assert set(bands) == {
            ("broadwell", "sz"), ("broadwell", "zfp"),
            ("skylake", "sz"), ("skylake", "zfp"),
        }
        for band in bands.values():
            # Critical power slope: max at fmax, floor in the 0.7-0.9 band.
            assert band.mean[-1] == max(band.mean)
            assert 0.68 < band.mean[0] < 0.92
            assert np.all(band.half_width >= 0)

    def test_figure2_bands(self, ctx):
        bands = figure2.run(ctx)
        for band in bands.values():
            assert band.mean[-1] == min(band.mean)  # fastest at fmax
            assert band.mean[0] == max(band.mean)   # slowest at fmin

    def test_figure2_sz_zfp_overlap(self, ctx):
        # Paper: "the trends overlap showing consistent runtimes".
        bands = figure2.run(ctx)
        sz = bands[("broadwell", "sz")].mean
        zfp = bands[("broadwell", "zfp")].mean
        assert np.max(np.abs(sz - zfp)) < 0.05

    def test_figure3_bands(self, ctx):
        bands = figure3.run(ctx)
        assert set(bands) == {("broadwell",), ("skylake",)}
        # Write floor is higher than the compression floor (Fig. 3 note).
        comp = figure1.run(ctx)
        assert bands[("broadwell",)].mean[0] > comp[("broadwell", "sz")].mean[0]

    def test_figure4_skylake_stagnant(self, ctx):
        bands = figure4.run(ctx)
        sky_stretch = bands[("skylake",)].mean[0]
        bw_stretch = bands[("broadwell",)].mean[0]
        assert sky_stretch < bw_stretch  # Skylake writes barely stretch


class TestFigure5:
    def test_validation_gof_band(self, ctx):
        result = figure5.run(ctx)
        # Generalizes like the paper: small RMSE (paper: 0.0256).
        assert result.gof.rmse < 0.06
        assert result.gof.sse < 0.8

    def test_heldout_samples_are_isabel(self, ctx):
        result = figure5.run(ctx)
        assert set(result.samples.unique("dataset")) == {"hurricane-isabel"}
        assert len(result.samples.unique("field")) == 6

    def test_curve_shapes(self, ctx):
        f, obs, pred = figure5.run(ctx).curve()
        assert f.shape == obs.shape == pred.shape
        assert np.all((obs > 0.5) & (obs < 1.2))


class TestFigure6:
    def test_savings_always_positive(self, ctx):
        results = figure6.run(ctx, error_bounds=(1e-1, 1e-3), target_bytes=int(64e9))
        for arch, reports in results.items():
            for rep in reports:
                assert rep.energy_saved_j > 0, f"{arch} eb={rep.error_bound}"

    def test_finer_bound_more_baseline_energy(self, ctx):
        results = figure6.run(ctx, archs=("skylake",),
                              error_bounds=(1e-1, 1e-4), target_bytes=int(64e9))
        reports = results["skylake"]
        assert reports[1].baseline_energy_j > reports[0].baseline_energy_j

    def test_savings_fraction_in_paper_band(self, ctx):
        results = figure6.run(ctx, error_bounds=(1e-1, 1e-2), target_bytes=int(512e9))
        fractions = [r.energy_saving_fraction
                     for reports in results.values() for r in reports]
        # Paper: ~13 %. Band: everything between 3 % and 25 % across archs.
        assert all(0.02 < f < 0.25 for f in fractions)


class TestHeadline:
    def test_numbers_in_band(self, ctx):
        nums = headline.run(ctx)
        assert 0.10 < nums.compress_power_saving < 0.25   # paper 19.4 %
        assert 0.05 < nums.write_power_saving < 0.18      # paper 11.2 %
        assert 0.04 < nums.compress_slowdown < 0.11       # paper 7.5 %
        assert 0.05 < nums.write_slowdown < 0.14          # paper 9.3 %
        assert nums.combined_energy_saving > 0.03
        assert abs(nums.combined_slowdown - 0.084) < 0.03

    def test_main_renders(self, ctx, capsys):
        text = headline.main(ctx)
        assert "compress_power_saving" in text
