"""Unit tests for the fault injector and the recovery engine."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.compressors.chunked import ChunkedCompressor
from repro.hardware.cpu import get_cpu
from repro.hardware.node import SimulatedNode
from repro.iosim.nfs import NfsTarget
from repro.resilience import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    ResilienceEngine,
    RetryPolicy,
    SnapshotLostError,
)


def plan_of(*specs, seed=0, policy_doc=None):
    return FaultPlan(specs=tuple(specs), seed=seed, policy_doc=policy_doc)


class TestFaultInjector:
    def test_triggers_are_deterministic(self):
        plan = plan_of(FaultSpec(FaultKind.NFS_STALL, probability=0.5), seed=11)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        for snapshot in range(6):
            for attempt in (1, 2, 3):
                assert (a.write_faults(snapshot, attempt)
                        == b.write_faults(snapshot, attempt))

    def test_probability_actually_varies_across_snapshots(self):
        plan = plan_of(FaultSpec(FaultKind.NFS_STALL, probability=0.5), seed=3)
        inj = FaultInjector(plan)
        fired = [bool(inj.write_faults(s, 1)) for s in range(40)]
        assert any(fired) and not all(fired)

    def test_snapshot_and_attempt_gates(self):
        plan = plan_of(
            FaultSpec(FaultKind.NFS_TRANSIENT_ERROR, probability=1.0,
                      snapshots=(2,), attempts=1),
        )
        inj = FaultInjector(plan)
        assert inj.write_faults(2, 1)
        assert not inj.write_faults(2, 2)   # clears on retry
        assert not inj.write_faults(1, 1)   # other snapshot untouched

    def test_compress_faults_never_reach_write_stage(self):
        plan = plan_of(FaultSpec(FaultKind.WORKER_CRASH, probability=1.0))
        assert FaultInjector(plan).write_faults(0, 1) == []

    def test_throttle_cap_is_min_of_firing_specs(self):
        plan = plan_of(
            FaultSpec(FaultKind.DVFS_THROTTLE, probability=1.0, severity=0.9),
            FaultSpec(FaultKind.DVFS_THROTTLE, probability=1.0, severity=0.6),
        )
        assert FaultInjector(plan).compress_frequency_cap(0) == 0.6
        assert FaultInjector(plan_of()).compress_frequency_cap(0) is None

    def test_crashes_clear_after_first_attempt_by_default(self):
        plan = plan_of(FaultSpec(FaultKind.WORKER_CRASH, probability=1.0,
                                 targets=(0, 2)))
        inj = FaultInjector(plan)
        assert inj.crashing_slabs(0, 1, n_slabs=4) == (0, 2)
        assert inj.crashing_slabs(0, 2, n_slabs=4) == ()

    def test_persistent_crash_with_attempts(self):
        plan = plan_of(FaultSpec(FaultKind.WORKER_CRASH, probability=1.0,
                                 targets=(1,), attempts=2))
        inj = FaultInjector(plan)
        assert inj.crashing_slabs(0, 1, 4) == (1,)
        assert inj.crashing_slabs(0, 2, 4) == (1,)
        assert inj.crashing_slabs(0, 3, 4) == ()

    def test_out_of_range_targets_ignored(self):
        plan = plan_of(FaultSpec(FaultKind.WORKER_CRASH, probability=1.0,
                                 targets=(7,)))
        assert FaultInjector(plan).crashing_slabs(0, 1, n_slabs=4) == ()

    def test_flipped_chunks_deterministic(self):
        plan = plan_of(FaultSpec(FaultKind.BIT_FLIP, probability=0.5), seed=5)
        inj = FaultInjector(plan)
        first = inj.flipped_chunks(0, 16)
        assert inj.flipped_chunks(0, 16) == first

    def test_slab_wrapper_crashes_then_clears(self):
        plan = plan_of(FaultSpec(FaultKind.WORKER_CRASH, probability=1.0,
                                 targets=(1,)))
        wrapper = FaultInjector(plan).slab_wrapper(snapshot=0, n_slabs=3)
        assert wrapper.any_planned
        fn = wrapper(lambda item: item * 10)
        assert fn((0, 5)) == 50
        with pytest.raises(RuntimeError, match="slab 1 crashed"):
            fn((1, 5))
        fn.attempt = 2  # what Executor.map_retry does between rounds
        assert fn((1, 5)) == 50


class TestRunWrite:
    NBYTES = 10**8

    @pytest.fixture()
    def node(self):
        return SimulatedNode(get_cpu("skylake"), seed=0)

    def run(self, node, plan, policy=None):
        engine = ResilienceEngine(plan, policy)

        def run_stage(workload, freq):
            node.set_frequency(freq)
            m = node.run(workload)
            return m.freq_ghz, m.runtime_s, m.energy_j

        return engine.run_write(
            node, NfsTarget(), self.NBYTES, node.cpu.fmax_ghz, 0, run_stage
        )

    def test_clean_plan_single_attempt(self, node):
        stage, freq, runtime, energy, res = self.run(node, plan_of())
        assert stage == "write"
        assert res.attempts == 1 and res.clean
        assert res.energy_overhead_j == 0.0
        assert energy > 0

    def test_transient_error_retries_then_succeeds(self, node):
        plan = plan_of(FaultSpec(FaultKind.NFS_TRANSIENT_ERROR,
                                 probability=1.0, attempts=1, severity=0.5))
        stage, freq, runtime, energy, res = self.run(node, plan)
        assert stage == "write"
        assert res.attempts == 2
        assert res.retries == 1
        assert res.retried_bytes == self.NBYTES
        assert res.energy_overhead_j > 0
        assert res.time_overhead_s > 0
        assert not res.failover and not res.lost
        outcomes = [r.outcome for r in res.records]
        assert outcomes == ["failed", "ok"]

    def test_hard_failure_fails_over(self, node):
        plan = plan_of(FaultSpec(FaultKind.NFS_HARD_FAILURE, probability=1.0))
        stage, freq, runtime, energy, res = self.run(node, plan)
        assert stage == "write-failover"
        assert res.failover and not res.lost
        assert res.attempts == RetryPolicy().max_attempts + 1
        assert res.energy_overhead_j > 0
        assert energy > 0  # the burst-buffer write is measured for real

    def test_skip_on_exhaustion(self, node):
        plan = plan_of(FaultSpec(FaultKind.NFS_HARD_FAILURE, probability=1.0))
        policy = RecoveryPolicy(failover=False, skip_on_exhaustion=True)
        stage, freq, runtime, energy, res = self.run(node, plan, policy)
        assert stage == "write-skipped"
        assert res.lost
        assert runtime == 0.0 and energy == 0.0
        assert res.energy_overhead_j > 0  # the failed attempts still cost

    def test_no_recovery_raises(self, node):
        plan = plan_of(FaultSpec(FaultKind.NFS_HARD_FAILURE, probability=1.0))
        policy = RecoveryPolicy(failover=False, skip_on_exhaustion=False)
        with pytest.raises(SnapshotLostError, match="snapshot 0"):
            self.run(node, plan, policy)

    def test_stall_costs_time_and_energy_without_failing(self, node):
        plan = plan_of(FaultSpec(FaultKind.NFS_STALL, probability=1.0,
                                 stall_s=30.0))
        stage, freq, runtime, energy, res = self.run(node, plan)
        assert stage == "write"
        assert res.attempts == 1
        assert res.time_overhead_s == pytest.approx(30.0)
        assert res.energy_overhead_j > 0

    def test_slowdown_retunes_to_lower_frequency(self, node):
        plan = plan_of(FaultSpec(FaultKind.NFS_SLOWDOWN, probability=1.0,
                                 severity=0.6))
        stage, freq, runtime, energy, res = self.run(node, plan)
        assert stage == "write"
        # Degraded bandwidth makes the write less CPU-bound, so the
        # re-tuned clock must not exceed the base request.
        assert freq <= node.cpu.fmax_ghz
        assert "nfs-slowdown" in res.faults

    def test_deep_throttle_clamps_to_dvfs_floor(self, node):
        # severity 0.2 caps the clock at 0.44 GHz on skylake, below the
        # 0.8 GHz DVFS floor; the engine must clamp instead of raising.
        plan = plan_of(FaultSpec(FaultKind.DVFS_THROTTLE, probability=1.0,
                                 severity=0.2))
        stage, freq, runtime, energy, res = self.run(node, plan)
        assert stage == "write"
        assert freq == pytest.approx(node.cpu.fmin_ghz)
        assert "dvfs-throttle" in res.faults

    def test_policy_from_plan_doc(self, node):
        plan = plan_of(
            FaultSpec(FaultKind.NFS_HARD_FAILURE, probability=1.0),
            policy_doc={"retry": {"max_attempts": 2}, "failover": False,
                        "skip_on_exhaustion": True},
        )
        stage, _, _, _, res = self.run(node, plan)
        assert stage == "write-skipped"
        assert res.attempts == 2


class TestVerifyContainer:
    def test_planned_flips_are_detected(self):
        arr = np.linspace(0.0, 1.0, 256).reshape(32, 8)
        cc = ChunkedCompressor(get_compressor("gzip"), max_chunk_bytes=512,
                               executor="serial")
        container = cc.compress(arr, 1e-3)
        assert len(container.chunks) >= 3
        plan = plan_of(FaultSpec(FaultKind.BIT_FLIP, probability=1.0,
                                 targets=(0, 2)))
        engine = ResilienceEngine(plan)
        assert engine.verify_container(container, snapshot=0) == (0, 2)

    def test_no_flips_planned_is_noop(self):
        arr = np.linspace(0.0, 1.0, 64).reshape(8, 8)
        cc = ChunkedCompressor(get_compressor("gzip"), max_chunk_bytes=256,
                               executor="serial")
        container = cc.compress(arr, 1e-3)
        engine = ResilienceEngine(plan_of())
        assert engine.verify_container(container, snapshot=0) == ()
