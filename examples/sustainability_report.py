#!/usr/bin/env python
"""Sustainability report: the paper's headline at data-center scale.

Converts the per-dump energy savings (Fig. 6) into annual facility-level
kWh, CO₂-equivalent, and electricity cost for a checkpointing fleet —
the "green-computing initiatives" framing of the paper's conclusion.

    python examples/sustainability_report.py
"""

from repro import PAPER_POLICY, SweepConfig, TunedIOPipeline, default_nodes
from repro.core.impact import GridProfile, US_AVERAGE_GRID, impact_of
from repro.workflow.report import render_table

#: A 1000-node machine checkpointing hourly, year-round.
DUMPS_PER_YEAR_PER_NODE = 24 * 365
FLEET_NODES = 1000

GRIDS = {
    "us-average": US_AVERAGE_GRID,
    "coal-heavy": GridProfile(gco2e_per_kwh=820.0, usd_per_kwh=0.08),
    "hydro": GridProfile(gco2e_per_kwh=24.0, usd_per_kwh=0.05, pue=1.1),
}


def main() -> None:
    pipe = TunedIOPipeline(default_nodes())
    outcome = pipe.recommend(pipe.characterize(SweepConfig()), PAPER_POLICY)

    rows = []
    for arch in ("broadwell", "skylake"):
        report = pipe.apply(outcome, arch=arch, error_bound=1e-2)
        saved_per_dump = report.energy_saved_j
        fleet_factor = DUMPS_PER_YEAR_PER_NODE * FLEET_NODES
        for grid_name, grid in GRIDS.items():
            fleet = impact_of(saved_per_dump, grid).scaled(fleet_factor)
            rows.append(
                {
                    "arch": arch,
                    "grid": grid_name,
                    "saved_per_dump_kj": saved_per_dump / 1e3,
                    "fleet_mwh_per_year": fleet.kwh / 1e3,
                    "fleet_tco2e_per_year": fleet.gco2e / 1e6,
                    "fleet_usd_per_year": fleet.usd,
                }
            )
    print(render_table(
        rows,
        title=f"Annual savings, {FLEET_NODES}-node fleet checkpointing hourly "
              f"(512 GB SZ dumps, Eqn. 3 tuning)",
    ))

    best = max(rows, key=lambda r: r["fleet_usd_per_year"])
    print(f"\nAt fleet scale the per-dump kilojoules become "
          f"{best['fleet_mwh_per_year']:.0f} MWh and "
          f"${best['fleet_usd_per_year']:,.0f} per year "
          f"({best['arch']}, {best['grid']} grid) — the paper's "
          "green-computing framing made concrete.")
    assert all(r["fleet_mwh_per_year"] > 1 for r in rows)


if __name__ == "__main__":
    main()
