"""Result export helpers: SampleSet → row dicts / CSV text."""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Sequence

from repro.core.samples import SampleSet

__all__ = ["sampleset_to_rows", "rows_to_csv"]

#: Fields that are per-repeat tuples, dropped from flat exports.
_VECTOR_FIELDS = ("power_samples", "runtime_samples", "energy_samples")


def sampleset_to_rows(
    samples: SampleSet, fields: Sequence[str] | None = None
) -> List[Dict[str, object]]:
    """Flatten a sample set into export-ready rows.

    Per-repeat vectors are dropped unless explicitly requested through
    *fields*.
    """
    rows = []
    for record in samples:
        if fields is None:
            row = {k: v for k, v in record.items() if k not in _VECTOR_FIELDS}
        else:
            missing = [f for f in fields if f not in record]
            if missing:
                raise KeyError(f"record is missing requested fields {missing}")
            row = {f: record[f] for f in fields}
        rows.append(row)
    return rows


def rows_to_csv(rows: Iterable[Dict[str, object]]) -> str:
    """Serialize uniform row dicts to CSV text (header from first row)."""
    rows = list(rows)
    if not rows:
        return ""
    header = list(rows[0])
    buf = io.StringIO()
    buf.write(",".join(header) + "\n")
    for row in rows:
        extra = set(row) - set(header)
        if extra:
            raise ValueError(f"row has fields {sorted(extra)} not in the header")
        buf.write(",".join(_csv_cell(row.get(k, "")) for k in header) + "\n")
    return buf.getvalue()


def _csv_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.10g}"
    text = str(value)
    if any(ch in text for ch in ',"\n'):
        text = '"' + text.replace('"', '""') + '"'
    return text
