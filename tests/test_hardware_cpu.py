"""Unit tests for CPU specs (Table II)."""

import numpy as np
import pytest

from repro.hardware.cpu import (
    BROADWELL_D1548,
    SKYLAKE_4114,
    CpuSpec,
    get_cpu,
    table2_rows,
)


class TestPaperSpecs:
    def test_broadwell_matches_table2(self):
        assert BROADWELL_D1548.model == "Intel Xeon D-1548"
        assert BROADWELL_D1548.fmin_ghz == 0.8
        assert BROADWELL_D1548.fmax_ghz == 2.0
        assert BROADWELL_D1548.cloudlab_type == "m510"
        assert BROADWELL_D1548.tdp_watts == 45.0

    def test_skylake_matches_table2(self):
        assert SKYLAKE_4114.model == "Intel Xeon Silver 4114"
        assert SKYLAKE_4114.fmin_ghz == 0.8
        assert SKYLAKE_4114.fmax_ghz == 2.2
        assert SKYLAKE_4114.cloudlab_type == "c220g5"
        assert SKYLAKE_4114.tdp_watts == 85.0

    def test_table2_rows(self):
        rows = table2_rows()
        assert len(rows) == 2
        assert rows[0]["clock_range_ghz"] == "0.8GHz - 2.0GHz"
        assert rows[1]["series"] == "Skylake"


class TestFrequencyGrid:
    def test_grid_endpoints(self):
        grid = BROADWELL_D1548.available_frequencies()
        assert grid[0] == 0.8
        assert grid[-1] == 2.0

    def test_grid_step_50mhz(self):
        grid = SKYLAKE_4114.available_frequencies()
        assert np.allclose(np.diff(grid), 0.05)
        assert len(grid) == 29  # (2.2 - 0.8)/0.05 + 1

    def test_broadwell_grid_size(self):
        assert len(BROADWELL_D1548.available_frequencies()) == 25

    def test_non_multiple_span_includes_fmax(self):
        cpu = CpuSpec("x", "broadwell", "t", 0.8, 2.03, 0.05, 45, 4)
        grid = cpu.available_frequencies()
        assert grid[-1] == pytest.approx(2.03)


class TestSnap:
    def test_snap_to_nearest(self):
        assert BROADWELL_D1548.snap_frequency(1.76) == pytest.approx(1.75)
        assert BROADWELL_D1548.snap_frequency(1.78) == pytest.approx(1.8)

    def test_snap_exact_grid_point(self):
        assert BROADWELL_D1548.snap_frequency(1.5) == 1.5

    def test_snap_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            BROADWELL_D1548.snap_frequency(2.5)
        with pytest.raises(ValueError, match="outside"):
            BROADWELL_D1548.snap_frequency(0.5)


class TestLookup:
    @pytest.mark.parametrize("key,expected", [
        ("broadwell", "Intel Xeon D-1548"),
        ("skylake", "Intel Xeon Silver 4114"),
        ("m510", "Intel Xeon D-1548"),
        ("C220G5", "Intel Xeon Silver 4114"),
    ])
    def test_lookup_by_arch_or_node(self, key, expected):
        assert get_cpu(key).model == expected

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_cpu("epyc")


class TestValidation:
    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            CpuSpec("x", "a", "t", 2.0, 0.8, 0.05, 45, 4)

    def test_bad_step(self):
        with pytest.raises(ValueError):
            CpuSpec("x", "a", "t", 0.8, 2.0, 0.0, 45, 4)

    def test_bad_tdp(self):
        with pytest.raises(ValueError):
            CpuSpec("x", "a", "t", 0.8, 2.0, 0.05, -1, 4)
