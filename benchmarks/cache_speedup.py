#!/usr/bin/env python
"""Cold-vs-warm timing smoke for the result cache.

Runs one campaign sweep cold (every point computed) and again warm
(every point served from the cache), and fails unless the warm run is
at least ``--min-speedup`` times faster. The ratio is deliberately
conservative — a healthy warm run is orders of magnitude faster — so
the gate only trips when caching has effectively stopped working, not
when a runner is merely slow.

CI usage (see the ``cache`` job in ``.github/workflows/ci.yml``)::

    PYTHONPATH=src python benchmarks/cache_speedup.py --min-speedup 3
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.cache import ResultCache, set_cache
from repro.data import load_field
from repro.hardware.cpu import SKYLAKE_4114
from repro.workflow.campaign import CheckpointCampaign, run_campaign_sweep


def timed_sweep(sample, points, campaign, executor):
    t0 = time.perf_counter()
    reports = run_campaign_sweep(
        SKYLAKE_4114, "sz", sample, points, campaign,
        repeats=2, executor=executor,
    )
    return reports, time.perf_counter() - t0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--min-speedup", type=float, default=3.0,
                    help="fail below this cold/warm wall-time ratio")
    ap.add_argument("--points", type=int, default=4,
                    help="sweep points per run")
    ap.add_argument("--scale", type=int, default=32,
                    help="dataset scale divisor (bigger = faster)")
    ap.add_argument("--executor", default="serial",
                    choices=("auto", "serial", "thread", "process"),
                    help="backend for the cold fan-out")
    args = ap.parse_args(argv)

    sample = load_field("nyx", "velocity_x", scale=args.scale)
    campaign = CheckpointCampaign(
        snapshot_bytes=int(16e9), n_snapshots=2, compute_interval_s=600.0
    )
    points = tuple(10.0 ** -(1 + i) for i in range(args.points))

    cache = ResultCache()
    previous = set_cache(cache)
    try:
        _, cold_s = timed_sweep(sample, points, campaign, args.executor)
        # Warm lookups all happen in the parent: serial is the honest
        # measurement (no pool spin-up noise).
        _, warm_s = timed_sweep(sample, points, campaign, "serial")
    finally:
        set_cache(previous)

    stats = cache.stats()
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"cold: {cold_s * 1e3:8.1f} ms  ({stats['misses']} misses)")
    print(f"warm: {warm_s * 1e3:8.1f} ms  ({stats['hits']} hits)")
    print(f"speedup: {speedup:.1f}x (gate: >= {args.min_speedup:g}x)")

    if stats["misses"] != len(points) or stats["hits"] != len(points):
        print(f"FAILED: expected {len(points)} misses then "
              f"{len(points)} hits, got {stats['misses']}/{stats['hits']}",
              file=sys.stderr)
        return 1
    if speedup < args.min_speedup:
        print(f"FAILED: warm run only {speedup:.1f}x faster "
              f"(needs {args.min_speedup:g}x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
