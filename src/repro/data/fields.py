"""Synthesis kernels for scientific-looking floating-point fields.

Lossy-compressor behaviour (ratio, work per element) is governed mostly
by field smoothness and dimensionality, not by the physics that produced
the data. Each kernel below produces a seeded, reproducible field with a
controllable spectral slope: steeper slopes give smoother fields that
compress like CESM temperature layers; shallow slopes give rough fields
that compress like HACC particle coordinates.

All kernels vectorize through FFTs or closed-form NumPy expressions —
no per-element Python loops.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive, check_shape_dims

__all__ = [
    "gaussian_random_field",
    "smooth_layered_field",
    "lognormal_density_field",
    "particle_coordinates",
    "vortex_velocity_field",
]


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def gaussian_random_field(
    shape: Sequence[int],
    spectral_slope: float = 3.0,
    seed=0,
    dtype=np.float32,
) -> np.ndarray:
    """Isotropic Gaussian random field with power spectrum ``k**-slope``.

    Built in Fourier space: white complex noise shaped by an isotropic
    power-law filter, then inverse-transformed. Output is normalized to
    zero mean, unit variance.

    Parameters
    ----------
    shape:
        Field shape, 1-D to 4-D.
    spectral_slope:
        Exponent of the power spectrum decay. ~1 is rough/noisy,
        ~3-4 is smooth and highly compressible.
    seed:
        Integer seed or a ``numpy.random.Generator``.
    """
    shape = check_shape_dims(shape, allowed_ndims=(1, 2, 3, 4))
    rng = _rng(seed)

    freqs = np.meshgrid(*[np.fft.fftfreq(n) for n in shape], indexing="ij", sparse=True)
    k2 = sum(f**2 for f in freqs)
    k = np.sqrt(k2)
    # Avoid the singular DC mode; its amplitude is irrelevant after
    # mean-removal below.
    k_floor = np.where(k == 0, np.inf, k)
    amplitude = k_floor ** (-spectral_slope / 2.0)

    noise = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    field = np.fft.ifftn(noise * amplitude).real

    field -= field.mean()
    std = field.std()
    if std > 0:
        field /= std
    return field.astype(dtype)


def smooth_layered_field(
    shape: Sequence[int],
    spectral_slope: float = 3.5,
    layer_trend: float = 1.0,
    seed=0,
    dtype=np.float32,
) -> np.ndarray:
    """Atmosphere-like field: smooth horizontal structure with a vertical trend.

    Mimics CESM-ATM variables (e.g. temperature at 26 pressure levels):
    the leading axis is "altitude"; each level is a smooth 2-D field and
    a monotone cross-level trend of magnitude *layer_trend* is added,
    which is what makes level-stacked climate data compress well.
    """
    shape = check_shape_dims(shape, allowed_ndims=(2, 3))
    base = gaussian_random_field(shape, spectral_slope, seed, dtype=np.float64)
    levels = np.arange(shape[0], dtype=np.float64)
    trend = layer_trend * (levels / max(shape[0] - 1, 1) - 0.5)
    base += trend.reshape((-1,) + (1,) * (len(shape) - 1))
    return base.astype(dtype)


def lognormal_density_field(
    shape: Sequence[int],
    spectral_slope: float = 2.5,
    contrast: float = 1.5,
    seed=0,
    dtype=np.float32,
) -> np.ndarray:
    """Cosmology-like density: exponentiated Gaussian random field.

    Mimics NYX baryon density, whose heavy-tailed positive distribution
    stresses compressors differently from symmetric fields. *contrast*
    scales the log-field before exponentiation (larger → spikier halos).
    """
    check_positive(contrast, "contrast")
    g = gaussian_random_field(shape, spectral_slope, seed, dtype=np.float64)
    rho = np.exp(contrast * g)
    rho /= rho.mean()
    return rho.astype(dtype)


def particle_coordinates(
    count: int,
    box_size: float = 256.0,
    cluster_fraction: float = 0.6,
    n_clusters: int = 64,
    seed=0,
    dtype=np.float32,
) -> np.ndarray:
    """HACC-like 1-D particle coordinate stream.

    A fraction of particles cluster tightly around halo centres and the
    rest are uniform, then the stream is sorted — matching the weakly
    smooth, locally-correlated structure of HACC position snapshots that
    makes them the hardest of the paper's datasets to compress.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if not 0.0 <= cluster_fraction <= 1.0:
        raise ValueError(f"cluster_fraction must be in [0, 1], got {cluster_fraction}")
    check_positive(box_size, "box_size")
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    rng = _rng(seed)

    n_clustered = int(round(count * cluster_fraction))
    n_uniform = count - n_clustered

    centers = rng.uniform(0.0, box_size, size=n_clusters)
    assignment = rng.integers(0, n_clusters, size=n_clustered)
    spread = box_size / (8.0 * n_clusters)
    clustered = centers[assignment] + rng.normal(0.0, spread, size=n_clustered)
    uniform = rng.uniform(0.0, box_size, size=n_uniform)

    coords = np.concatenate([clustered, uniform])
    coords = np.mod(coords, box_size)
    coords.sort()
    return coords.astype(dtype)


def vortex_velocity_field(
    shape: Sequence[int],
    component: int = 0,
    swirl: float = 2.0,
    spectral_slope: float = 3.0,
    seed=0,
    dtype=np.float32,
) -> np.ndarray:
    """Hurricane-like velocity component: a swirling vortex plus turbulence.

    Mimics Hurricane-ISABEL U/V/W fields: a large-scale rotational flow
    around the domain centre superposed with a Gaussian random field.
    *component* selects 0=U (x-velocity), 1=V (y-velocity), 2=W
    (vertical, pure turbulence scaled down).
    """
    shape = check_shape_dims(shape, allowed_ndims=(2, 3))
    if component not in (0, 1, 2):
        raise ValueError(f"component must be 0, 1 or 2, got {component}")

    ny, nx = shape[-2], shape[-1]
    y = np.linspace(-1.0, 1.0, ny).reshape(-1, 1)
    x = np.linspace(-1.0, 1.0, nx).reshape(1, -1)
    r2 = x**2 + y**2
    envelope = np.exp(-2.0 * r2)
    if component == 0:
        swirl_field = -swirl * y * envelope
    elif component == 1:
        swirl_field = swirl * x * envelope
    else:
        swirl_field = np.zeros((ny, nx))

    turb = gaussian_random_field(shape, spectral_slope, seed, dtype=np.float64)
    scale = 0.3 if component < 2 else 0.15
    field = turb * scale + swirl_field  # broadcasting over the leading axis
    return field.astype(dtype)
