"""Shared utilities: validation, bit-level I/O, and statistics primitives."""

from repro.utils.validation import (
    as_float_array,
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_shape_dims,
)
from repro.utils.bitio import BitWriter, BitReader
from repro.utils.stats import (
    ConfidenceBand,
    GoodnessOfFit,
    confidence_band,
    goodness_of_fit,
    mean_confidence_interval,
    r_squared,
    rmse,
    sse,
)

__all__ = [
    "as_float_array",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_shape_dims",
    "BitWriter",
    "BitReader",
    "ConfidenceBand",
    "GoodnessOfFit",
    "confidence_band",
    "goodness_of_fit",
    "mean_confidence_interval",
    "r_squared",
    "rmse",
    "sse",
]
