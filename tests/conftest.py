"""Suite-wide pytest hooks.

Order-independence sweep: setting ``REPRO_TEST_ORDER_SEED=<int>``
shuffles test execution order deterministically (module order, and
test order within each module). Any test that passes only because a
sibling ran first — a warmed process-global cache, a leaked executor,
a mutated registry — fails under some seed, which is exactly the
point. CI runs the tier-1 suite under three pinned seeds; reproduce a
failure locally with the seed CI prints::

    REPRO_TEST_ORDER_SEED=1 python -m pytest -x -q

The shuffle is grouped by module so module-scoped fixtures keep their
locality (the expensive sample-field and worker-fleet fixtures are
built once per module either way); dependence on *fixtures* is fine,
dependence on *order* is the bug this hook exists to surface.
"""

import os
import random


def pytest_collection_modifyitems(config, items):
    seed_text = os.environ.get("REPRO_TEST_ORDER_SEED")
    if not seed_text:
        return
    try:
        seed = int(seed_text)
    except ValueError:
        raise ValueError(
            f"REPRO_TEST_ORDER_SEED must be an integer, got {seed_text!r}"
        ) from None
    rng = random.Random(seed)
    by_module = {}
    for item in items:
        by_module.setdefault(item.module.__name__, []).append(item)
    modules = list(by_module)
    rng.shuffle(modules)
    shuffled = []
    for module in modules:
        group = by_module[module]
        rng.shuffle(group)
        shuffled.extend(group)
    items[:] = shuffled


def pytest_report_header(config):
    seed_text = os.environ.get("REPRO_TEST_ORDER_SEED")
    if seed_text:
        return f"order-independence shuffle: REPRO_TEST_ORDER_SEED={seed_text}"
    return None
