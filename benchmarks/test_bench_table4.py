"""Bench: regenerate Table IV (compression power models + GF).

The benchmarked step is the modeling itself — fitting all five Table III
partitions from the (pre-swept) measurement campaign, exactly what the
MATLAB toolbox did for the authors.
"""

from conftest import emit

from repro.core.partitions import COMPRESSION_PARTITIONS, fit_partition_models
from repro.experiments import table4
from repro.workflow.report import render_table


def test_bench_table4(benchmark, ctx):
    samples = ctx.outcome.compression_samples  # campaign runs once, outside timing

    models = benchmark.pedantic(
        fit_partition_models, args=(samples, COMPRESSION_PARTITIONS),
        rounds=3, iterations=1,
    )
    rows = tuple(m.as_table_row() for m in models.values())
    emit(render_table(rows, title="TABLE IV — MODEL EQUATIONS AND GF FOR COMPRESSION (reproduced)"))
    emit(render_table(table4.PAPER_ROWS, title="Paper reference values"))

    by = {r["model"]: r for r in rows}
    # Shape claims from the paper: per-architecture models dominate.
    assert by["Broadwell"]["rmse"] < by["Total"]["rmse"]
    assert by["Skylake"]["rmse"] < by["Total"]["rmse"]
    assert by["Broadwell"]["r2"] > 0.85 > by["Total"]["r2"]
    # Exponent bands: Broadwell ~5, Skylake in the twenties.
    assert 4.0 < models["Broadwell"].b < 7.0
    assert 18.0 < models["Skylake"].b < 30.0
    # Static floors near the paper's 0.74-0.80.
    for name in ("Broadwell", "Skylake"):
        assert 0.70 < models[name].c < 0.85

    benchmark.extra_info["broadwell_equation"] = models["Broadwell"].equation()
    benchmark.extra_info["skylake_equation"] = models["Skylake"].equation()
