"""Error-bound advisor: pick eb from a storage or quality target.

The paper sweeps fixed bounds (1e-1..1e-4); a user usually starts from
the other end — "I have a 10x storage budget" or "I need 60 dB PSNR".
The advisor profiles the real codec on a representative field across a
log-spaced bound grid and answers both questions by log-log
interpolation of the measured curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.compressors.base import Compressor
from repro.compressors.metrics import evaluate
from repro.utils.validation import as_float_array, check_positive

__all__ = ["BoundProfile", "ErrorBoundAdvisor"]


@dataclass(frozen=True)
class BoundProfile:
    """One profiled operating point."""

    error_bound: float
    ratio: float
    psnr_db: float
    max_error: float


class ErrorBoundAdvisor:
    """Profiles a codec on a field and inverts the eb ↔ quality curves."""

    def __init__(
        self,
        compressor: Compressor,
        field: np.ndarray,
        bounds: Tuple[float, ...] = (1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4),
    ) -> None:
        if len(bounds) < 2:
            raise ValueError("need at least 2 bounds to interpolate")
        if any(b <= 0 for b in bounds):
            raise ValueError("bounds must be positive")
        self.compressor = compressor
        arr = as_float_array(field, "field")
        profiles: List[BoundProfile] = []
        for eb in sorted(bounds, reverse=True):
            buf, rec = compressor.roundtrip(arr, eb)
            m = evaluate(arr, rec, buf)
            profiles.append(
                BoundProfile(
                    error_bound=eb,
                    ratio=m.ratio,
                    psnr_db=m.psnr_db,
                    max_error=m.max_error,
                )
            )
        #: Profiles ordered from coarsest to finest bound.
        self.profiles: Tuple[BoundProfile, ...] = tuple(profiles)

    # -- inversion -------------------------------------------------------

    def _interp_bound(self, xs: np.ndarray, target: float, log_x: bool) -> float:
        ebs = np.log10([p.error_bound for p in self.profiles])
        vals = np.log10(xs) if log_x else xs
        order = np.argsort(vals)
        vals, ebs = vals[order], ebs[order]
        t = np.log10(target) if log_x else target
        t = float(np.clip(t, vals[0], vals[-1]))
        return float(10 ** np.interp(t, vals, ebs))

    def bound_for_ratio(self, target_ratio: float) -> float:
        """Coarsest bound achieving at least *target_ratio* (clamped to
        the profiled range)."""
        check_positive(target_ratio, "target_ratio")
        ratios = np.array([p.ratio for p in self.profiles])
        return self._interp_bound(ratios, target_ratio, log_x=True)

    def bound_for_psnr(self, target_psnr_db: float) -> float:
        """Coarsest bound achieving at least *target_psnr_db* (clamped)."""
        psnrs = np.array([p.psnr_db for p in self.profiles])
        if not np.all(np.isfinite(psnrs)):
            raise ValueError("PSNR profile contains non-finite values")
        return self._interp_bound(psnrs, target_psnr_db, log_x=False)

    # -- reporting --------------------------------------------------------

    def table(self) -> List[Dict[str, float]]:
        """Profiled operating points as export-ready rows."""
        return [
            {
                "error_bound": p.error_bound,
                "ratio": p.ratio,
                "psnr_db": p.psnr_db,
                "max_error": p.max_error,
            }
            for p in self.profiles
        ]
