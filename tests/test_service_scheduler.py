"""Unit tests for the batching request scheduler."""

import json
import threading
import time

import pytest

from repro.observability.metrics import get_registry as get_metrics_registry
from repro.observability.tracer import Tracer, use_tracer
from repro.service.errors import (
    BadRequestError,
    DeadlineExceeded,
    InternalError,
    QueueFullError,
    ServiceClosedError,
)
from repro.service.scheduler import Scheduler


@pytest.fixture(autouse=True)
def fresh_metrics():
    get_metrics_registry().reset()
    yield
    get_metrics_registry().reset()


def echo_handler(kind, payload):
    return {"kind": kind, "payload": payload}


class TestBasics:
    def test_submit_and_result(self):
        with Scheduler(echo_handler, workers=2) as sched:
            ticket = sched.submit("tune", {"x": 1})
            assert ticket.result(5.0) == {"kind": "tune", "payload": {"x": 1}}

    def test_perform_synchronous(self):
        with Scheduler(echo_handler) as sched:
            assert sched.perform("decide", {"y": 2})["payload"] == {"y": 2}

    def test_many_distinct_requests_all_answered(self):
        with Scheduler(echo_handler, queue_size=256, workers=4) as sched:
            tickets = [sched.submit("tune", {"i": i}) for i in range(100)]
            for i, t in enumerate(tickets):
                assert t.result(10.0)["payload"] == {"i": i}

    def test_service_error_propagates_typed(self):
        def failing(kind, payload):
            raise BadRequestError("nope")

        with Scheduler(failing) as sched:
            with pytest.raises(BadRequestError, match="nope"):
                sched.perform("tune", {}, timeout=5.0)

    def test_unexpected_error_wrapped_internal(self):
        def crashing(kind, payload):
            raise RuntimeError("boom")

        with Scheduler(crashing) as sched:
            with pytest.raises(InternalError, match="RuntimeError: boom"):
                sched.perform("tune", {}, timeout=5.0)

    def test_one_bad_request_does_not_poison_batch(self):
        def picky(kind, payload):
            if payload.get("bad"):
                raise BadRequestError("bad one")
            return payload["i"]

        with Scheduler(picky, workers=2, batch_max=8) as sched:
            tickets = [
                sched.submit("tune", {"i": i, "bad": i == 3}) for i in range(6)
            ]
            results = []
            for i, t in enumerate(tickets):
                if i == 3:
                    with pytest.raises(BadRequestError):
                        t.result(5.0)
                else:
                    results.append(t.result(5.0))
            assert results == [0, 1, 2, 4, 5]

    def test_validation(self):
        with pytest.raises(ValueError, match="queue_size"):
            Scheduler(echo_handler, queue_size=0)
        with pytest.raises(ValueError, match="batch_max"):
            Scheduler(echo_handler, batch_max=0)


class TestCoalescing:
    def test_identical_payloads_computed_once_per_batch(self):
        calls = []
        gate = threading.Event()

        def counting(kind, payload):
            calls.append(payload)
            return len(calls)

        def stalling(kind, payload):
            # First request blocks the dispatcher's pool so the
            # duplicates pile up into one later batch.
            if payload.get("stall"):
                gate.wait(10.0)
                return "stalled"
            return counting(kind, payload)

        with Scheduler(stalling, workers=1, batch_max=32,
                       queue_size=64) as sched:
            stall_ticket = sched.submit("tune", {"stall": True})
            time.sleep(0.15)  # dispatcher is now stuck in the stall
            dupes = [sched.submit("tune", {"q": "same"}) for _ in range(10)]
            gate.set()
            results = {d.result(10.0) for d in dupes}
            assert stall_ticket.result(10.0) == "stalled"
        # All ten duplicates shared one computation...
        assert len(results) == 1
        assert calls == [{"q": "same"}]
        # ...and the coalescing counter recorded the nine saved runs.
        coalesced = get_metrics_registry().counter(
            "repro_service_coalesced_total"
        )
        assert coalesced.value == 9

    def test_distinct_payloads_not_coalesced(self):
        with Scheduler(echo_handler, batch_max=8) as sched:
            a = sched.perform("tune", {"q": 1}, timeout=5.0)
            b = sched.perform("tune", {"q": 2}, timeout=5.0)
            assert a != b


class TestAdmissionControl:
    def make_stalled(self, queue_size):
        gate = threading.Event()

        def stalling(kind, payload):
            gate.wait(10.0)
            return "ok"

        sched = Scheduler(stalling, queue_size=queue_size, workers=1,
                          batch_max=1)
        return sched, gate

    def test_full_queue_rejects_not_blocks(self):
        sched, gate = self.make_stalled(queue_size=2)
        try:
            first = sched.submit("tune", {"i": 0})
            time.sleep(0.15)  # dispatcher takes it and stalls
            accepted = [sched.submit("tune", {"i": 1 + i}) for i in range(2)]
            t0 = time.monotonic()
            with pytest.raises(QueueFullError, match="queue full"):
                sched.submit("tune", {"i": 99})
            assert time.monotonic() - t0 < 0.5  # rejected, not blocked
            rejects = get_metrics_registry().counter(
                "repro_service_rejected_total"
            )
            assert rejects.value == 1
            gate.set()
            for t in [first, *accepted]:
                assert t.result(10.0) == "ok"
        finally:
            gate.set()
            sched.close()

    def test_submit_after_close_refused(self):
        sched = Scheduler(echo_handler)
        assert sched.close(10.0)
        with pytest.raises(ServiceClosedError):
            sched.submit("tune", {})


class TestDeadlines:
    def test_expired_in_queue_fails_504(self):
        sched, gate = self.make_stalled_scheduler()
        try:
            blocker = sched.submit("tune", {"i": 0})
            time.sleep(0.15)
            doomed = sched.submit("tune", {"i": 1}, deadline_s=0.05)
            time.sleep(0.2)  # deadline passes while queued
            gate.set()
            assert blocker.result(10.0) == "ok"
            with pytest.raises(DeadlineExceeded, match="expired"):
                doomed.result(10.0)
        finally:
            gate.set()
            sched.close()

    def make_stalled_scheduler(self):
        gate = threading.Event()

        def stalling(kind, payload):
            if payload.get("i") == 0:
                gate.wait(10.0)
            return "ok"

        return Scheduler(stalling, workers=1, batch_max=1), gate

    def test_generous_deadline_still_served(self):
        with Scheduler(echo_handler, default_deadline_s=30.0) as sched:
            assert sched.perform("tune", {"a": 1}, timeout=5.0)["payload"] == {
                "a": 1
            }


class TestDrain:
    def test_close_completes_accepted_work(self):
        slow_started = threading.Event()

        def slow(kind, payload):
            slow_started.set()
            time.sleep(0.05)
            return payload["i"]

        sched = Scheduler(slow, queue_size=64, workers=2, batch_max=4)
        tickets = [sched.submit("tune", {"i": i}) for i in range(10)]
        slow_started.wait(5.0)
        assert sched.close(30.0)  # drain runs the queue dry
        assert [t.result(0.1) for t in tickets] == list(range(10))

    def test_close_is_idempotent(self):
        sched = Scheduler(echo_handler)
        assert sched.close(10.0)
        assert sched.close(10.0)


class TestObservability:
    def test_requests_counted_and_latency_observed(self):
        with Scheduler(echo_handler) as sched:
            for _ in range(3):
                sched.perform("tune", {"a": 1}, timeout=5.0)
            sched.perform("decide", {"b": 2}, timeout=5.0)
        metrics = get_metrics_registry()
        tune_ok = metrics.counter(
            "repro_service_requests_total",
            labels={"endpoint": "tune", "status": "ok"},
        )
        decide_ok = metrics.counter(
            "repro_service_requests_total",
            labels={"endpoint": "decide", "status": "ok"},
        )
        assert (tune_ok.value, decide_ok.value) == (3.0, 1.0)
        hist = metrics.histogram(
            "repro_service_request_seconds", labels={"endpoint": "tune"}
        )
        # Every ticket gets its own latency observation, coalesced or not.
        assert hist.count == 3

    def test_requests_run_under_spans(self):
        with use_tracer(Tracer()) as tracer:
            with Scheduler(echo_handler) as sched:
                sched.perform("tune", {"a": 1}, timeout=5.0)
            names = [s.name for s in tracer.spans]
        assert "service.tune" in names


class TestCacheIntegration:
    """Result-cache consultation: exact hit/miss accounting, no recompute."""

    @staticmethod
    def make_cached(handler, **kwargs):
        from repro.cache import ResultCache, fingerprint

        cache = ResultCache()
        return cache, Scheduler(
            handler, cache=cache,
            cache_key_fn=lambda kind, payload: fingerprint(
                kind=f"service.{kind}", payload=payload
            ),
            **kwargs,
        )

    def test_cache_without_key_fn_rejected(self):
        from repro.cache import ResultCache

        with pytest.raises(ValueError, match="cache_key_fn"):
            Scheduler(echo_handler, cache=ResultCache())

    def test_repeated_identical_queries_compute_once(self):
        calls = []

        def counting(kind, payload):
            calls.append(payload)
            return {"n": len(calls)}

        cache, sched = self.make_cached(counting)
        with sched:
            results = [sched.perform("tune", {"q": 7}, timeout=5.0)
                       for _ in range(5)]
        assert calls == [{"q": 7}]
        assert all(r == {"n": 1} for r in results)
        # Exact accounting: one miss (the computation), four submit-time
        # hits — the advisory probe never inflates the miss counter.
        metrics = get_metrics_registry()
        ctx = {"context": "service.tune"}
        assert metrics.counter("repro_cache_misses_total", labels=ctx).value == 1
        assert metrics.counter("repro_cache_hits_total", labels=ctx).value == 4
        # Every ticket still went through the request counter.
        ok = metrics.counter("repro_service_requests_total",
                             labels={"endpoint": "tune", "status": "ok"})
        assert ok.value == 5

    def test_identical_in_flight_queries_single_flight(self):
        # batch_max=1 defeats in-batch coalescing, so each duplicate
        # lands in its own dispatch group: only the cache's
        # get_or_compute can dedupe them — and must.
        calls = []
        gate = threading.Event()

        def stalling(kind, payload):
            if payload.get("stall"):
                gate.wait(10.0)
                return "stalled"
            calls.append(payload)
            return {"n": len(calls)}

        cache, sched = self.make_cached(
            stalling, workers=1, batch_max=1, queue_size=64
        )
        with sched:
            # Distinct kind: the stall's own miss lands in another
            # metric context, keeping the tune accounting exact.
            stall_ticket = sched.submit("stall", {"stall": True})
            time.sleep(0.15)  # dispatcher is now stuck in the stall
            dupes = [sched.submit("tune", {"q": "same"}) for _ in range(6)]
            gate.set()
            results = {json.dumps(d.result(10.0)) for d in dupes}
            assert stall_ticket.result(10.0) == "stalled"
        assert len(calls) == 1
        assert results == {'{"n": 1}'}
        metrics = get_metrics_registry()
        ctx = {"context": "service.tune"}
        assert metrics.counter("repro_cache_misses_total", labels=ctx).value == 1
        assert metrics.counter("repro_cache_hits_total", labels=ctx).value == 5
        # Separate batches: classic coalescing saw none of this.
        assert metrics.counter("repro_service_coalesced_total").value == 0

    def test_submit_time_hit_bypasses_a_jammed_queue(self):
        gate = threading.Event()

        def stalling(kind, payload):
            if payload.get("stall"):
                gate.wait(10.0)
                return "stalled"
            return {"q": payload["q"]}

        cache, sched = self.make_cached(
            stalling, workers=1, batch_max=1, queue_size=2
        )
        try:
            warm = sched.perform("tune", {"q": 1}, timeout=5.0)
            stall_ticket = sched.submit("tune", {"stall": True})
            time.sleep(0.15)
            for i in range(2):
                sched.submit("tune", {"stall": True, "i": i})
            with pytest.raises(QueueFullError):
                sched.submit("tune", {"q": "novel"})
            # The cached query needs no queue slot at all.
            t0 = time.monotonic()
            hit = sched.perform("tune", {"q": 1}, timeout=1.0)
            assert time.monotonic() - t0 < 0.5
            assert hit == warm
        finally:
            gate.set()
            sched.close()

    def test_errors_are_never_cached(self):
        attempts = []

        def flaky(kind, payload):
            attempts.append(1)
            if len(attempts) == 1:
                raise BadRequestError("transient nonsense")
            return "recovered"

        cache, sched = self.make_cached(flaky)
        with sched:
            with pytest.raises(BadRequestError):
                sched.perform("tune", {"q": 1}, timeout=5.0)
            assert sched.perform("tune", {"q": 1}, timeout=5.0) == "recovered"
        assert len(attempts) == 2
