"""Unit + property tests for the ZFP codec end to end."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compressors import ZFPCompressor
from repro.compressors.base import CorruptStreamError
from repro.data import load_field


@pytest.fixture(scope="module")
def zfp():
    return ZFPCompressor()


class TestErrorBounds:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3, 1e-4])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_paper_bounds(self, zfp, eb, dtype):
        arr = load_field("nyx", "velocity_x", scale=32).astype(dtype)
        buf, rec = zfp.roundtrip(arr, eb)
        err = np.max(np.abs(arr.astype(np.float64) - rec.astype(np.float64)))
        assert err <= eb * (1 + 1e-9)

    def test_finer_bound_lower_ratio(self, zfp):
        arr = load_field("cesm-atm", "T", scale=24)
        ratios = [zfp.compress(arr, eb).ratio for eb in (1e-1, 1e-2, 1e-3, 1e-4)]
        assert ratios == sorted(ratios, reverse=True)

    def test_loose_bound_gives_high_ratio(self, zfp):
        arr = load_field("cesm-atm", "T", scale=24)
        assert zfp.compress(arr, 1e-1).ratio > 3.0

    def test_mixed_magnitude_blocks(self, zfp):
        # Per-block exponents: tiny and huge values in one array.
        arr = np.ones((8, 8), dtype=np.float64)
        arr[:4, :4] *= 1e-6
        arr[4:, 4:] *= 1e6
        buf, rec = zfp.roundtrip(arr, 1e-3)
        assert np.max(np.abs(arr - rec)) <= 1e-3


class TestModes:
    def test_all_zero_array(self, zfp):
        arr = np.zeros((16, 16), dtype=np.float32)
        buf, rec = zfp.roundtrip(arr, 1e-3)
        assert np.array_equal(rec, arr)
        assert buf.nbytes < 500  # zero blocks cost almost nothing

    def test_raw_fallback_below_error_floor(self, zfp):
        # Tolerance far below fixed-point resolution: lossless fallback.
        arr = np.random.default_rng(0).normal(size=64).astype(np.float64)
        buf, rec = zfp.roundtrip(arr, 1e-18)
        assert np.array_equal(rec, arr)

    def test_tolerance_above_range_zeroes_blocks(self, zfp):
        arr = (np.random.default_rng(1).normal(size=(8, 8)) * 1e-4).astype(np.float64)
        buf, rec = zfp.roundtrip(arr, 1.0)
        assert np.max(np.abs(rec - arr)) <= 1.0
        # Only per-block headers remain: far smaller than the input.
        assert buf.ratio > 5


class TestShapes:
    @pytest.mark.parametrize("shape", [(1,), (4,), (17,), (3, 5), (16, 16),
                                       (4, 4, 4), (5, 6, 7), (2, 3, 4, 5)])
    def test_arbitrary_shapes(self, zfp, shape):
        rng = np.random.default_rng(2)
        arr = rng.normal(size=shape).astype(np.float32)
        buf, rec = zfp.roundtrip(arr, 1e-2)
        assert rec.shape == shape
        assert np.max(np.abs(arr - rec)) <= 1e-2


class TestSerialization:
    def test_buffer_bytes_roundtrip(self, zfp):
        from repro.compressors.base import CompressedBuffer

        arr = np.random.default_rng(3).normal(size=(12, 12)).astype(np.float32)
        buf = zfp.compress(arr, 1e-2)
        rec = zfp.decompress(CompressedBuffer.from_bytes(buf.to_bytes()))
        assert np.max(np.abs(arr - rec)) <= 1e-2

    def test_corrupt_payload_detected(self, zfp):
        arr = np.random.default_rng(4).normal(size=(16, 16)).astype(np.float32)
        buf = zfp.compress(arr, 1e-2)
        bad = buf.__class__(
            codec=buf.codec,
            payload=buf.payload[:10],
            shape=buf.shape,
            dtype=buf.dtype,
            error_bound=buf.error_bound,
        )
        with pytest.raises((CorruptStreamError, ValueError, EOFError)):
            zfp.decompress(bad)

    def test_invalid_zlib_level(self):
        with pytest.raises(ValueError):
            ZFPCompressor(zlib_level=-1)


class TestCrossCodec:
    def test_sz_usually_beats_zfp_on_smooth_data(self, zfp):
        # Qualitative behaviour the paper relies on: at matched absolute
        # bounds SZ reaches higher ratios on smooth fields.
        from repro.compressors import SZCompressor

        arr = load_field("cesm-atm", "T", scale=24)
        sz_ratio = SZCompressor().compress(arr, 1e-3).ratio
        zfp_ratio = zfp.compress(arr, 1e-3).ratio
        assert sz_ratio > zfp_ratio


class TestPropertyRoundTrip:
    @given(st.data())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_bound_always_respected(self, data):
        ndim = data.draw(st.integers(1, 3))
        shape = tuple(data.draw(st.integers(1, 9)) for _ in range(ndim))
        n = int(np.prod(shape))
        values = data.draw(
            st.lists(st.floats(-1e4, 1e4, width=32), min_size=n, max_size=n)
        )
        eb = data.draw(st.sampled_from([1e-1, 1e-2, 1e-3]))
        arr = np.array(values, dtype=np.float32).reshape(shape)
        zfp = ZFPCompressor()
        _, rec = zfp.roundtrip(arr, eb)
        err = np.max(np.abs(arr.astype(np.float64) - rec.astype(np.float64)))
        assert err <= eb * (1 + 1e-9)

    @given(st.data())
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_bound_float64_wide_magnitudes(self, data):
        n = data.draw(st.integers(1, 40))
        values = data.draw(
            st.lists(st.floats(-1e12, 1e12), min_size=n, max_size=n)
        )
        eb = data.draw(st.sampled_from([1e2, 1.0, 1e-3]))
        arr = np.array(values, dtype=np.float64)
        zfp = ZFPCompressor()
        _, rec = zfp.roundtrip(arr, eb)
        assert np.max(np.abs(arr - rec)) <= eb * (1 + 1e-9)
