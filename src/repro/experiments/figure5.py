"""Fig. 5 — Broadwell power model validated on Hurricane-ISABEL.

The paper holds out the Hurricane-ISABEL dataset (six 100×500×500
fields: PRECIP, P, TC, U, V, W), compresses it with SZ and ZFP at a
1e-4 bound across the Broadwell frequency range, and evaluates how well
the *previously fitted* Broadwell model predicts the new scaled-power
measurements. Paper result: SSE = 0.1463, RMSE = 0.0256 — the model
generalizes to unseen data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.power_model import PowerModel
from repro.core.samples import SampleSet
from repro.core.scaling import add_scaled_columns
from repro.experiments.context import ExperimentContext
from repro.utils.stats import GoodnessOfFit
from repro.workflow.report import render_series
from repro.workflow.sweep import SweepConfig, compression_sweep

__all__ = ["run", "main", "ValidationResult", "PAPER_SSE", "PAPER_RMSE"]

PAPER_SSE = 0.1463
PAPER_RMSE = 0.0256

_ISABEL_FIELDS: Tuple[Tuple[str, str], ...] = tuple(
    ("hurricane-isabel", f) for f in ("PRECIP", "P", "TC", "U", "V", "W")
)


@dataclass(frozen=True)
class ValidationResult:
    """Held-out validation outcome."""

    model: PowerModel
    gof: GoodnessOfFit
    samples: SampleSet

    def curve(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(frequencies, observed scaled power, model prediction)."""
        ordered = self.samples.sort_by("freq_ghz")
        f = ordered.column("freq_ghz").astype(np.float64)
        obs = ordered.column("scaled_power_w").astype(np.float64)
        return f, obs, self.model.predict(f)


def run(ctx: Optional[ExperimentContext] = None) -> ValidationResult:
    """Sweep ISABEL on Broadwell and score the fitted Broadwell model."""
    ctx = ctx if ctx is not None else ExperimentContext()
    model = ctx.outcome.compression_models["Broadwell"]

    base = ctx.config
    isabel_cfg = SweepConfig(
        compressors=base.compressors,
        datasets=_ISABEL_FIELDS,
        error_bounds=(1e-4,),
        repeats=base.repeats,
        data_scale=base.data_scale,
        seed=base.seed + 1,  # held-out data: decorrelate from training
        frequency_stride=base.frequency_stride,
        measure_ratios=False,
    )
    node = ctx.node("broadwell")
    samples = add_scaled_columns(compression_sweep([node], isabel_cfg))
    gof = model.evaluate(samples)
    return ValidationResult(model=model, gof=gof, samples=samples)


def main(ctx: Optional[ExperimentContext] = None) -> str:
    """Render the validation curve and its GF statistics."""
    result = run(ctx)
    f, obs, pred = result.curve()
    # Average observations per frequency for a readable series.
    uniq = np.unique(f)
    obs_mean = np.array([obs[f == u].mean() for u in uniq])
    pred_mean = np.array([pred[f == u].mean() for u in uniq])
    text = render_series(
        uniq,
        {"observed": obs_mean, "model": pred_mean},
        title="FIG. 5 — Broadwell model on held-out Hurricane-ISABEL",
    )
    text += (
        f"\n\nGF: SSE={result.gof.sse:.4f} RMSE={result.gof.rmse:.4f} "
        f"(paper: SSE={PAPER_SSE}, RMSE={PAPER_RMSE})"
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
