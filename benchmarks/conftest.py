"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper. The heavyweight
measurement campaign is shared through a session-scoped
:class:`ExperimentContext` at the paper's full resolution (50 MHz grid,
10 repeats, all datasets and bounds).

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
reproduced tables rendered to the terminal).
"""

import pytest

from repro.experiments.context import ExperimentContext
from repro.workflow.sweep import SweepConfig


@pytest.fixture(scope="session")
def ctx():
    """Full-resolution campaign shared by all table/figure benches."""
    return ExperimentContext(config=SweepConfig())


def emit(text: str) -> None:
    """Print a reproduced table/series (visible with ``pytest -s``)."""
    print("\n" + text)
