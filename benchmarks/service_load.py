#!/usr/bin/env python
"""Closed-loop load generator for the tuning service.

Starts a :class:`~repro.service.http.TuningServer` in-process on an
ephemeral port, registers a two-architecture model bundle, then drives
it with N client threads each issuing M requests (a deterministic mix
of ``/v1/tune`` and ``/v1/decide``). Clients run with retries disabled
so every 429 admission reject is *counted*, not hidden. Reports p50 /
p95 / p99 / max latency, throughput, and the reject rate.

Usage::

    PYTHONPATH=src python benchmarks/service_load.py
    PYTHONPATH=src python benchmarks/service_load.py --smoke        # CI
    PYTHONPATH=src python benchmarks/service_load.py \
        --threads 16 --requests 100 --queue-size 8   # force rejects

Exit status is non-zero if any request fails with an unexpected error
(anything but a 429 reject), or — under ``--smoke`` — if a
generously-sized queue rejects anything at all.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from repro.cache import ResultCache, get_cache, set_cache
from repro.core.persistence import ModelBundle
from repro.core.power_model import PowerModel
from repro.core.runtime_model import RuntimeModel
from repro.resilience.policies import RetryPolicy
from repro.service import (
    QueueFullError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    TuningServer,
)
from repro.utils.stats import GoodnessOfFit

_GOF = GoodnessOfFit(0.1, 0.02, 0.9)


def demo_bundle() -> ModelBundle:
    """A fixed two-architecture bundle (paper's Table III shape)."""
    return ModelBundle(
        compression_power={
            "Broadwell": PowerModel("Broadwell", 0.0064, 5.315, 0.7429,
                                    0.8, 2.0, _GOF),
            "Skylake": PowerModel("Skylake", 0.0074, 5.124, 1.1624,
                                  0.8, 2.2, _GOF),
        },
        transit_power={
            "Broadwell": PowerModel("Broadwell", 0.0261, 3.395, 0.7097,
                                    0.8, 2.0, _GOF),
            "Skylake": PowerModel("Skylake", 0.0313, 3.283, 1.0786,
                                  0.8, 2.2, _GOF),
        },
        compression_runtime={
            "broadwell": RuntimeModel("compress-broadwell", 0.55, 2.0, _GOF),
            "skylake": RuntimeModel("compress-skylake", 0.52, 2.2, _GOF),
        },
        transit_runtime={
            "broadwell": RuntimeModel("write-broadwell", 0.75, 2.0, _GOF),
            "skylake": RuntimeModel("write-skylake", 0.71, 2.2, _GOF),
        },
        metadata={"source": "service_load-demo"},
    )


def request_mix() -> list:
    """The deterministic request cycle every client thread walks."""
    mix = []
    for arch in ("broadwell", "skylake"):
        for stage in ("compress", "write"):
            for objective in ("power", "energy", "edp"):
                mix.append(("tune", {
                    "model": "demo", "arch": arch, "stage": stage,
                    "objective": objective,
                }))
    for arch in ("broadwell", "skylake"):
        for ratio in (1.2, 4.0, 16.0):
            for clients in (1, 64):
                mix.append(("decide", {
                    "arch": arch, "ratio": ratio, "error_bound": 1e-3,
                    "nbytes": 10**9, "clients": clients,
                }))
    return mix


def percentile(sorted_samples: list, q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not sorted_samples:
        return float("nan")
    rank = max(0, min(len(sorted_samples) - 1,
                      round(q * (len(sorted_samples) - 1))))
    return sorted_samples[rank]


def run_load(server: TuningServer, threads: int, requests: int) -> dict:
    """Drive the server; returns latencies (ok) and outcome counts."""
    mix = request_mix()
    latencies_s: list = []
    counts = {"ok": 0, "rejected": 0, "errors": 0}
    failures: list = []
    lock = threading.Lock()
    start_barrier = threading.Barrier(threads)

    def client_thread(rank: int) -> None:
        # One client per thread, no retries: rejects must be visible.
        client = ServiceClient(
            server.url,
            retry=RetryPolicy(max_attempts=1),
            retry_seed=rank,
        )
        start_barrier.wait()
        for i in range(requests):
            kind, payload = mix[(rank + i) % len(mix)]
            fn = client.tune if kind == "tune" else client.decide
            t0 = time.perf_counter()
            try:
                fn(**payload)
            except QueueFullError:
                with lock:
                    counts["rejected"] += 1
                continue
            except (ServiceError, OSError) as exc:
                with lock:
                    counts["errors"] += 1
                    failures.append(f"{kind} {payload}: {exc}")
                continue
            elapsed = time.perf_counter() - t0
            with lock:
                counts["ok"] += 1
                latencies_s.append(elapsed)

    workers = [
        threading.Thread(target=client_thread, args=(rank,))
        for rank in range(threads)
    ]
    t_start = time.perf_counter()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    wall_s = time.perf_counter() - t_start
    latencies_s.sort()
    return {
        "counts": counts,
        "latencies_s": latencies_s,
        "wall_s": wall_s,
        "failures": failures,
    }


def report(outcome: dict, threads: int, requests: int) -> None:
    counts = outcome["counts"]
    lat = outcome["latencies_s"]
    total = threads * requests
    reject_rate = counts["rejected"] / total if total else 0.0
    print(f"service load: {threads} threads x {requests} requests "
          f"= {total} total in {outcome['wall_s']:.2f}s "
          f"({total / outcome['wall_s']:.0f} req/s offered)")
    print(f"  ok={counts['ok']}  rejected={counts['rejected']} "
          f"({reject_rate:.1%})  errors={counts['errors']}")
    cache = outcome["cache"]
    lookups = cache["hits"] + cache["misses"]
    ratio = cache["hits"] / lookups if lookups else 0.0
    print(f"  cache: hits={cache['hits']}  misses={cache['misses']}  "
          f"hit ratio={ratio:.1%}  (the load mix repeats itself, so "
          "0% means the scheduler bypassed the cache)")
    if lat:
        print("  latency (ok only): "
              f"p50={percentile(lat, 0.50) * 1e3:.2f}ms  "
              f"p95={percentile(lat, 0.95) * 1e3:.2f}ms  "
              f"p99={percentile(lat, 0.99) * 1e3:.2f}ms  "
              f"max={lat[-1] * 1e3:.2f}ms")
    for line in outcome["failures"][:10]:
        print(f"  FAIL {line}", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Load-test the tuning service in-process."
    )
    parser.add_argument("--threads", type=int, default=8,
                        help="client threads (default 8)")
    parser.add_argument("--requests", type=int, default=50,
                        help="requests per thread (default 50)")
    parser.add_argument("--workers", type=int, default=4,
                        help="service worker pool size")
    parser.add_argument("--queue-size", type=int, default=256,
                        help="service admission bound")
    parser.add_argument("--batch-max", type=int, default=16,
                        help="service dispatch batch size")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI run; any reject or error fails")
    args = parser.parse_args(argv)
    if args.smoke:
        args.threads, args.requests = 4, 10

    # Fresh process-wide cache: the reported hit ratio is this run's.
    set_cache(ResultCache())

    config = ServiceConfig(
        port=0, workers=args.workers, queue_size=args.queue_size,
        batch_max=args.batch_max,
    )
    with TuningServer(config) as server:
        server.registry.put("demo", demo_bundle())
        outcome = run_load(server, args.threads, args.requests)
    stats = get_cache().stats()
    outcome["cache"] = {"hits": stats["hits"], "misses": stats["misses"]}
    report(outcome, args.threads, args.requests)

    counts = outcome["counts"]
    if counts["errors"]:
        print(f"FAILED: {counts['errors']} unexpected errors",
              file=sys.stderr)
        return 1
    if args.smoke and counts["rejected"]:
        print(f"FAILED: smoke run rejected {counts['rejected']} requests "
              f"with queue_size={args.queue_size}", file=sys.stderr)
        return 1
    if args.smoke and outcome["cache"]["hits"] == 0:
        # The smoke mix repeats every payload across threads; zero hits
        # means the scheduler accidentally stopped consulting the cache.
        print("FAILED: smoke run recorded zero cache hits", file=sys.stderr)
        return 1
    expected = args.threads * args.requests
    if counts["ok"] + counts["rejected"] != expected:
        print("FAILED: request accounting does not add up", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
