"""Allocation-policy properties: budget safety, determinism, optimality.

Hypothesis drives randomized fleets through every allocation policy and
pins the invariants the cluster controller relies on: caps never exceed
the budget, node order never changes the answer, water-filling never
loses to uniform on the modeled makespan, and redistribution after a
node loss conserves the budget.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.powercap.allocation import (
    ALLOCATION_POLICIES,
    NodePowerModel,
    allocate_budget,
    allocation_makespan,
    apply_hysteresis,
    check_budget_w,
    proportional_allocation,
    uniform_allocation,
    waterfill_allocation,
)

# A realistic little DVFS grid: ascending frequencies, non-decreasing
# power.  Work/sensitivity vary per node so makespans differ.
GRID = (0.8, 1.2, 1.6, 2.0)


def node(i, power_scale=1.0, work=1.0, sensitivity=0.55):
    power = tuple(power_scale * (8.0 + 6.0 * f) for f in GRID)
    return NodePowerModel(f"n{i:02d}", GRID, power, work=work,
                          sensitivity=sensitivity)


@st.composite
def fleets(draw, min_size=1, max_size=8):
    n = draw(st.integers(min_size, max_size))
    return [
        node(
            i,
            power_scale=draw(st.floats(0.5, 2.0)),
            work=draw(st.floats(0.1, 4.0)),
            sensitivity=draw(st.floats(0.0, 1.0)),
        )
        for i in range(n)
    ]


budgets = st.floats(1.0, 500.0)


class TestBudgetValidation:
    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"),
                                     float("inf"), "12", None])
    def test_rejects_non_finite_and_non_positive(self, bad):
        with pytest.raises(ValueError):
            check_budget_w(bad, "b")

    def test_passes_positive_floats_through(self):
        assert check_budget_w(120, "b") == 120.0


class TestNodePowerModel:
    def test_rejects_unsorted_grid(self):
        with pytest.raises(ValueError):
            NodePowerModel("n", (2.0, 1.0), (10.0, 20.0))

    def test_rejects_decreasing_power(self):
        with pytest.raises(ValueError):
            NodePowerModel("n", (1.0, 2.0), (20.0, 10.0))

    def test_index_for_cap_clamps_to_floor(self):
        m = node(0)
        # Below the floor power the node still runs at the lowest
        # grid point: a cap is a ceiling, not an off switch.
        assert m.index_for_cap(0.0) == 0
        assert m.index_for_cap(m.max_power + 100.0) == len(GRID) - 1

    def test_runtime_decreases_with_frequency(self):
        m = node(0, sensitivity=0.8)
        runtimes = [m.runtime_at(i) for i in range(len(GRID))]
        assert runtimes == sorted(runtimes, reverse=True)


class TestBudgetSafety:
    @given(fleets(), budgets, st.sampled_from(ALLOCATION_POLICIES))
    @settings(max_examples=200, deadline=None)
    def test_caps_never_exceed_budget(self, fleet, budget, policy):
        caps = allocate_budget(policy, fleet, budget)
        assert set(caps) == {m.node_id for m in fleet}
        assert sum(caps.values()) <= budget + 1e-6
        assert all(c >= 0.0 for c in caps.values())

    @given(fleets(min_size=2), budgets)
    @settings(max_examples=100, deadline=None)
    def test_generous_budget_grants_every_max(self, fleet, budget):
        rich = sum(m.max_power for m in fleet) + budget
        for policy in ALLOCATION_POLICIES:
            caps = allocate_budget(policy, fleet, rich)
            for m in fleet:
                assert caps[m.node_id] == pytest.approx(m.max_power)


class TestDeterminism:
    @given(fleets(min_size=2), budgets, st.sampled_from(ALLOCATION_POLICIES),
           st.randoms(use_true_random=False))
    @settings(max_examples=150, deadline=None)
    def test_node_order_never_changes_the_answer(self, fleet, budget,
                                                 policy, rng):
        shuffled = list(fleet)
        rng.shuffle(shuffled)
        assert (allocate_budget(policy, fleet, budget)
                == allocate_budget(policy, shuffled, budget))

    def test_duplicate_node_ids_are_rejected(self):
        twins = [node(1), node(1)]
        with pytest.raises(ValueError, match="duplicate"):
            uniform_allocation(twins, 100.0)


class TestWaterfillDominatesUniform:
    @given(fleets(min_size=2), budgets)
    @settings(max_examples=200, deadline=None)
    def test_makespan_never_worse_than_uniform(self, fleet, budget):
        wf = waterfill_allocation(fleet, budget)
        uni = uniform_allocation(fleet, budget)
        assert (allocation_makespan(fleet, wf)
                <= allocation_makespan(fleet, uni) + 1e-9)

    def test_waterfill_prioritizes_the_bottleneck(self):
        # One node carries 4x the work; with a budget that cannot lift
        # everyone, water-filling raises the heavy node first.
        fleet = [node(0, work=4.0, sensitivity=0.9),
                 node(1, work=1.0, sensitivity=0.9),
                 node(2, work=1.0, sensitivity=0.9)]
        tight = fleet[0].max_power + 2 * fleet[0].min_power
        caps = waterfill_allocation(fleet, tight)
        assert caps["n00"] >= caps["n01"]
        assert caps["n00"] >= caps["n02"]


class TestProportional:
    @given(fleets(min_size=2), budgets)
    @settings(max_examples=100, deadline=None)
    def test_missing_demands_fall_back_to_max_power(self, fleet, budget):
        assert (proportional_allocation(fleet, budget)
                == proportional_allocation(
                    fleet, budget,
                    demands={m.node_id: m.max_power for m in fleet}))

    def test_heavier_demand_draws_a_larger_cap(self):
        fleet = [node(0), node(1)]
        budget = fleet[0].max_power  # not enough for both
        caps = proportional_allocation(
            fleet, budget, demands={"n00": 30.0, "n01": 10.0})
        assert caps["n00"] > caps["n01"]

    def test_non_finite_demands_are_ignored(self):
        fleet = [node(0), node(1)]
        ok = proportional_allocation(fleet, 20.0)
        weird = proportional_allocation(
            fleet, 20.0, demands={"n00": float("nan"), "n01": -3.0})
        assert weird == ok


class TestRedistributionAfterLoss:
    @given(fleets(min_size=2), budgets, st.sampled_from(ALLOCATION_POLICIES))
    @settings(max_examples=150, deadline=None)
    def test_survivors_reclaim_the_budget(self, fleet, budget, policy):
        before = allocate_budget(policy, fleet, budget)
        survivors = fleet[1:]
        after = allocate_budget(policy, survivors, budget)
        assert sum(after.values()) <= budget + 1e-6
        # The dead node's watts go back to the pool: the survivors'
        # total never shrinks below what they already held.
        held = sum(before[m.node_id] for m in survivors)
        assert sum(after.values()) >= held - 1e-6

    @given(fleets(min_size=2), budgets)
    @settings(max_examples=100, deadline=None)
    def test_uniform_caps_are_monotone_after_a_leave(self, fleet, budget):
        before = uniform_allocation(fleet, budget)
        after = uniform_allocation(fleet[1:], budget)
        for m in fleet[1:]:
            assert after[m.node_id] >= before[m.node_id] - 1e-9


class TestHysteresis:
    def test_small_moves_are_suppressed(self):
        prev = {"a": 100.0, "b": 50.0}
        cand = {"a": 103.0, "b": 20.0}
        out = apply_hysteresis(prev, cand, budget_w=200.0, hysteresis=0.05)
        assert out["a"] == 100.0  # 3% move: held
        assert out["b"] == 20.0   # 60% move: taken

    def test_falls_back_when_blend_breaks_the_budget(self):
        prev = {"a": 100.0, "b": 100.0}
        cand = {"a": 98.0, "b": 40.0}
        # Keeping a=100 would spend 140 > 130: the candidate wins
        # wholesale so the budget invariant survives.
        out = apply_hysteresis(prev, cand, budget_w=130.0, hysteresis=0.05)
        assert out == cand

    def test_new_nodes_pass_straight_through(self):
        out = apply_hysteresis({}, {"a": 10.0}, budget_w=20.0,
                               hysteresis=0.05)
        assert out == {"a": 10.0}


class TestMakespan:
    def test_empty_fleet_has_zero_makespan(self):
        assert allocation_makespan([], {}) == 0.0

    def test_makespan_is_the_slowest_node(self):
        fleet = [node(0, work=1.0), node(1, work=3.0)]
        caps = {m.node_id: m.max_power for m in fleet}
        assert allocation_makespan(fleet, caps) == pytest.approx(
            fleet[1].runtime_at(len(GRID) - 1))

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ValueError, match="unknown allocation policy"):
            allocate_budget("greedy", [node(0)], 50.0)

    def test_infeasible_budget_still_returns_finite_makespan(self):
        fleet = [node(0), node(1)]
        caps = waterfill_allocation(fleet, 1.0)
        span = allocation_makespan(fleet, caps)
        assert math.isfinite(span) and span > 0.0
