"""Fig. 4 — data transit scaled runtime characteristics.

One trend per CPU. Expected shape: Broadwell stretches noticeably at
low frequency (compute-bound copy path); Skylake is nearly stagnant —
the paper attributes this to the generation's lack of energy-efficient
scaling on the write path.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.characteristics import characteristic_bands
from repro.experiments.context import ExperimentContext
from repro.utils.stats import ConfidenceBand
from repro.workflow.report import render_series

__all__ = ["run", "main"]


def run(ctx: Optional[ExperimentContext] = None) -> Dict[Tuple, ConfidenceBand]:
    """Bands keyed by (cpu,)."""
    ctx = ctx if ctx is not None else ExperimentContext()
    return characteristic_bands(
        ctx.outcome.transit_samples, ("cpu",), value="runtime"
    )


def main(ctx: Optional[ExperimentContext] = None) -> str:
    """Render every trend of Fig. 4 as a subsampled series table."""
    bands = run(ctx)
    chunks = []
    for gkey, band in sorted(bands.items()):
        chunks.append(
            render_series(
                band.x,
                {"scaled_runtime": band.mean, "ci_low": band.lower, "ci_high": band.upper},
                title=f"FIG. 4 — data transit scaled runtime: {gkey[0]}",
            )
        )
    text = "\n\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":
    main()
