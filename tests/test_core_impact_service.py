"""Unit tests for the impact converter and the tuning service."""

import pytest

from repro.core.impact import GridProfile, US_AVERAGE_GRID, impact_of
from repro.core.objectives import Objective
from repro.core.persistence import ModelBundle
from repro.core.power_model import PowerModel
from repro.core.runtime_model import RuntimeModel
from repro.core.service import TuningService
from repro.core.tuning import PAPER_POLICY
from repro.utils.stats import GoodnessOfFit

GOF = GoodnessOfFit(0.0, 0.0, 1.0)


class TestImpact:
    def test_kwh_conversion(self):
        rep = impact_of(3.6e6, GridProfile(gco2e_per_kwh=400, usd_per_kwh=0.1, pue=1.0))
        assert rep.kwh == pytest.approx(1.0)
        assert rep.gco2e == pytest.approx(400.0)
        assert rep.usd == pytest.approx(0.10)

    def test_pue_multiplies_facility_energy(self):
        rep = impact_of(1e6, GridProfile(100, 0.1, pue=1.5))
        assert rep.facility_energy_j == pytest.approx(1.5e6)

    def test_paper_headline_at_fleet_scale(self):
        # 6.5 kJ per dump x 24 dumps/day x 365 days x 1000 nodes.
        per_dump = impact_of(6.5e3, US_AVERAGE_GRID)
        fleet = per_dump.scaled(24 * 365 * 1000)
        assert fleet.kwh > 20_000  # a real operations number
        assert fleet.usd > 2_000

    def test_zero_energy(self):
        rep = impact_of(0.0)
        assert rep.kwh == 0.0 and rep.gco2e == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            impact_of(-1.0)
        with pytest.raises(ValueError):
            GridProfile(100, 0.1, pue=0.9)
        with pytest.raises(ValueError):
            impact_of(1.0).scaled(-1.0)


def make_bundle():
    return ModelBundle(
        compression_power={
            "Broadwell": PowerModel("Broadwell", 0.0064, 5.315, 0.7429, 0.8, 2.0, GOF),
            "Skylake": PowerModel("Skylake", 2.235e-9, 23.31, 0.7941, 0.8, 2.2, GOF),
        },
        transit_power={
            "Broadwell": PowerModel("Broadwell", 0.0261, 3.395, 0.7097, 0.8, 2.0, GOF),
            "Skylake": PowerModel("Skylake", 9.095e-9, 20.9, 0.888, 0.8, 2.2, GOF),
        },
        compression_runtime={
            "broadwell": RuntimeModel("c-bw", 0.55, 2.0, GOF),
            "skylake": RuntimeModel("c-sky", 0.50, 2.2, GOF),
        },
        transit_runtime={
            "broadwell": RuntimeModel("w-bw", 0.75, 2.0, GOF),
            "skylake": RuntimeModel("w-sky", 0.30, 2.2, GOF),
        },
        metadata={},
    )


class TestTuningService:
    @pytest.fixture
    def service(self):
        return TuningService(make_bundle())

    def test_architectures(self, service):
        assert service.architectures() == ("broadwell", "skylake")

    def test_energy_decision_interior(self, service):
        d = service.decide("broadwell", "compress")
        assert 0.8 < d.freq_ghz < 2.0
        assert d.predicted_energy_saving > 0
        assert d.objective == "energy"

    def test_policy_override(self, service):
        d = service.decide("broadwell", "compress", policy=PAPER_POLICY)
        assert d.freq_ghz == pytest.approx(1.75)
        assert d.objective == "eqn3"

    def test_objective_changes_choice(self, service):
        energy = service.decide("broadwell", "compress", Objective.ENERGY)
        ed2p = service.decide("broadwell", "compress", Objective.ED2P)
        assert ed2p.freq_ghz >= energy.freq_ghz

    def test_max_slowdown_cap(self, service):
        d = service.decide("broadwell", "compress", max_slowdown=0.03)
        assert d.predicted_slowdown <= 0.03 + 1e-9

    def test_impossible_cap(self, service):
        with pytest.raises(ValueError, match="max_slowdown"):
            service.decide("broadwell", "compress", max_slowdown=-0.5)

    def test_unknown_arch(self, service):
        with pytest.raises(KeyError, match="unknown CPU"):
            service.decide("epyc", "compress")

    def test_known_cpu_missing_from_bundle(self, service):
        # cascadelake is a registered CPU but this bundle has no models.
        with pytest.raises(KeyError, match="bundle has no"):
            service.decide("cascadelake", "compress")

    def test_invalid_stage(self, service):
        with pytest.raises(ValueError, match="stage"):
            service.decide("broadwell", "restore")

    def test_decision_table(self, service):
        rows = service.decision_table()
        assert len(rows) == 4
        assert {(r["arch"], r["stage"]) for r in rows} == {
            ("broadwell", "compress"), ("broadwell", "write"),
            ("skylake", "compress"), ("skylake", "write"),
        }

    def test_from_file(self, tmp_path):
        path = tmp_path / "m.json"
        make_bundle().save(path)
        svc = TuningService.from_file(path)
        assert svc.architectures() == ("broadwell", "skylake")
