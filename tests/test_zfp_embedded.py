"""Unit + property tests for negabinary mapping and plane coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.zfp.embedded import (
    decode_planes,
    encode_planes,
    int_to_negabinary,
    negabinary_to_int,
)
from repro.utils.bitio import BitReader, BitWriter


class TestNegabinary:
    def test_zero_maps_to_zero(self):
        assert int_to_negabinary(np.array([0]))[0] == 0

    def test_roundtrip_small(self):
        vals = np.arange(-100, 101, dtype=np.int64)
        assert np.array_equal(negabinary_to_int(int_to_negabinary(vals)), vals)

    def test_roundtrip_large(self):
        vals = np.array([-(2**60), 2**60, -1, 1], dtype=np.int64)
        assert np.array_equal(negabinary_to_int(int_to_negabinary(vals)), vals)

    def test_truncation_error_bounded(self):
        # Zeroing bits below plane p changes the value by < 2^(p+1).
        rng = np.random.default_rng(0)
        vals = rng.integers(-(2**40), 2**40, size=1000)
        nb = int_to_negabinary(vals)
        for p in (4, 10, 20):
            mask = ~np.uint64((1 << p) - 1)
            truncated = negabinary_to_int(nb & mask)
            assert np.max(np.abs(truncated - vals)) < 2 ** (p + 1)

    def test_magnitude_monotone_bits(self):
        # Larger magnitudes need at least as many negabinary bits.
        small = int(int_to_negabinary(np.array([3]))[0])
        large = int(int_to_negabinary(np.array([3000]))[0])
        assert large.bit_length() >= small.bit_length()

    @given(st.lists(st.integers(-(2**62), 2**62), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, vals):
        arr = np.array(vals, dtype=np.int64)
        assert np.array_equal(negabinary_to_int(int_to_negabinary(arr)), arr)


def plane_roundtrip(nb, kept, top_plane):
    w = BitWriter()
    encode_planes(w, nb, kept, top_plane)
    r = BitReader(w.getvalue(), nbits=len(w))
    return decode_planes(r, kept, top_plane, nb.shape[1])


class TestPlaneCoding:
    def test_full_planes_lossless(self):
        rng = np.random.default_rng(1)
        vals = rng.integers(0, 2**20, size=(10, 16)).astype(np.uint64)
        top = 24
        kept = np.full(10, top + 1, dtype=np.int64)
        out = plane_roundtrip(vals, kept, top)
        assert np.array_equal(out, vals)

    def test_zero_planes_all_zero(self):
        vals = np.full((5, 16), 123, dtype=np.uint64)
        kept = np.zeros(5, dtype=np.int64)
        out = plane_roundtrip(vals, kept, 24)
        assert np.all(out == 0)

    def test_partial_planes_truncate_low_bits(self):
        vals = np.array([[0b11111111] * 4], dtype=np.uint64)
        top = 7
        kept = np.array([4], dtype=np.int64)  # keep planes 7..4
        out = plane_roundtrip(vals, kept, top)
        assert np.all(out == 0b11110000)

    def test_mixed_kept_counts(self):
        rng = np.random.default_rng(2)
        vals = rng.integers(0, 2**16, size=(20, 16)).astype(np.uint64)
        top = 20
        kept = rng.integers(0, top + 2, size=20)
        out = plane_roundtrip(vals, kept, top)
        for i in range(20):
            k = int(kept[i])
            if k == 0:
                assert np.all(out[i] == 0)
            else:
                cut = top + 1 - k
                mask = np.uint64(~((1 << cut) - 1) & 0xFFFFFFFFFFFFFFFF)
                assert np.array_equal(out[i], vals[i] & mask)

    def test_zero_planes_cost_one_bit(self):
        # All-zero planes should compress to a flag bit, not 65 bits.
        vals = np.zeros((100, 64), dtype=np.uint64)
        vals[:, 0] = 1  # plane 0 only
        w = BitWriter()
        kept = np.full(100, 25, dtype=np.int64)
        encode_planes(w, vals, kept, 24)
        # 100 blocks * (24 empty planes * 1 bit + 1 full plane * 65 bits)
        # plus one 64-bit group header.
        assert len(w) == 64 + 100 * (24 + 65)

    def test_kept_planes_validation(self):
        w = BitWriter()
        with pytest.raises(ValueError, match="kept_planes"):
            encode_planes(w, np.zeros((2, 4), dtype=np.uint64),
                          np.array([1, 99]), top_plane=10)

    def test_shape_validation(self):
        w = BitWriter()
        with pytest.raises(ValueError, match="one entry per block"):
            encode_planes(w, np.zeros((2, 4), dtype=np.uint64),
                          np.array([1]), top_plane=10)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        nblocks = data.draw(st.integers(1, 12))
        block_size = data.draw(st.sampled_from([4, 16, 64]))
        top = data.draw(st.integers(8, 30))
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        vals = rng.integers(0, 1 << (top + 1), size=(nblocks, block_size)).astype(
            np.uint64
        )
        kept = rng.integers(0, top + 2, size=nblocks)
        out = plane_roundtrip(vals, kept, top)
        for i in range(nblocks):
            k = int(kept[i])
            if k == 0:
                assert np.all(out[i] == 0)
            else:
                cut = top + 1 - k
                mask = np.uint64((~((1 << cut) - 1)) & 0xFFFFFFFFFFFFFFFF)
                assert np.array_equal(out[i], vals[i] & mask)
