"""Partitioning of d-dimensional arrays into 4^d blocks.

ZFP operates on 4x4 (2-D), 4x4x4 (3-D)... blocks. Edge blocks are
padded by edge replication (like ZFP's pad-with-last-value), which never
enlarges the value range, so error analysis is unaffected.

The reshape/transpose dance keeps everything a bulk NumPy operation:
pad to multiples of 4, split every axis into (n/4, 4), move all the
block-local axes to the back, and flatten to ``(nblocks, 4**d)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["BlockGrid", "partition", "unpartition", "BLOCK_EDGE"]

BLOCK_EDGE = 4


@dataclass(frozen=True)
class BlockGrid:
    """Geometry linking an array to its ``(nblocks, 4**d)`` block matrix."""

    original_shape: Tuple[int, ...]
    padded_shape: Tuple[int, ...]

    @property
    def ndim(self) -> int:
        return len(self.original_shape)

    @property
    def blocks_per_axis(self) -> Tuple[int, ...]:
        return tuple(s // BLOCK_EDGE for s in self.padded_shape)

    @property
    def nblocks(self) -> int:
        return int(np.prod(self.blocks_per_axis, dtype=np.int64))

    @property
    def block_size(self) -> int:
        return BLOCK_EDGE**self.ndim


def partition(data: np.ndarray) -> Tuple[np.ndarray, BlockGrid]:
    """Split *data* into blocks; returns ``(blocks, grid)``.

    ``blocks`` has shape ``(nblocks, 4**d)`` with block-local elements in
    C order, and shares no memory with *data*.
    """
    arr = np.asarray(data)
    if arr.ndim < 1 or arr.ndim > 4:
        raise ValueError(f"ZFP blocks support 1-D to 4-D arrays, got {arr.ndim}-D")
    pad = [(0, (-s) % BLOCK_EDGE) for s in arr.shape]
    padded = np.pad(arr, pad, mode="edge")
    grid = BlockGrid(original_shape=arr.shape, padded_shape=padded.shape)

    d = arr.ndim
    split_shape = []
    for s in padded.shape:
        split_shape.extend([s // BLOCK_EDGE, BLOCK_EDGE])
    work = padded.reshape(split_shape)
    # Axes 0,2,4,... index blocks; 1,3,5,... index within-block offsets.
    order = list(range(0, 2 * d, 2)) + list(range(1, 2 * d, 2))
    work = work.transpose(order)
    return np.ascontiguousarray(work.reshape(grid.nblocks, grid.block_size)), grid


def unpartition(blocks: np.ndarray, grid: BlockGrid) -> np.ndarray:
    """Invert :func:`partition`, dropping the replication padding."""
    blocks = np.asarray(blocks)
    if blocks.shape != (grid.nblocks, grid.block_size):
        raise ValueError(
            f"blocks shape {blocks.shape} does not match grid "
            f"({grid.nblocks}, {grid.block_size})"
        )
    d = grid.ndim
    per_axis = grid.blocks_per_axis
    work = blocks.reshape(per_axis + (BLOCK_EDGE,) * d)
    # Interleave block axes with within-block axes back to spatial order.
    order = []
    for i in range(d):
        order.extend([i, d + i])
    work = work.transpose(order).reshape(grid.padded_shape)
    slices = tuple(slice(0, s) for s in grid.original_shape)
    return np.ascontiguousarray(work[slices])
