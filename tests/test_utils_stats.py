"""Unit + property tests for repro.utils.stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    ConfidenceBand,
    confidence_band,
    goodness_of_fit,
    mean_confidence_interval,
    r_squared,
    rmse,
    sse,
)


class TestSse:
    def test_zero_for_exact_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert sse(y, y) == 0.0

    def test_known_value(self):
        assert sse([0, 0], [1, 2]) == pytest.approx(5.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            sse([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            sse([], [])


class TestRmse:
    def test_known_value(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_relationship_to_sse(self):
        rng = np.random.default_rng(0)
        y, p = rng.normal(size=20), rng.normal(size=20)
        assert rmse(y, p) == pytest.approx(np.sqrt(sse(y, p) / 20))


class TestRSquared:
    def test_perfect_fit_is_one(self):
        y = np.arange(10.0)
        assert r_squared(y, y) == 1.0

    def test_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert r_squared(y, np.full(4, y.mean())) == pytest.approx(0.0)

    def test_constant_observed_exact(self):
        assert r_squared([2, 2, 2], [2, 2, 2]) == 1.0

    def test_constant_observed_inexact(self):
        assert r_squared([2, 2, 2], [2, 2, 3]) == 0.0

    def test_can_be_negative_for_bad_model(self):
        assert r_squared([1, 2, 3], [10, -10, 10]) < 0


class TestGoodnessOfFit:
    def test_bundle_consistency(self):
        rng = np.random.default_rng(1)
        y, p = rng.normal(size=30), rng.normal(size=30)
        g = goodness_of_fit(y, p)
        assert g.sse == pytest.approx(sse(y, p))
        assert g.rmse == pytest.approx(rmse(y, p))
        assert g.r2 == pytest.approx(r_squared(y, p))
        assert "SSE=" in g.as_row()


class TestMeanConfidenceInterval:
    def test_single_sample_zero_width(self):
        mean, half = mean_confidence_interval([5.0])
        assert mean == 5.0 and half == 0.0

    def test_mean_is_sample_mean(self):
        mean, _ = mean_confidence_interval([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)

    def test_width_shrinks_with_more_samples(self):
        rng = np.random.default_rng(2)
        small = rng.normal(size=5)
        big = np.concatenate([small] * 20)
        _, h_small = mean_confidence_interval(small)
        _, h_big = mean_confidence_interval(big)
        assert h_big < h_small

    def test_higher_confidence_wider(self):
        data = [1.0, 2.0, 3.0, 4.0]
        _, h90 = mean_confidence_interval(data, 0.90)
        _, h99 = mean_confidence_interval(data, 0.99)
        assert h99 > h90

    @pytest.mark.parametrize("conf", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_confidence(self, conf):
        with pytest.raises(ValueError):
            mean_confidence_interval([1, 2], conf)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_mean_always_inside_interval(self, data):
        mean, half = mean_confidence_interval(data)
        assert mean - half <= np.mean(data) <= mean + half


class TestConfidenceBand:
    def test_band_bounds(self):
        band = ConfidenceBand(
            x=np.array([1.0, 2.0]),
            mean=np.array([10.0, 20.0]),
            half_width=np.array([1.0, 2.0]),
        )
        assert np.allclose(band.lower, [9.0, 18.0])
        assert np.allclose(band.upper, [11.0, 22.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="share a shape"):
            ConfidenceBand(x=np.arange(3), mean=np.arange(2), half_width=np.arange(3))

    def test_confidence_band_from_groups(self):
        x = [1.0, 2.0, 3.0]
        groups = [[1, 1, 1], [2, 3], [5]]
        band = confidence_band(x, groups)
        assert band.mean == pytest.approx([1.0, 2.5, 5.0])
        assert band.half_width[0] == 0.0
        assert band.half_width[2] == 0.0
        assert band.half_width[1] > 0.0

    def test_group_count_mismatch(self):
        with pytest.raises(ValueError, match="one sample vector"):
            confidence_band([1.0, 2.0], [[1.0]])
