"""Counters, gauges and fixed-bucket histograms for run-level metrics.

Spans answer "where did *this* run spend its time"; metrics accumulate
across runs — total bytes pushed through each codec, NFS write seconds,
slab-time distributions. The model follows Prometheus: a metric has a
name (``[a-zA-Z_:][a-zA-Z0-9_:]*``), an optional immutable label set,
and a type-specific value; :mod:`repro.observability.exporters` renders
the registry in the Prometheus text exposition format.

The default :class:`MetricsRegistry` is process-global
(:func:`get_registry`) so instrumented modules never need plumbing, and
resettable so tests start from a clean slate. All mutation goes through
a per-registry lock — safe under the thread executor (process-pool
workers mutate their own forked copies, which is the standard
per-process metrics model).
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: log-spaced seconds from 1 ms to ~100 s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

Labels = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> Labels:
    if not labels:
        return ()
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared name/label/lock plumbing for the three metric types."""

    kind = ""

    def __init__(self, name: str, labels: Labels, help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()

    @property
    def label_suffix(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{" + inner + "}"


class Counter(_Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Metric):
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Metric):
    """Fixed-bucket distribution with Prometheus cumulative semantics."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        labels: Labels = (),
        help: str = "",
    ) -> None:
        super().__init__(name, labels, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {bounds}")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative_counts(self) -> Tuple[Tuple[float, int], ...]:
        """``(upper_bound, cumulative_count)`` pairs ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        out = []
        running = 0
        for bound, n in zip(self.bounds, counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return tuple(out)


class MetricsRegistry:
    """Create-or-get factory and container for metrics.

    Asking twice for the same ``(name, labels)`` returns the same
    object; asking for an existing name with a different metric type
    raises — a name means one thing for the whole process.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, Labels], _Metric] = {}

    def _get_or_create(self, cls, name, labels, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        key = (name, _freeze_labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            for (other_name, _), metric in self._metrics.items():
                if other_name == name and metric.kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {metric.kind}"
                    )
            metric = cls(name, labels=key[1], **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None, help: str = ""
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help=help)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None, help: str = ""
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help=help)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets, help=help)

    def metrics(self) -> Tuple[_Metric, ...]:
        """All registered metrics, sorted by (name, labels) for stable export."""
        with self._lock:
            return tuple(self._metrics[k] for k in sorted(self._metrics))

    def reset(self) -> None:
        """Forget every metric (tests; a fresh run wants fresh totals)."""
        with self._lock:
            self._metrics.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry instrumented modules record into."""
    return _REGISTRY
