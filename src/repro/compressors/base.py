"""Compressor interface shared by the SZ and ZFP reimplementations."""

from __future__ import annotations

import abc
import struct
from dataclasses import dataclass
from typing import Dict, Tuple, Type

import numpy as np

from repro.observability import get_registry, get_tracer
from repro.utils.validation import as_float_array, check_positive

__all__ = [
    "CompressionError",
    "CorruptStreamError",
    "CompressedBuffer",
    "Compressor",
    "register_compressor",
    "get_compressor",
    "available_compressors",
]

_MAGIC = b"RPRC"
_HEADER_FMT = "<4s8sBBd"  # magic, codec name, ndim, dtype char, error bound
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)


class CompressionError(ValueError):
    """Raised when input data cannot be compressed (NaN/inf, bad bound...)."""


class CorruptStreamError(ValueError):
    """Raised when a compressed buffer fails structural validation."""


@dataclass(frozen=True)
class CompressedBuffer:
    """A self-describing compressed payload.

    Attributes
    ----------
    codec:
        Registered codec name (``"sz"`` or ``"zfp"``).
    payload:
        Codec-specific byte stream.
    shape:
        Original array shape.
    dtype:
        Original array dtype (``float32`` or ``float64``).
    error_bound:
        Absolute error bound the payload was produced with.
    """

    codec: str
    payload: bytes
    shape: Tuple[int, ...]
    dtype: np.dtype
    error_bound: float

    @property
    def nbytes(self) -> int:
        """Serialized size in bytes (header + shape table + payload).

        Computed arithmetically — reports poll this per slab, so it must
        not re-serialize the payload on every call.
        """
        return _HEADER_SIZE + 8 * len(self.shape) + len(self.payload)

    @property
    def original_nbytes(self) -> int:
        """Size of the uncompressed array in bytes."""
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize

    @property
    def ratio(self) -> float:
        """Compression ratio ``original / compressed``."""
        return self.original_nbytes / max(self.nbytes, 1)

    def to_bytes(self) -> bytes:
        """Serialize header + payload to a flat byte string."""
        name = self.codec.encode("ascii")
        if len(name) > 8:
            raise ValueError(f"codec name too long: {self.codec!r}")
        dtype_char = {np.dtype(np.float32): b"f", np.dtype(np.float64): b"d"}[self.dtype]
        head = struct.pack(
            _HEADER_FMT,
            _MAGIC,
            name.ljust(8, b"\0"),
            len(self.shape),
            dtype_char[0],
            self.error_bound,
        )
        dims = struct.pack(f"<{len(self.shape)}q", *self.shape)
        return head + dims + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompressedBuffer":
        """Parse a buffer previously produced by :meth:`to_bytes`."""
        head_size = struct.calcsize(_HEADER_FMT)
        if len(data) < head_size:
            raise CorruptStreamError("buffer shorter than header")
        magic, name, ndim, dtype_char, bound = struct.unpack(
            _HEADER_FMT, data[:head_size]
        )
        if magic != _MAGIC:
            raise CorruptStreamError(f"bad magic {magic!r}")
        dims_size = 8 * ndim
        if len(data) < head_size + dims_size:
            raise CorruptStreamError("buffer truncated in shape table")
        shape = struct.unpack(f"<{ndim}q", data[head_size : head_size + dims_size])
        dtype = {ord("f"): np.dtype(np.float32), ord("d"): np.dtype(np.float64)}.get(
            dtype_char
        )
        if dtype is None:
            raise CorruptStreamError(f"unknown dtype tag {dtype_char!r}")
        return cls(
            codec=name.rstrip(b"\0").decode("ascii"),
            payload=data[head_size + dims_size :],
            shape=tuple(int(s) for s in shape),
            dtype=dtype,
            error_bound=float(bound),
        )


class Compressor(abc.ABC):
    """Abstract error-bounded lossy compressor.

    Subclasses implement :meth:`_encode` / :meth:`_decode`; the base
    class handles validation, headers and the public round-trip API.
    """

    #: Registered short name, set by subclasses.
    name: str = ""

    @abc.abstractmethod
    def _encode(self, data: np.ndarray, error_bound: float) -> bytes:
        """Produce the codec-specific payload for validated input."""

    @abc.abstractmethod
    def _decode(
        self, payload: bytes, shape: Tuple[int, ...], dtype: np.dtype, error_bound: float
    ) -> np.ndarray:
        """Reconstruct the array from a codec-specific payload."""

    def compress(self, data, error_bound: float) -> CompressedBuffer:
        """Compress *data* so that ``max |x - x'| <= error_bound``.

        Parameters
        ----------
        data:
            Array-like of float32/float64 values (other dtypes are
            promoted to float64), 1-D to 4-D, finite.
        error_bound:
            Absolute error bound (SZ ABS mode / ZFP fixed accuracy).
        """
        check_positive(error_bound, "error_bound")
        arr = as_float_array(data, "data")
        if arr.ndim > 4:
            raise CompressionError(f"arrays above 4-D are unsupported, got {arr.ndim}-D")
        if not np.all(np.isfinite(arr)):
            raise CompressionError("data must be finite (no NaN/inf)")
        with get_tracer().span(
            f"{self.name}.compress", bytes_in=arr.nbytes, error_bound=float(error_bound)
        ) as sp:
            payload = self._encode(arr, float(error_bound))
            buf = CompressedBuffer(
                codec=self.name,
                payload=payload,
                shape=arr.shape,
                dtype=arr.dtype,
                error_bound=float(error_bound),
            )
            sp.set(bytes_out=buf.nbytes, ratio=buf.ratio)
        registry = get_registry()
        labels = {"codec": self.name}
        registry.counter(
            "repro_compress_calls_total", labels,
            help="Compressor.compress invocations",
        ).inc()
        registry.counter(
            "repro_compress_bytes_in_total", labels,
            help="uncompressed bytes fed to compress()",
        ).inc(arr.nbytes)
        registry.counter(
            "repro_compress_bytes_out_total", labels,
            help="serialized bytes produced by compress()",
        ).inc(buf.nbytes)
        return buf

    def decompress(self, buffer: CompressedBuffer) -> np.ndarray:
        """Reconstruct the array from a :class:`CompressedBuffer`."""
        if buffer.codec != self.name:
            raise CorruptStreamError(
                f"buffer was produced by codec {buffer.codec!r}, not {self.name!r}"
            )
        with get_tracer().span(
            f"{self.name}.decompress", bytes_in=buffer.nbytes
        ) as sp:
            out = self._decode(
                buffer.payload, buffer.shape, buffer.dtype, buffer.error_bound
            )
            out = out.reshape(buffer.shape).astype(buffer.dtype, copy=False)
            sp.set(bytes_out=out.nbytes)
        get_registry().counter(
            "repro_decompress_calls_total", {"codec": self.name},
            help="Compressor.decompress invocations",
        ).inc()
        return out

    def roundtrip(self, data, error_bound: float):
        """Compress then decompress; returns ``(buffer, reconstruction)``."""
        buf = self.compress(data, error_bound)
        return buf, self.decompress(buf)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Type[Compressor]] = {}


def register_compressor(cls: Type[Compressor]) -> Type[Compressor]:
    """Class decorator registering a compressor under ``cls.name``."""
    if not cls.name:
        raise ValueError("compressor classes must define a non-empty name")
    _REGISTRY[cls.name] = cls
    return cls


def get_compressor(name: str) -> Compressor:
    """Instantiate a registered compressor (``"sz"`` or ``"zfp"``)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown compressor {name!r}; available: {available_compressors()}")
    return _REGISTRY[key]()


def available_compressors() -> Tuple[str, ...]:
    """Names of all registered compressors."""
    return tuple(sorted(_REGISTRY))
