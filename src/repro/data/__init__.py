"""Synthetic SDRBench-like scientific datasets.

The paper compresses CESM-ATM, HACC and NYX fields (Table I) and
validates on Hurricane-ISABEL (Fig. 5). SDRBench's actual files are not
available offline, so this package synthesizes seeded fields with the
same dimensionality and smoothness character; see DESIGN.md §2 for why
that preserves the behaviour the power study depends on.
"""

from repro.data.fields import (
    gaussian_random_field,
    smooth_layered_field,
    lognormal_density_field,
    particle_coordinates,
    vortex_velocity_field,
)
from repro.data.registry import (
    DatasetSpec,
    FieldSpec,
    DATASETS,
    available_datasets,
    get_dataset,
    load_field,
    load_dataset,
    table1_rows,
)

__all__ = [
    "gaussian_random_field",
    "smooth_layered_field",
    "lognormal_density_field",
    "particle_coordinates",
    "vortex_velocity_field",
    "DatasetSpec",
    "FieldSpec",
    "DATASETS",
    "available_datasets",
    "get_dataset",
    "load_field",
    "load_dataset",
    "table1_rows",
]
