"""End-to-end acceptance suite for the tuning service (ISSUE.md).

Pins the acceptance criterion verbatim: an in-process server with a
*fitted* bundle serves >= 200 concurrent ``/v1/tune`` + ``/v1/decide``
requests with zero 5xx, every recommendation byte-identical to the
same query made directly against :mod:`repro.core`, ``/metrics``
reporting the exact request counts; a full queue answers 429 without
blocking; a graceful drain loses no accepted job.
"""

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.breakeven import breakeven_bandwidth_bps, compare_strategies
from repro.core.objectives import Objective
from repro.core.service import TuningService
from repro.hardware.cpu import get_cpu
from repro.hardware.workload import WorkloadKind
from repro.observability.metrics import get_registry as get_metrics_registry
from repro.service import (
    ModelRegistry,
    QueueFullError,
    RequestHandlers,
    Scheduler,
    ServiceClient,
    ServiceConfig,
    TuningServer,
)


@pytest.fixture(autouse=True)
def fresh_metrics():
    get_metrics_registry().reset()
    yield
    get_metrics_registry().reset()


@pytest.fixture
def fitted_server():
    """A live server whose registry holds a genuinely *fitted* bundle."""
    server = TuningServer(
        ServiceConfig(port=0, workers=4, queue_size=256, batch_max=16)
    )
    with server:
        client = ServiceClient(server.url)
        job_id = client.characterize(
            "fitted", repeats=1, stride=8, scale=64
        )
        job = client.wait_job(job_id, timeout_s=120.0)
        assert job["state"] == "succeeded", job
        yield server, client


def tune_queries(archs):
    """A deterministic mix of distinct tune queries."""
    stages = ("compress", "write")
    objectives = ("power", "energy", "edp")
    return [
        {"model": "fitted", "arch": arch, "stage": stage,
         "objective": objective}
        for arch, stage, objective in itertools.product(
            archs, stages, objectives
        )
    ]


def decide_queries():
    return [
        {"arch": arch, "codec": codec, "ratio": ratio,
         "error_bound": 1e-3, "nbytes": 10**9, "clients": clients,
         "criterion": "time"}
        for arch in ("broadwell", "skylake")
        for codec in ("sz", "zfp")
        for ratio in (1.2, 4.0)
        for clients in (1, 64)
    ]


class TestAcceptance:
    def test_200_concurrent_requests_zero_5xx_byte_identical(
        self, fitted_server
    ):
        server, client = fitted_server
        archs = client.model_entry("fitted")["architectures"]
        assert set(archs) == {"broadwell", "skylake"}

        tunes = tune_queries(archs)
        decides = decide_queries()
        # Cycle the distinct queries until >= 200 total requests; the
        # repetition is realistic (every rank asks the same question)
        # and exercises coalescing under genuine HTTP concurrency.
        requests = [
            ("tune", tunes[i % len(tunes)]) for i in range(104)
        ] + [
            ("decide", decides[i % len(decides)]) for i in range(104)
        ]
        assert len(requests) >= 200

        def issue(req):
            kind, payload = req
            fn = client.tune if kind == "tune" else client.decide
            return kind, payload, fn(**payload)

        with ThreadPoolExecutor(max_workers=32) as pool:
            answers = list(pool.map(issue, requests))
        assert len(answers) == len(requests)  # zero errors, zero 5xx

        # Byte-identical to direct core calls: every float in a served
        # answer equals (==, no tolerance) the in-process computation.
        bundle = server.registry.get("fitted")
        direct = TuningService(bundle)
        kinds = {"sz": WorkloadKind.COMPRESS_SZ, "zfp": WorkloadKind.COMPRESS_ZFP}
        for kind, payload, doc in answers:
            if kind == "tune":
                expected = direct.decide(
                    payload["arch"], payload["stage"],
                    objective=Objective(payload["objective"]),
                )
                assert doc["freq_ghz"] == expected.freq_ghz
                assert doc["predicted_power_saving"] == (
                    expected.predicted_power_saving
                )
                assert doc["predicted_slowdown"] == expected.predicted_slowdown
                assert doc["predicted_energy_saving"] == (
                    expected.predicted_energy_saving
                )
            else:
                cpu = get_cpu(payload["arch"])
                outcomes = compare_strategies(
                    cpu, kinds[payload["codec"]], payload["ratio"],
                    payload["error_bound"], payload["nbytes"],
                    concurrent_clients=payload["clients"],
                )
                raw, compressed = outcomes["raw"], outcomes["compressed"]
                assert doc["raw"]["time_s"] == raw.time_s
                assert doc["raw"]["energy_j"] == raw.energy_j
                assert doc["compressed"]["time_s"] == compressed.time_s
                assert doc["compressed"]["energy_j"] == compressed.energy_j
                assert doc["breakeven_bandwidth_bps"] == (
                    breakeven_bandwidth_bps(
                        cpu, kinds[payload["codec"]], payload["ratio"],
                        payload["error_bound"], payload["criterion"],
                    )
                )
                assert doc["decision"] == (
                    "compress" if compressed.time_s < raw.time_s
                    else "raw-write"
                )

        # /metrics reports exactly the request counts we issued.
        metrics = get_metrics_registry()
        tune_ok = metrics.counter(
            "repro_service_requests_total",
            labels={"endpoint": "tune", "status": "ok"},
        )
        decide_ok = metrics.counter(
            "repro_service_requests_total",
            labels={"endpoint": "decide", "status": "ok"},
        )
        assert (tune_ok.value, decide_ok.value) == (104.0, 104.0)
        text = client.metrics_text()
        assert (
            'repro_service_requests_total{endpoint="tune",status="ok"} 104'
            in text
        )
        assert (
            'repro_service_requests_total{endpoint="decide",status="ok"} 104'
            in text
        )

    def test_full_queue_rejects_429_without_blocking(self):
        """Admission control holds over real HTTP under a wedged pool."""
        gate = threading.Event()
        registry = ModelRegistry()
        real = RequestHandlers(registry)

        def stalling(kind, payload):
            if payload.get("_stall"):
                gate.wait(15.0)
                return {"stalled": True}
            return real(kind, payload)

        server = TuningServer(
            ServiceConfig(port=0, workers=1, queue_size=1, batch_max=1),
            registry=registry,
            scheduler=Scheduler(stalling, queue_size=1, workers=1,
                                batch_max=1),
        )
        try:
            with server:
                client = ServiceClient(server.url)
                stall = threading.Thread(
                    target=lambda: client._request(
                        "POST", "/v1/tune", {"_stall": True}
                    )
                )
                fill = threading.Thread(
                    target=lambda: server.scheduler.submit("tune", {"i": 1})
                )
                stall.start()
                time.sleep(0.2)  # dispatcher wedged on the stall
                fill.start()
                time.sleep(0.2)  # bounded queue now full
                t0 = time.monotonic()
                with pytest.raises(QueueFullError):
                    # no-retry client: the 429 must come back typed
                    ServiceClient(server.url)._once(
                        "POST", "/v1/decide",
                        {"arch": "skylake", "ratio": 2.0,
                         "error_bound": 1e-3, "nbytes": 100},
                    )
                assert time.monotonic() - t0 < 1.0  # rejected, not blocked
                gate.set()
                stall.join(15.0)
                fill.join(15.0)
        finally:
            gate.set()

    def test_graceful_drain_loses_no_accepted_job(self):
        server = TuningServer(ServiceConfig(port=0, workers=2))
        server.start()
        client = ServiceClient(server.url)
        job_id = client.characterize("late", repeats=1, stride=8, scale=64)
        # Drain immediately: the accepted characterization must still
        # finish, and its model must be in the registry afterwards.
        assert server.drain(120.0)
        job = server.jobs.get(job_id)
        assert job.state == "succeeded"
        assert server.jobs.unfinished() == 0
        assert server.registry.entry("late").version == 1
