#!/usr/bin/env python
"""Model validation on held-out data (the Fig. 5 experiment).

Fits the Broadwell compression power model on the Table I datasets,
then scores it against a *fresh* sweep of the six Hurricane-ISABEL
fields it never saw — plus a negative control: the Skylake model scored
on the same Broadwell data, which should fit much worse.

    python examples/model_validation.py
"""

from repro.experiments import figure5
from repro.experiments.context import ExperimentContext
from repro.workflow.report import render_series


def main() -> None:
    ctx = ExperimentContext()
    result = figure5.run(ctx)
    f, obs, pred = result.curve()

    import numpy as np

    uniq = np.unique(f)
    print(render_series(
        uniq,
        {
            "observed": np.array([obs[f == u].mean() for u in uniq]),
            "broadwell_model": np.array([pred[f == u].mean() for u in uniq]),
        },
        title="Broadwell model vs held-out Hurricane-ISABEL (Fig. 5)",
    ))
    print(f"\nValidation GF: SSE={result.gof.sse:.4f} RMSE={result.gof.rmse:.4f} "
          f"(paper reports SSE={figure5.PAPER_SSE}, RMSE={figure5.PAPER_RMSE})")

    # Negative control: the Skylake model should NOT explain Broadwell data.
    skylake_model = ctx.outcome.compression_models["Skylake"]
    wrong_gof = skylake_model.evaluate(result.samples)
    print(f"Negative control — Skylake model on the same data: "
          f"SSE={wrong_gof.sse:.4f} RMSE={wrong_gof.rmse:.4f} "
          f"({wrong_gof.rmse / result.gof.rmse:.1f}x worse RMSE)")
    assert wrong_gof.rmse > result.gof.rmse, (
        "expected the mismatched architecture model to fit worse"
    )


if __name__ == "__main__":
    main()
