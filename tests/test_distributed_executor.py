"""Executor-contract tests for the distributed fleet backend.

The :class:`DistributedExecutor` must be observably identical to the
pool backends through the :class:`repro.parallel.Executor` interface:
submission-order results, earliest-submitted-failure-wins fail-fast,
``map_timed``/``map_retry`` composition, inline execution for trivial
maps, and an idempotent ``close``. Fleet-specific behaviour (metrics,
worker pids, registration) is covered at the end.

The fleet is module-scoped: spinning up worker processes costs ~1 s,
so every test shares one 2-worker fleet.
"""

import pytest

from repro.distributed import DistributedExecutor, FleetError
from repro.observability.metrics import get_registry
from repro.parallel import (
    Executor,
    available_executors,
    choose_backend,
    get_executor,
    resolve_executor,
)


# Module-level so worker processes can unpickle them.
def _square(x):
    return x * x


def _fail_on_negative(x):
    if x < 0:
        raise ValueError(f"negative task {x}")
    return x


class _FlakyOnce:
    """Fails each listed item until its attempt counter advances."""

    def __init__(self, bad_items):
        self.bad_items = tuple(bad_items)
        self.attempt = 0

    def __call__(self, x):
        if self.attempt == 0 and x in self.bad_items:
            raise RuntimeError(f"transient failure on {x}")
        return x * 10


@pytest.fixture(scope="module")
def fleet():
    with DistributedExecutor(2, heartbeat_s=0.2,
                             heartbeat_timeout_s=5.0) as ex:
        yield ex


class TestContract:
    def test_results_keep_submission_order(self, fleet):
        assert fleet.map(_square, list(range(20))) == [
            x * x for x in range(20)
        ]

    def test_empty_map(self, fleet):
        assert fleet.map(_square, []) == []

    def test_single_item_runs_inline(self):
        # Like the pool backends, a trivial map never pays for workers:
        # a fresh executor maps one item without assembling a fleet.
        ex = DistributedExecutor(2)
        try:
            assert ex.map(_square, [7]) == [49]
            assert ex.worker_pids() == ()
        finally:
            ex.close()

    def test_failure_cancels_and_earliest_failure_wins(self, fleet):
        items = [1, -2, 3, -4, 5, 6, 7, 8]
        with pytest.raises(ValueError, match="negative task -2"):
            fleet.map(_fail_on_negative, items)

    def test_fleet_survives_a_failed_map(self, fleet):
        with pytest.raises(ValueError):
            fleet.map(_fail_on_negative, [-1, 2, 3])
        assert fleet.map(_square, [2, 3, 4]) == [4, 9, 16]

    def test_map_timed_returns_per_task_seconds(self, fleet):
        results, times = fleet.map_timed(_square, [1, 2, 3, 4])
        assert results == [1, 4, 9, 16]
        assert len(times) == 4
        assert all(t >= 0.0 for t in times)

    def test_map_retry_recovers_transients(self, fleet):
        flaky = _FlakyOnce(bad_items=(2, 5))
        results, retried = fleet.map_retry(flaky, list(range(8)), retries=1)
        assert results == [x * 10 for x in range(8)]
        assert sorted(retried) == [2, 5]

    def test_map_retry_exhausted_raises_earliest(self, fleet):
        with pytest.raises(ValueError, match="negative task -3"):
            fleet.map_retry(_fail_on_negative, [1, 2, -3, -4], retries=1)

    def test_unpicklable_fn_raises_typeerror(self, fleet):
        with pytest.raises(TypeError, match="picklable"):
            fleet.map(lambda x: x, [1, 2, 3])

    def test_exception_type_is_preserved(self, fleet):
        class_matched = False
        try:
            fleet.map(_fail_on_negative, [0, 1, -9, 3])
        except ValueError as exc:
            class_matched = "-9" in str(exc)
        assert class_matched


class TestClose:
    def test_close_is_idempotent(self):
        ex = DistributedExecutor(2, heartbeat_s=0.2, heartbeat_timeout_s=5.0)
        assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
        ex.close()
        ex.close()
        ex.close()

    def test_close_without_use_is_safe(self):
        ex = DistributedExecutor(2)
        ex.close()
        ex.close()

    def test_map_after_close_raises(self):
        ex = DistributedExecutor(2)
        ex.close()
        with pytest.raises(FleetError):
            ex.map(_square, [1, 2, 3])

    def test_del_after_close_is_silent(self):
        ex = DistributedExecutor(2)
        ex.close()
        ex.__del__()  # must not raise, mirroring interpreter teardown


class TestFleetSpecifics:
    def test_worker_pids_are_live_processes(self, fleet):
        import os

        fleet.map(_square, [1, 2])  # ensure the fleet is up
        pids = fleet.worker_pids()
        assert len(pids) == 2
        for pid in pids:
            os.kill(pid, 0)  # raises if the process is gone

    def test_shard_counter_advances(self, fleet):
        counter = get_registry().counter(
            "repro_dist_shards_total",
            help="Shards committed by distributed maps",
        )
        before = counter.value
        fleet.map(_square, list(range(6)))
        assert counter.value >= before + 6

    def test_fleet_reuse_across_maps(self, fleet):
        fleet.map(_square, [1, 2, 3])
        pids_a = fleet.worker_pids()
        fleet.map(_square, [4, 5, 6])
        assert fleet.worker_pids() == pids_a

    def test_shard_granularity_knob(self):
        with DistributedExecutor(2, max_shard_items=3, heartbeat_s=0.2,
                                 heartbeat_timeout_s=5.0) as ex:
            assert ex.map(_square, list(range(10))) == [
                x * x for x in range(10)
            ]

    @pytest.mark.parametrize("kwargs", [
        {"max_shard_items": 0},
        {"heartbeat_s": 0.0},
        {"heartbeat_s": 2.0, "heartbeat_timeout_s": 1.0},
        {"shard_kill_budget": 0},
    ])
    def test_bad_configuration_raises(self, kwargs):
        with pytest.raises(ValueError):
            DistributedExecutor(2, **kwargs)


class TestRegistration:
    def test_listed_and_constructible(self):
        assert "distributed" in available_executors()
        ex = get_executor("distributed", 2)
        try:
            assert isinstance(ex, DistributedExecutor)
            assert isinstance(ex, Executor)
            assert ex.workers == 2
        finally:
            ex.close()

    def test_resolve_executor_does_not_own_instances(self, fleet):
        resolved, owned = resolve_executor(fleet)
        assert resolved is fleet
        assert owned is False

    def test_auto_never_selects_distributed(self):
        for n_tasks in (1, 4, 64, 4096):
            for nbytes in (0, 1 << 20, 1 << 30):
                assert choose_backend(n_tasks, nbytes, 8.0, 16) != "distributed"

    def test_lazy_import_keeps_parallel_light(self):
        import subprocess
        import sys

        # Importing repro.parallel must not drag the fleet machinery in.
        code = (
            "import sys; import repro.parallel; "
            "sys.exit(1 if 'repro.distributed' in sys.modules else 0)"
        )
        assert subprocess.run([sys.executable, "-c", code]).returncode == 0
