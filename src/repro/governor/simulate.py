"""Shared driver: run a governed compress→write campaign on one node.

Both the convergence tests and ``benchmarks/governor_regret.py`` need
the same experiment — N snapshots through the two-phase dump loop with
a governor picking each phase's clock — without paying for the full
codec pipeline. This driver runs the workload model directly on a
:class:`~repro.hardware.node.SimulatedNode`.

Accounting is deliberately split: the governor *observes* the node's
noisy RAPL-style measurements (that is what it would see in
production), while the returned totals use the noise-free ground-truth
curves, so a regret comparison between two policies reflects their
decisions, not their measurement luck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.governor.phases import Phase
from repro.governor.policies import Governor, GovernorReport
from repro.hardware.node import SimulatedNode
from repro.hardware.workload import (
    WorkloadKind,
    compression_workload,
    write_workload,
)

__all__ = ["GovernedIOResult", "simulate_governed_io"]

#: Achievable single-core NFS write rate at base clock, B/s (the
#: paper's ~1 GbE CloudLab testbed).
DEFAULT_WRITE_BANDWIDTH_BPS = 110e6


@dataclass(frozen=True)
class GovernedIOResult:
    """Ground-truth totals of one governed campaign."""

    snapshots: int
    energy_j: float
    runtime_s: float
    #: Noise-free per-phase (energy_j, runtime_s) splits.
    compress_energy_j: float
    write_energy_j: float
    report: GovernorReport

    @property
    def mean_power_w(self) -> float:
        return self.energy_j / self.runtime_s


def simulate_governed_io(
    node: SimulatedNode,
    governor: Governor,
    snapshots: int = 24,
    snapshot_bytes: int = 256_000_000,
    error_bound: float = 1e-3,
    compression_ratio: float = 8.0,
    write_bandwidth_bps: float = DEFAULT_WRITE_BANDWIDTH_BPS,
) -> GovernedIOResult:
    """Dump *snapshots* checkpoints under *governor* control.

    Each snapshot compresses ``snapshot_bytes`` (SZ model) and writes
    the ``snapshot_bytes / compression_ratio`` output; the governor is
    consulted at each phase boundary and fed the measured sample
    afterwards.
    """
    if snapshots < 1:
        raise ValueError(f"snapshots must be >= 1, got {snapshots}")
    if compression_ratio <= 0:
        raise ValueError(
            f"compression_ratio must be positive, got {compression_ratio}"
        )
    compress_wl = compression_workload(
        WorkloadKind.COMPRESS_SZ, snapshot_bytes, error_bound
    )
    compressed_bytes = max(int(snapshot_bytes / compression_ratio), 1)
    write_wl = write_workload(compressed_bytes, write_bandwidth_bps)

    energy = {Phase.COMPRESS: 0.0, Phase.WRITE: 0.0}
    runtime = 0.0
    for _ in range(snapshots):
        for phase, workload in (
            (Phase.COMPRESS, compress_wl),
            (Phase.WRITE, write_wl),
        ):
            freq = governor.decide(phase)
            node.set_frequency(freq)
            measured = node.run(workload)
            governor.observe(
                phase,
                measured.freq_ghz,
                measured.power_w,
                measured.runtime_s,
                workload.bytes_processed,
            )
            t = node.true_runtime_s(workload)
            energy[phase] += node.true_power_w(workload) * t
            runtime += t

    return GovernedIOResult(
        snapshots=snapshots,
        energy_j=energy[Phase.COMPRESS] + energy[Phase.WRITE],
        runtime_s=runtime,
        compress_energy_j=energy[Phase.COMPRESS],
        write_energy_j=energy[Phase.WRITE],
        report=governor.report(),
    )
