"""``perf stat``-style repeat-and-average measurement protocol.

The paper samples each (frequency, workload) point 10 times with
``perf`` and averages (Section IV-A). :class:`PerfStat` reproduces the
protocol on a :class:`~repro.hardware.node.SimulatedNode` and returns
:class:`PowerSample` records carrying both the averages and the raw
repeats (needed for the 95 % confidence bands of Figs. 1-4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.hardware.node import SimulatedNode
from repro.hardware.workload import Workload

__all__ = ["PowerSample", "PerfStat"]


@dataclass(frozen=True)
class PowerSample:
    """Averaged measurement at one (cpu, workload, frequency) point."""

    cpu: str
    workload: str
    kind: str
    freq_ghz: float
    energy_j: float
    runtime_s: float
    repeats: int
    energy_samples: Tuple[float, ...] = field(repr=False, default=())
    runtime_samples: Tuple[float, ...] = field(repr=False, default=())

    @property
    def power_w(self) -> float:
        """Average power ``E / t`` (Eqn. 1)."""
        return self.energy_j / self.runtime_s

    @property
    def power_samples(self) -> Tuple[float, ...]:
        """Per-repeat power values."""
        return tuple(
            e / t for e, t in zip(self.energy_samples, self.runtime_samples)
        )


class PerfStat:
    """Runs workloads repeatedly at pinned frequencies and averages."""

    def __init__(self, node: SimulatedNode, repeats: int = 10) -> None:
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.node = node
        self.repeats = int(repeats)

    def measure(self, workload: Workload, freq_ghz: float) -> PowerSample:
        """Measure *workload* at *freq_ghz*, averaged over the repeats."""
        snapped = self.node.set_frequency(freq_ghz)
        energies = np.empty(self.repeats)
        runtimes = np.empty(self.repeats)
        for i in range(self.repeats):
            m = self.node.run(workload)
            energies[i] = m.energy_j
            runtimes[i] = m.runtime_s
        return PowerSample(
            cpu=self.node.cpu.arch,
            workload=workload.name,
            kind=workload.kind.value,
            freq_ghz=snapped,
            energy_j=float(energies.mean()),
            runtime_s=float(runtimes.mean()),
            repeats=self.repeats,
            energy_samples=tuple(energies.tolist()),
            runtime_samples=tuple(runtimes.tolist()),
        )

    def sweep(self, workload: Workload, frequencies=None) -> Tuple[PowerSample, ...]:
        """Measure *workload* across a frequency grid (default: full DVFS range)."""
        if frequencies is None:
            frequencies = self.node.cpu.available_frequencies()
        return tuple(self.measure(workload, float(f)) for f in frequencies)
