#!/usr/bin/env python
"""Lossless vs lossy baseline (Section I's motivation).

The paper motivates lossy compression by its space/runtime advantage
over lossless codecs on floating-point data. This study quantifies the
gap on the Table I fields with this repository's own codecs: the gzip
baseline (with byte shuffle) vs SZ and ZFP at the paper's bounds.

    python examples/baseline_comparison.py
"""

from repro import LosslessCompressor, SZCompressor, ZFPCompressor, load_field
from repro.workflow.report import render_table

FIELDS = (("cesm-atm", "T"), ("nyx", "velocity_x"), ("hacc", "x"))


def main() -> None:
    rows = []
    for dataset, field in FIELDS:
        arr = load_field(dataset, field, scale=12)
        gzip_ratio = LosslessCompressor().compress(arr, 1.0).ratio
        for eb in (1e-2, 1e-4):
            sz = SZCompressor().compress(arr, eb).ratio
            zfp = ZFPCompressor().compress(arr, eb).ratio
            rows.append(
                {
                    "dataset": f"{dataset}/{field}",
                    "eb": eb,
                    "gzip_ratio": gzip_ratio,
                    "sz_ratio": sz,
                    "zfp_ratio": zfp,
                    "sz_vs_gzip": sz / gzip_ratio,
                }
            )
    print(render_table(rows, title="Lossless baseline vs SZ/ZFP compression ratios"))

    worst = min(r["sz_vs_gzip"] for r in rows if r["eb"] == 1e-2)
    print(f"\nAt eb=1e-2, SZ beats the shuffled-gzip baseline by at least "
          f"{worst:.1f}x on every field — the premise of compressing before I/O.")
    assert worst > 1.5


if __name__ == "__main__":
    main()
