"""Checkpoint-campaign simulation: the paper's motivating scenario.

Section I motivates the study with HACC-style runs whose snapshot
volumes take hours to move. A :class:`CheckpointCampaign` describes
such a run — N snapshots of S bytes, separated by compute phases — and
:func:`run_campaign` plays it through a node's dump pipeline at chosen
frequencies, producing campaign-level energy/time totals. This is where
the paper's core argument becomes quantitative: the tuned I/O's runtime
penalty is diluted by the compute phases, while its energy saving is
not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.compressors.base import Compressor
from repro.hardware.node import SimulatedNode
from repro.iosim.dumper import DataDumper, DumpReport
from repro.iosim.nfs import NfsTarget
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["CheckpointCampaign", "CampaignReport", "run_campaign"]


@dataclass(frozen=True)
class CheckpointCampaign:
    """A simulation run that periodically dumps compressed snapshots."""

    snapshot_bytes: int
    n_snapshots: int
    compute_interval_s: float
    #: Average node power during the compute phase, W (full-tilt cores).
    compute_power_w: float = 38.0

    def __post_init__(self):
        check_positive(self.snapshot_bytes, "snapshot_bytes")
        if self.n_snapshots < 1:
            raise ValueError(f"n_snapshots must be >= 1, got {self.n_snapshots}")
        check_nonnegative(self.compute_interval_s, "compute_interval_s")
        check_positive(self.compute_power_w, "compute_power_w")


@dataclass(frozen=True)
class CampaignReport:
    """Totals over an entire campaign."""

    snapshots: Tuple[DumpReport, ...]
    compute_time_s: float
    compute_energy_j: float

    @property
    def io_energy_j(self) -> float:
        return float(sum(s.total_energy_j for s in self.snapshots))

    @property
    def io_time_s(self) -> float:
        return float(sum(s.total_runtime_s for s in self.snapshots))

    @property
    def total_energy_j(self) -> float:
        return self.io_energy_j + self.compute_energy_j

    @property
    def total_wall_s(self) -> float:
        return self.io_time_s + self.compute_time_s

    @property
    def io_time_fraction(self) -> float:
        """Share of the campaign wall time spent in I/O."""
        return self.io_time_s / self.total_wall_s


def run_campaign(
    node: SimulatedNode,
    compressor: Compressor,
    sample_field: np.ndarray,
    error_bound: float,
    campaign: CheckpointCampaign,
    compress_freq_ghz: float | None = None,
    write_freq_ghz: float | None = None,
    nfs: NfsTarget | None = None,
    repeats: int = 3,
) -> CampaignReport:
    """Play the campaign through the dump pipeline.

    Compute phases run at the base clock (simulations need full speed —
    the paper's premise); only the snapshot dumps are frequency-tuned.
    """
    dumper = DataDumper(node, nfs, repeats=repeats)
    snapshots = tuple(
        dumper.dump(
            compressor,
            sample_field,
            error_bound,
            campaign.snapshot_bytes,
            compress_freq_ghz=compress_freq_ghz,
            write_freq_ghz=write_freq_ghz,
        )
        for _ in range(campaign.n_snapshots)
    )
    compute_time = campaign.compute_interval_s * campaign.n_snapshots
    compute_energy = compute_time * campaign.compute_power_w
    return CampaignReport(
        snapshots=snapshots,
        compute_time_s=compute_time,
        compute_energy_j=compute_energy,
    )
