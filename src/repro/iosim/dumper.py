"""Compress-then-write data dumping pipeline (Section VI-B).

The paper's headline use case: compress a large floating-point field
with SZ, then push the compressed bytes to the NFS — each stage at its
own pinned frequency (Eqn. 3's piecewise recommendation). The real
codec runs on a working-scale field to obtain the true compression
ratio; costs then extrapolate linearly in bytes to the target size
(exactly how the paper reaches 512 GB by concatenating NYX snapshots).

With *chunk_bytes* set, the ratio measurement shards the sample field
into slabs and runs them through a :mod:`repro.parallel` executor; the
per-slab timing lands on :attr:`DumpReport.parallel` so scaling can be
tracked alongside the energy numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.compressors.base import Compressor
from repro.compressors.chunked import ChunkedCompressor
from repro.hardware.node import SimulatedNode
from repro.hardware.workload import WorkloadKind, compression_workload
from repro.iosim.nfs import NfsTarget
from repro.iosim.transit import transit_workload
from repro.observability import get_registry, get_tracer
from repro.parallel import Executor, ParallelStats
from repro.utils.validation import check_positive

__all__ = ["StageReport", "DumpReport", "DataDumper"]

_KIND_BY_CODEC = {
    "sz": WorkloadKind.COMPRESS_SZ,
    "zfp": WorkloadKind.COMPRESS_ZFP,
}


@dataclass(frozen=True)
class StageReport:
    """Energy/runtime outcome of one pipeline stage."""

    stage: str
    freq_ghz: float
    bytes_processed: int
    runtime_s: float
    energy_j: float

    @property
    def power_w(self) -> float:
        return self.energy_j / self.runtime_s


@dataclass(frozen=True)
class DumpReport:
    """Full pipeline outcome: compression stage + write stage."""

    compress: StageReport
    write: StageReport
    compression_ratio: float
    error_bound: float
    #: Per-slab executor timing of the ratio measurement; ``None`` when
    #: the sample was compressed monolithically.
    parallel: Optional[ParallelStats] = None

    @property
    def total_energy_j(self) -> float:
        return self.compress.energy_j + self.write.energy_j

    @property
    def total_runtime_s(self) -> float:
        return self.compress.runtime_s + self.write.runtime_s


class DataDumper:
    """Runs the compress-then-write pipeline on a simulated node.

    Each stage is executed *repeats* times and averaged, mirroring the
    paper's measurement protocol — a single noisy run would drown the
    few-percent savings Fig. 6 compares.
    """

    def __init__(
        self,
        node: SimulatedNode,
        nfs: NfsTarget | None = None,
        repeats: int = 10,
        chunk_bytes: Optional[int] = None,
        executor: "Executor | str" = "auto",
        workers: Optional[int] = None,
    ) -> None:
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        if chunk_bytes is not None:
            check_positive(chunk_bytes, "chunk_bytes")
        self.node = node
        self.nfs = nfs if nfs is not None else NfsTarget()
        self.repeats = int(repeats)
        self.chunk_bytes = None if chunk_bytes is None else int(chunk_bytes)
        self.executor = executor
        self.workers = workers

    def _run_stage(self, workload, freq_ghz: float):
        self.node.set_frequency(freq_ghz)
        runs = [self.node.run(workload) for _ in range(self.repeats)]
        runtime = float(np.mean([m.runtime_s for m in runs]))
        energy = float(np.mean([m.energy_j for m in runs]))
        return runs[0].freq_ghz, runtime, energy

    def dump(
        self,
        compressor: Compressor,
        sample_field: np.ndarray,
        error_bound: float,
        target_bytes: int,
        compress_freq_ghz: float | None = None,
        write_freq_ghz: float | None = None,
    ) -> DumpReport:
        """Compress *target_bytes* worth of data (character taken from
        *sample_field*) and write the result to the NFS.

        Parameters
        ----------
        compressor:
            A real codec; it runs on *sample_field* to obtain the true
            compression ratio at *error_bound*.
        sample_field:
            Working-scale field representative of the full dataset.
        target_bytes:
            Full-experiment size (e.g. 512 GB) the costs extrapolate to.
        compress_freq_ghz / write_freq_ghz:
            Per-stage pinned frequencies; ``None`` means base clock.
        """
        check_positive(target_bytes, "target_bytes")
        if compressor.name not in _KIND_BY_CODEC:
            raise KeyError(f"no workload kind for codec {compressor.name!r}")

        tracer = get_tracer()
        with tracer.span(
            "dump",
            codec=compressor.name,
            error_bound=float(error_bound),
            target_bytes=int(target_bytes),
        ):
            return self._dump_traced(
                compressor, sample_field, error_bound, target_bytes,
                compress_freq_ghz, write_freq_ghz, tracer,
            )

    def _dump_traced(
        self, compressor, sample_field, error_bound, target_bytes,
        compress_freq_ghz, write_freq_ghz, tracer,
    ) -> DumpReport:
        parallel: Optional[ParallelStats] = None
        with tracer.span("dump.ratio", bytes_in=sample_field.nbytes) as sp:
            if self.chunk_bytes is not None:
                chunked = ChunkedCompressor(
                    compressor,
                    max_chunk_bytes=self.chunk_bytes,
                    executor=self.executor,
                    workers=self.workers,
                )
                buf = chunked.compress(sample_field, error_bound)
                parallel = chunked.last_stats
            else:
                buf = compressor.compress(sample_field, error_bound)
            ratio = buf.ratio
            sp.set(ratio=ratio)
        compressed_bytes = max(1, int(round(target_bytes / ratio)))

        cpu = self.node.cpu
        f_c = cpu.fmax_ghz if compress_freq_ghz is None else compress_freq_ghz
        f_w = cpu.fmax_ghz if write_freq_ghz is None else write_freq_ghz

        wl_c = compression_workload(
            _KIND_BY_CODEC[compressor.name], target_bytes, error_bound,
            name=f"{compressor.name}-dump",
        )
        with tracer.span("dump.compress", bytes_in=int(target_bytes)) as sp:
            fc_snapped, t_c, e_c = self._run_stage(wl_c, f_c)
            sp.set(freq_ghz=fc_snapped, modeled_runtime_s=t_c, modeled_energy_j=e_c)

        wl_w = transit_workload(compressed_bytes, self.nfs, name="dump-write")
        with tracer.span("dump.write", bytes_in=compressed_bytes) as sp:
            fw_snapped, t_w, e_w = self._run_stage(wl_w, f_w)
            sp.set(freq_ghz=fw_snapped, modeled_runtime_s=t_w, modeled_energy_j=e_w)

        registry = get_registry()
        for stage, energy, runtime in (("compress", e_c, t_c), ("write", e_w, t_w)):
            labels = {"stage": stage}
            registry.counter(
                "repro_dump_energy_joules_total", labels,
                help="modeled energy of dump pipeline stages",
            ).inc(energy)
            registry.counter(
                "repro_dump_runtime_seconds_total", labels,
                help="modeled runtime of dump pipeline stages",
            ).inc(runtime)
        registry.counter(
            "repro_nfs_write_bytes_total",
            help="bytes pushed through the modeled NFS write path",
        ).inc(compressed_bytes)
        registry.counter(
            "repro_nfs_write_seconds_total",
            help="modeled reference-clock seconds spent in NFS writes",
        ).inc(t_w)

        return DumpReport(
            compress=StageReport(
                stage="compress",
                freq_ghz=fc_snapped,
                bytes_processed=target_bytes,
                runtime_s=t_c,
                energy_j=e_c,
            ),
            write=StageReport(
                stage="write",
                freq_ghz=fw_snapped,
                bytes_processed=compressed_bytes,
                runtime_s=t_w,
                energy_j=e_w,
            ),
            compression_ratio=ratio,
            error_bound=error_bound,
            parallel=parallel,
        )
